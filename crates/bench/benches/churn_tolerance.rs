//! Churn tolerance: the byte price of answering under node crash/revival
//! churn, on the paper-default 1500-node band join (5 % result fraction).
//!
//! Two strategies over the same sampled MTBF/MTTR fault timeline: the
//! churn-aware protocol with *localized* tree repair (orphan subtrees
//! re-parent among live neighbors; treecut-proxy recovery keeps surviving
//! rows), and the §IV-F recipe applied to churn — flood a *full* routing
//! rebuild and re-execute the query until one run sees no churn event.
//! Cost is `total_cost_bytes` = data + retransmissions + control beacons.
//!
//! Acceptance gates (asserted here, recorded in `BENCH_engine.json`): at
//! the shortest MTBF (24 expected events per execution) the localized total
//! must be ≤ 0.7× the rebuild-re-execution total, and the churned run must
//! actually have observed churn (non-vacuous).

use criterion::{black_box, BenchmarkId, Criterion};
use sensjoin_bench::{benchjson, paper_network, run, SEED};
use sensjoin_core::workload::RangeQueryFamily;
use sensjoin_core::{execute_with_rebuild_reexecution, JoinMethod, SensJoin};
use sensjoin_query::parse;
use sensjoin_sim::{ChurnTimeline, PHASE_REPAIR};
use std::time::Instant;

const NODES: usize = 1500;
/// Expected churn events per execution span (shorter MTBF to the right).
const EVENTS: [u32; 3] = [2, 8, 24];
const REBUILD_ATTEMPTS: u32 = 6;

fn main() {
    let mut criterion = Criterion::default();
    let mut snet = paper_network(NODES, SEED);
    let cal = RangeQueryFamily::ratio_33().calibrate(&snet, 0.05);
    let cq = snet.compile(&parse(&cal.sql).unwrap()).unwrap();
    let clean = run(&mut snet, &SensJoin::default(), &cal.sql);
    let span = clean.latency_us.max(1);

    let mut lo_cost = Vec::new();
    let mut lo_repair = Vec::new();
    let mut re_cost = Vec::new();
    let mut re_attempts = Vec::new();
    let mut mtbfs = Vec::new();
    let mut churned_at_max = false;
    for &events in &EVENTS {
        let mtbf = NODES as f64 * span as f64 / events as f64;
        let mttr = mtbf / 2.0;
        let horizon = 4 * span;
        let churn_seed = SEED.wrapping_add(events as u64);
        mtbfs.push(mtbf);

        let mut local = paper_network(NODES, SEED);
        let tl = ChurnTimeline::sample(
            local.len(),
            local.net().base(),
            mtbf,
            mttr,
            horizon,
            churn_seed,
        );
        local.net_mut().set_churn(Some(tl.clone()));
        let lo = SensJoin::default().execute(&mut local, &cq).unwrap();
        lo_cost.push(lo.stats.total_cost_bytes());
        lo_repair
            .push(lo.stats.phase(PHASE_REPAIR).tx_bytes + lo.stats.phase(PHASE_REPAIR).ack_bytes);
        if events == *EVENTS.last().unwrap() {
            churned_at_max = lo.churned;
        }

        let mut full = paper_network(NODES, SEED);
        full.net_mut().set_churn(Some(tl));
        let re = execute_with_rebuild_reexecution(
            &SensJoin::default(),
            &mut full,
            &cq,
            REBUILD_ATTEMPTS,
        )
        .unwrap();
        re_cost.push(re.outcome.stats.total_cost_bytes());
        re_attempts.push(re.attempts);
    }

    // Gates.
    assert!(
        churned_at_max,
        "no churn event fired at the shortest MTBF — the comparison is vacuous"
    );
    let last = EVENTS.len() - 1;
    let gate = lo_cost[last] as f64 / re_cost[last] as f64;
    assert!(
        gate <= 0.7,
        "gate violated: localized / rebuild at {} events per execution is {gate:.3} > 0.7",
        EVENTS[last]
    );

    // Timing: one churned localized execution per MTBF (the timeline is
    // re-sampled per call so every iteration actually exercises repair).
    {
        let mut bg = criterion.benchmark_group("churn_tolerance");
        for (i, &events) in EVENTS.iter().enumerate() {
            let mtbf = mtbfs[i];
            bg.bench_with_input(
                BenchmarkId::new("localized", format!("{events}")),
                &events,
                |b, _| {
                    b.iter_custom(|iters| {
                        let start = Instant::now();
                        for it in 0..iters {
                            let tl = ChurnTimeline::sample(
                                snet.len(),
                                snet.net().base(),
                                mtbf,
                                mtbf / 2.0,
                                4 * span,
                                SEED.wrapping_add(it),
                            );
                            snet.net_mut().set_churn(Some(tl));
                            black_box(SensJoin::default().execute(&mut snet, &cq).unwrap());
                        }
                        start.elapsed()
                    })
                },
            );
        }
        bg.finish();
    }
    snet.net_mut().set_churn(None);

    let fmt_map = |vals: &[String]| format!("{{\n{}\n  }}", vals.join(",\n"));
    let mut lo_lines = Vec::new();
    let mut repair_lines = Vec::new();
    let mut re_lines = Vec::new();
    let mut attempt_lines = Vec::new();
    for (i, &events) in EVENTS.iter().enumerate() {
        println!(
            "churn_tolerance: {events} events/exec (MTBF {:.0} ms) → localized {} B \
             (repair {} B), rebuild+re-exec {} B ({} attempts)",
            mtbfs[i] / 1000.0,
            lo_cost[i],
            lo_repair[i],
            re_cost[i],
            re_attempts[i]
        );
        lo_lines.push(format!("    \"{events}\": {}", lo_cost[i]));
        repair_lines.push(format!("    \"{events}\": {}", lo_repair[i]));
        re_lines.push(format!("    \"{events}\": {}", re_cost[i]));
        attempt_lines.push(format!("    \"{events}\": {}", re_attempts[i]));
    }
    let results = criterion.results().to_vec();
    let extras = [
        ("nodes", format!("{NODES}")),
        ("clean_latency_us", format!("{span}")),
        ("localized_cost_bytes", fmt_map(&lo_lines)),
        ("localized_repair_bytes", fmt_map(&repair_lines)),
        ("rebuild_reexec_cost_bytes", fmt_map(&re_lines)),
        ("rebuild_reexec_attempts", fmt_map(&attempt_lines)),
        ("localized_over_rebuild_max_churn", format!("{gate:.3}")),
        (
            "gate",
            "\"localized_over_rebuild_max_churn <= 0.7 with churn observed\"".to_string(),
        ),
    ];
    benchjson::merge_section(
        "churn_tolerance",
        &benchjson::section_value(&results, &extras),
    );
}
