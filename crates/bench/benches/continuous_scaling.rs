//! Per-round cost of the continuous filter engine: delta maintenance
//! (`FilterEngine::apply_delta`) against the rebuild-per-round baseline
//! (point-set reconstruction + fresh `prejoin_filter`) at 500 / 1000 / 2000
//! populated cells with 5 % of the cells moving every round.
//!
//! The workload models slow drift in a band join: each round displaces a
//! rotating 5 % slice of the population by half a cell-spacing and the next
//! round moves it back, so the population size is stationary and every round
//! causes genuine presence transitions (the incremental engine's worst case
//! short of a cold start; count-only rounds are near-free and would inflate
//! the speedup). The derived `speedup` map in `BENCH_engine.json` is
//! rebuild-time / incremental-time per population size — the quantity the
//! acceptance gate reads.

use criterion::{black_box, BenchmarkId, Criterion};
use sensjoin_bench::benchjson;
use sensjoin_core::{
    prejoin_filter, CellCounts, FilterEngine, JoinSpace, QuantizationConfig, SensJoinConfig,
    SensorNetworkBuilder,
};
use sensjoin_field::{Area, Placement};
use sensjoin_quadtree::{Point, PointSet, RelFlags};
use sensjoin_query::{parse, CompiledQuery};
use std::time::Instant;

const SIZES: [usize; 3] = [500, 1000, 2000];
const DELTA_FRACTION: f64 = 0.05;
/// Attribute range: 4096 quantized temp cells at the paper's 0.1 resolution,
/// enough to hold every population size with room between cells.
const TEMP_MAX: f64 = 409.6;

fn setup() -> (CompiledQuery, JoinSpace) {
    let snet = SensorNetworkBuilder::new()
        .area(Area::new(200.0, 200.0))
        .placement(Placement::UniformRandom { n: 20 })
        .seed(7)
        .build()
        .unwrap();
    let q = parse(
        "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
         WHERE |A.temp - B.temp| < 0.3 SAMPLE PERIOD 30",
    )
    .unwrap();
    let cq = snet.compile(&q).unwrap();
    let config = SensJoinConfig {
        quantization: QuantizationConfig::new().with("temp", 0.0, TEMP_MAX, 0.1),
        ..SensJoinConfig::default()
    };
    let space = JoinSpace::build(&cq, &snet, &config);
    (cq, space)
}

/// Home temp of cell `k` when `n` cells are spread over the range.
fn home(k: usize, n: usize) -> f64 {
    (k as f64 + 0.3) * (TEMP_MAX / n as f64)
}

/// The seed population: `n` cells, each occupied by both roles.
fn seed_counts(space: &JoinSpace, n: usize) -> CellCounts {
    let slot = |r: usize| space.flag(r).0.trailing_zeros() as usize;
    let mut counts = CellCounts::default();
    for k in 0..n {
        let z = space.encode(&[Some(home(k, n))]);
        let e = counts.entry(z).or_insert([0; 8]);
        e[slot(0)] += 1;
        e[slot(1)] += 1;
    }
    counts
}

/// A ring of per-round deltas whose pairwise composition is the identity:
/// delta 2j displaces slice j of the population by half a cell-spacing
/// (removing one role's occupancy at the home cell, adding it at the shifted
/// cell — two presence transitions per moved cell), delta 2j+1 moves it
/// back. Stepping through the ring keeps the population size stationary
/// while every round changes ~5 % of the cells.
fn delta_ring(space: &JoinSpace, n: usize) -> Vec<CellCounts> {
    let slot = |r: usize| space.flag(r).0.trailing_zeros() as usize;
    // One move changes TWO cells (occupancy leaves the source cell and
    // appears at the target), so half the fraction in moved pairs keeps the
    // changed-cell count at `n * DELTA_FRACTION` per round.
    let moved = ((n as f64 * DELTA_FRACTION / 2.0) as usize).max(1);
    let slices = n.div_ceil(moved);
    let mut ring = Vec::with_capacity(2 * slices);
    for j in 0..slices {
        let mut fwd = CellCounts::default();
        let mut back = CellCounts::default();
        for i in 0..moved {
            let k = (j * moved + i) % n;
            let role = k % 2;
            let from = space.encode(&[Some(home(k, n))]);
            let to = space.encode(&[Some(home(k, n) + TEMP_MAX / n as f64 * 0.5)]);
            if from == to {
                continue;
            }
            fwd.entry(from).or_insert([0; 8])[slot(role)] -= 1;
            fwd.entry(to).or_insert([0; 8])[slot(role)] += 1;
            back.entry(from).or_insert([0; 8])[slot(role)] += 1;
            back.entry(to).or_insert([0; 8])[slot(role)] -= 1;
        }
        ring.push(fwd);
        ring.push(back);
    }
    ring
}

/// What the pre-engine base station did every round: fold the delta into the
/// counted population, rebuild the point set, run the filter from scratch.
fn fold(counts: &mut CellCounts, delta: &CellCounts) {
    for (&z, d) in delta {
        let e = counts.entry(z).or_insert([0; 8]);
        for b in 0..8 {
            e[b] += d[b];
        }
        if e.iter().all(|&c| c == 0) {
            counts.remove(&z);
        }
    }
}

fn counts_to_points(counts: &CellCounts) -> PointSet {
    PointSet::from_points(counts.iter().filter_map(|(&z, c)| {
        let mut flags = 0u8;
        for (b, &cnt) in c.iter().enumerate() {
            if cnt > 0 {
                flags |= 1 << b;
            }
        }
        (flags != 0).then_some(Point {
            z,
            flags: RelFlags(flags),
        })
    }))
}

fn bench_rounds(c: &mut Criterion) {
    let (cq, space) = setup();
    let mut group = c.benchmark_group("continuous_scaling");
    for n in SIZES {
        let seed = seed_counts(&space, n);
        let ring = delta_ring(&space, n);

        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let mut engine = FilterEngine::new(&cq, &space);
                engine.apply_delta(&cq, &space, &seed);
                let start = Instant::now();
                for i in 0..iters {
                    let d = &ring[i as usize % ring.len()];
                    black_box(engine.apply_delta(&cq, &space, d));
                }
                start.elapsed()
            })
        });

        group.bench_with_input(BenchmarkId::new("rebuild", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let mut counts = seed.clone();
                let start = Instant::now();
                for i in 0..iters {
                    let d = &ring[i as usize % ring.len()];
                    fold(&mut counts, d);
                    let points = counts_to_points(&counts);
                    black_box(prejoin_filter(&cq, &space, &points));
                }
                start.elapsed()
            })
        });
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_rounds(&mut criterion);
    let results = criterion.results().to_vec();
    let ns = |name: String| {
        results
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, d)| d.as_nanos() as f64)
    };
    let mut speedups = Vec::new();
    for n in SIZES {
        if let (Some(inc), Some(reb)) = (
            ns(format!("continuous_scaling/incremental/{n}")),
            ns(format!("continuous_scaling/rebuild/{n}")),
        ) {
            let s = reb / inc;
            println!("continuous_scaling: {n} cells → {s:.1}x per-round speedup");
            speedups.push(format!("    \"{n}\": {s:.2}"));
        }
    }
    let extras = [
        ("delta_fraction", format!("{DELTA_FRACTION}")),
        ("speedup", format!("{{\n{}\n  }}", speedups.join(",\n"))),
    ];
    benchjson::merge_section(
        "continuous_scaling",
        &benchjson::section_value(&results, &extras),
    );
}
