//! Scaling of the base station's exact join: the partitioned engine
//! (`exact_join`) against the nested-loop reference (`exact_join_nested`)
//! on two-way band and equi joins at 500 / 1500 / 5000 tuples per relation.
//!
//! Selectivity is tuned so the output stays O(n) — the band width shrinks
//! with n — which isolates the candidate-generation cost: the nested loop
//! pays O(n²) predicate evaluations regardless, the partitioned engine
//! O(n log n) binary searches plus O(output) residual checks. The nested
//! baseline is bounded to n ≤ 1500 (a 5000² descent per iteration would
//! dominate the bench wall-clock without adding information).

use criterion::{black_box, BenchmarkId, Criterion};
use sensjoin_bench::benchjson;
use sensjoin_core::{exact_join, exact_join_nested};
use sensjoin_query::{parse, CompiledQuery};
use sensjoin_relation::{AttrType, Attribute, NodeId, Schema};

const SIZES: [usize; 3] = [500, 1500, 5000];

fn schema() -> Schema {
    Schema::new(
        "Sensors",
        vec![
            Attribute::new("x", AttrType::Meters),
            Attribute::new("y", AttrType::Meters),
            Attribute::new("temp", AttrType::Celsius),
            Attribute::new("hum", AttrType::Percent),
        ],
    )
}

fn compile(sql: &str) -> CompiledQuery {
    let q = parse(sql).expect("valid query");
    let s = schema();
    CompiledQuery::compile(&q, &[s.clone(), s]).expect("compiles")
}

/// Deterministic pseudo-random tuples: temp uniform in [10, 32), the other
/// attributes decorrelated.
fn tuples(n: usize, seed: u64) -> Vec<Vec<(NodeId, Vec<f64>)>> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    (0..2)
        .map(|rel| {
            (0..n)
                .map(|i| {
                    let values = vec![
                        1000.0 * next(),
                        1000.0 * next(),
                        10.0 + 22.0 * next(),
                        30.0 + 40.0 * next(),
                    ];
                    (NodeId((rel * 100_000 + i) as u32), values)
                })
                .collect()
        })
        .collect()
}

fn bench_band_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling/band");
    group.sample_size(10);
    for n in SIZES {
        // |A.temp - B.temp| < eps over a range of 22: eps = 11/n keeps the
        // expected output near n rows at every size.
        let eps = 11.0 / n as f64;
        let cq = compile(&format!(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < {eps} ONCE"
        ));
        let data = tuples(n, 42);
        group.bench_with_input(BenchmarkId::new("partitioned", n), &n, |b, _| {
            b.iter(|| exact_join(black_box(&cq), black_box(&data)))
        });
        if n <= 1500 {
            group.bench_with_input(BenchmarkId::new("nested", n), &n, |b, _| {
                b.iter(|| exact_join_nested(black_box(&cq), black_box(&data)))
            });
        }
    }
    group.finish();
}

fn bench_equi_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling/equi");
    group.sample_size(10);
    for n in SIZES {
        let cq = compile(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp = B.temp ONCE",
        );
        // Quantize temp onto an n-value grid: every tuple finds ~1 partner.
        let mut data = tuples(n, 42);
        for rel in &mut data {
            for (_, values) in rel.iter_mut() {
                values[2] = (values[2] * n as f64).round() / n as f64;
            }
        }
        group.bench_with_input(BenchmarkId::new("partitioned", n), &n, |b, _| {
            b.iter(|| exact_join(black_box(&cq), black_box(&data)))
        });
        if n <= 1500 {
            group.bench_with_input(BenchmarkId::new("nested", n), &n, |b, _| {
                b.iter(|| exact_join_nested(black_box(&cq), black_box(&data)))
            });
        }
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_band_join(&mut criterion);
    bench_equi_join(&mut criterion);
    benchjson::merge_section(
        "engine_scaling",
        &benchjson::section_value(criterion.results(), &[]),
    );
}
