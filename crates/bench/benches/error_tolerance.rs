//! Error tolerance: the byte price of an *exact* join result per loss rate,
//! on the paper-default 1500-node band join (5 % result fraction).
//!
//! Three strategies over a Bernoulli channel at p ∈ {0, 0.01, 0.05, 0.1,
//! 0.2}: SENS-Join with hop-by-hop ack-and-retransmit ARQ, the external
//! join with the same ARQ, and the paper's §IV-F recipe applied to packet
//! loss — no link reliability, re-execute until one attempt survives intact
//! (capped). Cost is `total_cost_bytes` = data + retransmissions + acks.
//!
//! Acceptance gates (asserted here, recorded in `BENCH_engine.json`):
//! at p = 0.1 the SENS-Join + ARQ total must be ≤ 0.6× the re-execution
//! total, and the p = 0 row must be byte-identical to the lossless run.

use criterion::{black_box, BenchmarkId, Criterion};
use sensjoin_bench::{benchjson, paper_network, run, SEED};
use sensjoin_core::workload::RangeQueryFamily;
use sensjoin_core::{
    execute_with_reexecution, ExternalJoin, JoinMethod, SensJoin, MAX_REEXECUTION_ATTEMPTS,
};
use sensjoin_query::parse;
use sensjoin_sim::{ArqPolicy, Channel};
use std::time::Instant;

const NODES: usize = 1500;
const RATES: [f64; 5] = [0.0, 0.01, 0.05, 0.1, 0.2];
const ARQ: ArqPolicy = ArqPolicy::AckRetransmit { max_retries: 16 };

fn main() {
    let mut criterion = Criterion::default();
    let mut snet = paper_network(NODES, SEED);
    let cal = RangeQueryFamily::ratio_33().calibrate(&snet, 0.05);
    let cq = snet.compile(&parse(&cal.sql).unwrap()).unwrap();
    let clean_sj = run(&mut snet, &SensJoin::default(), &cal.sql);
    let clean_ext = run(&mut snet, &ExternalJoin, &cal.sql);

    // Byte accounting (deterministic, outside timing): every ARQ run must
    // reproduce the lossless result bit for bit.
    let mut sj_cost = Vec::new();
    let mut ext_cost = Vec::new();
    let mut re_cost = Vec::new();
    let mut re_attempts = Vec::new();
    for (i, &p) in RATES.iter().enumerate() {
        let salt = SEED.wrapping_add(3 * i as u64);
        snet.net_mut().set_arq(ARQ);
        snet.net_mut()
            .set_channel(Some(Channel::bernoulli(p, salt)));
        let sj = SensJoin::default().execute(&mut snet, &cq).unwrap();
        assert!(sj.complete, "ARQ retry budget exhausted at p = {p}");
        assert!(
            sj.result.same_result(&clean_sj.result),
            "SENS-Join result diverged at p = {p}"
        );
        sj_cost.push(sj.stats.total_cost_bytes());

        snet.net_mut()
            .set_channel(Some(Channel::bernoulli(p, salt.wrapping_add(1))));
        let ext = ExternalJoin.execute(&mut snet, &cq).unwrap();
        assert!(
            ext.complete,
            "external ARQ retry budget exhausted at p = {p}"
        );
        assert!(
            ext.result.same_result(&clean_ext.result),
            "external result diverged at p = {p}"
        );
        ext_cost.push(ext.stats.total_cost_bytes());

        snet.net_mut()
            .set_channel(Some(Channel::bernoulli(p, salt.wrapping_add(2))));
        let re = execute_with_reexecution(
            &SensJoin::default(),
            &mut snet,
            &cq,
            MAX_REEXECUTION_ATTEMPTS,
        )
        .unwrap();
        re_cost.push(re.outcome.stats.total_cost_bytes());
        re_attempts.push(re.attempts);
    }

    // Gates.
    assert_eq!(
        sj_cost[0],
        clean_sj.stats.total_tx_bytes(),
        "p = 0 must be byte-identical to the lossless run"
    );
    let idx10 = RATES.iter().position(|&p| p == 0.1).unwrap();
    let gate = sj_cost[idx10] as f64 / re_cost[idx10] as f64;
    assert!(
        gate <= 0.6,
        "gate violated: ARQ / re-execution at p = 0.1 is {gate:.3} > 0.6"
    );

    // Timing: one full SENS-Join + ARQ execution per loss rate.
    {
        let mut bg = criterion.benchmark_group("error_tolerance");
        for &p in &RATES {
            bg.bench_with_input(
                BenchmarkId::new("sensjoin_arq", format!("{p}")),
                &p,
                |b, &p| {
                    b.iter_custom(|iters| {
                        snet.net_mut().set_arq(ARQ);
                        snet.net_mut()
                            .set_channel(Some(Channel::bernoulli(p, SEED)));
                        let start = Instant::now();
                        for _ in 0..iters {
                            black_box(SensJoin::default().execute(&mut snet, &cq).unwrap());
                        }
                        start.elapsed()
                    })
                },
            );
        }
        bg.finish();
    }
    snet.net_mut().set_channel(None);

    let fmt_map = |vals: &[String]| format!("{{\n{}\n  }}", vals.join(",\n"));
    let mut sj_lines = Vec::new();
    let mut ext_lines = Vec::new();
    let mut re_lines = Vec::new();
    let mut attempt_lines = Vec::new();
    for (i, &p) in RATES.iter().enumerate() {
        println!(
            "error_tolerance: p={p} → SENS+ARQ {} B, external+ARQ {} B, \
             re-execution {} B ({} attempts)",
            sj_cost[i], ext_cost[i], re_cost[i], re_attempts[i]
        );
        sj_lines.push(format!("    \"{p}\": {}", sj_cost[i]));
        ext_lines.push(format!("    \"{p}\": {}", ext_cost[i]));
        re_lines.push(format!("    \"{p}\": {}", re_cost[i]));
        attempt_lines.push(format!("    \"{p}\": {}", re_attempts[i]));
    }
    let results = criterion.results().to_vec();
    let extras = [
        ("nodes", format!("{NODES}")),
        ("arq", "\"ack+retransmit, 16 retries\"".to_string()),
        (
            "lossless_bytes",
            format!("{}", clean_sj.stats.total_tx_bytes()),
        ),
        ("sensjoin_arq_cost_bytes", fmt_map(&sj_lines)),
        ("external_arq_cost_bytes", fmt_map(&ext_lines)),
        ("reexecution_cost_bytes", fmt_map(&re_lines)),
        ("reexecution_attempts", fmt_map(&attempt_lines)),
        ("arq_over_reexecution_p10", format!("{gate:.3}")),
        (
            "gate",
            "\"arq_over_reexecution_p10 <= 0.6 and p=0 byte-identical to lossless\"".to_string(),
        ),
    ];
    benchjson::merge_section(
        "error_tolerance",
        &benchjson::section_value(&results, &extras),
    );
}
