//! Streaming-ingestion scaling: the steady-state cost of a small delta
//! batch through `StreamJoinEngine` against the full batch re-join it
//! replaces, plus the vectorized residual kernel against its scalar
//! reference.
//!
//! The engine's claim (DESIGN.md §4.11) is O(Δ) steady-state work: applying
//! a batch touching 1 % of the tuples must not cost anywhere near a full
//! `exact_join` over both relations. The residual kernel is the inner loop
//! that makes the constant small — a branch-free `|probe - key| < c` sweep
//! over a sorted run's key column.
//!
//! Acceptance gates (asserted here, recorded in `BENCH_engine.json`):
//! * a 1 % delta batch costs ≤ 0.1× the full `exact_join` at 2000 tuples
//!   per relation,
//! * the vectorized residual kernel is ≥ 4× its scalar reference over a
//!   4096-key run (asserted only when the process dispatches to AVX2).

use criterion::{black_box, BenchmarkId, Criterion};
use sensjoin_bench::benchjson;
use sensjoin_core::{exact_join, StreamJoinEngine, StreamOp};
use sensjoin_query::{parse, CompiledQuery};
use sensjoin_relation::{AttrType, Attribute, NodeId, Schema};
use sensjoin_simd::{band_mask, band_mask_scalar, kernels_active, CmpKind, MaskForm};

const N: usize = 2000;
const DELTA_FRACTION: f64 = 0.01;
const DELTA_GATE: f64 = 0.1;
const RESIDUAL_KEYS: usize = 4096;
const RESIDUAL_GATE: f64 = 4.0;

fn schema() -> Schema {
    Schema::new(
        "Sensors",
        vec![
            Attribute::new("x", AttrType::Meters),
            Attribute::new("y", AttrType::Meters),
            Attribute::new("temp", AttrType::Celsius),
            Attribute::new("hum", AttrType::Percent),
        ],
    )
}

fn compile(sql: &str) -> CompiledQuery {
    let q = parse(sql).expect("valid query");
    let s = schema();
    CompiledQuery::compile(&q, &[s.clone(), s]).expect("compiles")
}

/// Deterministic pseudo-random tuples, the `engine_scaling` population.
fn tuples(n: usize, seed: u64) -> Vec<Vec<(NodeId, Vec<f64>)>> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    (0..2)
        .map(|rel| {
            (0..n)
                .map(|i| {
                    let values = vec![
                        1000.0 * next(),
                        1000.0 * next(),
                        10.0 + 22.0 * next(),
                        30.0 + 40.0 * next(),
                    ];
                    (NodeId((rel * 100_000 + i) as u32), values)
                })
                .collect()
        })
        .collect()
}

/// The streaming view of the batch data: one upsert per tuple, each origin
/// a member of exactly one relation.
fn upserts(data: &[Vec<(NodeId, Vec<f64>)>]) -> Vec<StreamOp> {
    let rels = data.len();
    data.iter()
        .enumerate()
        .flat_map(|(rel, tuples)| {
            tuples.iter().map(move |(origin, values)| {
                let mut per_rel = vec![None; rels];
                per_rel[rel] = Some(values.clone());
                StreamOp::Upsert {
                    origin: *origin,
                    per_rel,
                }
            })
        })
        .collect()
}

fn bench_ingest(c: &mut Criterion, cq: &CompiledQuery, data: &[Vec<(NodeId, Vec<f64>)>]) {
    let mut group = c.benchmark_group("ingest_scaling");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("full_exact_join", N), &N, |b, _| {
        b.iter(|| exact_join(black_box(cq), black_box(data)))
    });
    let all = upserts(data);
    group.bench_with_input(BenchmarkId::new("cold_load", N), &N, |b, _| {
        b.iter(|| {
            let mut engine = StreamJoinEngine::new(cq.clone());
            black_box(engine.apply_batch(black_box(&all)))
        })
    });
    // Steady state: re-upsert 1 % of the tuples (half from each relation)
    // into a warm engine. Values are unchanged, so the engine state is a
    // fixed point and every iteration performs the same expire + insert +
    // anchored re-enumeration work.
    let k = ((DELTA_FRACTION * N as f64) as usize).max(1) / 2;
    let delta: Vec<StreamOp> = all
        .iter()
        .take(k)
        .chain(all.iter().skip(N).take(k))
        .cloned()
        .collect();
    let mut engine = StreamJoinEngine::new(cq.clone());
    engine.apply_batch(&all);
    group.bench_with_input(BenchmarkId::new("delta_batch_1pct", N), &N, |b, _| {
        b.iter(|| black_box(engine.apply_batch(black_box(&delta))))
    });
    group.finish();
    // The fixed point really is one: the warm engine still answers exactly.
    let reference = exact_join(cq, data);
    let streamed = engine.result();
    assert!(
        streamed.result.same_result(&reference.result)
            && streamed.contributors == reference.contributors,
        "warm streaming engine diverged from exact_join"
    );
}

/// Best-of-trials wall time in nanoseconds per repetition.
fn time_ns(trials: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t = std::time::Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / reps as f64);
    }
    best
}

/// Times the residual band kernel (vectorized dispatch vs scalar reference)
/// over one sorted `RESIDUAL_KEYS`-key run.
fn residual_times() -> (f64, f64) {
    let mut state = 99u64;
    let mut keys: Vec<f64> = (0..RESIDUAL_KEYS)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            10.0 + 22.0 * ((state >> 33) as f64 / (1u64 << 31) as f64)
        })
        .collect();
    keys.sort_unstable_by(f64::total_cmp);
    let form = MaskForm::AbsDiff {
        op: CmpKind::Lt,
        c: 0.5,
        key_is_lhs: true,
    };
    let mut out = Vec::new();
    let simd = time_ns(5, 2000, || {
        band_mask(black_box(&keys), black_box(21.0), form, &mut out);
        black_box(&out);
    });
    let scalar = time_ns(5, 2000, || {
        band_mask_scalar(black_box(&keys), black_box(21.0), form, &mut out);
        black_box(&out);
    });
    (scalar, simd)
}

fn ns_of(results: &[(String, std::time::Duration)], name: &str) -> f64 {
    results
        .iter()
        .find(|(k, _)| k == name)
        .unwrap_or_else(|| panic!("bench {name} was not run"))
        .1
        .as_nanos() as f64
}

fn main() {
    let eps = 11.0 / N as f64;
    let cq = compile(&format!(
        "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
         WHERE |A.temp - B.temp| < {eps} ONCE"
    ));
    let data = tuples(N, 42);
    let mut criterion = Criterion::default();
    bench_ingest(&mut criterion, &cq, &data);

    let results = criterion.results();
    let full = ns_of(results, &format!("ingest_scaling/full_exact_join/{N}"));
    let delta = ns_of(results, &format!("ingest_scaling/delta_batch_1pct/{N}"));
    let delta_over_full = delta / full;
    assert!(
        delta_over_full <= DELTA_GATE,
        "gate violated: 1% delta batch is {delta_over_full:.3}x the full join (> {DELTA_GATE})"
    );

    let (scalar_ns, simd_ns) = residual_times();
    let residual_speedup = scalar_ns / simd_ns;
    let kernels = kernels_active();
    if kernels.contains("avx2") {
        assert!(
            residual_speedup >= RESIDUAL_GATE,
            "gate violated: residual kernel speedup {residual_speedup:.2}x < {RESIDUAL_GATE}x"
        );
    }

    let extras = [
        ("tuples_per_relation", format!("{N}")),
        ("delta_fraction", format!("{DELTA_FRACTION}")),
        ("delta_over_full", format!("{delta_over_full:.4}")),
        ("residual_keys", format!("{RESIDUAL_KEYS}")),
        ("residual_scalar_ns", format!("{scalar_ns:.0}")),
        ("residual_simd_ns", format!("{simd_ns:.0}")),
        ("residual_speedup", format!("{residual_speedup:.2}")),
        ("kernels", format!("\"{kernels}\"")),
        (
            "gate",
            format!(
                "\"delta_batch_1pct/{N} <= {DELTA_GATE}x full_exact_join/{N}, \
                 residual kernel >= {RESIDUAL_GATE}x scalar when AVX2 dispatches\""
            ),
        ),
    ];
    benchjson::merge_section(
        "ingest_scaling",
        &benchjson::section_value(results, &extras),
    );
}
