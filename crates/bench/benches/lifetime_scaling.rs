//! Network lifetime: battery-powered continuous band join, min-hop routing
//! vs power-aware parent rotation, on a 1500-node deployment.
//!
//! Every node starts with a seeded battery; each round's transmissions are
//! debited through the energy model and exhausted nodes crash at the next
//! protocol boundary. The deployment is four times the paper's density
//! (same 50 m range): power-aware rotation balances load by moving subtrees
//! between interchangeable same-depth parents, and at paper density the
//! depth-1 ring around the base has almost no interchangeable members — the
//! first victim's children typically have *zero* alternative parents in
//! range, so no parent policy can shed its load. The dense deployment (a
//! base station near the center of it) is the regime the mechanism is for.
//!
//! Acceptance gates (asserted here, recorded in `BENCH_engine.json`):
//! power-aware must reach ≥ 1.3× the min-hop rounds-to-first-death on the
//! 1500-node continuous band join, and a continuous run whose batteries
//! never deplete must be bit-identical (per-node stats and results) to the
//! same run with no battery attached.

use criterion::{black_box, BenchmarkId, Criterion};
use sensjoin_bench::{benchjson, SEED};
use sensjoin_core::{ContinuousSensJoin, SensorNetwork, SensorNetworkBuilder};
use sensjoin_field::{presets, Area, Placement};
use sensjoin_query::parse;
use sensjoin_sim::{BaseChoice, BatteryBank, LifetimeRun, LifetimeUntil, ParentPolicy};
use std::time::Instant;

const NODES: usize = 1500;
/// Area sized for this many nodes at paper density → 4× density at `NODES`.
const DENSITY_N: usize = 375;
/// Initial battery, µJ (0.4 J: ~a dozen min-hop rounds at this scale).
const CAPACITY_UJ: f64 = 0.4e6;
const MAX_ROUNDS: u64 = 400;
/// Small-network configuration for the timing loop and the identity gate.
const TIMING_NODES: usize = 400;
const TIMING_DENSITY_N: usize = 100;
const SQL: &str = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                   WHERE A.temp - B.temp > 3.0 SAMPLE PERIOD 30";

fn dense_network(n: usize, density_n: usize, seed: u64) -> SensorNetwork {
    SensorNetworkBuilder::new()
        .placement(Placement::UniformRandom { n })
        .area(Area::for_constant_density(density_n))
        .fields(presets::indoor_climate())
        .base(BaseChoice::NearestCenter)
        .seed(seed)
        .build()
        .expect("dense network builds")
}

/// Rounds until the first battery death under `policy` (resampling fields
/// every round), plus the number of boundary rotations that happened.
fn rounds_to_first_death(n: usize, density_n: usize, policy: ParentPolicy) -> u64 {
    let mut snet = dense_network(n, density_n, SEED);
    let bank = BatteryBank::with_jitter(snet.len(), snet.base(), CAPACITY_UJ, 0.0, SEED);
    snet.net_mut().set_battery(Some(bank));
    snet.net_mut().set_parent_policy(policy);
    let cq = snet.compile(&parse(SQL).unwrap()).unwrap();
    let specs = presets::indoor_climate();
    let mut cont = ContinuousSensJoin::new();
    let mut run = LifetimeRun::new(snet.net(), LifetimeUntil::FirstDeath, MAX_ROUNDS);
    loop {
        let r = run.rounds();
        if r > 0 {
            snet.resample(&specs, SEED.wrapping_add(r));
        }
        let _ = cont.execute_round(&mut snet, &cq).expect("round executes");
        if run.observe(snet.net()).is_some() {
            break;
        }
    }
    run.rounds()
}

/// Zero-depletion identity gate: per-round per-node stats and results of a
/// battery-free run vs the same run with an (undepletable) jittered bank.
fn zero_depletion_identical(rounds: u64) -> bool {
    let mut logs: Vec<Vec<(Vec<sensjoin_sim::NodeStats>, usize)>> = Vec::new();
    for battery in [false, true] {
        let mut snet = dense_network(TIMING_NODES, TIMING_DENSITY_N, SEED);
        if battery {
            let bank = BatteryBank::with_jitter(snet.len(), snet.base(), 1.0e15, 0.2, SEED);
            snet.net_mut().set_battery(Some(bank));
        }
        let cq = snet.compile(&parse(SQL).unwrap()).unwrap();
        let specs = presets::indoor_climate();
        let mut cont = ContinuousSensJoin::new();
        let mut log = Vec::new();
        for r in 0..rounds {
            if r > 0 {
                snet.resample(&specs, SEED.wrapping_add(r));
            }
            let out = cont.execute_round(&mut snet, &cq).expect("round executes");
            log.push((out.stats.per_node().to_vec(), out.result.len()));
        }
        if battery {
            assert!(
                snet.net().battery().unwrap().death_order().is_empty(),
                "identity gate misconfigured: the undepletable bank depleted"
            );
        }
        logs.push(log);
    }
    logs[0] == logs[1]
}

fn main() {
    let mut criterion = Criterion::default();

    // Gate 1: power-aware rotation extends rounds-to-first-death ≥ 1.3×.
    let minhop = rounds_to_first_death(NODES, DENSITY_N, ParentPolicy::MinHop);
    let poweraware = rounds_to_first_death(NODES, DENSITY_N, ParentPolicy::PowerAware);
    let ratio = poweraware as f64 / minhop as f64;
    assert!(
        minhop > 1 && minhop < MAX_ROUNDS,
        "min-hop first death at round {minhop} — capacity miscalibrated, comparison vacuous"
    );
    assert!(
        ratio >= 1.3,
        "gate violated: power-aware {poweraware} rounds vs min-hop {minhop} \
         rounds to first death is {ratio:.2}× < 1.3×"
    );

    // Gate 2: an undepleted battery is pure observation.
    let identical = zero_depletion_identical(3);
    assert!(
        identical,
        "gate violated: zero-depletion run diverged from the no-battery run"
    );

    // Timing: one battery-powered continuous round per policy at the small
    // configuration (a fresh bank each iteration keeps rounds comparable).
    {
        let mut bg = criterion.benchmark_group("lifetime_scaling");
        for (name, policy) in [
            ("minhop", ParentPolicy::MinHop),
            ("poweraware", ParentPolicy::PowerAware),
        ] {
            let mut snet = dense_network(TIMING_NODES, TIMING_DENSITY_N, SEED);
            snet.net_mut().set_parent_policy(policy);
            let cq = snet.compile(&parse(SQL).unwrap()).unwrap();
            let mut cont = ContinuousSensJoin::new();
            bg.bench_with_input(
                BenchmarkId::new("round", format!("{name}/{TIMING_NODES}")),
                &policy,
                |b, _| {
                    b.iter_custom(|iters| {
                        let start = Instant::now();
                        for _ in 0..iters {
                            let bank = BatteryBank::with_jitter(
                                snet.len(),
                                snet.base(),
                                CAPACITY_UJ,
                                0.0,
                                SEED,
                            );
                            snet.net_mut().set_battery(Some(bank));
                            black_box(cont.execute_round(&mut snet, &cq).expect("round"));
                        }
                        start.elapsed()
                    })
                },
            );
        }
        bg.finish();
    }

    println!(
        "lifetime_scaling: {NODES} nodes (density ×{:.0}, {:.1} J) → \
         min-hop {minhop} rounds, power-aware {poweraware} rounds to first \
         death ({ratio:.2}×); zero-depletion bit-identical: {identical}",
        NODES as f64 / DENSITY_N as f64,
        CAPACITY_UJ / 1e6,
    );
    let results = criterion.results().to_vec();
    let extras = [
        ("nodes", format!("{NODES}")),
        (
            "density_factor",
            format!("{:.1}", NODES as f64 / DENSITY_N as f64),
        ),
        ("capacity_j", format!("{:.2}", CAPACITY_UJ / 1e6)),
        ("minhop_rounds_to_first_death", format!("{minhop}")),
        ("poweraware_rounds_to_first_death", format!("{poweraware}")),
        ("poweraware_over_minhop", format!("{ratio:.2}")),
        ("zero_depletion_bit_identical", format!("{identical}")),
        (
            "gate",
            "\"poweraware_over_minhop >= 1.3 and zero-depletion bit-identity\"".to_string(),
        ),
    ];
    benchjson::merge_section(
        "lifetime_scaling",
        &benchjson::section_value(&results, &extras),
    );
}
