//! Micro-benchmarks of the building blocks: Z-order encoding, quadtree
//! codec and set primitives, compression codecs, query parsing and interval
//! evaluation. These are the per-node CPU costs; the paper argues they are
//! negligible next to communication (§I), which these numbers substantiate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sensjoin_compress::{Bwt, Codec, Lz77Huffman};
use sensjoin_quadtree::{decode, encode, Point, PointSet, RelFlags, TreeShape};
use sensjoin_query::{parse, CompiledQuery, Interval};
use sensjoin_relation::{AttrType, Attribute, Schema};
use sensjoin_zorder::{Dimension, ZSpace};

fn zspace() -> ZSpace {
    ZSpace::new(vec![
        Dimension::new("temp", 10.0, 32.0, 0.1),
        Dimension::new("x", 0.0, 1050.0, 1.0),
        Dimension::new("y", 0.0, 1050.0, 1.0),
    ])
    .expect("fits")
}

/// A correlated point population (mimics one subtree's join attributes).
fn point_population(n: usize, seed: u64) -> Vec<(u64, RelFlags)> {
    let space = zspace();
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    (0..n)
        .map(|_| {
            let cx = 200.0 + 400.0 * next();
            let cy = 300.0 + 300.0 * next();
            let t = 20.0 + 3.0 * next();
            (space.encode(&[t, cx, cy]), RelFlags::BOTH)
        })
        .collect()
}

fn bench_zorder(c: &mut Criterion) {
    let space = zspace();
    c.bench_function("zorder/encode", |b| {
        b.iter(|| space.encode(black_box(&[21.53, 433.2, 872.9])))
    });
    let z = space.encode(&[21.53, 433.2, 872.9]);
    c.bench_function("zorder/decode", |b| b.iter(|| space.decode(black_box(z))));
    c.bench_function("zorder/cell_box", |b| {
        b.iter(|| space.cell_box(black_box(z)))
    });
    // The BMI2 fast path against the shift-loop reference, on the cell
    // interleave both the encoder and the quadtree codec sit on.
    let coords = space.decode(z);
    c.bench_function("zorder/interleave_fast", |b| {
        b.iter(|| space.encode_cells(black_box(&coords)))
    });
    c.bench_function("zorder/interleave_reference", |b| {
        b.iter(|| space.encode_cells_reference(black_box(&coords)))
    });
    c.bench_function("zorder/deinterleave_fast", |b| {
        b.iter(|| space.decode(black_box(z)))
    });
    c.bench_function("zorder/deinterleave_reference", |b| {
        b.iter(|| space.decode_reference(black_box(z)))
    });
}

/// The streaming engine's residual band kernel (`|probe - key| < c` over a
/// sorted run's key column): hardware dispatch vs the scalar reference.
fn bench_residual(c: &mut Criterion) {
    use sensjoin_simd::{band_mask, band_mask_scalar, CmpKind, MaskForm};
    let mut state = 99u64;
    let mut keys: Vec<f64> = (0..4096)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            10.0 + 22.0 * ((state >> 33) as f64 / (1u64 << 31) as f64)
        })
        .collect();
    keys.sort_unstable_by(f64::total_cmp);
    let form = MaskForm::AbsDiff {
        op: CmpKind::Lt,
        c: 0.5,
        key_is_lhs: true,
    };
    let mut group = c.benchmark_group("residual");
    group.throughput(Throughput::Elements(keys.len() as u64));
    let mut out = Vec::new();
    group.bench_function("band_mask_dispatch", |b| {
        b.iter(|| {
            band_mask(black_box(&keys), black_box(21.0), form, &mut out);
            black_box(&out);
        })
    });
    group.bench_function("band_mask_scalar", |b| {
        b.iter(|| {
            band_mask_scalar(black_box(&keys), black_box(21.0), form, &mut out);
            black_box(&out);
        })
    });
    group.finish();
}

fn bench_quadtree(c: &mut Criterion) {
    let space = zspace();
    let shape = TreeShape::new(space.level_schedule(), 2);
    let mut group = c.benchmark_group("quadtree");
    for n in [50usize, 500, 1500] {
        let set = PointSet::from_points(
            point_population(n, 7)
                .into_iter()
                .map(|(z, f)| Point { z, flags: f }),
        );
        let other = PointSet::from_points(
            point_population(n, 8)
                .into_iter()
                .map(|(z, f)| Point { z, flags: f }),
        );
        let encoded = encode(&set, &shape);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("encode", n), &set, |b, s| {
            b.iter(|| encode(black_box(s), &shape))
        });
        group.bench_with_input(BenchmarkId::new("decode", n), &encoded, |b, e| {
            b.iter(|| decode(black_box(e), &shape).expect("valid"))
        });
        group.bench_with_input(
            BenchmarkId::new("union", n),
            &(&set, &other),
            |b, (s, o)| b.iter(|| s.union(black_box(o))),
        );
        group.bench_with_input(
            BenchmarkId::new("intersect", n),
            &(&set, &other),
            |b, (s, o)| b.iter(|| s.intersect(black_box(o))),
        );
    }
    group.finish();
}

fn bench_compression(c: &mut Criterion) {
    // A raw join-attribute stream like the §VI-B experiment compresses.
    let raw: Vec<u8> = point_population(1500, 3)
        .iter()
        .flat_map(|(z, f)| {
            let mut v = z.to_le_bytes()[..6].to_vec();
            v.push(f.0);
            v
        })
        .collect();
    let mut group = c.benchmark_group("compression");
    group.throughput(Throughput::Bytes(raw.len() as u64));
    group.bench_function("zlib-like/compress", |b| {
        b.iter(|| Lz77Huffman.compress(black_box(&raw)))
    });
    group.bench_function("bzip2-like/compress", |b| {
        b.iter(|| Bwt.compress(black_box(&raw)))
    });
    let z = Lz77Huffman.compress(&raw);
    let bz = Bwt.compress(&raw);
    group.bench_function("zlib-like/decompress", |b| {
        b.iter(|| Lz77Huffman.decompress(black_box(&z)).expect("valid"))
    });
    group.bench_function("bzip2-like/decompress", |b| {
        b.iter(|| Bwt.decompress(black_box(&bz)).expect("valid"))
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    const Q2: &str = "SELECT |A.hum - B.hum|, |A.pres - B.pres| \
                      FROM Sensors A, Sensors B \
                      WHERE |A.temp - B.temp| < 0.3 \
                      AND distance(A.x, A.y, B.x, B.y) > 100 ONCE";
    c.bench_function("query/parse_q2", |b| {
        b.iter(|| parse(black_box(Q2)).expect("valid"))
    });
    let schema = Schema::new(
        "Sensors",
        vec![
            Attribute::new("x", AttrType::Meters),
            Attribute::new("y", AttrType::Meters),
            Attribute::new("temp", AttrType::Celsius),
            Attribute::new("hum", AttrType::Percent),
            Attribute::new("pres", AttrType::Hectopascal),
        ],
    );
    let cq = CompiledQuery::compile(&parse(Q2).expect("valid"), &[schema.clone(), schema])
        .expect("compiles");
    let a = [100.0, 200.0, 21.5, 40.0, 1013.0];
    let b_ = [400.0, 500.0, 21.6, 44.0, 1014.0];
    c.bench_function("query/eval_join_pair", |b| {
        b.iter(|| {
            let env = |rel: usize, attr: usize| if rel == 0 { a[attr] } else { b_[attr] };
            cq.eval_join(black_box(&env))
        })
    });
    c.bench_function("query/interval_pair", |b| {
        b.iter(|| {
            let env = |rel: usize, attr: usize| {
                let v = if rel == 0 { a[attr] } else { b_[attr] };
                Interval::new(v, v + 1.0)
            };
            cq.possibly_joins(black_box(&env))
        })
    });
}

criterion_group!(
    benches,
    bench_zorder,
    bench_residual,
    bench_quadtree,
    bench_compression,
    bench_query
);
criterion_main!(benches);
