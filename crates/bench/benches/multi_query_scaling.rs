//! Multi-query amortization: the byte cost of ONE shared
//! Join-Attribute-Collection wave serving N = 1 / 2 / 4 / 8 concurrent
//! band-join queries, against the sum of the N solo collections it
//! replaces, plus the base-station time per shared epoch.
//!
//! The workload is the amortization best case the scheduler is built for: a
//! same-template query family (band joins over temperature with different
//! constants), so every query quantizes over the same space and the shared
//! wave carries one union encoding per link plus per-query annotations. The
//! derived `shared_over_solo_sum` map in `BENCH_engine.json` is
//! shared-collection-bytes / sum-of-solo-collection-bytes per group size —
//! the acceptance gate reads the N=4 entry (must be ≤ 0.5).

use criterion::{black_box, BenchmarkId, Criterion};
use sensjoin_bench::benchjson;
use sensjoin_core::{
    JoinMethod, QueryGroup, SensJoin, SensJoinConfig, SensorNetwork, SensorNetworkBuilder,
    PHASE_COLLECTION,
};
use sensjoin_field::{Area, Placement};
use sensjoin_query::{parse, CompiledQuery};
use std::time::Instant;

const GROUP_SIZES: [usize; 4] = [1, 2, 4, 8];
const NODES: usize = 150;

fn network() -> SensorNetwork {
    SensorNetworkBuilder::new()
        .area(Area::new(400.0, 400.0))
        .placement(Placement::UniformRandom { n: NODES })
        .seed(3)
        .build()
        .unwrap()
}

/// The query family: band joins over temperature, constants spread so the
/// filters differ while the collected join-attribute cells coincide.
fn family(snet: &SensorNetwork, n: usize) -> Vec<CompiledQuery> {
    (0..n)
        .map(|i| {
            let sql = format!(
                "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                 WHERE A.temp - B.temp > {} SAMPLE PERIOD 30",
                1.0 + 0.2 * i as f64
            );
            snet.compile(&parse(&sql).unwrap()).unwrap()
        })
        .collect()
}

fn main() {
    let mut criterion = Criterion::default();
    let mut snet = network();
    let queries = family(&snet, *GROUP_SIZES.iter().max().unwrap());

    // Byte accounting (deterministic, outside timing): one shared epoch per
    // group size vs the N solo collections on the same snapshot.
    let mut shared_bytes = Vec::new();
    let mut solo_sums = Vec::new();
    for &n in &GROUP_SIZES {
        let mut group = QueryGroup::new(SensJoinConfig::default());
        for q in &queries[..n] {
            group.register(&snet, q.clone(), 1);
        }
        let report = group.execute_epoch(&mut snet).unwrap();
        shared_bytes.push(report.shared_collection_bytes());
        let solo: u64 = queries[..n]
            .iter()
            .map(|q| {
                SensJoin::default()
                    .execute(&mut snet, q)
                    .unwrap()
                    .stats
                    .phase(PHASE_COLLECTION)
                    .tx_bytes
            })
            .sum();
        solo_sums.push(solo);
    }

    // Timing: one steady-state shared epoch (engines warm) per group size.
    {
        let mut bg = criterion.benchmark_group("multi_query_scaling");
        for &n in &GROUP_SIZES {
            bg.bench_with_input(BenchmarkId::new("group_epoch", n), &n, |b, _| {
                b.iter_custom(|iters| {
                    let mut group = QueryGroup::new(SensJoinConfig::default());
                    for q in &queries[..n] {
                        group.register(&snet, q.clone(), 1);
                    }
                    group.execute_epoch(&mut snet).unwrap(); // warm-up epoch
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(group.execute_epoch(&mut snet).unwrap());
                    }
                    start.elapsed()
                })
            });
        }
        bg.finish();
    }

    let fmt_map = |vals: &[String]| format!("{{\n{}\n  }}", vals.join(",\n"));
    let mut shared_lines = Vec::new();
    let mut solo_lines = Vec::new();
    let mut ratio_lines = Vec::new();
    for (i, &n) in GROUP_SIZES.iter().enumerate() {
        let ratio = shared_bytes[i] as f64 / solo_sums[i] as f64;
        println!(
            "multi_query_scaling: N={n} → shared {} B vs solo sum {} B (ratio {ratio:.3})",
            shared_bytes[i], solo_sums[i]
        );
        shared_lines.push(format!("    \"{n}\": {}", shared_bytes[i]));
        solo_lines.push(format!("    \"{n}\": {}", solo_sums[i]));
        ratio_lines.push(format!("    \"{n}\": {ratio:.3}"));
    }
    let results = criterion.results().to_vec();
    let extras = [
        ("nodes", format!("{NODES}")),
        ("shared_collection_bytes", fmt_map(&shared_lines)),
        ("solo_collection_bytes_sum", fmt_map(&solo_lines)),
        ("shared_over_solo_sum", fmt_map(&ratio_lines)),
    ];
    benchjson::merge_section(
        "multi_query_scaling",
        &benchjson::section_value(&results, &extras),
    );
}
