//! Whole-protocol benchmarks: the simulation throughput of a complete query
//! execution (external join and SENS-Join) and of the base station's
//! conservative pre-join. These bound how long the figure sweeps take and
//! double as regression guards for the simulator's hot paths.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sensjoin_bench::paper_network;
use sensjoin_core::workload::RangeQueryFamily;
use sensjoin_core::{ContinuousSensJoin, ExternalJoin, JoinMethod, MediatedJoin, SensJoin};
use sensjoin_query::parse;

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    group.sample_size(20);
    for n in [300usize, 1500] {
        let mut snet = paper_network(n, 11);
        let cal = RangeQueryFamily::ratio_33().calibrate(&snet, 0.05);
        let cq = snet
            .compile(&parse(&cal.sql).expect("valid"))
            .expect("compiles");
        group.bench_with_input(BenchmarkId::new("external", n), &n, |b, _| {
            b.iter(|| {
                ExternalJoin
                    .execute(black_box(&mut snet), &cq)
                    .expect("runs")
            })
        });
        let mut snet2 = paper_network(n, 11);
        group.bench_with_input(BenchmarkId::new("sens-join", n), &n, |b, _| {
            b.iter(|| {
                SensJoin::default()
                    .execute(black_box(&mut snet2), &cq)
                    .expect("runs")
            })
        });
    }
    group.finish();
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("variants");
    group.sample_size(20);
    let n = 300usize;
    let mut snet = paper_network(n, 13);
    let cal = RangeQueryFamily::ratio_33().calibrate(&snet, 0.05);
    let cq = snet
        .compile(&parse(&cal.sql).expect("valid"))
        .expect("compiles");
    group.bench_function("mediated/300", |b| {
        b.iter(|| {
            MediatedJoin
                .execute(black_box(&mut snet), &cq)
                .expect("runs")
        })
    });
    // Warm continuous round on an unchanged snapshot (the steady state).
    let mut cont = ContinuousSensJoin::new();
    cont.execute_round(&mut snet, &cq).expect("cold round");
    group.bench_function("continuous-warm/300", |b| {
        b.iter(|| cont.execute_round(black_box(&mut snet), &cq).expect("runs"))
    });
    group.finish();
}

fn bench_calibration(c: &mut Criterion) {
    let snet = paper_network(300, 5);
    c.bench_function("workload/calibrate_300", |b| {
        b.iter(|| RangeQueryFamily::ratio_33().calibrate(black_box(&snet), 0.05))
    });
}

fn bench_network_build(c: &mut Criterion) {
    c.bench_function("network/build_1500", |b| {
        b.iter(|| paper_network(black_box(1500), 9))
    });
}

criterion_group!(
    benches,
    bench_protocols,
    bench_variants,
    bench_calibration,
    bench_network_build
);
criterion_main!(benches);
