//! Durability cost: what checkpointing adds to a steady-state continuous
//! round, and what recovery costs relative to cold re-execution.
//!
//! Workload: a continuous band join over `SENSJOIN_N` (default 1500)
//! nodes. The checkpointed run snapshots the full engine + network state
//! and appends one WAL digest record every round — the worst-case cadence
//! (`--checkpoint-every 1`).
//!
//! Acceptance gates (asserted here, recorded in `BENCH_engine.json`):
//!
//! * steady-state overhead: checkpointing every round costs ≤ 10 % of the
//!   plain per-round epoch cost;
//! * recovery: restoring the newest snapshot and replaying the WAL suffix
//!   costs ≤ 0.3× re-executing the crashed run from a cold start.

use criterion::{black_box, BenchmarkId, Criterion};
use sensjoin_bench::benchjson;
use sensjoin_core::persist::{self, CheckpointStore, Reader, Writer};
use sensjoin_core::{ContinuousSensJoin, SensorNetwork, SensorNetworkBuilder};
use sensjoin_field::{presets, Area, FieldSpec, Placement};
use sensjoin_query::{parse, CompiledQuery};
use std::time::{Duration, Instant};

const SQL: &str = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                   WHERE A.temp - B.temp > 4.0 SAMPLE PERIOD 30";
const SEED: u64 = 11;
const MEASURED_ROUNDS: u64 = 4;
const CRASHED_ROUNDS: u64 = 9;
const EVERY: u64 = 2;
const REPS: usize = 2;

fn nodes() -> usize {
    std::env::var("SENSJOIN_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500)
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sensjoin-recovery-bench-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build(n: usize) -> (SensorNetwork, CompiledQuery, Vec<FieldSpec>) {
    let specs = presets::indoor_climate();
    let snet = SensorNetworkBuilder::new()
        .area(Area::new(1000.0, 1000.0))
        .placement(Placement::UniformRandom { n })
        .fields(specs.clone())
        .seed(SEED)
        .build()
        .unwrap();
    let cq = snet.compile(&parse(SQL).unwrap()).unwrap();
    (snet, cq, specs)
}

fn round(
    snet: &mut SensorNetwork,
    cont: &mut ContinuousSensJoin,
    cq: &CompiledQuery,
    specs: &[FieldSpec],
    r: u64,
) {
    if r > 0 {
        snet.resample(specs, SEED.wrapping_add(r));
    }
    black_box(cont.execute_round(snet, cq).unwrap());
}

fn checkpoint(
    store: &mut CheckpointStore,
    snet: &SensorNetwork,
    cont: &ContinuousSensJoin,
    r: u64,
) {
    let mut w = Writer::new();
    w.put_u64(r);
    w.put_u64(0x5ca1ab1e); // digest stand-in; cost is in the snapshot
    store.append_wal(&w.into_bytes()).unwrap();
    let mut w = Writer::new();
    cont.encode_state(&mut w);
    persist::put_net_snapshot(&mut w, &snet.net().export_state());
    store.save_snapshot(r + 1, &w.into_bytes()).unwrap();
}

fn main() {
    let n = nodes();
    let mut criterion = Criterion::default();

    // Steady-state overhead: MEASURED_ROUNDS rounds after a warm-up
    // round, plain vs checkpointing every round, best-of-REPS.
    let mut plain_t = Duration::MAX;
    let mut ckpt_t = Duration::MAX;
    for _ in 0..REPS {
        let (mut snet, cq, specs) = build(n);
        let mut cont = ContinuousSensJoin::new();
        round(&mut snet, &mut cont, &cq, &specs, 0);
        let t0 = Instant::now();
        for r in 1..=MEASURED_ROUNDS {
            round(&mut snet, &mut cont, &cq, &specs, r);
        }
        plain_t = plain_t.min(t0.elapsed());

        let dir = tmpdir("overhead");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let (mut snet, cq, specs) = build(n);
        let mut cont = ContinuousSensJoin::new();
        round(&mut snet, &mut cont, &cq, &specs, 0);
        let t0 = Instant::now();
        for r in 1..=MEASURED_ROUNDS {
            round(&mut snet, &mut cont, &cq, &specs, r);
            checkpoint(&mut store, &snet, &cont, r);
        }
        ckpt_t = ckpt_t.min(t0.elapsed());
        let _ = std::fs::remove_dir_all(&dir);
    }
    let overhead = (ckpt_t.as_secs_f64() - plain_t.as_secs_f64()) / plain_t.as_secs_f64();

    // Crashed run: CRASHED_ROUNDS rounds, checkpoint every EVERY rounds,
    // then the process "dies". The newest snapshot covers all but the last
    // round; recovery restores it and replays the WAL suffix.
    let dir = tmpdir("recover");
    {
        let mut store = CheckpointStore::open(&dir).unwrap();
        let (mut snet, cq, specs) = build(n);
        let mut cont = ContinuousSensJoin::new();
        for r in 0..CRASHED_ROUNDS {
            round(&mut snet, &mut cont, &cq, &specs, r);
            let mut w = Writer::new();
            w.put_u64(r);
            w.put_u64(0x5ca1ab1e);
            store.append_wal(&w.into_bytes()).unwrap();
            if (r + 1) % EVERY == 0 {
                let mut w = Writer::new();
                cont.encode_state(&mut w);
                persist::put_net_snapshot(&mut w, &snet.net().export_state());
                store.save_snapshot(r + 1, &w.into_bytes()).unwrap();
            }
        }
    }

    // Recovery: restore + replay to the crashed run's last completed
    // round. Repeatable — replayed rounds are already in the WAL, so
    // nothing is appended.
    let recover_once = || {
        let store = CheckpointStore::open(&dir).unwrap();
        let rec = store.recover().unwrap();
        let (seq, payload) = rec.snapshot.as_ref().expect("snapshot durable");
        let (mut snet, cq, specs) = build(n);
        let mut cont = ContinuousSensJoin::new();
        let mut r = Reader::new(payload);
        cont.restore_state(&mut r, &cq).unwrap();
        let snap = persist::get_net_snapshot(&mut r).unwrap();
        snet.net_mut().restore_state(&snap);
        r.expect_end().unwrap();
        for r in *seq..CRASHED_ROUNDS {
            round(&mut snet, &mut cont, &cq, &specs, r);
        }
        black_box((snet, cont));
    };
    let cold_once = || {
        let (mut snet, cq, specs) = build(n);
        let mut cont = ContinuousSensJoin::new();
        for r in 0..CRASHED_ROUNDS {
            round(&mut snet, &mut cont, &cq, &specs, r);
        }
        black_box((snet, cont));
    };
    let mut recover_t = Duration::MAX;
    let mut cold_t = Duration::MAX;
    for _ in 0..REPS {
        let t0 = Instant::now();
        recover_once();
        recover_t = recover_t.min(t0.elapsed());
        let t0 = Instant::now();
        cold_once();
        cold_t = cold_t.min(t0.elapsed());
    }
    let ratio = recover_t.as_secs_f64() / cold_t.as_secs_f64();

    // Gates.
    assert!(
        overhead <= 0.10,
        "gate violated: steady-state checkpoint overhead {:.1} % > 10 % \
         ({:.1} ms/round plain vs {:.1} ms/round checkpointed)",
        overhead * 100.0,
        plain_t.as_secs_f64() * 1e3 / MEASURED_ROUNDS as f64,
        ckpt_t.as_secs_f64() * 1e3 / MEASURED_ROUNDS as f64
    );
    assert!(
        ratio <= 0.3,
        "gate violated: recovery {:.2}× cold re-execution > 0.3× \
         ({:.1} ms recover vs {:.1} ms cold)",
        ratio,
        recover_t.as_secs_f64() * 1e3,
        cold_t.as_secs_f64() * 1e3
    );

    {
        let mut bg = criterion.benchmark_group("recovery_overhead");
        bg.bench_with_input(BenchmarkId::new("round_plain", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let (mut snet, cq, specs) = build(n);
                let mut cont = ContinuousSensJoin::new();
                round(&mut snet, &mut cont, &cq, &specs, 0);
                let start = Instant::now();
                for i in 0..iters {
                    round(&mut snet, &mut cont, &cq, &specs, i + 1);
                }
                start.elapsed()
            })
        });
        bg.bench_with_input(BenchmarkId::new("round_checkpointed", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let dir = tmpdir("crit");
                let mut store = CheckpointStore::open(&dir).unwrap();
                let (mut snet, cq, specs) = build(n);
                let mut cont = ContinuousSensJoin::new();
                round(&mut snet, &mut cont, &cq, &specs, 0);
                let start = Instant::now();
                for i in 0..iters {
                    round(&mut snet, &mut cont, &cq, &specs, i + 1);
                    checkpoint(&mut store, &snet, &cont, i + 1);
                }
                let t = start.elapsed();
                drop(store);
                let _ = std::fs::remove_dir_all(&dir);
                t
            })
        });
        bg.bench_with_input(BenchmarkId::new("recover", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    recover_once();
                }
                start.elapsed()
            })
        });
        bg.finish();
    }
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "recovery_overhead: checkpoint-every-round overhead {:.1} % \
         ({:.1} → {:.1} ms/round at n = {n})",
        overhead * 100.0,
        plain_t.as_secs_f64() * 1e3 / MEASURED_ROUNDS as f64,
        ckpt_t.as_secs_f64() * 1e3 / MEASURED_ROUNDS as f64
    );
    println!(
        "recovery_overhead: recover {:.1} ms vs cold re-execution {:.1} ms \
         → {ratio:.2}× ({CRASHED_ROUNDS} rounds crashed, snapshot every {EVERY})",
        recover_t.as_secs_f64() * 1e3,
        cold_t.as_secs_f64() * 1e3
    );

    let results = criterion.results().to_vec();
    let extras = [
        ("nodes", format!("{n}")),
        ("measured_rounds", format!("{MEASURED_ROUNDS}")),
        ("crashed_rounds", format!("{CRASHED_ROUNDS}")),
        ("checkpoint_every", format!("{EVERY}")),
        ("overhead_fraction", format!("{overhead:.4}")),
        (
            "recover_ms",
            format!("{:.2}", recover_t.as_secs_f64() * 1e3),
        ),
        ("cold_ms", format!("{:.2}", cold_t.as_secs_f64() * 1e3)),
        ("recovery_ratio", format!("{ratio:.3}")),
        (
            "gate",
            "\"checkpoint-every-round overhead <= 10% of epoch cost, \
             recovery <= 0.3x cold re-execution\""
                .to_string(),
        ),
    ];
    benchjson::merge_section(
        "recovery_overhead",
        &benchjson::section_value(&results, &extras),
    );
}
