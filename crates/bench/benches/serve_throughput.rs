//! Serving-layer throughput: sustained multi-tenant query-epochs per
//! second and the admission-cost saving of plan caching.
//!
//! Workload: 520 tenants submit continuous band-join queries against 4
//! deployments (round-robin, 130 per deployment; per-deployment capacity
//! is 2 groups × 64, so 512 are admitted and 8 draw structured
//! `DeploymentFull` rejections). Templates come from a 16-template pool
//! with 50 % skew: half the tenants ask the hottest template, the rest
//! spread uniformly over the other 15 — the PanJoin-style regime plan
//! caching is built for.
//!
//! Acceptance gates (asserted here, recorded in `BENCH_engine.json`):
//!
//! * ≥ 500 tenants admitted across ≥ 4 deployments, and the p99 simulated
//!   epoch latency over the measured ticks stays within the 30 s epoch
//!   period (the serving deadline);
//! * admitting the same 520 submissions with the plan cache disabled
//!   costs ≥ 2× the cache-enabled admission wall time.

use criterion::{black_box, BenchmarkId, Criterion};
use sensjoin_bench::benchjson;
use sensjoin_serve::{DeploymentSpec, ServeConfig, Server, Submission, TenantId};
use std::time::Instant;

const NODES: usize = 250;
const DEPLOYMENTS: usize = 4;
const TENANTS: u64 = 520;
const MAX_GROUPS: usize = 2;
const TEMPLATE_POOL: usize = 16;
const SKEW: f64 = 0.5;
const PERIOD_US: u64 = 30_000_000;
const MEASURED_TICKS: u64 = 3;
const ADMISSION_REPS: usize = 3;

fn config(plan_cache: bool) -> ServeConfig {
    ServeConfig {
        max_groups: MAX_GROUPS,
        queue_depth: TENANTS as usize,
        plan_cache,
        period_us: PERIOD_US,
        ..ServeConfig::default()
    }
}

fn server(plan_cache: bool) -> Server {
    let mut server = Server::new(config(plan_cache));
    for d in 0..DEPLOYMENTS {
        server
            .add_deployment(&DeploymentSpec::new(
                format!("dep{d}"),
                NODES,
                11 + d as u64,
            ))
            .unwrap();
    }
    server
}

/// Template of tenant `i`: index 0 with probability `SKEW` (by fractional
/// accumulation, so any prefix holds the skew), else uniform over the
/// rest of the pool. Keyed on the round-robin round `i / DEPLOYMENTS`, so
/// the template mix is identical on every deployment instead of
/// correlating with the `i % DEPLOYMENTS` assignment.
fn template(i: u64) -> usize {
    let r = i / DEPLOYMENTS as u64;
    let hot = ((r + 1) as f64 * SKEW).floor() > (r as f64 * SKEW).floor();
    if hot {
        0
    } else {
        1 + (r as usize) % (TEMPLATE_POOL - 1)
    }
}

fn submit_all(server: &mut Server) {
    for i in 0..TENANTS {
        let t = template(i);
        let sql = format!(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > {:.2} SAMPLE PERIOD 30",
            2.0 + 0.25 * t as f64
        );
        let immediate = server.submit(Submission {
            tenant: TenantId(i),
            deployment: format!("dep{}", i as usize % DEPLOYMENTS),
            sql,
            every: 1,
        });
        assert!(immediate.is_none(), "queue sized for the full tenant set");
    }
}

fn main() {
    let mut criterion = Criterion::default();

    // Admission cost, cache on vs off: same 520 submissions, fresh server
    // per repetition, best-of to shed scheduler noise.
    let mut on_us = u128::MAX;
    let mut off_us = u128::MAX;
    let mut cache_hits = 0;
    let mut cache_misses = 0;
    for _ in 0..ADMISSION_REPS {
        let mut s = server(true);
        submit_all(&mut s);
        let t0 = Instant::now();
        black_box(s.admit());
        on_us = on_us.min(t0.elapsed().as_micros());
        cache_hits = s.metrics().cache_hits;
        cache_misses = s.metrics().cache_misses;

        let mut s = server(false);
        submit_all(&mut s);
        let t0 = Instant::now();
        black_box(s.admit());
        off_us = off_us.min(t0.elapsed().as_micros());
    }
    let speedup = off_us as f64 / on_us.max(1) as f64;

    // The serving run the gates read: admit everyone, then measure ticks.
    let mut s = server(true);
    submit_all(&mut s);
    let t0 = Instant::now();
    let mut query_epochs = 0u64;
    for _ in 0..MEASURED_TICKS {
        let report = s.tick().unwrap();
        query_epochs += report.epochs.len() as u64;
    }
    let serve_elapsed = t0.elapsed();
    let m = s.metrics().clone();
    let admitted = m.totals.admitted;
    let rejected_full = m.totals.rejected_full;
    let p99_us = m.epoch_latency_us().p99();
    let qps = query_epochs as f64 / serve_elapsed.as_secs_f64();

    // Gates.
    assert!(s.num_deployments() >= 4, "gate needs ≥ 4 deployments");
    assert!(
        admitted >= 500,
        "gate violated: {admitted} < 500 admitted continuous queries"
    );
    assert!(
        p99_us <= PERIOD_US,
        "gate violated: p99 epoch latency {p99_us} µs exceeds the {PERIOD_US} µs epoch period"
    );
    assert!(
        speedup >= 2.0,
        "gate violated: plan-cache admission speedup {speedup:.2}× < 2× at {SKEW} skew"
    );

    // Timing: one full serving tick (resample + every group's epoch on
    // every deployment) at the admitted steady state.
    {
        let mut bg = criterion.benchmark_group("serve_throughput");
        bg.bench_with_input(
            BenchmarkId::new("tick", format!("{admitted}q_{DEPLOYMENTS}dep")),
            &admitted,
            |b, _| {
                b.iter_custom(|iters| {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(s.tick().unwrap());
                    }
                    start.elapsed()
                })
            },
        );
        bg.finish();
    }

    println!(
        "serve_throughput: {admitted} admitted ({rejected_full} full-rejections) across \
         {DEPLOYMENTS} deployments; {qps:.0} query-epochs/s wall; p99 epoch latency \
         {:.1} ms (period {:.0} s)",
        p99_us as f64 / 1000.0,
        PERIOD_US as f64 / 1e6
    );
    println!(
        "serve_throughput: admission {on_us} µs cached vs {off_us} µs uncached → \
         {speedup:.2}× ({cache_hits} hits / {cache_misses} builds)"
    );

    let results = criterion.results().to_vec();
    let extras = [
        ("deployments", format!("{DEPLOYMENTS}")),
        ("nodes_per_deployment", format!("{NODES}")),
        ("tenants_submitted", format!("{TENANTS}")),
        ("admitted", format!("{admitted}")),
        ("rejected_deployment_full", format!("{rejected_full}")),
        ("template_pool", format!("{TEMPLATE_POOL}")),
        ("template_skew", format!("{SKEW}")),
        ("query_epochs_per_sec", format!("{qps:.1}")),
        ("p99_epoch_latency_us", format!("{p99_us}")),
        ("epoch_period_us", format!("{PERIOD_US}")),
        ("admission_us_cached", format!("{on_us}")),
        ("admission_us_uncached", format!("{off_us}")),
        ("admission_speedup", format!("{speedup:.2}")),
        ("cache_hit_rate", format!("{:.3}", m.cache_hit_rate())),
        (
            "gate",
            "\"admitted >= 500 across >= 4 deployments, p99 epoch latency <= period, \
             admission_speedup >= 2.0 at 50% template skew\""
                .to_string(),
        ),
    ];
    benchjson::merge_section(
        "serve_throughput",
        &benchjson::section_value(&results, &extras),
    );
}
