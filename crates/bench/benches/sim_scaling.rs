//! Simulator scale-out: CSR topology / routing-tree construction at
//! 10⁵–10⁶ nodes and whole-protocol throughput of the synchronized wave
//! engine on networks far beyond the paper's 1500-node setting.
//!
//! A *node-event* is one node's visit in one synchronized wave; a one-shot
//! SENS-Join is three waves (collection up, filter down, final up), so one
//! execution over `n` nodes is `3n` node-events. The ns/node-event figure
//! is the simulator's hot-path cost per visit — flat SoA state, CSR
//! adjacency, wave scratch proportional to the participant count — and is
//! what keeps 10⁵-node sweeps interactive.
//!
//! Acceptance gates (asserted here, recorded in `BENCH_engine.json`):
//! * the 100 000-node one-shot band join completes in < 10 s,
//! * ns per node-event at 100 000 nodes stays ≤ 10 000,
//! * peak RSS after the 1 000 000-node topology + tree build ≤ 1 GiB.

use criterion::{black_box, BenchmarkId, Criterion};
use sensjoin_bench::{benchjson, paper_network, peak_rss_mib};
use sensjoin_core::{set_wave_mode, JoinMethod, SensJoin, WaveMode};
use sensjoin_field::{Area, Placement};
use sensjoin_query::parse;
use sensjoin_sim::{NodeId, RoutingTree, Topology};

/// Paper-default radio range (m); density is held constant as `n` grows.
const RANGE_M: f64 = 50.0;

/// Band threshold (°C) for the scale-out query: wide enough to produce a
/// non-trivial result (~10⁴ contributors at 100 k nodes), narrow enough
/// that the base station's exact join stays far from the O(n²) regime.
const BAND_THRESHOLD: f64 = 12.0;

const ONE_SHOT_SIZES: [usize; 3] = [10_000, 30_000, 100_000];

const ONE_SHOT_GATE_S: f64 = 10.0;
const NODE_EVENT_GATE_NS: f64 = 10_000.0;
const TREE_RSS_GATE_MIB: f64 = 1024.0;

fn band_sql() -> String {
    format!(
        "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
         WHERE A.temp - B.temp > {BAND_THRESHOLD} ONCE"
    )
}

/// Topology (bucketed-grid neighbor search, CSR adjacency) plus routing
/// tree (BFS, flat parent/depth/descendants arrays, CSR children) builds.
fn bench_tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scaling/tree_build");
    group.sample_size(10);
    for n in [100_000usize, 1_000_000] {
        let area = Area::for_constant_density(n);
        let positions = Placement::UniformRandom { n }.generate(area, 7);
        group.bench_with_input(BenchmarkId::new("topology+tree", n), &n, |b, _| {
            b.iter(|| {
                let topo = Topology::new(black_box(positions.clone()), area, RANGE_M);
                RoutingTree::build(&topo, NodeId(0))
            })
        });
    }
    group.finish();
}

/// Whole one-shot SENS-Join executions; `serial` pins the wave engine to
/// the cached serial order, `parallel` forces the subtree-wave fan-out
/// (what `Auto` picks at these sizes).
fn bench_one_shot(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scaling/one_shot");
    group.sample_size(10);
    for n in ONE_SHOT_SIZES {
        let mut snet = paper_network(n, 7);
        let cq = snet
            .compile(&parse(&band_sql()).expect("band SQL parses"))
            .expect("band SQL compiles");
        for (label, mode) in [
            ("serial", WaveMode::ForceSerial),
            ("parallel", WaveMode::ForceParallel),
        ] {
            set_wave_mode(mode);
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    SensJoin::default()
                        .execute(black_box(&mut snet), &cq)
                        .expect("band join runs")
                })
            });
            set_wave_mode(WaveMode::Auto);
        }
    }
    group.finish();
}

/// Looks up a recorded mean duration (ns) by full benchmark name.
fn ns_of(results: &[(String, std::time::Duration)], name: &str) -> f64 {
    results
        .iter()
        .find(|(k, _)| k == name)
        .unwrap_or_else(|| panic!("bench {name} was not run"))
        .1
        .as_nanos() as f64
}

fn main() {
    let mut criterion = Criterion::default();
    bench_tree_build(&mut criterion);
    // Peak RSS sampled here, before the one-shot runs allocate their
    // (intentionally larger) result sets: VmHWM is a process-wide high
    // water mark, so the order of the groups matters.
    let tree_rss_mib = peak_rss_mib();
    bench_one_shot(&mut criterion);

    let results = criterion.results();
    let mut events = Vec::new();
    for n in ONE_SHOT_SIZES {
        for label in ["serial", "parallel"] {
            let ns = ns_of(results, &format!("sim_scaling/one_shot/{label}/{n}"));
            events.push((format!("\"{label}/{n}\"",), ns / (3.0 * n as f64)));
        }
    }
    let par_100k_s = ns_of(results, "sim_scaling/one_shot/parallel/100000") / 1e9;
    let par_100k_ns_event = ns_of(results, "sim_scaling/one_shot/parallel/100000") / 300_000.0;
    let speedup_100k = ns_of(results, "sim_scaling/one_shot/serial/100000")
        / ns_of(results, "sim_scaling/one_shot/parallel/100000");

    assert!(
        par_100k_s < ONE_SHOT_GATE_S,
        "gate violated: 100k one-shot band join took {par_100k_s:.2} s >= {ONE_SHOT_GATE_S} s"
    );
    assert!(
        par_100k_ns_event <= NODE_EVENT_GATE_NS,
        "gate violated: {par_100k_ns_event:.0} ns/node-event at 100k > {NODE_EVENT_GATE_NS}"
    );
    if let Some(rss) = tree_rss_mib {
        assert!(
            rss <= TREE_RSS_GATE_MIB,
            "gate violated: peak RSS after 1M-node tree build is {rss:.0} MiB > {TREE_RSS_GATE_MIB}"
        );
    }

    let ns_per_event = format!(
        "{{{}}}",
        events
            .iter()
            .map(|(k, v)| format!("{k}: {v:.0}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let extras = [
        ("band_threshold", format!("{BAND_THRESHOLD}")),
        ("one_shot_100k_seconds", format!("{par_100k_s:.3}")),
        ("ns_per_node_event", ns_per_event),
        ("parallel_speedup_100k", format!("{speedup_100k:.2}")),
        (
            "tree_build_peak_rss_mib",
            tree_rss_mib.map_or("null".to_owned(), |r| format!("{r:.0}")),
        ),
        (
            "gate",
            format!(
                "\"one_shot parallel/100000 < {ONE_SHOT_GATE_S} s, \
                 <= {NODE_EVENT_GATE_NS} ns/node-event, \
                 1M tree build peak RSS <= {TREE_RSS_GATE_MIB} MiB\""
            ),
        ),
    ];
    benchjson::merge_section("sim_scaling", &benchjson::section_value(results, &extras));
}
