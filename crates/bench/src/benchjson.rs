//! Machine-readable benchmark output.
//!
//! The criterion shim has no `target/criterion` report tree, so harness-free
//! bench `main`s export their numbers here instead: each bench merges one
//! named top-level section into `BENCH_engine.json` at the repository root,
//! preserving the sections other benches wrote. The format is plain JSON —
//! `{"section": {"unit": "ns_per_iter", "benches": {...}, ...}, ...}` — and
//! both the writer and the (deliberately minimal) section scanner live here,
//! with no external dependencies.

use std::path::PathBuf;
use std::time::Duration;

/// Location of the merged benchmark report: the repository root.
pub fn bench_json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json")
}

/// Serializes shim results (`Criterion::results()`) as a `"benches"` object
/// mapping benchmark names to mean nanoseconds per iteration.
pub fn times_object(results: &[(String, Duration)]) -> String {
    let entries: Vec<String> = results
        .iter()
        .map(|(name, d)| format!("    {}: {}", quote(name), d.as_nanos()))
        .collect();
    if entries.is_empty() {
        "{}".to_owned()
    } else {
        format!("{{\n{}\n  }}", entries.join(",\n"))
    }
}

/// Builds a section value `{"unit": "ns_per_iter", "benches": {...}}` with
/// optional extra fields (`(key, raw-JSON-value)` pairs) appended — used for
/// derived numbers such as speedup ratios.
pub fn section_value(results: &[(String, Duration)], extras: &[(&str, String)]) -> String {
    let mut fields = vec![
        ("unit".to_owned(), "\"ns_per_iter\"".to_owned()),
        ("benches".to_owned(), times_object(results)),
    ];
    for (k, v) in extras {
        fields.push(((*k).to_owned(), v.clone()));
    }
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("  {}: {}", quote(k), v))
        .collect();
    format!("{{\n{}\n}}", body.join(",\n"))
}

/// Merges `section` into the report on disk, replacing any existing entry of
/// the same name and leaving the others untouched.
pub fn merge_section(section: &str, value_json: &str) {
    let path = bench_json_path();
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let merged = merge_into(&existing, section, value_json);
    std::fs::write(&path, merged).expect("write BENCH_engine.json");
    println!("wrote section {section:?} to {}", path.display());
}

/// Pure merge: parses the top-level sections of `existing` (empty or
/// malformed input starts a fresh report), replaces/appends `section`, and
/// re-serializes with sections in first-written order.
fn merge_into(existing: &str, section: &str, value_json: &str) -> String {
    let mut sections = scan_sections(existing).unwrap_or_default();
    match sections.iter_mut().find(|(k, _)| k == section) {
        Some((_, v)) => *v = value_json.to_owned(),
        None => sections.push((section.to_owned(), value_json.to_owned())),
    }
    let body: Vec<String> = sections
        .iter()
        .map(|(k, v)| format!("{}: {}", quote(k), v))
        .collect();
    format!("{{\n{}\n}}\n", body.join(",\n"))
}

/// Scans `{"key": <value>, ...}`, returning each top-level key with the raw
/// text of its value. Values are skipped by balanced-delimiter counting with
/// string-awareness; anything unexpected aborts the scan (`None`), which the
/// caller treats as an empty report.
fn scan_sections(text: &str) -> Option<Vec<(String, String)>> {
    let bytes = text.as_bytes();
    let mut i = skip_ws(bytes, 0);
    if i >= bytes.len() || bytes[i] != b'{' {
        return None;
    }
    i = skip_ws(bytes, i + 1);
    let mut out = Vec::new();
    while i < bytes.len() && bytes[i] != b'}' {
        let (key, next) = scan_string(bytes, i)?;
        i = skip_ws(bytes, next);
        if i >= bytes.len() || bytes[i] != b':' {
            return None;
        }
        i = skip_ws(bytes, i + 1);
        let start = i;
        i = skip_value(bytes, i)?;
        out.push((key, text[start..i].trim_end().to_owned()));
        i = skip_ws(bytes, i);
        if i < bytes.len() && bytes[i] == b',' {
            i = skip_ws(bytes, i + 1);
        }
    }
    (i < bytes.len()).then_some(out)
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Returns the decoded string starting at `i` (which must be `"`), and the
/// index just past the closing quote. Escapes are kept verbatim minus the
/// backslash for the two we emit (`\"` and `\\`).
fn scan_string(bytes: &[u8], i: usize) -> Option<(String, usize)> {
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    let mut s = String::new();
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'"' => return Some((s, j + 1)),
            b'\\' => {
                s.push(*bytes.get(j + 1)? as char);
                j += 2;
            }
            c => {
                s.push(c as char);
                j += 1;
            }
        }
    }
    None
}

/// Skips one JSON value (object, array, string, or scalar) starting at `i`.
fn skip_value(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i)? {
        b'"' => scan_string(bytes, i).map(|(_, j)| j),
        b'{' | b'[' => {
            let mut depth = 0usize;
            let mut j = i;
            while j < bytes.len() {
                match bytes[j] {
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(j + 1);
                        }
                    }
                    b'"' => {
                        j = scan_string(bytes, j)?.1;
                        continue;
                    }
                    _ => {}
                }
                j += 1;
            }
            None
        }
        _ => {
            let mut j = i;
            while j < bytes.len() && !matches!(bytes[j], b',' | b'}' | b']') {
                j += 1;
            }
            (j > i).then_some(j)
        }
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_starts_replaces_and_preserves() {
        let v1 = "{\n  \"a\": 1\n}";
        let first = merge_into("", "alpha", v1);
        assert!(first.contains("\"alpha\""));
        assert_eq!(scan_sections(&first).unwrap().len(), 1);

        let second = merge_into(&first, "beta", "{\"b\": [1, 2]}");
        let sections = scan_sections(&second).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].0, "alpha");
        assert_eq!(sections[1].1, "{\"b\": [1, 2]}");

        let third = merge_into(&second, "alpha", "{\"a\": 2}");
        let sections = scan_sections(&third).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].1, "{\"a\": 2}");
        assert_eq!(sections[1].0, "beta");
    }

    #[test]
    fn malformed_input_starts_fresh() {
        let merged = merge_into("not json", "s", "{}");
        assert_eq!(scan_sections(&merged).unwrap().len(), 1);
    }

    #[test]
    fn section_value_shape() {
        let results = vec![
            ("g/one".to_owned(), Duration::from_nanos(1500)),
            ("g/\"two\"".to_owned(), Duration::from_micros(2)),
        ];
        let v = section_value(&results, &[("speedup", "{\"1000\": 6.5}".to_owned())]);
        assert!(v.contains("\"ns_per_iter\""));
        assert!(v.contains("\"g/one\": 1500"));
        assert!(v.contains("\\\"two\\\""));
        assert!(v.contains("\"speedup\""));
        // The emitted value must itself survive a scan round-trip.
        let merged = merge_into("", "s", &v);
        assert_eq!(scan_sections(&merged).unwrap()[0].1, v);
    }

    #[test]
    fn scan_handles_nested_strings_with_braces() {
        let text = "{\"k\": {\"s\": \"}{\", \"n\": 3}, \"m\": true}";
        let sections = scan_sections(text).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].1, "{\"s\": \"}{\", \"n\": 3}");
        assert_eq!(sections[1].1, "true");
    }
}
