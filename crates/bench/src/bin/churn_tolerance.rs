//! Extension: node churn — localized tree self-healing vs the §IV-F
//! full-rebuild-and-re-execute recipe (DESIGN.md §4.9).
//!
//! ```sh
//! cargo run --release -p sensjoin-bench --bin churn_tolerance
//! ```
//! Set `SENSJOIN_N` to override the network size (default 1500).

fn main() {
    let n: usize = std::env::var("SENSJOIN_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500);
    let seed: u64 = std::env::var("SENSJOIN_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(sensjoin_bench::SEED);
    println!("{}", sensjoin_bench::experiments::churn_tolerance(n, seed));
}
