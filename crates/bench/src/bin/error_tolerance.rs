//! Extension: error tolerance under per-packet loss — hop-by-hop ARQ vs
//! the paper's §IV-F re-execution recipe (DESIGN.md §4.8).
//!
//! ```sh
//! cargo run --release -p sensjoin-bench --bin error_tolerance
//! ```
//! Set `SENSJOIN_N` to override the network size (default 1500).

fn main() {
    let n: usize = std::env::var("SENSJOIN_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500);
    let seed: u64 = std::env::var("SENSJOIN_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(sensjoin_bench::SEED);
    println!("{}", sensjoin_bench::experiments::error_tolerance(n, seed));
}
