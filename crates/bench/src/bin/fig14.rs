//! Reproduces Fig. 14: influence of the network size (constant density).
//!
//! ```sh
//! cargo run --release -p sensjoin-bench --bin fig14
//! ```
//! Set `SENSJOIN_SCALE` (0.0–1.0, default 1.0) to shrink the sweep sizes.

fn main() {
    let scale: f64 = std::env::var("SENSJOIN_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let sizes: Vec<usize> = [1000usize, 1500, 2000, 2500]
        .iter()
        .map(|&n| ((n as f64 * scale) as usize).max(50))
        .collect();
    println!(
        "{}",
        sensjoin_bench::experiments::fig14(&sizes, sensjoin_bench::SEED)
    );
}
