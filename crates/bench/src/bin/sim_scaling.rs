//! Extension: simulator scale-out — CSR construction cost and parallel
//! wave throughput beyond the paper's network sizes (DESIGN.md §4.10).
//!
//! ```sh
//! cargo run --release -p sensjoin-bench --bin sim_scaling
//! ```
//! Set `SENSJOIN_N` to override the size parameter (default 1500; the
//! sweep sizes scale with it, up to 667x for the tree build).

fn main() {
    let n: usize = std::env::var("SENSJOIN_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500);
    let seed: u64 = std::env::var("SENSJOIN_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(sensjoin_bench::SEED);
    println!("{}", sensjoin_bench::experiments::sim_scaling(n, seed));
}
