//! Seed robustness: headline metrics over independent topologies.
//!
//! ```sh
//! cargo run --release -p sensjoin-bench --bin variance
//! ```
//! Set `SENSJOIN_N` / `SENSJOIN_REPS` to override size and repetitions.

fn main() {
    let n: usize = std::env::var("SENSJOIN_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500);
    let reps: u64 = std::env::var("SENSJOIN_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    println!("{}", sensjoin_bench::experiments::variance(n, reps));
}
