//! One function per table/figure of the paper's evaluation (§VI), plus the
//! ablations called out in DESIGN.md. Each returns a Markdown section.

use crate::report::{pct, Report};
use crate::{paper_network, paper_network_with_radio, run, saving_pct};
use sensjoin_core::workload::RangeQueryFamily;
use sensjoin_core::{
    ExternalJoin, JoinMethod, Representation, SensJoin, SensJoinConfig, PHASE_COLLECTION,
    PHASE_FILTER, PHASE_FINAL,
};
use sensjoin_relation::NodeId;
use sensjoin_sim::RadioConfig;

/// The paper's default result fraction (§VI "The fraction of the nodes in
/// the result is 5%").
pub const DEFAULT_FRACTION: f64 = 0.05;

fn sens() -> SensJoin {
    SensJoin::default()
}

/// Fig. 10: overall transmissions vs fraction of nodes in the result, for
/// the 33 % and 60 % join-attribute ratios.
pub fn fig10(n: usize, seed: u64) -> String {
    let mut rep = Report::new("Fig. 10 — overall savings vs result fraction");
    rep.para(&format!(
        "Paper: savings up to 80 % (33 % join attrs) / two-thirds (60 %); \
         SENS-Join superior until 60–80 % of the nodes join. Network: {n} nodes."
    ));
    for (label, family) in [
        ("a) 33 % join attributes", RangeQueryFamily::ratio_33()),
        ("b) 60 % join attributes", RangeQueryFamily::ratio_60()),
    ] {
        let mut rows = Vec::new();
        let mut chart = Vec::new();
        for target in [0.01, 0.02, 0.05, 0.10, 0.20, 0.35, 0.50, 0.65, 0.80, 0.90] {
            let mut snet = paper_network(n, seed);
            let cal = family.calibrate(&snet, target);
            let ext = run(&mut snet, &ExternalJoin, &cal.sql);
            let sj = run(&mut snet, &sens(), &cal.sql);
            assert!(ext.result.same_result(&sj.result), "methods disagree");
            let saving = saving_pct(ext.stats.total_tx_packets(), sj.stats.total_tx_packets());
            rows.push(vec![
                pct(100.0 * cal.achieved_fraction),
                ext.stats.total_tx_packets().to_string(),
                sj.stats.total_tx_packets().to_string(),
                pct(saving),
            ]);
            chart.push((pct(100.0 * cal.achieved_fraction), saving.max(0.0)));
        }
        rep.para(&format!("**{label}**"));
        rep.table(
            &[
                "nodes in result",
                "external [pkts]",
                "SENS-Join [pkts]",
                "saving",
            ],
            &rows,
        );
        rep.bar_chart("saving [%] vs nodes in result", &chart);
    }
    rep.finish()
}

/// Fig. 11: per-node transmissions vs number of descendants in the routing
/// tree (the most-loaded-node story).
pub fn fig11(n: usize, seed: u64) -> String {
    let mut rep = Report::new("Fig. 11 — per-node savings vs descendants");
    rep.para(&format!(
        "Paper: the most loaded nodes are relieved by more than an order of \
         magnitude (33 %) / more than 75 % (60 %). Network: {n} nodes, 5 % \
         result fraction."
    ));
    for (label, family) in [
        ("a) 33 % join attributes", RangeQueryFamily::ratio_33()),
        ("b) 60 % join attributes", RangeQueryFamily::ratio_60()),
    ] {
        let mut snet = paper_network(n, seed);
        let cal = family.calibrate(&snet, DEFAULT_FRACTION);
        let ext = run(&mut snet, &ExternalJoin, &cal.sql);
        let sj = run(&mut snet, &sens(), &cal.sql);
        // Bucket nodes by descendant count (powers of two).
        let mut rows = Vec::new();
        let routing = snet.net().routing();
        let buckets: &[(u32, u32)] = &[
            (0, 0),
            (1, 3),
            (4, 15),
            (16, 63),
            (64, 255),
            (256, u32::MAX),
        ];
        for &(lo, hi) in buckets {
            let nodes: Vec<NodeId> = (0..snet.len() as u32)
                .map(NodeId)
                .filter(|&v| routing.depth(v).is_some())
                .filter(|&v| {
                    let d = routing.descendants(v);
                    d >= lo && d <= hi
                })
                .collect();
            if nodes.is_empty() {
                continue;
            }
            let avg = |o: &sensjoin_core::JoinOutcome| -> f64 {
                nodes
                    .iter()
                    .map(|&v| o.stats.node(v).tx_packets)
                    .sum::<u64>() as f64
                    / nodes.len() as f64
            };
            let (ea, sa) = (avg(&ext), avg(&sj));
            rows.push(vec![
                if hi == u32::MAX {
                    format!("≥{lo}")
                } else {
                    format!("{lo}–{hi}")
                },
                nodes.len().to_string(),
                format!("{ea:.2}"),
                format!("{sa:.2}"),
                if sa > 0.0 {
                    format!("{:.1}x", ea / sa)
                } else {
                    "—".to_owned()
                },
            ]);
        }
        let (_, ext_max) = ext.stats.most_loaded().expect("nodes exist");
        let (_, sj_max) = sj.stats.most_loaded().expect("nodes exist");
        rep.para(&format!(
            "**{label}** — most loaded node: external {ext_max} pkts, SENS-Join \
             {sj_max} pkts → **{:.1}x** relief",
            ext_max as f64 / sj_max.max(1) as f64
        ));
        rep.table(
            &[
                "descendants",
                "#nodes",
                "external avg [pkts]",
                "SENS-Join avg [pkts]",
                "relief",
            ],
            &rows,
        );
    }
    rep.finish()
}

/// Figs. 12/13: influence of the join-attributes-to-attributes-overall
/// ratio (3 join attrs over 3–5 overall; 1 join attr over 1–5 overall).
pub fn fig12_13(n: usize, seed: u64) -> String {
    let mut rep = Report::new("Figs. 12 & 13 — influence of the join-attribute ratio");
    rep.para(&format!(
        "Paper: savings grow as the ratio falls; even at 100 % join \
         attributes SENS-Join still saves (thanks to the quadtree). \
         Network: {n} nodes, 5 % result fraction."
    ));
    for (label, join_attrs, extras) in [
        (
            "Fig. 12 — 3 join attributes",
            vec!["temp", "hum", "pres"],
            vec!["light", "y"],
        ),
        (
            "Fig. 13 — 1 join attribute",
            vec!["temp"],
            vec!["hum", "pres", "light", "y"],
        ),
    ] {
        let mut rows = Vec::new();
        for extra_count in 0..=extras.len() {
            let family = RangeQueryFamily::new(
                join_attrs.iter().copied(),
                extras[..extra_count].iter().copied(),
            );
            let mut snet = paper_network(n, seed);
            let cal = family.calibrate(&snet, DEFAULT_FRACTION);
            let ext = run(&mut snet, &ExternalJoin, &cal.sql);
            let sj = run(&mut snet, &sens(), &cal.sql);
            assert!(ext.result.same_result(&sj.result));
            let overall = family.attrs_overall();
            rows.push(vec![
                format!(
                    "{}/{} = {:.0} %",
                    join_attrs.len(),
                    overall,
                    100.0 * join_attrs.len() as f64 / overall as f64
                ),
                ext.stats.total_tx_packets().to_string(),
                sj.stats.total_tx_packets().to_string(),
                pct(saving_pct(
                    ext.stats.total_tx_packets(),
                    sj.stats.total_tx_packets(),
                )),
            ]);
        }
        rep.para(&format!("**{label}**"));
        rep.table(
            &["ratio", "external [pkts]", "SENS-Join [pkts]", "saving"],
            &rows,
        );
    }
    rep.finish()
}

/// Fig. 14: influence of the network size (constant density).
pub fn fig14(sizes: &[usize], seed: u64) -> String {
    let mut rep = Report::new("Fig. 14 — influence of the network size");
    rep.para(
        "Paper: 1000–2500 nodes at constant density; savings slightly \
         superlinear in the size (the initial Treecut region matters less).",
    );
    let family = RangeQueryFamily::ratio_33();
    let mut rows = Vec::new();
    for &n in sizes {
        let mut snet = paper_network(n, seed);
        let cal = family.calibrate(&snet, DEFAULT_FRACTION);
        let ext = run(&mut snet, &ExternalJoin, &cal.sql);
        let sj = run(&mut snet, &sens(), &cal.sql);
        rows.push(vec![
            n.to_string(),
            ext.stats.total_tx_packets().to_string(),
            sj.stats.total_tx_packets().to_string(),
            pct(saving_pct(
                ext.stats.total_tx_packets(),
                sj.stats.total_tx_packets(),
            )),
        ]);
    }
    rep.table(
        &["nodes", "external [pkts]", "SENS-Join [pkts]", "saving"],
        &rows,
    );
    rep.finish()
}

/// Fig. 15: cost breakdown over the three steps for several result
/// fractions.
pub fn fig15(n: usize, seed: u64) -> String {
    let mut rep = Report::new("Fig. 15 — costs in the different steps");
    rep.para(&format!(
        "Paper: the Join-Attribute-Collection cost is fixed (independent of \
         the result fraction) and lower-bounds SENS-Join; filter and final \
         costs grow with the fraction. Network: {n} nodes, 33 % ratio."
    ));
    let family = RangeQueryFamily::ratio_33();
    let mut rows = Vec::new();
    let mut ext_pkts = 0;
    for target in [0.03, 0.05, 0.09, 0.25] {
        let mut snet = paper_network(n, seed);
        let cal = family.calibrate(&snet, target);
        let ext = run(&mut snet, &ExternalJoin, &cal.sql);
        let sj = run(&mut snet, &sens(), &cal.sql);
        ext_pkts = ext.stats.total_tx_packets();
        rows.push(vec![
            pct(100.0 * cal.achieved_fraction),
            sj.stats.phase(PHASE_COLLECTION).tx_packets.to_string(),
            sj.stats.phase(PHASE_FILTER).tx_packets.to_string(),
            sj.stats.phase(PHASE_FINAL).tx_packets.to_string(),
            sj.stats.total_tx_packets().to_string(),
        ]);
    }
    rep.para(&format!(
        "External join for reference: **{ext_pkts} packets** (fraction-independent)."
    ));
    rep.table(
        &[
            "nodes in result",
            "collection [pkts]",
            "filter [pkts]",
            "final [pkts]",
            "total",
        ],
        &rows,
    );
    rep.finish()
}

/// Fig. 16: influence of the quadtree representation (external vs
/// SENS-NoQuad vs SENS-Join at ~4 %).
pub fn fig16(n: usize, seed: u64) -> String {
    let mut rep = Report::new("Fig. 16 — influence of the quadtree representation");
    rep.para(&format!(
        "Paper: without the quadtree the collection step needs ~38 % fewer \
         transmissions than the external join; the quadtree halves the \
         collection volume on top. Network: {n} nodes, ~4 % result fraction, \
         Q2-shaped query (3 join attributes of 5)."
    ));
    let family = RangeQueryFamily::ratio_60();
    let mut snet = paper_network(n, seed);
    let cal = family.calibrate(&snet, 0.04);
    let ext = run(&mut snet, &ExternalJoin, &cal.sql);
    let noquad = run(&mut snet, &SensJoin::no_quadtree(), &cal.sql);
    let quad = run(&mut snet, &sens(), &cal.sql);
    assert!(ext.result.same_result(&quad.result));
    assert!(ext.result.same_result(&noquad.result));
    let rows = vec![
        vec![
            "external".to_owned(),
            ext.stats.total_tx_packets().to_string(),
            ext.stats.total_tx_bytes().to_string(),
            "—".to_owned(),
            "—".to_owned(),
        ],
        vec![
            "SENS-NoQuad".to_owned(),
            noquad.stats.total_tx_packets().to_string(),
            noquad.stats.total_tx_bytes().to_string(),
            noquad.stats.phase(PHASE_COLLECTION).tx_packets.to_string(),
            noquad.stats.phase(PHASE_COLLECTION).tx_bytes.to_string(),
        ],
        vec![
            "SENS-Join".to_owned(),
            quad.stats.total_tx_packets().to_string(),
            quad.stats.total_tx_bytes().to_string(),
            quad.stats.phase(PHASE_COLLECTION).tx_packets.to_string(),
            quad.stats.phase(PHASE_COLLECTION).tx_bytes.to_string(),
        ],
    ];
    rep.table(
        &[
            "method",
            "total [pkts]",
            "total [bytes]",
            "collection [pkts]",
            "collection [bytes]",
        ],
        &rows,
    );
    rep.finish()
}

/// §VI-A "Packet size": 48-byte vs 124-byte maximum packets.
pub fn packet_size(n: usize, seed: u64) -> String {
    let mut rep = Report::new("§VI-A — influence of the maximum packet size");
    rep.para(&format!(
        "Paper: with 124-byte packets the external join profits more in \
         overall packet counts, but SENS-Join still relieves nodes close to \
         the root by an order of magnitude. Network: {n} nodes, 5 % result, \
         33 % ratio."
    ));
    let family = RangeQueryFamily::ratio_33();
    let mut rows = Vec::new();
    for radio in [RadioConfig::paper_default(), RadioConfig::large_packets()] {
        let mut snet = paper_network_with_radio(n, seed, radio);
        let cal = family.calibrate(&snet, DEFAULT_FRACTION);
        let ext = run(&mut snet, &ExternalJoin, &cal.sql);
        let sj = run(&mut snet, &sens(), &cal.sql);
        let (_, ext_max) = ext.stats.most_loaded().expect("nodes exist");
        let (_, sj_max) = sj.stats.most_loaded().expect("nodes exist");
        rows.push(vec![
            format!("{} B", radio.max_payload),
            ext.stats.total_tx_packets().to_string(),
            sj.stats.total_tx_packets().to_string(),
            pct(saving_pct(
                ext.stats.total_tx_packets(),
                sj.stats.total_tx_packets(),
            )),
            format!(
                "{ext_max} / {sj_max} = {:.1}x",
                ext_max as f64 / sj_max.max(1) as f64
            ),
        ]);
    }
    rep.table(
        &[
            "max packet",
            "external [pkts]",
            "SENS-Join [pkts]",
            "overall saving",
            "most-loaded ext/SENS",
        ],
        &rows,
    );
    rep.finish()
}

/// §VI-B compression comparison: raw vs zlib-like vs bzip2-like vs quadtree
/// on the Join-Attribute-Collection traffic.
pub fn compression(n: usize, seed: u64) -> String {
    let mut rep = Report::new("§VI-B — quadtree vs general-purpose compression");
    rep.para(&format!(
        "Paper (1500 nodes, 3 join attributes: temperature + coordinates): \
         no compression 5619 packets, bzip2 5666 (overhead exceeds savings), \
         zlib 4571, quadtree 2762 (≈ half). Treecut is disabled here to \
         isolate the representation, as in the paper's modified collection \
         step. Network: {n} nodes."
    ));
    // Three join attributes: temperature and the two coordinates, via a
    // Q2-style condition (temp band + distance).
    let mut snet = paper_network(n, seed);
    let sql = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
               WHERE |A.temp - B.temp| < 0.05 AND distance(A.x, A.y, B.x, B.y) > 900 ONCE";
    let mut rows = Vec::new();
    for repr in [
        Representation::Raw,
        Representation::Bzip2,
        Representation::Zlib,
        Representation::Quadtree,
    ] {
        let method = SensJoin::with_config(SensJoinConfig {
            representation: repr,
            dmax: 0, // isolate the representation
            ..SensJoinConfig::default()
        });
        let out = run(&mut snet, &method, sql);
        let st = out.stats.phase(PHASE_COLLECTION);
        rows.push(vec![
            repr.name().to_owned(),
            st.tx_packets.to_string(),
            st.tx_bytes.to_string(),
        ]);
    }
    rep.table(
        &["representation", "collection [pkts]", "collection [bytes]"],
        &rows,
    );
    rep.finish()
}

/// §VII response time: SENS-Join latency is bounded by twice the external
/// join's.
pub fn response_time(n: usize, seed: u64) -> String {
    let mut rep = Report::new("§VII — response time");
    rep.para(&format!(
        "Paper: SENS-Join trades response time for energy; the latency is \
         upper-bounded by at most twice the external join's. We report two \
         scheduling models. *Pipelined*: a node forwards once its children \
         reported; disjoint subtrees transmit concurrently — here SENS-Join \
         is actually *faster*, because the external join's multi-packet \
         transfers near the root dominate its critical path. *Slotted* \
         (TAG-style level synchronization): each tree level gets a window \
         sized for its slowest transmitter. Under both data-respecting \
         schedules the paper's ≤2x bound holds with large margin: the \
         pre-computation's extra phases are far outweighed by the external \
         join's heavy near-root transfers. Network: {n} nodes, 33 % ratio."
    ));
    let family = RangeQueryFamily::ratio_33();
    let mut rows = Vec::new();
    for target in [0.02, 0.05, 0.25, 0.50] {
        let mut snet = paper_network(n, seed);
        let cal = family.calibrate(&snet, target);
        let ext = run(&mut snet, &ExternalJoin, &cal.sql);
        let sj = run(&mut snet, &sens(), &cal.sql);
        rows.push(vec![
            pct(100.0 * cal.achieved_fraction),
            format!("{:.0}", ext.latency_us as f64 / 1000.0),
            format!("{:.0}", sj.latency_us as f64 / 1000.0),
            format!("{:.2}x", sj.latency_us as f64 / ext.latency_us as f64),
            format!("{:.0}", ext.latency_slotted_us as f64 / 1000.0),
            format!("{:.0}", sj.latency_slotted_us as f64 / 1000.0),
            format!(
                "{:.2}x",
                sj.latency_slotted_us as f64 / ext.latency_slotted_us as f64
            ),
        ]);
    }
    rep.table(
        &[
            "nodes in result",
            "external pipelined [ms]",
            "SENS-Join pipelined [ms]",
            "ratio",
            "external slotted [ms]",
            "SENS-Join slotted [ms]",
            "ratio",
        ],
        &rows,
    );
    rep.finish()
}

/// Ablation: the Treecut threshold `D_max` (§IV-E).
pub fn ablation_dmax(n: usize, seed: u64) -> String {
    let mut rep = Report::new("Ablation — Treecut threshold D_max");
    rep.para(&format!(
        "Paper (§IV-E): D_max = 30 B, constrained to stay below the packet \
         payload; 0 disables Treecut. Network: {n} nodes, 5 % result, 33 % \
         ratio."
    ));
    let family = RangeQueryFamily::ratio_33();
    let mut snet = paper_network(n, seed);
    let cal = family.calibrate(&snet, DEFAULT_FRACTION);
    let mut rows = Vec::new();
    for dmax in [0usize, 10, 20, 30, 40, 48] {
        let method = SensJoin::with_config(SensJoinConfig {
            dmax,
            ..Default::default()
        });
        let out = run(&mut snet, &method, &cal.sql);
        rows.push(vec![
            dmax.to_string(),
            out.stats.total_tx_packets().to_string(),
            out.stats.phase(PHASE_COLLECTION).tx_packets.to_string(),
            out.stats.phase(PHASE_FILTER).tx_packets.to_string(),
            out.stats.phase(PHASE_FINAL).tx_packets.to_string(),
        ]);
    }
    rep.table(
        &["D_max [B]", "total [pkts]", "collection", "filter", "final"],
        &rows,
    );
    rep.finish()
}

/// Ablation: quantization resolution (§V-B "insensitive to the resolution
/// ... as long as it is not too coarse").
pub fn ablation_resolution(n: usize, seed: u64) -> String {
    let mut rep = Report::new("Ablation — quantization resolution");
    rep.para(&format!(
        "Scaling every dimension's resolution (1.0 = the paper's 0.1 °C / \
         1 m). Finer costs more collection bits; coarser costs final-phase \
         false positives. Correctness is checked at every point. Network: \
         {n} nodes, 5 % result."
    ));
    let family = RangeQueryFamily::ratio_33();
    let mut snet = paper_network(n, seed);
    let cal = family.calibrate(&snet, DEFAULT_FRACTION);
    let reference = run(&mut snet, &ExternalJoin, &cal.sql);
    let mut rows = Vec::new();
    for scale in [0.1, 0.5, 1.0, 2.0, 8.0, 32.0, 128.0] {
        let method = SensJoin::with_config(SensJoinConfig {
            resolution_scale: scale,
            ..Default::default()
        });
        let out = run(&mut snet, &method, &cal.sql);
        assert!(
            out.result.same_result(&reference.result),
            "scale {scale} broke the result"
        );
        rows.push(vec![
            format!("{scale}"),
            out.stats.total_tx_packets().to_string(),
            out.stats.phase(PHASE_COLLECTION).tx_bytes.to_string(),
            out.stats.phase(PHASE_FINAL).tx_bytes.to_string(),
        ]);
    }
    rep.table(
        &[
            "resolution scale",
            "total [pkts]",
            "collection [bytes]",
            "final [bytes]",
        ],
        &rows,
    );
    rep.finish()
}

/// Ablation: Selective Filter Forwarding on/off and the memory cap.
pub fn ablation_filter(n: usize, seed: u64) -> String {
    let mut rep = Report::new("Ablation — Selective Filter Forwarding");
    rep.para(&format!(
        "Paper (§IV-C): pruning the filter per subtree, bounded by a 500-byte \
         memory cap; without the mechanism the filter floods every active \
         node. Network: {n} nodes, 5 % result, 33 % ratio."
    ));
    let family = RangeQueryFamily::ratio_33();
    let mut snet = paper_network(n, seed);
    let cal = family.calibrate(&snet, DEFAULT_FRACTION);
    let mut rows = Vec::new();
    let configs: Vec<(String, SensJoinConfig)> = vec![
        (
            "flooding (off)".into(),
            SensJoinConfig {
                selective_forwarding: false,
                ..Default::default()
            },
        ),
        (
            "selective, 50 B cap".into(),
            SensJoinConfig {
                filter_memory_limit: 50,
                ..Default::default()
            },
        ),
        (
            "selective, 500 B cap (paper)".into(),
            SensJoinConfig::default(),
        ),
        (
            "selective, unbounded".into(),
            SensJoinConfig {
                filter_memory_limit: usize::MAX,
                ..Default::default()
            },
        ),
    ];
    for (label, config) in configs {
        let out = run(&mut snet, &SensJoin::with_config(config), &cal.sql);
        rows.push(vec![
            label,
            out.stats.phase(PHASE_FILTER).tx_packets.to_string(),
            out.stats.phase(PHASE_FILTER).tx_bytes.to_string(),
            out.stats.total_tx_packets().to_string(),
        ]);
    }
    rep.table(
        &[
            "configuration",
            "filter [pkts]",
            "filter [bytes]",
            "total [pkts]",
        ],
        &rows,
    );
    rep.finish()
}

/// Extension (paper §VIII follow-on work): continuous queries with temporal
/// filter reuse — per-round cost of the delta-based executor vs re-running
/// SENS-Join and the external join from scratch.
pub fn extension_continuous(n: usize, seed: u64) -> String {
    use sensjoin_core::ContinuousSensJoin;
    use sensjoin_field::presets;
    let mut rep = Report::new("Extension — continuous queries with temporal filter reuse");
    rep.para(&format!(
        "The paper's stated future work (§VIII): exploit temporal \
         correlations across `SAMPLE PERIOD` rounds. Our delta executor \
         re-collects only changed cells, disseminates filter deltas, and \
         ε-suppresses unchanged tuples (here ε = 0.1, i.e. results are exact \
         up to 0.1-unit attribute staleness; ε = 0 gives exact results). \
         Fields drift slowly between rounds (same field, fresh measurement \
         noise). Network: {n} nodes, 5 % result fraction."
    ));
    let family = RangeQueryFamily::ratio_33();
    let mut snet = paper_network(n, seed);
    let cal = family.calibrate(&snet, DEFAULT_FRACTION);
    let sql = cal.sql.replace(" ONCE", " SAMPLE PERIOD 30");
    let q = sensjoin_query::parse(&sql).expect("parses");
    let cq = snet.compile(&q).expect("compiles");
    let drift = |noise: f64| {
        let mut f = presets::indoor_climate();
        for s in &mut f {
            s.noise = noise;
        }
        f
    };
    let mut cont = ContinuousSensJoin::with_epsilon(0.1);
    let mut rows = Vec::new();
    for round in 0..5u64 {
        snet.resample(&drift(0.002 * round as f64), seed ^ 0xC0FFEE);
        let ext = ExternalJoin.execute(&mut snet, &cq).expect("runs");
        let fresh = sens().execute(&mut snet, &cq).expect("runs");
        let delta = cont.execute_round(&mut snet, &cq).expect("runs");
        rows.push(vec![
            round.to_string(),
            ext.stats.total_tx_packets().to_string(),
            fresh.stats.total_tx_packets().to_string(),
            delta.stats.total_tx_packets().to_string(),
            pct(saving_pct(
                fresh.stats.total_tx_packets().max(1),
                delta.stats.total_tx_packets(),
            )),
        ]);
    }
    rep.table(
        &[
            "round",
            "external [pkts]",
            "SENS-Join fresh [pkts]",
            "continuous delta [pkts]",
            "delta vs fresh",
        ],
        &rows,
    );
    rep.finish()
}

/// Related-work check (§II/§VI): the external join beats the mediated join
/// on the paper's uniform placements; the mediated join only wins in its
/// "two small regions far from the base" home scenario.
pub fn related_work(n: usize, seed: u64) -> String {
    use sensjoin_core::MediatedJoin;
    let mut rep = Report::new("Related work — external vs mediated join");
    rep.para(&format!(
        "The paper states that the external join \"outperforms the \
         specialized join methods ... in each of our experiments\" because \
         those need very specific scenarios. We verify the claim with a \
         mediated join (Coman et al.). The outcome on uniform placements \
         depends on where the base station sits: with a central base the \
         mediator adds pure overhead; with a corner base the mediator's \
         central position shortens the collection paths and it edges ahead \
         of the external join — while SENS-Join beats both everywhere. The \
         mediated join's designed-for scenario (two small relation regions \
         far from the base) is included last. Network: {n} nodes, 5 % result \
         fraction."
    ));
    // Scenario 1: uniform placement, both base positions.
    let family = RangeQueryFamily::ratio_33();
    let mut rows = Vec::new();
    for (label, base) in [
        (
            "uniform, central base",
            sensjoin_sim::BaseChoice::NearestCenter,
        ),
        (
            "uniform, corner base (experiments' default)",
            sensjoin_sim::BaseChoice::NearestCorner,
        ),
    ] {
        let mut snet = sensjoin_core::SensorNetworkBuilder::new()
            .area(sensjoin_field::Area::for_constant_density(n))
            .placement(sensjoin_field::Placement::UniformRandom { n })
            .fields(sensjoin_field::presets::indoor_climate())
            .base(base)
            .seed(seed)
            .build()
            .expect("builds");
        let cal = family.calibrate(&snet, DEFAULT_FRACTION);
        let ext = run(&mut snet, &ExternalJoin, &cal.sql);
        let med = run(&mut snet, &MediatedJoin, &cal.sql);
        let sj = run(&mut snet, &sens(), &cal.sql);
        assert!(ext.result.same_result(&med.result));
        rows.push(vec![
            label.to_owned(),
            ext.stats.total_tx_packets().to_string(),
            med.stats.total_tx_packets().to_string(),
            sj.stats.total_tx_packets().to_string(),
        ]);
    }
    // Scenario 2: two small regions far from the base.
    use sensjoin_field::{Area, Placement, Position};
    use sensjoin_relation::{AttrType, Attribute, NodeId as Nd, Schema, SensorRelation};
    use sensjoin_sim::BaseChoice;
    let area = Area::for_constant_density(n);
    let probe = sensjoin_core::SensorNetworkBuilder::new()
        .area(area)
        .placement(Placement::UniformRandom { n })
        .base(BaseChoice::NearestCorner)
        .seed(seed)
        .build()
        .expect("builds");
    let far = Position::new(area.width * 0.8, area.height * 0.8);
    let region = |c: Position, r: f64| -> Vec<Nd> {
        (0..n as u32)
            .map(Nd)
            .filter(|&v| {
                probe.net().topology().position(v).distance(&c) < r
                    && probe.net().routing().depth(v).is_some()
            })
            .collect()
    };
    let schema = |name: &str| {
        Schema::new(
            name,
            vec![
                Attribute::new("x", AttrType::Meters),
                Attribute::new("y", AttrType::Meters),
                Attribute::new("temp", AttrType::Celsius),
                Attribute::new("hum", AttrType::Percent),
            ],
        )
    };
    let left = region(Position::new(far.x - 70.0, far.y + 40.0), 100.0);
    let right = region(Position::new(far.x + 70.0, far.y - 40.0), 100.0);
    let mut clustered = sensjoin_core::SensorNetworkBuilder::new()
        .area(area)
        .placement(Placement::UniformRandom { n })
        .base(BaseChoice::NearestCorner)
        .seed(seed)
        .relations(vec![
            SensorRelation::over_nodes(schema("Left"), left),
            SensorRelation::over_nodes(schema("Right"), right),
        ])
        .build()
        .expect("builds");
    let sql = "SELECT L.hum, R.hum FROM Left L, Right R \
               WHERE L.temp - R.temp > 4.0 ONCE";
    let ext2 = run(&mut clustered, &ExternalJoin, sql);
    let med2 = run(&mut clustered, &MediatedJoin, sql);
    let sj2 = run(&mut clustered, &sens(), sql);
    assert!(ext2.result.same_result(&med2.result));
    rows.push(vec![
        "two far regions".to_owned(),
        ext2.stats.total_tx_packets().to_string(),
        med2.stats.total_tx_packets().to_string(),
        sj2.stats.total_tx_packets().to_string(),
    ]);
    rep.table(
        &[
            "scenario",
            "external [pkts]",
            "mediated [pkts]",
            "SENS-Join [pkts]",
        ],
        &rows,
    );
    rep.finish()
}

/// §V discussion check: Bloom filters vs the quadtree. Bloom filters only
/// support equi-joins; on those, fixed-width filters lose to the adaptive
/// quadtree near the leaves.
pub fn bloom_comparison(n: usize, seed: u64) -> String {
    use sensjoin_core::{BloomSemiJoin, QuantizationConfig, PHASE_BLOOM_COLLECTION};
    let mut rep = Report::new("§V discussion — Bloom filters vs the quadtree");
    rep.para(&format!(
        "The paper rules out Bloom filters because \"they only allow for \
         evaluating equi-joins\". We implemented the Bloom semi-join anyway: \
         on Q1 it refuses (range predicate); on a pure equi-join it is exact \
         but ships fixed-width filters from the very first hop, where \
         SENS-Join's quadtree ships a few bytes. Equality key: light \
         quantized at 0.01 lx. Network: {n} nodes."
    ));
    // Two disjoint relations (even/odd nodes) so SQL self-pairs cannot
    // dominate the result of the equality predicate.
    use sensjoin_relation::{AttrType, Attribute, NodeId as Nd, Schema, SensorRelation};
    let schema = |name: &str| {
        Schema::new(
            name,
            vec![
                Attribute::new("light", AttrType::Lux),
                Attribute::new("hum", AttrType::Percent),
                Attribute::new("temp", AttrType::Celsius),
                Attribute::new("x", AttrType::Meters),
                Attribute::new("y", AttrType::Meters),
            ],
        )
    };
    let mut snet = sensjoin_core::SensorNetworkBuilder::new()
        .area(sensjoin_field::Area::for_constant_density(n))
        .placement(sensjoin_field::Placement::UniformRandom { n })
        .fields(sensjoin_field::presets::indoor_climate())
        .base(sensjoin_sim::BaseChoice::NearestCorner)
        .seed(seed)
        .relations(vec![
            SensorRelation::over_nodes(schema("Evens"), (0..n as u32).step_by(2).map(Nd)),
            SensorRelation::over_nodes(schema("Odds"), (1..n as u32).step_by(2).map(Nd)),
        ])
        .build()
        .expect("builds");
    // The rejection case: Q1's range predicate.
    let q1 = "SELECT MIN(distance(A.x, A.y, B.x, B.y)) FROM Evens A, Odds B \
              WHERE A.temp - B.temp > 10.0 ONCE";
    let cq1 = snet
        .compile(&sensjoin_query::parse(q1).expect("parses"))
        .expect("compiles");
    let refusal = BloomSemiJoin::default()
        .execute(&mut snet, &cq1)
        .unwrap_err();
    rep.para(&format!("Bloom on Q1: **rejected** — `{refusal}`."));
    // The equi-join case.
    let sql = "SELECT A.hum, B.hum FROM Evens A, Odds B \
               WHERE A.light = B.light ONCE";
    let quant = QuantizationConfig::new().with("light", 0.0, 2000.0, 0.01);
    let config = SensJoinConfig {
        quantization: quant,
        ..Default::default()
    };
    let ext = run(&mut snet, &ExternalJoin, sql);
    let sj = run(&mut snet, &SensJoin::with_config(config.clone()), sql);
    let mut rows = vec![
        vec![
            "external".to_owned(),
            ext.stats.total_tx_packets().to_string(),
            "—".to_owned(),
            "—".to_owned(),
        ],
        vec![
            "SENS-Join (quadtree)".to_owned(),
            sj.stats.total_tx_packets().to_string(),
            sj.stats.phase(PHASE_COLLECTION).tx_packets.to_string(),
            sj.stats.phase(PHASE_COLLECTION).tx_bytes.to_string(),
        ],
    ];
    for bits in [2048usize, 8192] {
        let method = BloomSemiJoin {
            config: config.clone(),
            bits,
            hashes: 7,
        };
        let out = run(&mut snet, &method, sql);
        assert!(out.result.same_result(&ext.result));
        rows.push(vec![
            format!("Bloom semi-join ({} B/side)", bits / 8),
            out.stats.total_tx_packets().to_string(),
            out.stats
                .phase(PHASE_BLOOM_COLLECTION)
                .tx_packets
                .to_string(),
            out.stats.phase(PHASE_BLOOM_COLLECTION).tx_bytes.to_string(),
        ]);
    }
    rep.table(
        &[
            "method",
            "total [pkts]",
            "collection [pkts]",
            "collection [bytes]",
        ],
        &rows,
    );
    rep.finish()
}

/// Cost-model validation: analytical per-method predictions (the layer of
/// the paper's companion analysis \[20\]) vs simulation, across the
/// selectivity sweep, plus the advisor's hit rate.
pub fn cost_model(n: usize, seed: u64) -> String {
    use sensjoin_core::{CostModel, MethodChoice};
    let mut rep = Report::new("Cost model — analytical predictions vs simulation");
    rep.para(&format!(
        "The base station can choose the join method analytically from the \
         routing tree it already maintains plus an estimate of the result \
         fraction (paper [20]). External-join predictions reuse the exact \
         packetization arithmetic; SENS-Join predictions additionally use \
         one measured parameter (quadtree bits/point). Network: {n} nodes, \
         33 % ratio."
    ));
    let family = RangeQueryFamily::ratio_33();
    let mut rows = Vec::new();
    let mut advisor_hits = 0;
    let mut advisor_total = 0;
    for target in [0.02, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90] {
        let mut snet = paper_network(n, seed);
        let cal = family.calibrate(&snet, target);
        let q = sensjoin_query::parse(&cal.sql).expect("parses");
        let cq = snet.compile(&q).expect("compiles");
        let model = CostModel::new(&snet, &cq);
        let beta = model.estimate_beta();
        let pred_ext = model.external();
        let pred_sens = model.sens_join(cal.achieved_fraction, beta, &SensJoinConfig::default());
        let choice = model.recommend(cal.achieved_fraction, beta);
        let ext = run(&mut snet, &ExternalJoin, &cal.sql);
        let sj = run(&mut snet, &sens(), &cal.sql);
        let actual_winner = if sj.stats.total_tx_packets() <= ext.stats.total_tx_packets() {
            MethodChoice::SensJoin
        } else {
            MethodChoice::External
        };
        advisor_total += 1;
        if choice == actual_winner {
            advisor_hits += 1;
        }
        let err = |pred: f64, actual: u64| -> String {
            format!("{:+.0} %", 100.0 * (pred - actual as f64) / actual as f64)
        };
        rows.push(vec![
            pct(100.0 * cal.achieved_fraction),
            format!("{:.0}", pred_ext.packets),
            ext.stats.total_tx_packets().to_string(),
            err(pred_ext.packets, ext.stats.total_tx_packets()),
            format!("{:.0}", pred_sens.packets),
            sj.stats.total_tx_packets().to_string(),
            err(pred_sens.packets, sj.stats.total_tx_packets()),
            format!("{choice:?}"),
        ]);
    }
    rep.table(
        &[
            "fraction",
            "ext predicted",
            "ext simulated",
            "err",
            "SENS predicted",
            "SENS simulated",
            "err",
            "advice",
        ],
        &rows,
    );
    rep.para(&format!(
        "Advisor picked the actual winner in **{advisor_hits}/{advisor_total}** settings."
    ));
    rep.finish()
}

/// Network-lifetime projection: queries until the first (most loaded) node
/// exhausts a 2xAA battery — the paper's motivation that per-node savings
/// "prolong the lifetime of the network significantly".
pub fn lifetime(n: usize, seed: u64) -> String {
    let mut rep = Report::new("Network lifetime — queries until first node death");
    rep.para(&format!(
        "Battery budget: 2xAA ≈ 20 kJ usable. Lifetime = budget / energy of \
         the most loaded node per query execution (radio costs only; both \
         methods sense identically). Network: {n} nodes, 5 % result, 33 % \
         and 60 % ratios."
    ));
    const BUDGET_UJ: f64 = 20.0e9; // 20 kJ in µJ
    let mut rows = Vec::new();
    for (label, family) in [
        ("33 % join attributes", RangeQueryFamily::ratio_33()),
        ("60 % join attributes", RangeQueryFamily::ratio_60()),
    ] {
        let mut snet = paper_network(n, seed);
        let cal = family.calibrate(&snet, DEFAULT_FRACTION);
        let ext = run(&mut snet, &ExternalJoin, &cal.sql);
        let sj = run(&mut snet, &sens(), &cal.sql);
        let worst = |o: &sensjoin_core::JoinOutcome| -> f64 {
            o.stats
                .per_node()
                .iter()
                .map(|s| s.energy_uj)
                .fold(0.0, f64::max)
        };
        let (we, ws) = (worst(&ext), worst(&sj));
        rows.push(vec![
            label.to_owned(),
            format!("{:.0}", BUDGET_UJ / we),
            format!("{:.0}", BUDGET_UJ / ws),
            format!("{:.1}x", we / ws),
        ]);
    }
    rep.table(
        &[
            "setting",
            "external [queries]",
            "SENS-Join [queries]",
            "lifetime gain",
        ],
        &rows,
    );

    // Measured counterpart to the projection above: actual batteries on a
    // continuous band join, run until the first node dies, min-hop parents
    // vs power-aware rotation. Power-aware needs interchangeable same-depth
    // parents to rotate between, so the deployment is 4× the paper density
    // with a central base (see `benches/lifetime_scaling.rs`); capacity is
    // calibrated to ~12 clean rounds of the most loaded node.
    use sensjoin_core::ContinuousSensJoin;
    use sensjoin_field::{presets, Area, Placement};
    use sensjoin_sim::{BaseChoice, BatteryBank, LifetimeRun, LifetimeUntil, ParentPolicy};
    let band = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                WHERE A.temp - B.temp > 3.0 SAMPLE PERIOD 30";
    let dense = |policy: ParentPolicy, capacity_uj: f64| -> u64 {
        let mut snet = sensjoin_core::SensorNetworkBuilder::new()
            .placement(Placement::UniformRandom { n })
            .area(Area::for_constant_density(n.div_ceil(4)))
            .fields(presets::indoor_climate())
            .base(BaseChoice::NearestCenter)
            .seed(seed)
            .build()
            .expect("dense lifetime network builds");
        if capacity_uj > 0.0 {
            let bank = BatteryBank::with_jitter(snet.len(), snet.base(), capacity_uj, 0.0, seed);
            snet.net_mut().set_battery(Some(bank));
        }
        snet.net_mut().set_parent_policy(policy);
        let cq = snet.compile(&sensjoin_query::parse(band).unwrap()).unwrap();
        let specs = presets::indoor_climate();
        let mut cont = ContinuousSensJoin::new();
        if capacity_uj <= 0.0 {
            // Calibration probe: one clean round's most loaded node, in µJ
            // scaled up by the wrapping u64 return.
            let out = cont.execute_round(&mut snet, &cq).expect("probe round");
            let worst = out
                .stats
                .per_node()
                .iter()
                .map(|s| s.energy_uj)
                .fold(0.0, f64::max);
            return worst.ceil() as u64;
        }
        let mut run = LifetimeRun::new(snet.net(), LifetimeUntil::FirstDeath, 100);
        loop {
            let r = run.rounds();
            if r > 0 {
                snet.resample(&specs, seed.wrapping_add(r));
            }
            let _ = cont.execute_round(&mut snet, &cq).expect("lifetime round");
            if run.observe(snet.net()).is_some() {
                break;
            }
        }
        run.rounds()
    };
    let capacity_uj = 12.0 * dense(ParentPolicy::MinHop, 0.0) as f64;
    let minhop = dense(ParentPolicy::MinHop, capacity_uj);
    let poweraware = dense(ParentPolicy::PowerAware, capacity_uj);
    rep.para(&format!(
        "Measured (battery-powered continuous band join, {n} nodes at 4× \
         density, central base, {:.3} J each): **min-hop {minhop} rounds, \
         power-aware {poweraware} rounds to first death — {:.2}× rotation \
         gain**.",
        capacity_uj / 1e6,
        poweraware as f64 / minhop as f64
    ));
    rep.finish()
}

/// Seed robustness: the headline metrics across independent topologies and
/// data sets (mean ± standard deviation over `reps` seeds).
pub fn variance(n: usize, reps: u64) -> String {
    let mut rep = Report::new("Robustness — headline metrics across seeds");
    rep.para(&format!(
        "All other experiments fix one seed; this one re-runs the default \
         setting ({n} nodes, 5 % result, 33 % ratio) over {reps} independent \
         topologies and data sets."
    ));
    let family = RangeQueryFamily::ratio_33();
    let mut savings = Vec::new();
    let mut reliefs = Vec::new();
    let mut fractions = Vec::new();
    for seed in 0..reps {
        let mut snet = paper_network(n, crate::SEED ^ (seed * 0x9E37));
        let cal = family.calibrate(&snet, DEFAULT_FRACTION);
        let ext = run(&mut snet, &ExternalJoin, &cal.sql);
        let sj = run(&mut snet, &sens(), &cal.sql);
        assert!(ext.result.same_result(&sj.result));
        savings.push(saving_pct(
            ext.stats.total_tx_packets(),
            sj.stats.total_tx_packets(),
        ));
        let (_, em) = ext.stats.most_loaded().expect("nodes exist");
        let (_, sm) = sj.stats.most_loaded().expect("nodes exist");
        reliefs.push(em as f64 / sm.max(1) as f64);
        fractions.push(100.0 * cal.achieved_fraction);
    }
    let stats = |v: &[f64]| -> (f64, f64) {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64;
        (mean, var.sqrt())
    };
    let (ms, ss) = stats(&savings);
    let (mr, sr) = stats(&reliefs);
    let (mf, sf) = stats(&fractions);
    rep.table(
        &["metric", "mean", "std dev"],
        &[
            vec![
                "calibrated fraction [%]".into(),
                format!("{mf:.2}"),
                format!("{sf:.2}"),
            ],
            vec![
                "overall saving [%]".into(),
                format!("{ms:.1}"),
                format!("{ss:.1}"),
            ],
            vec![
                "most-loaded relief [x]".into(),
                format!("{mr:.1}"),
                format!("{sr:.1}"),
            ],
        ],
    );
    rep.finish()
}

/// Base-station engine: wall-clock of the partitioned exact join against
/// the nested-loop reference it replaced, on a two-way band join whose
/// selectivity keeps the output near one row per tuple. Both engines return
/// bit-identical results (rows, order, contributors); the full scaling
/// curve lives in `benches/engine_scaling.rs`.
pub fn engine_runtime(n: usize, seed: u64) -> String {
    use sensjoin_core::{exact_join, exact_join_nested};
    use sensjoin_query::{parse, CompiledQuery};
    use sensjoin_relation::{AttrType, Attribute, Schema};
    use std::time::Instant;

    // The nested loop is quadratic; cap the tuple count so the smoke run
    // and the full report both finish in well under a second.
    let m = n.min(1500);
    let schema = Schema::new(
        "Sensors",
        vec![
            Attribute::new("x", AttrType::Meters),
            Attribute::new("y", AttrType::Meters),
            Attribute::new("temp", AttrType::Celsius),
            Attribute::new("hum", AttrType::Percent),
        ],
    );
    let eps = 11.0 / m as f64;
    let q = parse(&format!(
        "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
         WHERE |A.temp - B.temp| < {eps} ONCE"
    ))
    .expect("valid query");
    let cq = CompiledQuery::compile(&q, &[schema.clone(), schema]).expect("compiles");

    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let tuples: Vec<Vec<(NodeId, Vec<f64>)>> = (0..2)
        .map(|rel| {
            (0..m)
                .map(|i| {
                    let values = vec![
                        1000.0 * next(),
                        1000.0 * next(),
                        10.0 + 22.0 * next(),
                        30.0 + 40.0 * next(),
                    ];
                    (NodeId((rel * 100_000 + i) as u32), values)
                })
                .collect()
        })
        .collect();

    let time = |f: &dyn Fn() -> sensjoin_core::JoinComputation| {
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..3 {
            let t = Instant::now();
            let r = f();
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
            out = Some(r);
        }
        (best, out.unwrap())
    };
    let (t_part, r_part) = time(&|| exact_join(&cq, &tuples));
    let (t_nest, r_nest) = time(&|| exact_join_nested(&cq, &tuples));
    assert_eq!(r_part.result.len(), r_nest.result.len());
    assert_eq!(r_part.contributors, r_nest.contributors);

    let mut rep = Report::new("Base-station engine: partitioned vs nested-loop join");
    rep.para(&format!(
        "Two-way band join `|A.temp - B.temp| < {eps:.4}` over {m} tuples per \
         relation (best of 3 runs, {} result rows). The partitioned engine \
         returns the bit-identical row sequence, aggregates and contributor \
         set of the nested-loop reference; `cargo bench --bench \
         engine_scaling` reproduces the full curve.",
        r_part.result.len()
    ));
    rep.table(
        &["engine", "runtime [ms]", "speedup [x]"],
        &[
            vec![
                "nested loop (reference)".into(),
                format!("{t_nest:.2}"),
                "1.0".into(),
            ],
            vec![
                "partitioned (this report)".into(),
                format!("{t_part:.2}"),
                format!("{:.1}", t_nest / t_part),
            ],
        ],
    );
    rep.finish()
}

/// Extension: streaming ingestion — the persistent `StreamJoinEngine`
/// against the full batch re-join it replaces. A warm engine absorbs a
/// delta batch touching 1 % of the tuples; the batch join recomputes
/// everything.
pub fn ingest_scaling(n: usize, seed: u64) -> String {
    use sensjoin_core::{exact_join, StreamJoinEngine, StreamOp};
    use sensjoin_query::{parse, CompiledQuery};
    use sensjoin_relation::{AttrType, Attribute, Schema};
    use std::time::Instant;

    let m = n.min(2000);
    let schema = Schema::new(
        "Sensors",
        vec![
            Attribute::new("x", AttrType::Meters),
            Attribute::new("y", AttrType::Meters),
            Attribute::new("temp", AttrType::Celsius),
            Attribute::new("hum", AttrType::Percent),
        ],
    );
    let eps = 11.0 / m as f64;
    let q = parse(&format!(
        "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
         WHERE |A.temp - B.temp| < {eps} ONCE"
    ))
    .expect("valid query");
    let cq = CompiledQuery::compile(&q, &[schema.clone(), schema]).expect("compiles");

    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let tuples: Vec<Vec<(NodeId, Vec<f64>)>> = (0..2)
        .map(|rel| {
            (0..m)
                .map(|i| {
                    let values = vec![
                        1000.0 * next(),
                        1000.0 * next(),
                        10.0 + 22.0 * next(),
                        30.0 + 40.0 * next(),
                    ];
                    (NodeId((rel * 100_000 + i) as u32), values)
                })
                .collect()
        })
        .collect();
    let all: Vec<StreamOp> = tuples
        .iter()
        .enumerate()
        .flat_map(|(rel, ts)| {
            ts.iter().map(move |(origin, values)| {
                let mut per_rel = vec![None, None];
                per_rel[rel] = Some(values.clone());
                StreamOp::Upsert {
                    origin: *origin,
                    per_rel,
                }
            })
        })
        .collect();
    // 1 % of the tuples, half from each relation, re-upserted unchanged —
    // the engine state is a fixed point, so timing loops are stable.
    let k = (m / 100).max(1) / 2;
    let delta: Vec<StreamOp> = all
        .iter()
        .take(k.max(1))
        .chain(all.iter().skip(m).take(k.max(1)))
        .cloned()
        .collect();

    let mut engine = StreamJoinEngine::new(cq.clone());
    let cold = engine.apply_batch(&all);
    let best_ms = |f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let t_full = best_ms(&mut || {
        exact_join(&cq, &tuples);
    });
    let mut delta_stats = sensjoin_core::BatchStats::default();
    let t_delta = best_ms(&mut || {
        delta_stats = engine.apply_batch(&delta);
    });
    let reference = exact_join(&cq, &tuples);
    let streamed = engine.result();
    assert!(
        streamed.result.same_result(&reference.result)
            && streamed.contributors == reference.contributors,
        "streaming engine diverged from exact_join"
    );

    let mut rep = Report::new("Extension — streaming ingestion: O(Δ) steady-state joins");
    rep.para(&format!(
        "Beyond the paper: `core::StreamJoinEngine` (DESIGN.md §4.11) keeps \
         partitioned indexes and the result cache alive between rounds and \
         re-enumerates only around the tuples a delta batch touches, where \
         the batch join recomputes the full cross-product search. Band join \
         `|A.temp - B.temp| < {eps:.4}` over {m} tuples per relation; the \
         delta batch re-upserts 1 % of them ({} ops). Candidates is the \
         work metric: bindings examined by the residual kernel \
         (`sensjoin-simd`, dispatching to {}). Identity with the batch join \
         is asserted on every row here and property-tested in \
         `tests/streaming_equivalence.rs`; `cargo bench --bench \
         ingest_scaling` reproduces the committed `BENCH_engine.json` gates.",
        delta.len(),
        sensjoin_core::kernels_active(),
    ));
    rep.table(
        &["path", "runtime [ms]", "candidates", "vs full [x]"],
        &[
            vec![
                "full exact_join".into(),
                format!("{t_full:.2}"),
                format!("{}", cold.candidates),
                "1.000".into(),
            ],
            vec![
                format!("delta batch ({} ops)", delta.len()),
                format!("{t_delta:.3}"),
                format!("{}", delta_stats.candidates),
                format!("{:.3}", t_delta / t_full),
            ],
        ],
    );
    rep.finish()
}

/// Extension: multi-query scheduling — N concurrent band joins served by
/// ONE shared Join-Attribute-Collection wave per epoch (`core::QueryGroup`,
/// DESIGN.md §4.7), against the N solo collections it replaces. Every group
/// outcome is checked row-identical to a fresh solo execution.
pub fn multi_query(n: usize, seed: u64) -> String {
    use sensjoin_core::QueryGroup;
    let mut rep = Report::new("Extension — multi-query scheduling with a shared collection phase");
    rep.para(&format!(
        "Beyond the paper: `core::QueryGroup` registers N concurrent \
         continuous queries and runs ONE shared Join-Attribute-Collection \
         wave per epoch instead of N (DESIGN.md §4.7); per-query results \
         stay identical to solo executions, asserted here on every row. The \
         workload is a same-template family of band joins over temperature \
         (constants spread so the filters differ while the collected cells \
         coincide) — the amortization best case the scheduler targets. \
         Network: {n} nodes. `cargo bench -p sensjoin-bench --bench \
         multi_query_scaling` reproduces the committed `BENCH_engine.json` \
         entries (150 nodes) with base-station timing."
    ));
    let sizes = [1usize, 2, 4, 8];
    let mut snet = paper_network(n, seed);
    let queries: Vec<_> = (0..*sizes.iter().max().unwrap())
        .map(|i| {
            let sql = format!(
                "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                 WHERE A.temp - B.temp > {} SAMPLE PERIOD 30",
                6.0 + 0.4 * i as f64
            );
            let q = sensjoin_query::parse(&sql).expect("family query parses");
            snet.compile(&q).expect("family query compiles")
        })
        .collect();
    let mut rows = Vec::new();
    for &k in &sizes {
        let mut group = QueryGroup::new(SensJoinConfig::default());
        let ids: Vec<_> = queries[..k]
            .iter()
            .map(|q| group.register(&snet, q.clone(), 1))
            .collect();
        let report = group.execute_epoch(&mut snet).expect("epoch runs");
        let shared = report.shared_collection_bytes();
        let mut solo_sum = 0u64;
        for (id, q) in ids.iter().zip(&queries[..k]) {
            let solo = sens().execute(&mut snet, q).expect("solo runs");
            let out = report
                .outcomes
                .iter()
                .find(|o| o.id == *id)
                .expect("query is due");
            assert!(
                solo.result.same_result(&out.result),
                "group result diverges from solo at N = {k}"
            );
            solo_sum += solo.stats.phase(PHASE_COLLECTION).tx_bytes;
        }
        rows.push(vec![
            k.to_string(),
            shared.to_string(),
            solo_sum.to_string(),
            format!("{:.3}", shared as f64 / solo_sum as f64),
        ]);
    }
    rep.table(
        &[
            "concurrent queries N",
            "shared collection [bytes]",
            "N solo collections [bytes]",
            "shared / solo sum",
        ],
        &rows,
    );
    rep.finish()
}

/// Extension — error tolerance under per-packet loss (DESIGN.md §4.8): the
/// byte price of an exact result per loss rate, hop-by-hop ARQ against the
/// paper's §IV-F re-execution recipe.
pub fn error_tolerance(n: usize, seed: u64) -> String {
    use sensjoin_core::{execute_with_reexecution, MAX_REEXECUTION_ATTEMPTS};
    use sensjoin_sim::{ArqPolicy, Channel};

    let mut rep = Report::new("Extension — error tolerance under per-packet loss");
    rep.para(&format!(
        "Beyond the paper: every packet is dropped independently with \
         probability p (Bernoulli channel, DESIGN.md §4.8) and the network \
         must still return the *exact* join result. Hop-by-hop \
         ack-and-retransmit ARQ (data + retransmissions + 2-byte acks, all \
         charged below) is compared against the paper's §IV-F recipe applied \
         to packet loss — no link reliability, \"simply re-execute the \
         query\" until one attempt survives intact, capped at \
         {MAX_REEXECUTION_ATTEMPTS} attempts. Result bit-identity with the \
         lossless run is asserted on every ARQ row. Network: {n} nodes, \
         default band join ({:.0} % result fraction).",
        100.0 * DEFAULT_FRACTION
    ));

    let family = RangeQueryFamily::ratio_33();
    let mut snet = paper_network(n, seed);
    let cal = family.calibrate(&snet, DEFAULT_FRACTION);
    let cq = snet
        .compile(&sensjoin_query::parse(&cal.sql).expect("calibrated SQL parses"))
        .expect("calibrated SQL compiles");
    let clean_sj = run(&mut snet, &sens(), &cal.sql);
    let clean_ext = run(&mut snet, &ExternalJoin, &cal.sql);
    let arq = ArqPolicy::AckRetransmit { max_retries: 16 };

    let mut rows = Vec::new();
    for (i, &p) in [0.0, 0.01, 0.05, 0.1, 0.2].iter().enumerate() {
        let salt = seed.wrapping_add(3 * i as u64);
        snet.net_mut().set_arq(arq);
        snet.net_mut()
            .set_channel(Some(Channel::bernoulli(p, salt)));
        let sj = run(&mut snet, &sens(), &cal.sql);
        assert!(sj.complete, "ARQ retry budget exhausted at p = {p}");
        assert!(
            sj.result.same_result(&clean_sj.result),
            "SENS-Join result diverged at p = {p}"
        );
        if p == 0.0 {
            assert_eq!(
                sj.stats.total_cost_bytes(),
                clean_sj.stats.total_tx_bytes(),
                "reliability must be free on a clean channel"
            );
        }
        snet.net_mut()
            .set_channel(Some(Channel::bernoulli(p, salt.wrapping_add(1))));
        let ext = run(&mut snet, &ExternalJoin, &cal.sql);
        assert!(
            ext.complete,
            "external ARQ retry budget exhausted at p = {p}"
        );
        assert!(
            ext.result.same_result(&clean_ext.result),
            "external result diverged at p = {p}"
        );
        snet.net_mut()
            .set_channel(Some(Channel::bernoulli(p, salt.wrapping_add(2))));
        let re = execute_with_reexecution(&sens(), &mut snet, &cq, MAX_REEXECUTION_ATTEMPTS)
            .expect("re-execution runs");
        rows.push(vec![
            format!("{p:.2}"),
            sj.stats.total_cost_bytes().to_string(),
            format!(
                "{:.2}x",
                sj.stats.total_cost_bytes() as f64 / clean_sj.stats.total_tx_bytes() as f64
            ),
            ext.stats.total_cost_bytes().to_string(),
            re.outcome.stats.total_cost_bytes().to_string(),
            format!(
                "{}{}",
                re.attempts,
                if re.outcome.complete { "" } else { ", gave up" }
            ),
        ]);
    }
    snet.net_mut().set_channel(None);
    rep.table(
        &[
            "loss rate p",
            "SENS-Join + ARQ [bytes]",
            "vs lossless",
            "external + ARQ [bytes]",
            "re-execution [bytes]",
            "re-exec attempts",
        ],
        &rows,
    );
    rep.para(
        "At p = 0 the ARQ machinery is free: the byte count equals the \
         lossless run exactly (asserted). Re-execution needs a single fully \
         clean attempt, and at realistic network sizes essentially never \
         gets one — it pays the attempt cap and still surrenders exactness \
         (\"gave up\" above), while hop-by-hop ARQ repairs each loss where \
         it happened for roughly 1/(1-p) of the data bytes plus acks.",
    );
    rep.finish()
}

/// Extension — node churn: localized tree self-healing vs the naive
/// full-rebuild-and-re-execute recipe, at varying mean time between
/// failures.
pub fn churn_tolerance(n: usize, seed: u64) -> String {
    use sensjoin_core::execute_with_rebuild_reexecution;
    use sensjoin_sim::{ChurnTimeline, PHASE_REPAIR};

    let mut rep = Report::new("Extension — node churn (crash-stop failures and revivals)");
    rep.para(&format!(
        "Beyond the paper: nodes crash without warning (losing all protocol \
         state) and later reboot, on a per-node Poisson clock with the given \
         MTBF / MTTR (DESIGN.md §4.9). The churn-aware protocol repairs the \
         routing tree locally (orphaned subtrees re-parent among live \
         neighbors, repair beacons charged to the energy model), restores \
         tuples whose Treecut proxy died, and returns a result that is \
         bit-identical to a lossless join over the surviving nodes \
         (liveness-projected exactness, property-tested). The baseline is \
         the paper's §IV-F recipe applied to churn: flood a full routing \
         rebuild and simply re-execute the query until one run sees no \
         churn event. Network: {n} nodes, default band join ({:.0} % result \
         fraction); MTBF is expressed in expected churn events per \
         execution.",
        100.0 * DEFAULT_FRACTION
    ));

    let family = RangeQueryFamily::ratio_33();
    let mut snet = paper_network(n, seed);
    let cal = family.calibrate(&snet, DEFAULT_FRACTION);
    let cq = snet
        .compile(&sensjoin_query::parse(&cal.sql).expect("calibrated SQL parses"))
        .expect("calibrated SQL compiles");
    let clean = run(&mut snet, &sens(), &cal.sql);
    let span = clean.latency_us.max(1);

    let mut rows = Vec::new();
    for &events in &[2u32, 8, 24] {
        let mtbf = n as f64 * span as f64 / events as f64;
        let mttr = mtbf / 2.0;
        let horizon = 4 * span;
        let churn_seed = seed.wrapping_add(events as u64);
        let sample = |s: &sensjoin_core::SensorNetwork| {
            ChurnTimeline::sample(s.len(), s.net().base(), mtbf, mttr, horizon, churn_seed)
        };

        let mut local = paper_network(n, seed);
        let tl = sample(&local);
        local.net_mut().set_churn(Some(tl.clone()));
        let lo = sens().execute(&mut local, &cq).expect("localized run");
        let lo_cost = lo.stats.total_cost_bytes();
        let lo_repair =
            lo.stats.phase(PHASE_REPAIR).tx_bytes + lo.stats.phase(PHASE_REPAIR).ack_bytes;

        let mut full = paper_network(n, seed);
        full.net_mut().set_churn(Some(tl));
        let re = execute_with_rebuild_reexecution(&sens(), &mut full, &cq, 6)
            .expect("rebuild baseline runs");
        let re_cost = re.outcome.stats.total_cost_bytes();

        rows.push(vec![
            format!("{events}"),
            format!("{:.0}", mtbf / 1000.0),
            lo_cost.to_string(),
            lo_repair.to_string(),
            if lo.churned { "yes" } else { "no" }.to_string(),
            re_cost.to_string(),
            re.attempts.to_string(),
            format!("{:.2}x", lo_cost as f64 / re_cost as f64),
        ]);
    }
    rep.table(
        &[
            "events / exec",
            "MTBF [ms]",
            "localized [bytes]",
            "repair beacons [bytes]",
            "churned",
            "rebuild+re-exec [bytes]",
            "attempts",
            "localized / rebuild",
        ],
        &rows,
    );
    rep.para(
        "Localized repair answers the query once, over whatever population \
         survives, and pays only for the repair beacons around each death. \
         The rebuild recipe pays a network-wide beacon flood per churn event \
         plus at least one full re-execution — and at short MTBF it keeps \
         getting interrupted, so its cost multiplies while the localized run \
         degrades gracefully.",
    );
    rep.finish()
}

/// Extension — simulator scale-out: construction cost and wave throughput
/// far beyond the paper's 1500-node setting (DESIGN.md §4.10). Sizes scale
/// with `n` so the smoke run stays fast: one-shot joins at roughly
/// {7n, 20n, 67n} nodes, topology + routing-tree builds at {67n, 667n}
/// (100 k and 1 M at the default n = 1500).
pub fn sim_scaling(n: usize, seed: u64) -> String {
    use sensjoin_core::{set_wave_mode, WaveMode};
    use sensjoin_field::{Area, Placement};
    use sensjoin_sim::{RoutingTree, Topology};
    use std::time::Instant;

    let mut rep =
        Report::new("Extension — simulator scale-out (flat state, parallel subtree waves)");
    rep.para(&format!(
        "The simulator stores topology adjacency and routing-tree children \
         in CSR arenas over flat per-node arrays, builds neighbor lists \
         through a bucketed grid, and fans independent child subtrees of a \
         synchronized wave out to worker threads — with per-thread charging \
         lanes replayed in serial order, so parallel execution is \
         bit-identical to serial (property-tested in \
         `crates/core/tests/parallel_equivalence.rs`). A *node-event* is one \
         node's visit in one wave; a one-shot SENS-Join is three waves. \
         Band join `A.temp - B.temp > 12`, constant density, seed {seed}. \
         `cargo bench --bench sim_scaling` asserts the perf gates at the \
         full 100 k / 1 M sizes."
    ));

    let mut rows = Vec::new();
    for m in [n.saturating_mul(67), n.saturating_mul(667)] {
        let area = Area::for_constant_density(m);
        let t = Instant::now();
        let positions = Placement::UniformRandom { n: m }.generate(area, seed);
        let topo = Topology::new(positions, area, 50.0);
        let tree = RoutingTree::build(&topo, NodeId(0));
        let dt = t.elapsed().as_secs_f64();
        rows.push(vec![
            format!("{m}"),
            format!("{dt:.2}"),
            format!("{}", tree.max_depth()),
            crate::peak_rss_mib().map_or_else(|| "n/a".into(), |r| format!("{r:.0}")),
        ]);
    }
    rep.table(
        &[
            "nodes",
            "topology + tree build [s]",
            "tree depth",
            "peak RSS so far [MiB]",
        ],
        &rows,
    );

    let sql = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
               WHERE A.temp - B.temp > 12 ONCE";
    let mut rows = Vec::new();
    for m in [
        n.saturating_mul(7),
        n.saturating_mul(20),
        n.saturating_mul(67),
    ] {
        let mut snet = paper_network(m, seed);
        let cq = snet
            .compile(&sensjoin_query::parse(sql).expect("band SQL parses"))
            .expect("band SQL compiles");
        let mut timed = |mode: WaveMode| {
            set_wave_mode(mode);
            let t = Instant::now();
            let out = sens().execute(&mut snet, &cq).expect("band join runs");
            let dt = t.elapsed().as_secs_f64();
            set_wave_mode(WaveMode::Auto);
            (dt, out)
        };
        let (t_serial, _) = timed(WaveMode::ForceSerial);
        let (t_parallel, out) = timed(WaveMode::ForceParallel);
        rows.push(vec![
            format!("{m}"),
            format!("{:.0}", 1e3 * t_serial),
            format!("{:.0}", 1e3 * t_parallel),
            format!("{:.0}", 1e9 * t_parallel / (3.0 * m as f64)),
            format!("{}", out.contributors.len()),
            format!("{}", out.result.len()),
        ]);
    }
    rep.table(
        &[
            "nodes",
            "serial [ms]",
            "parallel [ms]",
            "ns / node-event",
            "contributors",
            "result rows",
        ],
        &rows,
    );
    rep.para(
        "Wave-engine cost per node-event stays in the microsecond range as \
         the network grows two orders of magnitude past the paper's setting; \
         the parallel fan-out pays off once subtrees are large enough to \
         amortize thread hand-off (the engine auto-enables it at 4096 \
         participants). Peak RSS is a process-wide high-water mark, so the \
         build rows report the cumulative maximum.",
    );
    rep.finish()
}

/// Extension — multi-tenant serving: offered load vs epoch latency, and
/// plan-cache effectiveness vs tenant-template skew.
pub fn serving(n: usize, seed: u64) -> String {
    use sensjoin_serve::{DeploymentSpec, ServeConfig, Server, Submission, TenantId};
    use std::time::Instant;

    const DEPLOYMENTS: usize = 4;
    const TEMPLATE_POOL: usize = 16;
    const TICKS: u64 = 3;
    let nodes = (n / 10).clamp(40, 400);

    let mut rep =
        Report::new("Extension — multi-tenant serving (admission, epoch batching, plan caching)");
    rep.para(&format!(
        "`sensjoin serve` fronts {DEPLOYMENTS} deployments of {nodes} nodes each \
         (seed {seed}). Tenants submit continuous band joins through a bounded \
         admission queue; each server tick resamples every deployment once and \
         runs one shared collection wave per query group (k ≤ 64). Epoch latency \
         is the simulated in-network latency of a tenant's epoch, to be read \
         against the 30 s sample period. `cargo bench --bench serve_throughput` \
         asserts the gates at full scale."
    ));

    let template_sql = |t: usize| {
        format!(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > {:.2} SAMPLE PERIOD 30",
            2.0 + 0.25 * t as f64
        )
    };
    // Template of tenant `i`: the hot template with probability `skew` by
    // fractional accumulation, else uniform over the rest of the pool. The
    // deployment comes from a multiplicative hash so it does not correlate
    // with the hot/cold parity.
    let pick = |i: u64, skew: f64| -> usize {
        let hot = ((i + 1) as f64 * skew).floor() > (i as f64 * skew).floor();
        if hot {
            0
        } else {
            1 + (i as usize) % (TEMPLATE_POOL - 1)
        }
    };
    let dep_of = |i: u64| ((i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize) % DEPLOYMENTS;

    let make_server = |plan_cache: bool, queue_depth: usize| {
        let mut s = Server::new(ServeConfig {
            queue_depth,
            plan_cache,
            ..ServeConfig::default()
        });
        for d in 0..DEPLOYMENTS {
            s.add_deployment(&DeploymentSpec::new(
                format!("dep{d}"),
                nodes,
                seed + d as u64,
            ))
            .expect("deployment spec builds");
        }
        s
    };
    let submit = |s: &mut Server, offered: u64, skew: f64| {
        for i in 0..offered {
            s.submit(Submission {
                tenant: TenantId(i),
                deployment: format!("dep{}", dep_of(i)),
                sql: template_sql(pick(i, skew)),
                every: 1,
            });
        }
    };

    // Offered load vs epoch latency: the queue is bounded at 32, so the
    // heaviest burst sheds; everyone admitted shares their group's
    // collection wave, and p99 grows with the number of co-batched queries.
    let mut rows = Vec::new();
    for offered in [8u64, 24, 48] {
        let mut s = make_server(true, 32);
        submit(&mut s, offered, 0.5);
        let t0 = Instant::now();
        let mut query_epochs = 0u64;
        for _ in 0..TICKS {
            query_epochs += s.tick().expect("tick runs").epochs.len() as u64;
        }
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        let m = s.metrics();
        let lat = m.epoch_latency_us();
        rows.push(vec![
            format!("{offered}"),
            format!("{}", m.totals.admitted),
            format!("{}", m.totals.shed),
            format!("{:.0}", query_epochs as f64 / wall),
            format!("{:.1}", lat.p50() as f64 / 1e3),
            format!("{:.1}", lat.p99() as f64 / 1e3),
        ]);
    }
    rep.table(
        &[
            "offered tenants",
            "admitted",
            "shed",
            "query-epochs/s (wall)",
            "p50 epoch [ms]",
            "p99 epoch [ms]",
        ],
        &rows,
    );

    // Plan-cache hit rate and admission cost vs template skew: the same 64
    // tenants admitted with the cache on and off. A cache hit skips parse,
    // compile, and the O(nodes) join-space build.
    let offered = 64u64;
    let mut rows = Vec::new();
    let mut bars = Vec::new();
    for skew in [0.0f64, 0.5, 0.9] {
        let mut s = make_server(true, offered as usize);
        submit(&mut s, offered, skew);
        let t0 = Instant::now();
        s.admit();
        let on_us = t0.elapsed().as_micros();
        let hits = s.metrics().cache_hits;
        let misses = s.metrics().cache_misses;
        let hit_rate = s.metrics().cache_hit_rate();

        let mut s = make_server(false, offered as usize);
        submit(&mut s, offered, skew);
        let t0 = Instant::now();
        s.admit();
        let off_us = t0.elapsed().as_micros();

        rows.push(vec![
            format!("{skew:.1}"),
            format!("{hits}"),
            format!("{misses}"),
            pct(100.0 * hit_rate),
            format!("{on_us}"),
            format!("{off_us}"),
            format!("{:.2}x", off_us as f64 / on_us.max(1) as f64),
        ]);
        bars.push((format!("skew {skew:.1}"), 100.0 * hit_rate));
    }
    rep.table(
        &[
            "template skew",
            "cache hits",
            "plans built",
            "hit rate",
            "admission cached [µs]",
            "admission uncached [µs]",
            "saving",
        ],
        &rows,
    );
    rep.bar_chart("Plan-cache hit rate by template skew [%]", &bars);
    rep.para(
        "The cache key is (deployment, snapshot version, canonicalized SQL, \
         protocol config), so a hit is sound: the plan is a pure function of \
         those inputs. At zero skew most (deployment, template) pairs are \
         unique and the cache buys little; as tenants converge on a hot \
         template the hit rate climbs and admission cost approaches one \
         parse+compile+build per distinct template per deployment snapshot.",
    );
    rep.finish()
}

/// Extension: base-station crash recovery — crash-anywhere resume
/// equivalence and checkpoint cost at experiment scale.
pub fn recovery(n: usize, seed: u64) -> String {
    use sensjoin_core::persist::{self, CheckpointStore, CrashPoint, Reader, Writer};
    use sensjoin_core::ContinuousSensJoin;
    use sensjoin_field::{presets, Area, Placement};
    use sensjoin_query::parse;
    use std::time::Instant;

    const ROUNDS: u64 = 6;
    const EVERY: u64 = 2;
    let nodes = (n / 4).clamp(80, 600);
    let sql = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
               WHERE A.temp - B.temp > 4.0 SAMPLE PERIOD 30";

    let mut rep = Report::new("Extension — base-station crash recovery");
    rep.para(&format!(
        "The base station checkpoints the full mutable state (engine, \
         filter population, network stats/trace/RNG streams) every \
         {EVERY} rounds and appends a per-round result digest to a \
         write-ahead log. After a crash, `--resume` restores the newest \
         valid snapshot and re-executes the logged suffix, verifying each \
         replayed round's digest. Continuous band join over {nodes} nodes \
         (seed {seed}); every registered crash point is injected once. \
         `cargo bench --bench recovery_overhead` asserts the ≤ 10 % \
         steady-state overhead and ≤ 0.3× recovery gates at full scale."
    ));

    let build = || {
        let specs = presets::indoor_climate();
        let snet = sensjoin_core::SensorNetworkBuilder::new()
            .area(Area::new(600.0, 600.0))
            .placement(Placement::UniformRandom { n: nodes })
            .fields(specs.clone())
            .seed(seed)
            .build()
            .unwrap();
        let cq = snet.compile(&parse(sql).unwrap()).unwrap();
        (snet, cq, specs)
    };
    let digest_of = |out: &sensjoin_core::JoinOutcome| {
        let mut w = Writer::new();
        w.put_usize(out.result.len());
        w.put_u64(out.stats.total_tx_bytes());
        w.put_u64(out.latency_us);
        persist::fnv1a(&w.into_bytes())
    };
    let dir_base =
        std::env::temp_dir().join(format!("sensjoin-ex-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir_base);

    // Reference run with checkpointing.
    let run_with_store =
        |dir: &std::path::Path, crash: Option<(CrashPoint, u32)>| -> (Vec<u64>, bool) {
            let mut store = CheckpointStore::open(dir).unwrap();
            if let Some((p, occ)) = crash {
                store.arm_crash(p, occ);
            }
            let (mut snet, cq, specs) = build();
            let mut cont = ContinuousSensJoin::new();
            let mut digests = Vec::new();
            for r in 0..ROUNDS {
                if r > 0 {
                    snet.resample(&specs, seed.wrapping_add(r));
                }
                let out = cont.execute_round(&mut snet, &cq).unwrap();
                digests.push(digest_of(&out));
                let mut step = || -> Result<(), persist::RecoveryError> {
                    store.crash_check(CrashPoint::PostRound)?;
                    let mut w = Writer::new();
                    w.put_u64(r);
                    w.put_u64(digests[r as usize]);
                    store.append_wal(&w.into_bytes())?;
                    if (r + 1) % EVERY == 0 {
                        let mut w = Writer::new();
                        cont.encode_state(&mut w);
                        persist::put_net_snapshot(&mut w, &snet.net().export_state());
                        store.save_snapshot(r + 1, &w.into_bytes())?;
                    }
                    Ok(())
                };
                if step().is_err() {
                    return (digests, true);
                }
            }
            (digests, false)
        };

    let ref_dir = dir_base.join("ref");
    let (ref_digests, crashed) = run_with_store(&ref_dir, None);
    assert!(!crashed);

    let mut rows = Vec::new();
    for point in CrashPoint::ALL {
        let dir = dir_base.join(format!("{point}"));
        let (_, crashed) = run_with_store(&dir, Some((point, 2)));
        assert!(crashed, "injected crash at {point} did not fire");

        // Resume: restore + replay, timing the recovery.
        let t0 = Instant::now();
        let store = CheckpointStore::open(&dir).unwrap();
        let rec = store.recover().unwrap();
        let (mut snet, cq, specs) = build();
        let mut cont = ContinuousSensJoin::new();
        let mut start = 0;
        if let Some((seq, payload)) = &rec.snapshot {
            let mut r = Reader::new(payload);
            cont.restore_state(&mut r, &cq).unwrap();
            let snap = persist::get_net_snapshot(&mut r).unwrap();
            snet.net_mut().restore_state(&snap);
            r.expect_end().unwrap();
            start = *seq;
        }
        let mut identical = true;
        for r in start..ROUNDS {
            if r > 0 {
                snet.resample(&specs, seed.wrapping_add(r));
            }
            let out = cont.execute_round(&mut snet, &cq).unwrap();
            identical &= digest_of(&out) == ref_digests[r as usize];
        }
        let dt = t0.elapsed().as_secs_f64();
        rows.push(vec![
            format!("{point}"),
            format!("{start}"),
            format!("{}", ROUNDS - start),
            format!("{:.0}", dt * 1e3),
            if identical { "yes".into() } else { "NO".into() },
        ]);
        assert!(identical, "resume after {point} diverged");
    }
    rep.table(
        &[
            "crash point",
            "rounds restored",
            "rounds replayed",
            "resume [ms]",
            "bit-identical",
        ],
        &rows,
    );
    rep.para(
        "Snapshots are length-prefixed and CRC-checksummed; torn or \
         bit-flipped artifacts are detected and skipped (falling back to \
         the previous snapshot, then to a cold start) with the degradation \
         reported, never a panic or a silently wrong answer \
         (property-tested in `crates/core/tests/recovery_equivalence.rs`).",
    );
    let _ = std::fs::remove_dir_all(&dir_base);
    rep.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Smoke tests at reduced scale: every experiment runs and produces a
    // table. The full-scale numbers live in EXPERIMENTS.md via run_all.
    const N: usize = 120;

    #[test]
    fn fig15_and_16_smoke() {
        let md = fig15(N, 1);
        assert!(md.contains("| collection [pkts] |") || md.contains("collection [pkts]"));
        let md = fig16(N, 1);
        assert!(md.contains("SENS-NoQuad"));
    }

    #[test]
    fn compression_smoke() {
        let md = compression(N, 1);
        assert!(md.contains("zlib"));
        assert!(md.contains("quadtree"));
    }

    #[test]
    fn ablations_smoke() {
        assert!(ablation_dmax(N, 1).contains("D_max"));
        assert!(ablation_filter(N, 1).contains("flooding"));
    }

    #[test]
    fn response_time_smoke() {
        assert!(response_time(N, 1).contains("ratio"));
    }

    #[test]
    fn related_work_smoke() {
        let md = related_work(400, 1);
        assert!(md.contains("mediated"));
        assert!(md.contains("two far regions"));
    }

    #[test]
    fn lifetime_smoke() {
        let md = lifetime(N, 1);
        assert!(md.contains("lifetime gain"));
    }

    #[test]
    fn extension_continuous_smoke() {
        let md = extension_continuous(N, 1);
        assert!(md.contains("continuous delta"));
    }

    #[test]
    fn multi_query_smoke() {
        let md = multi_query(N, 1);
        assert!(md.contains("shared collection [bytes]"));
    }

    #[test]
    fn error_tolerance_smoke() {
        let md = error_tolerance(N, 1);
        assert!(md.contains("SENS-Join + ARQ [bytes]"));
        assert!(md.contains("| 0.20 |"));
    }

    #[test]
    fn sim_scaling_smoke() {
        // Sizes scale with n (up to 667x), so run well below the shared
        // smoke N to keep the tree-build rows quick.
        let md = sim_scaling(24, 1);
        assert!(md.contains("ns / node-event"));
        assert!(md.contains("topology + tree build [s]"));
    }

    #[test]
    fn churn_tolerance_smoke() {
        let md = churn_tolerance(N, 1);
        assert!(md.contains("localized / rebuild"));
        assert!(md.contains("| 24 |"));
    }

    #[test]
    fn bloom_comparison_smoke() {
        let md = bloom_comparison(N, 1);
        assert!(md.contains("rejected"));
        assert!(md.contains("Bloom semi-join"));
    }

    #[test]
    fn recovery_smoke() {
        let md = recovery(N, 1);
        assert!(md.contains("crash point"));
        assert!(md.contains("PostSnapshotRename"));
        assert!(!md.contains("| NO |"));
    }

    #[test]
    fn serving_smoke() {
        let md = serving(N, 1);
        assert!(md.contains("offered tenants"));
        assert!(md.contains("template skew"));
        assert!(md.contains("Plan-cache hit rate"));
    }
}
