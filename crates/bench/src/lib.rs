#![warn(missing_docs)]

//! Experiment harness: one function per table/figure of the paper's
//! evaluation (§VI), shared across the `fig*` binaries and `run_all`.
//!
//! Every experiment returns a Markdown report; the binaries print it, and
//! `run_all` assembles `EXPERIMENTS.md`. The default setting matches §VI:
//! 1500 nodes at the density of 1500/(1050 m)², 50 m range, 48-byte packets,
//! 5 % of the nodes in the result, `D_max` = 30 B. The base station sits at
//! a corner of the area (the paper does not state its position; a corner
//! maximizes tree depth and reproduces the paper's savings magnitudes best —
//! see EXPERIMENTS.md for the sensitivity to this choice).

pub mod benchjson;
pub mod experiments;
pub mod report;

use sensjoin_core::{JoinMethod, JoinOutcome, SensorNetwork, SensorNetworkBuilder};
use sensjoin_field::{presets, Area, Placement};
use sensjoin_query::parse;
use sensjoin_sim::{BaseChoice, RadioConfig};

/// Default experiment seed (vary for repetitions).
pub const SEED: u64 = 20090331;

/// Builds the paper-default network with `n` nodes at constant density.
pub fn paper_network(n: usize, seed: u64) -> SensorNetwork {
    paper_network_with_radio(n, seed, RadioConfig::paper_default())
}

/// Like [`paper_network`] with an explicit radio configuration (used by the
/// packet-size experiment).
pub fn paper_network_with_radio(n: usize, seed: u64, radio: RadioConfig) -> SensorNetwork {
    SensorNetworkBuilder::new()
        .area(Area::for_constant_density(n))
        .placement(Placement::UniformRandom { n })
        .fields(presets::indoor_climate())
        .base(BaseChoice::NearestCorner)
        .radio(radio)
        .seed(seed)
        .build()
        .expect("paper network builds")
}

/// Compiles `sql` and executes `method` on `snet`.
pub fn run(snet: &mut SensorNetwork, method: &dyn JoinMethod, sql: &str) -> JoinOutcome {
    let q = parse(sql).unwrap_or_else(|e| panic!("experiment query parses: {e}\n{sql}"));
    let cq = snet.compile(&q).expect("experiment query compiles");
    method.execute(snet, &cq).expect("execution succeeds")
}

/// Percentage saving of `ours` relative to `baseline`.
pub fn saving_pct(baseline: u64, ours: u64) -> f64 {
    100.0 * (1.0 - ours as f64 / baseline as f64)
}

/// Process-wide peak resident set size in MiB (`VmHWM`), or `None` where
/// `/proc/self/status` is unavailable. A high-water mark: it only ever
/// grows, so sample it right after the allocation of interest.
pub fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let rest = status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))?;
    let kb: f64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
    Some(kb / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensjoin_core::{ExternalJoin, SensJoin};

    #[test]
    fn paper_network_scales_with_density() {
        let small = paper_network(200, 1);
        assert_eq!(small.len(), 200);
        let area = small.net().topology().area();
        let density = 200.0 / (area.width * area.height);
        let paper_density = 1500.0 / (1050.0 * 1050.0);
        assert!((density - paper_density).abs() < 1e-9);
    }

    #[test]
    fn run_executes_both_methods() {
        let mut s = paper_network(150, 2);
        let sql = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                   WHERE A.temp - B.temp > 8.0 ONCE";
        let ext = run(&mut s, &ExternalJoin, sql);
        let sj = run(&mut s, &SensJoin::default(), sql);
        assert!(ext.result.same_result(&sj.result));
    }

    #[test]
    fn saving_formula() {
        assert_eq!(saving_pct(100, 20), 80.0);
        assert_eq!(saving_pct(100, 100), 0.0);
        assert!(saving_pct(100, 150) < 0.0);
    }
}
