//! Minimal Markdown table/report builder for experiment output.

/// A Markdown report section with a title, prose and tables.
#[derive(Debug, Default, Clone)]
pub struct Report {
    buf: String,
}

impl Report {
    /// Starts a report with a section heading.
    pub fn new(title: &str) -> Self {
        let mut r = Report::default();
        r.buf.push_str("## ");
        r.buf.push_str(title);
        r.buf.push_str("\n\n");
        r
    }

    /// Adds a paragraph.
    pub fn para(&mut self, text: &str) -> &mut Self {
        self.buf.push_str(text);
        self.buf.push_str("\n\n");
        self
    }

    /// Adds a table with a header row and data rows.
    pub fn table(&mut self, header: &[&str], rows: &[Vec<String>]) -> &mut Self {
        self.buf.push('|');
        for h in header {
            self.buf.push_str(&format!(" {h} |"));
        }
        self.buf.push_str("\n|");
        for _ in header {
            self.buf.push_str("---|");
        }
        self.buf.push('\n');
        for row in rows {
            debug_assert_eq!(row.len(), header.len(), "row width mismatch");
            self.buf.push('|');
            for cell in row {
                self.buf.push_str(&format!(" {cell} |"));
            }
            self.buf.push('\n');
        }
        self.buf.push('\n');
        self
    }

    /// Adds a fenced ASCII bar chart (one bar per labeled value; bars scale
    /// to the maximum).
    pub fn bar_chart(&mut self, title: &str, rows: &[(String, f64)]) -> &mut Self {
        const WIDTH: f64 = 48.0;
        let max = rows
            .iter()
            .map(|(_, v)| *v)
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        self.buf.push_str("```text\n");
        self.buf.push_str(title);
        self.buf.push('\n');
        for (label, value) in rows {
            let bar = "#".repeat(((value / max) * WIDTH).round().max(0.0) as usize);
            self.buf
                .push_str(&format!("{label:>label_w$} | {bar} {value:.1}\n"));
        }
        self.buf.push_str("```\n\n");
        self
    }

    /// The accumulated Markdown.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Formats a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1} %")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut r = Report::new("Fig. X");
        r.para("Some prose.");
        r.table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let md = r.finish();
        assert!(md.starts_with("## Fig. X\n"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 3 | 4 |"));
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(pct(33.333), "33.3 %");
    }

    #[test]
    fn bar_chart_renders() {
        let mut r = Report::new("Chart");
        r.bar_chart("savings", &[("a".into(), 10.0), ("bb".into(), 20.0)]);
        let md = r.finish();
        assert!(md.contains("```text"));
        // The larger value gets the full-width bar.
        assert!(md.contains(&"#".repeat(48)));
        assert!(md.contains(" a |"));
    }
}
