//! A small, dependency-free command-line argument parser.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, `--key value` options and positionals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    /// `--key value` / `--flag` options (flags map to `"true"`).
    pub options: BTreeMap<String, String>,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
}

/// Errors parsing the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `--key` given twice.
    Duplicate(String),
    /// An option value failed to parse.
    BadValue {
        /// The option name.
        key: String,
        /// The raw value.
        value: String,
        /// Expected type, for the message.
        expected: &'static str,
    },
    /// An unknown option was supplied.
    Unknown(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::Duplicate(k) => write!(f, "option --{k} given twice"),
            ArgError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "option --{key}: expected {expected}, got {value:?}")
            }
            ArgError::Unknown(k) => write!(f, "unknown option --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program name). Options may appear
    /// before or after the subcommand; `--flag` without a following value
    /// (or followed by another option) becomes a boolean flag.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let raw: Vec<String> = raw.into_iter().collect();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(key) = a.strip_prefix("--") {
                let (key, inline) = match key.split_once('=') {
                    Some((k, v)) => (k.to_owned(), Some(v.to_owned())),
                    None => (key.to_owned(), None),
                };
                let value = match inline {
                    Some(v) => v,
                    None => {
                        if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                            i += 1;
                            raw[i].clone()
                        } else {
                            "true".to_owned()
                        }
                    }
                };
                if args.options.insert(key.clone(), value).is_some() {
                    return Err(ArgError::Duplicate(key));
                }
            } else if args.command.is_none() {
                args.command = Some(a.clone());
            } else {
                args.positional.push(a.clone());
            }
            i += 1;
        }
        Ok(args)
    }

    /// Typed option lookup with a default.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_owned(),
                value: v.clone(),
                expected,
            }),
        }
    }

    /// String option lookup.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Boolean flag lookup.
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).is_some_and(|v| v != "false")
    }

    /// Rejects options outside the allowed set.
    pub fn ensure_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.options.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError::Unknown(k.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn subcommand_and_options() {
        let a = parse("run --nodes 500 --seed 7 extra");
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.get_or("nodes", 0usize, "int").unwrap(), 500);
        assert_eq!(a.get_or("seed", 0u64, "int").unwrap(), 7);
        assert_eq!(a.positional, vec!["extra"]);
    }

    #[test]
    fn equals_syntax_and_flags() {
        let a = parse("topology --nodes=200 --verbose");
        assert_eq!(a.get_or("nodes", 0usize, "int").unwrap(), 200);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("run");
        assert_eq!(a.get_or("nodes", 1500usize, "int").unwrap(), 1500);
    }

    #[test]
    fn errors() {
        assert_eq!(
            Args::parse(["--x".into(), "1".into(), "--x".into(), "2".into()]),
            Err(ArgError::Duplicate("x".into()))
        );
        let a = parse("run --nodes abc");
        assert!(matches!(
            a.get_or("nodes", 0usize, "integer"),
            Err(ArgError::BadValue { .. })
        ));
        let a = parse("run --bogus 1");
        assert!(a.ensure_known(&["nodes"]).is_err());
        assert!(a.ensure_known(&["bogus"]).is_ok());
    }

    #[test]
    fn option_before_command() {
        let a = parse("--seed 3 run");
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.get_or("seed", 0u64, "int").unwrap(), 3);
    }
}
