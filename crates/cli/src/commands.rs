//! Subcommand implementations.

use crate::args::Args;
use crate::csvdata;
use sensjoin_core::persist::{self, CheckpointStore, CrashPoint, Reader, Writer};
use sensjoin_core::workload::RangeQueryFamily;
use sensjoin_core::{
    exact_join, kernels_active, ContinuousSensJoin, CostModel, ExternalJoin, GroupRunner,
    JoinMethod, JoinOutcome, JoinResult, MediatedJoin, SensJoin, SensJoinConfig, SensorNetwork,
    SensorNetworkBuilder, StreamJoinEngine, StreamOp,
};
use sensjoin_field::{presets, Area, FieldSpec, Placement};
use sensjoin_query::{parse, CompiledQuery};
use sensjoin_relation::NodeId;
use sensjoin_serve::{DeploymentSpec, ServeConfig, Server, Submission, TenantId};
use sensjoin_sim::{
    ArqPolicy, BaseChoice, BatteryBank, Channel, ChurnTimeline, EnergyModel, LifetimeRun,
    LifetimeUntil, ParentPolicy,
};
use std::io::{BufRead, Write};

const USAGE: &str = "\
sensjoin — SENS-Join over a simulated wireless sensor network

USAGE:
  sensjoin run --sql \"SELECT ...\"  run one query
  sensjoin shell                     interactive SQL loop
  sensjoin topology                  routing-tree statistics
  sensjoin sweep                     selectivity sweep (SENS vs external)
  sensjoin advise --sql ... --fraction F   cost-model method advice
  sensjoin multi \"SQL1\" \"SQL2\" ...    concurrent queries, shared collection
  sensjoin continuous --sql \"... SAMPLE PERIOD n\"   delta rounds of one query
  sensjoin stream --sql \"SELECT ...\"   streaming-ingestion engine driver
  sensjoin serve                     multi-tenant serving simulation
  sensjoin lifetime                  battery-powered rounds until the network dies

COMMON OPTIONS:
  --data FILE      load a trace CSV (x,y,attrs...) instead of generating
  --nodes N        network size                      [default: 500]
  --area  S        square side length in meters      [default: density-scaled]
  --seed  S        placement/data seed               [default: 1]
  --base  POS      base station: corner|center       [default: corner]
  --fields PRESET  indoor|outdoor|uncorrelated       [default: indoor]

ENERGY OPTIONS (run, multi, continuous, lifetime):
  --energy-model M micaz|sunspot|byte:<µJ>         [default: micaz]
                   radio energy model; byte:<µJ> charges a flat per-byte cost

CHANNEL OPTIONS (run, multi, continuous, lifetime):
  --loss P         per-packet loss probability 0..1  [default: 0 = lossless]
  --burst L        mean loss-burst length (packets): Gilbert-Elliott channel
                   instead of independent (Bernoulli) losses
  --arq POLICY     none|ack|summary                  [default: ack when lossy]
  --retries R      ARQ retry / repair-round budget   [default: 3]
  --loss-seed S    channel randomness seed           [default: 7]

CHECKPOINT OPTIONS (continuous, stream, serve):
  --checkpoint-dir DIR   snapshot + write-ahead-log directory; enables
                         crash recovery for the run
  --checkpoint-every K   rounds/batches/ticks between snapshots [default: 1]
  --resume               resume from the latest valid checkpoint in DIR;
                         the completed prefix is skipped and the suffix
                         re-executes bit-identically
  --crash-at P[:N]       inject a crash at point P (PostRound, MidWalAppend,
                         PostWalAppend, MidSnapshotWrite, PostSnapshotTmp,
                         PostSnapshotRename), on its N-th occurrence

CHURN OPTIONS (run, multi, continuous, lifetime):
  --churn H        enable node churn, sampled over a horizon of H seconds
                   of simulated time (crash-stop + reboot with state loss)
  --mtbf S         per-node mean time between failures, seconds [default: 600]
  --mttr S         per-node mean time to repair, seconds [default: mtbf/2]
  --churn-seed S   fault-timeline randomness seed    [default: 13]

run/shell OPTIONS:
  --sql QUERY      the join query (run only)
  --method M       sens|external|mediated|noquad|all [default: all]

sweep OPTIONS:
  --fractions L    comma list of result percentages  [default: 1,5,25,60]

multi OPTIONS (queries are positional arguments):
  --epochs E       number of sample epochs to run    [default: 4]
  --every L        comma list of per-query periods in epochs [default: 1]
  --period S       epoch period in seconds           [default: 30]

continuous OPTIONS:
  --rounds R       number of rounds to run           [default: 4]
  --epsilon E      value-drift suppression threshold [default: 0 = exact]

lifetime OPTIONS (continuous rounds on battery-powered nodes):
  --battery J      per-node battery capacity in joules   [default: 0.5]
  --jitter F       seeded per-node capacity jitter fraction in [0,1)
                                                     [default: 0]
  --parent-policy P  min-hop|power-aware parent selection [default: min-hop]
  --until C        first-death|partition|death:<pct> end criterion
                                                     [default: first-death]
  --max-rounds R   round cap                         [default: 200]
  --sql QUERY      the continuous query to round over [default: a band join]
  --trace FILE     write the packet/repair/battery trace CSV

stream OPTIONS:
  --batches B      delta batches after the cold load [default: 8]
  --rate P         fraction of nodes re-sampled (upserted) per batch
                                                     [default: 0.05]
  --expire P       fraction of live nodes expired per batch [default: 0]
  --verify-every K cross-check against the batch join every K batches
                   (always checked after the last batch)    [default: 0]

serve OPTIONS (simulated tenants submit continuous queries against a
registry of deployments; --nodes/--seed size and seed each deployment):
  --tenants T      total tenants that will submit    [default: 64]
  --deployments D  number of deployments             [default: 4]
  --qps Q          tenant submissions per simulated second [default: 2]
  --duration S     simulated seconds to serve        [default: 300]
  --period S       epoch cadence per deployment, seconds [default: 30]
  --skew F         fraction of tenants submitting the shared template
                   (the rest get unique queries)     [default: 0.5]
  --max-groups G   query groups per deployment (64 queries each)
                                                     [default: 4]
  --queue-depth N  admission queue bound (overflow is shed) [default: 256]
  --admit-per-tick N  admissions per tick, 0 = drain all  [default: 0]
  --no-cache       disable plan caching/dedup (measure the saving)
";

/// Dispatches a parsed command line; returns the process exit code.
pub fn dispatch(args: &Args) -> i32 {
    let result = match args.command.as_deref() {
        Some("run") => cmd_run(args),
        Some("advise") => cmd_advise(args),
        Some("shell") => cmd_shell(args),
        Some("topology") => cmd_topology(args),
        Some("sweep") => cmd_sweep(args),
        Some("multi") => cmd_multi(args),
        Some("continuous") => cmd_continuous(args),
        Some("stream") => cmd_stream(args),
        Some("serve") => cmd_serve(args),
        Some("lifetime") => cmd_lifetime(args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("error: {msg}");
            1
        }
    }
}

fn build_network(args: &Args) -> Result<SensorNetwork, String> {
    let nodes: usize = args
        .get_or("nodes", 500, "integer")
        .map_err(|e| e.to_string())?;
    let seed: u64 = args
        .get_or("seed", 1, "integer")
        .map_err(|e| e.to_string())?;
    let external = match args.get_str("data") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            Some(csvdata::parse_csv(&text)?)
        }
        None => None,
    };
    let area = match args.get_str("area") {
        Some(s) => {
            let side: f64 = s.parse().map_err(|_| format!("bad --area {s:?}"))?;
            Area::new(side, side)
        }
        None => match &external {
            Some(d) => csvdata::bounding_area(d),
            None => Area::for_constant_density(nodes),
        },
    };
    let base = match args.get_str("base").unwrap_or("corner") {
        "corner" => BaseChoice::NearestCorner,
        "center" => BaseChoice::NearestCenter,
        other => return Err(format!("bad --base {other:?} (corner|center)")),
    };
    let fields = field_specs(args)?;
    let (energy, _) = energy_model(args)?;
    let mut builder = SensorNetworkBuilder::new()
        .area(area)
        .placement(Placement::UniformRandom { n: nodes })
        .fields(fields)
        .base(base)
        .energy(energy)
        .seed(seed);
    if let Some(d) = external {
        builder = builder.data(d);
    }
    builder.build().map_err(|e| e.to_string())
}

/// Options shared by every subcommand that charges through the energy model.
const ENERGY_OPTS: &[&str] = &["energy-model"];

/// Parses `--energy-model micaz|sunspot|byte:<µJ>` into the model plus a
/// human-readable label for run headers.
fn energy_model(args: &Args) -> Result<(EnergyModel, String), String> {
    let spec = args.get_str("energy-model").unwrap_or("micaz");
    if let Some(rest) = spec.strip_prefix("byte:") {
        let per_byte: f64 = rest
            .parse()
            .map_err(|_| format!("bad --energy-model {spec:?}"))?;
        if !per_byte.is_finite() || per_byte <= 0.0 {
            return Err("--energy-model byte:<µJ> needs a positive per-byte cost".into());
        }
        return Ok((
            EnergyModel::byte_proportional(per_byte),
            format!("byte-proportional ({per_byte} µJ/B)"),
        ));
    }
    match spec {
        "micaz" => Ok((EnergyModel::micaz(), "micaz".into())),
        "sunspot" => Ok((EnergyModel::sunspot(), "sunspot".into())),
        other => Err(format!(
            "bad --energy-model {other:?} (micaz|sunspot|byte:<µJ>)"
        )),
    }
}

/// Options shared by every subcommand that can run over a lossy channel.
const CHANNEL_OPTS: &[&str] = &["loss", "burst", "arq", "retries", "loss-seed"];

/// Attaches the channel / ARQ configuration from `--loss`, `--burst`,
/// `--arq`, `--retries` and `--loss-seed` to the network.
fn apply_channel(args: &Args, snet: &mut SensorNetwork) -> Result<(), String> {
    let p: f64 = args
        .get_or("loss", 0.0, "probability")
        .map_err(|e| e.to_string())?;
    if !(0.0..1.0).contains(&p) {
        return Err("--loss must be in [0, 1)".into());
    }
    let seed: u64 = args
        .get_or("loss-seed", 7, "integer")
        .map_err(|e| e.to_string())?;
    let retries: u32 = args
        .get_or("retries", 3, "integer")
        .map_err(|e| e.to_string())?;
    let arq = match args
        .get_str("arq")
        .unwrap_or(if p > 0.0 { "ack" } else { "none" })
    {
        "none" => ArqPolicy::None,
        "ack" => ArqPolicy::AckRetransmit {
            max_retries: retries,
        },
        "summary" => ArqPolicy::SummaryRepair {
            max_rounds: retries,
        },
        other => return Err(format!("bad --arq {other:?} (none|ack|summary)")),
    };
    if p > 0.0 {
        let channel = match args.get_str("burst") {
            Some(b) => {
                let burst: f64 = b.parse().map_err(|_| format!("bad --burst {b:?}"))?;
                Channel::gilbert_elliott(p, burst, seed)
            }
            None => Channel::bernoulli(p, seed),
        };
        snet.net_mut().set_channel(Some(channel));
    }
    snet.net_mut().set_arq(arq);
    Ok(())
}

/// Options shared by every subcommand that can run under node churn.
const CHURN_OPTS: &[&str] = &["churn", "mtbf", "mttr", "churn-seed"];

/// Attaches a sampled fault timeline from `--churn`, `--mtbf`, `--mttr` and
/// `--churn-seed` to the network. Times are given in seconds of simulated
/// time and converted to the simulator's microsecond clock.
fn apply_churn(args: &Args, snet: &mut SensorNetwork) -> Result<(), String> {
    let Some(h) = args.get_str("churn") else {
        for opt in &CHURN_OPTS[1..] {
            if args.get_str(opt).is_some() {
                return Err(format!("--{opt} needs --churn HORIZON_S"));
            }
        }
        return Ok(());
    };
    let horizon_s: f64 = h.parse().map_err(|_| format!("bad --churn {h:?}"))?;
    if !horizon_s.is_finite() || horizon_s <= 0.0 {
        return Err("--churn horizon must be positive".into());
    }
    let mtbf_s: f64 = args
        .get_or("mtbf", 600.0, "seconds")
        .map_err(|e| e.to_string())?;
    if !mtbf_s.is_finite() || mtbf_s <= 0.0 {
        return Err("--mtbf must be positive".into());
    }
    let mttr_s: f64 = match args.get_str("mttr") {
        Some(s) => s.parse().map_err(|_| format!("bad --mttr {s:?}"))?,
        None => mtbf_s / 2.0,
    };
    if !mttr_s.is_finite() || mttr_s <= 0.0 {
        return Err("--mttr must be positive".into());
    }
    let seed: u64 = args
        .get_or("churn-seed", 13, "integer")
        .map_err(|e| e.to_string())?;
    let tl = ChurnTimeline::sample(
        snet.len(),
        snet.net().base(),
        mtbf_s * 1e6,
        mttr_s * 1e6,
        (horizon_s * 1e6) as sensjoin_sim::Time,
        seed,
    );
    snet.net_mut().set_churn(Some(tl));
    Ok(())
}

fn field_specs(args: &Args) -> Result<Vec<FieldSpec>, String> {
    Ok(match args.get_str("fields").unwrap_or("indoor") {
        "indoor" => presets::indoor_climate(),
        "outdoor" => presets::outdoor_environment(),
        "uncorrelated" => presets::uncorrelated(),
        other => return Err(format!("bad --fields {other:?}")),
    })
}

/// Options shared by every subcommand that can checkpoint and resume.
const CHECKPOINT_OPTS: &[&str] = &["checkpoint-dir", "checkpoint-every", "resume", "crash-at"];

/// Parsed `--checkpoint-dir` / `--checkpoint-every` / `--resume` /
/// `--crash-at` configuration. `store` is `None` when checkpointing is off.
struct Checkpointing {
    store: Option<CheckpointStore>,
    every: u64,
    resume: bool,
}

/// Parses the checkpoint flags, opening (and possibly crash-arming) the
/// store. The dependent flags are rejected without `--checkpoint-dir`.
fn checkpoint_args(args: &Args) -> Result<Checkpointing, String> {
    let every: u64 = args
        .get_or("checkpoint-every", 1, "integer")
        .map_err(|e| e.to_string())?;
    if every == 0 {
        return Err("--checkpoint-every must be positive".into());
    }
    let Some(dir) = args.get_str("checkpoint-dir") else {
        for opt in &CHECKPOINT_OPTS[1..] {
            if args.get_str(opt).is_some() {
                return Err(format!("--{opt} needs --checkpoint-dir DIR"));
            }
        }
        return Ok(Checkpointing {
            store: None,
            every,
            resume: false,
        });
    };
    let mut store = CheckpointStore::open(dir).map_err(|e| e.to_string())?;
    if let Some(spec) = args.get_str("crash-at") {
        let (name, occurrence) = match spec.split_once(':') {
            Some((n, o)) => (
                n,
                o.parse()
                    .map_err(|_| format!("bad --crash-at occurrence in {spec:?}"))?,
            ),
            None => (spec, 1),
        };
        let point = CrashPoint::ALL
            .into_iter()
            .find(|p| p.to_string().eq_ignore_ascii_case(name))
            .ok_or_else(|| {
                format!(
                    "bad --crash-at point {name:?} (one of {:?})",
                    CrashPoint::ALL
                )
            })?;
        store.arm_crash(point, occurrence);
    }
    Ok(Checkpointing {
        store: Some(store),
        every,
        resume: args.flag("resume"),
    })
}

/// FNV-1a digest of a round outcome — what the WAL records per round so a
/// resumed run can verify its re-executed suffix is bit-identical.
fn outcome_digest(out: &JoinOutcome) -> u64 {
    let mut w = Writer::new();
    match &out.result {
        JoinResult::Rows(rows) => {
            w.put_u8(0);
            w.put_usize(rows.len());
            for row in rows {
                persist::put_f64_vec(&mut w, row);
            }
        }
        JoinResult::Aggregate(vals) => {
            w.put_u8(1);
            w.put_usize(vals.len());
            for v in vals {
                match v {
                    Some(v) => {
                        w.put_bool(true);
                        w.put_f64(*v);
                    }
                    None => w.put_bool(false),
                }
            }
        }
    }
    w.put_u64(out.stats.total_tx_bytes());
    w.put_u64(out.latency_us);
    w.put_bool(out.complete);
    persist::fnv1a(&w.into_bytes())
}

/// Decodes the recovered WAL into a `round → digest` map, keeping only
/// records past `start` (earlier rounds are covered by the snapshot).
fn wal_round_digests(
    wal: &[Vec<u8>],
    start: u64,
) -> Result<std::collections::BTreeMap<u64, u64>, String> {
    let mut digests = std::collections::BTreeMap::new();
    for payload in wal {
        let mut r = Reader::new(payload);
        let mut decode = || -> Result<(u64, u64), persist::CodecError> {
            let round = r.get_u64()?;
            let digest = r.get_u64()?;
            r.expect_end()?;
            Ok((round, digest))
        };
        let (round, digest) = decode().map_err(|e| format!("bad WAL record: {e}"))?;
        if round >= start {
            digests.insert(round, digest);
        }
    }
    Ok(digests)
}

/// Verifies a re-executed round against its WAL digest, or appends a fresh
/// record for a round the WAL has not seen.
fn log_or_verify_round(
    store: &mut CheckpointStore,
    digests: &std::collections::BTreeMap<u64, u64>,
    round: u64,
    digest: u64,
) -> Result<(), String> {
    match digests.get(&round) {
        Some(&logged) if logged != digest => Err(format!(
            "resume replay diverged at round {round}: result digest does not match the WAL \
             (checkpoint directory does not belong to this configuration?)"
        )),
        Some(_) => Ok(()),
        None => {
            let mut w = Writer::new();
            w.put_u64(round);
            w.put_u64(digest);
            store.append_wal(&w.into_bytes()).map_err(|e| e.to_string())
        }
    }
}

fn cmd_multi(args: &Args) -> Result<(), String> {
    let mut known = vec![
        "nodes", "area", "seed", "base", "fields", "epochs", "every", "period", "data",
    ];
    known.extend_from_slice(ENERGY_OPTS);
    known.extend_from_slice(CHANNEL_OPTS);
    known.extend_from_slice(CHURN_OPTS);
    args.ensure_known(&known).map_err(|e| e.to_string())?;
    if args.positional.is_empty() {
        return Err("multi needs one or more SQL queries as positional arguments".into());
    }
    let epochs: u64 = args
        .get_or("epochs", 4, "integer")
        .map_err(|e| e.to_string())?;
    let period_s: u64 = args
        .get_or("period", 30, "integer")
        .map_err(|e| e.to_string())?;
    let seed: u64 = args
        .get_or("seed", 1, "integer")
        .map_err(|e| e.to_string())?;
    let every: Vec<u64> = match args.get_str("every") {
        None => vec![1; args.positional.len()],
        Some(s) => {
            let list: Vec<u64> = s
                .split(',')
                .map(|p| p.trim().parse())
                .collect::<Result<_, _>>()
                .map_err(|e| format!("bad --every: {e}"))?;
            if list.len() == 1 {
                vec![list[0]; args.positional.len()]
            } else if list.len() == args.positional.len() {
                list
            } else {
                return Err(format!(
                    "--every lists {} periods for {} queries",
                    list.len(),
                    args.positional.len()
                ));
            }
        }
    };
    let mut snet = build_network(args)?;
    apply_channel(args, &mut snet)?;
    apply_churn(args, &mut snet)?;
    // A loaded trace is a fixed snapshot; only generated fields drift.
    let specs = if args.get_str("data").is_some() {
        Vec::new()
    } else {
        field_specs(args)?
    };
    let mut runner = GroupRunner::new(SensJoinConfig::default(), period_s * 1_000_000);
    for (sql, &every) in args.positional.iter().zip(&every) {
        let q = parse(sql).map_err(|e| e.to_string())?;
        let cq = snet.compile(&q).map_err(|e| e.to_string())?;
        runner.group_mut().register(&snet, cq, every);
    }
    println!(
        "network: {} nodes, {} concurrent queries, epoch every {period_s} s, energy model {}",
        snet.len(),
        args.positional.len(),
        energy_model(args)?.1
    );
    let reports = runner
        .run(&mut snet, epochs, &specs, seed)
        .map_err(|e| e.to_string())?;
    println!(
        "\n{:>5} {:>4} {:>12} {:>12} {:>8}  rows",
        "epoch", "due", "shared [B]", "unshared [B]", "saving"
    );
    for (_, r) in &reports {
        let shared = r.shared_collection_bytes() + r.shared_filter_bytes() + r.shared_final_bytes();
        let unshared = r.solo_equivalent_total();
        let saving = if unshared > 0 {
            100.0 * (1.0 - shared as f64 / unshared as f64)
        } else {
            0.0
        };
        let rows: Vec<String> = r
            .outcomes
            .iter()
            .map(|o| format!("q{}:{}", o.id.0, o.result.len()))
            .collect();
        let marker = if r.complete { "" } else { "  [INCOMPLETE]" };
        println!(
            "{:>5} {:>4} {:>12} {:>12} {:>7.1}%  {}{marker}",
            r.epoch,
            r.outcomes.len(),
            shared,
            unshared,
            saving,
            rows.join(" ")
        );
    }
    Ok(())
}

fn cmd_continuous(args: &Args) -> Result<(), String> {
    let mut known = vec![
        "nodes", "area", "seed", "base", "fields", "sql", "rounds", "epsilon", "data",
    ];
    known.extend_from_slice(ENERGY_OPTS);
    known.extend_from_slice(CHANNEL_OPTS);
    known.extend_from_slice(CHURN_OPTS);
    known.extend_from_slice(CHECKPOINT_OPTS);
    args.ensure_known(&known).map_err(|e| e.to_string())?;
    let sql = args
        .get_str("sql")
        .ok_or("continuous needs --sql \"SELECT ... SAMPLE PERIOD n\"")?
        .to_owned();
    let rounds: u64 = args
        .get_or("rounds", 4, "integer")
        .map_err(|e| e.to_string())?;
    let epsilon: f64 = args
        .get_or("epsilon", 0.0, "number")
        .map_err(|e| e.to_string())?;
    let seed: u64 = args
        .get_or("seed", 1, "integer")
        .map_err(|e| e.to_string())?;
    let mut snet = build_network(args)?;
    apply_channel(args, &mut snet)?;
    apply_churn(args, &mut snet)?;
    // A loaded trace is a fixed snapshot; only generated fields drift.
    let specs = if args.get_str("data").is_some() {
        Vec::new()
    } else {
        field_specs(args)?
    };
    let q = parse(&sql).map_err(|e| e.to_string())?;
    let cq = snet.compile(&q).map_err(|e| e.to_string())?;
    let mut cont = ContinuousSensJoin::with_epsilon(epsilon);
    let mut ckpt = checkpoint_args(args)?;
    let mut start_round = 0u64;
    let mut wal_digests = std::collections::BTreeMap::new();
    if ckpt.resume {
        let store = ckpt.store.as_ref().expect("--resume implies a store");
        let rec = store.recover().map_err(|e| e.to_string())?;
        if rec.degraded {
            eprintln!("warning: corrupt checkpoint artifacts skipped; resuming from older state");
        }
        if let Some((seq, payload)) = rec.snapshot {
            let mut r = Reader::new(&payload);
            let mut restore = || -> Result<(), persist::CodecError> {
                cont.restore_state(&mut r, &cq)?;
                let snap = persist::get_net_snapshot(&mut r)?;
                snet.net_mut().restore_state(&snap);
                r.expect_end()
            };
            restore().map_err(|e| format!("snapshot state decode failed: {e}"))?;
            start_round = seq;
        }
        wal_digests = wal_round_digests(&rec.wal, start_round)?;
    }
    println!(
        "network: {} nodes, {} rounds, epsilon {epsilon}, energy model {}",
        snet.len(),
        rounds,
        energy_model(args)?.1
    );
    if start_round > 0 {
        println!(
            "resumed from checkpoint: {start_round} rounds restored, {} logged rounds to replay",
            wal_digests.len()
        );
    }
    println!(
        "\n{:>5} {:>6} {:>10} {:>9} {:>10}",
        "round", "rows", "bytes", "retx", "overhead"
    );
    for r in start_round..rounds {
        if r > 0 && !specs.is_empty() {
            snet.resample(&specs, seed.wrapping_add(r));
        }
        let out = cont
            .execute_round(&mut snet, &cq)
            .map_err(|e| e.to_string())?;
        let marker = if out.complete { "" } else { "  [INCOMPLETE]" };
        println!(
            "{r:>5} {:>6} {:>10} {:>9} {:>10}{marker}",
            out.result.len(),
            out.stats.total_tx_bytes(),
            out.stats.total_retx_packets(),
            out.stats.total_overhead_bytes()
        );
        if let Some(store) = &mut ckpt.store {
            store
                .crash_check(CrashPoint::PostRound)
                .map_err(|e| e.to_string())?;
            log_or_verify_round(store, &wal_digests, r, outcome_digest(&out))?;
            if (r + 1) % ckpt.every == 0 {
                // The checkpoint trace row must land inside the snapshot so
                // a resumed run's trace matches the uninterrupted one.
                snet.net_mut().note_checkpoint("continuous");
                let mut w = Writer::new();
                cont.encode_state(&mut w);
                persist::put_net_snapshot(&mut w, &snet.net().export_state());
                store
                    .save_snapshot(r + 1, &w.into_bytes())
                    .map_err(|e| e.to_string())?;
            }
        }
    }
    Ok(())
}

/// `sensjoin lifetime`: continuous rounds of one query on battery-powered
/// nodes until the network dies — first battery death, base-station
/// partition or an N %-death fraction, whichever the `--until` criterion
/// selects — reporting rounds survived, the death order and the residual
/// energy distribution.
fn cmd_lifetime(args: &Args) -> Result<(), String> {
    let mut known = vec![
        "nodes",
        "area",
        "seed",
        "base",
        "fields",
        "sql",
        "data",
        "battery",
        "jitter",
        "parent-policy",
        "until",
        "max-rounds",
        "trace",
    ];
    known.extend_from_slice(ENERGY_OPTS);
    known.extend_from_slice(CHANNEL_OPTS);
    known.extend_from_slice(CHURN_OPTS);
    args.ensure_known(&known).map_err(|e| e.to_string())?;
    let sql = args
        .get_str("sql")
        .unwrap_or(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 3.0 SAMPLE PERIOD 30",
        )
        .to_owned();
    let battery_j: f64 = args
        .get_or("battery", 0.5, "joules")
        .map_err(|e| e.to_string())?;
    if !battery_j.is_finite() || battery_j <= 0.0 {
        return Err("--battery must be a positive capacity in joules".into());
    }
    let jitter: f64 = args
        .get_or("jitter", 0.0, "fraction")
        .map_err(|e| e.to_string())?;
    if !(0.0..1.0).contains(&jitter) {
        return Err("--jitter must be in [0, 1)".into());
    }
    let policy_name = args.get_str("parent-policy").unwrap_or("min-hop");
    let policy = match policy_name {
        "min-hop" => ParentPolicy::MinHop,
        "power-aware" => ParentPolicy::PowerAware,
        other => {
            return Err(format!(
                "bad --parent-policy {other:?} (min-hop|power-aware)"
            ))
        }
    };
    let until_s = args.get_str("until").unwrap_or("first-death");
    let until = if let Some(pct) = until_s.strip_prefix("death:") {
        let pct: f64 = pct
            .parse()
            .map_err(|_| format!("bad --until {until_s:?}"))?;
        if !(0.0..=100.0).contains(&pct) || pct == 0.0 {
            return Err("--until death:<pct> needs a percentage in (0, 100]".into());
        }
        LifetimeUntil::DeathFraction(pct / 100.0)
    } else {
        match until_s {
            "first-death" => LifetimeUntil::FirstDeath,
            "partition" => LifetimeUntil::BasePartition,
            other => {
                return Err(format!(
                    "bad --until {other:?} (first-death|partition|death:<pct>)"
                ))
            }
        }
    };
    let max_rounds: u64 = args
        .get_or("max-rounds", 200, "integer")
        .map_err(|e| e.to_string())?;
    if max_rounds == 0 {
        return Err("--max-rounds must be positive".into());
    }
    let seed: u64 = args
        .get_or("seed", 1, "integer")
        .map_err(|e| e.to_string())?;
    let trace_path = args.get_str("trace").map(str::to_owned);
    let mut snet = build_network(args)?;
    apply_channel(args, &mut snet)?;
    apply_churn(args, &mut snet)?;
    let capacity_uj = battery_j * 1e6;
    let bank = BatteryBank::with_jitter(snet.len(), snet.base(), capacity_uj, jitter, seed);
    snet.net_mut().set_battery(Some(bank));
    snet.net_mut().set_parent_policy(policy);
    if trace_path.is_some() {
        snet.net_mut().set_tracing(true);
    }
    // A loaded trace is a fixed snapshot; only generated fields drift.
    let specs = if args.get_str("data").is_some() {
        Vec::new()
    } else {
        field_specs(args)?
    };
    let q = parse(&sql).map_err(|e| e.to_string())?;
    let cq = snet.compile(&q).map_err(|e| e.to_string())?;
    println!(
        "network: {} nodes, energy model {}, battery {battery_j} J \
         (jitter {:.0} %), parent policy {policy_name}, until {until_s}",
        snet.len(),
        energy_model(args)?.1,
        jitter * 100.0
    );
    let mut cont = ContinuousSensJoin::new();
    let mut run = LifetimeRun::new(snet.net(), until, max_rounds);
    println!(
        "\n{:>5} {:>6} {:>6} {:>12} {:>12}  deaths",
        "round", "rows", "live", "min res [J]", "mean res [J]"
    );
    let reason = loop {
        let r = run.rounds();
        if r > 0 && !specs.is_empty() {
            snet.resample(&specs, seed.wrapping_add(r));
        }
        let out = cont
            .execute_round(&mut snet, &cq)
            .map_err(|e| e.to_string())?;
        let end = run.observe(snet.net());
        let bank = snet
            .net()
            .battery()
            .ok_or("internal: battery bank missing after attach")?;
        let base = snet.base();
        let live = (0..snet.len() as u32)
            .map(NodeId)
            .filter(|&v| v != base && snet.net().is_alive(v))
            .count();
        let min_res = (0..snet.len() as u32)
            .map(NodeId)
            .filter(|&v| v != base && snet.net().is_alive(v))
            .map(|v| bank.residual_uj(v))
            .fold(f64::INFINITY, f64::min);
        let mean_res = {
            let (sum, n) = (0..snet.len() as u32)
                .map(NodeId)
                .filter(|&v| v != base)
                .map(|v| bank.residual_uj(v).max(0.0))
                .fold((0.0, 0usize), |(s, n), r| (s + r, n + 1));
            if n == 0 {
                0.0
            } else {
                sum / n as f64
            }
        };
        let this_round: Vec<String> = run
            .deaths()
            .iter()
            .filter(|&&(round, _)| round == run.rounds())
            .map(|&(_, v)| v.0.to_string())
            .collect();
        println!(
            "{r:>5} {:>6} {live:>6} {:>12.4} {:>12.4}  {}",
            out.result.len(),
            min_res / 1e6,
            mean_res / 1e6,
            this_round.join(",")
        );
        if let Some(reason) = end {
            break reason;
        }
    };
    let report = run.report(snet.net(), reason);
    println!(
        "\nlifetime: {} rounds until {reason}; {} battery deaths, {} live nodes",
        report.rounds,
        report.deaths.len(),
        report.live
    );
    println!(
        "residual energy: min {} J, mean {:.4} J",
        report
            .min_residual_uj()
            .map_or("-".into(), |r| format!("{:.4}", r / 1e6)),
        report.mean_residual_uj() / 1e6
    );
    if !report.deaths.is_empty() {
        let order: Vec<String> = report
            .deaths
            .iter()
            .map(|&(round, v)| format!("{}@r{round}", v.0))
            .collect();
        println!("death order: {}", order.join(" "));
    }
    if let Some(path) = trace_path {
        let trace = snet
            .net()
            .trace()
            .ok_or("internal: trace missing after enabling tracing")?;
        std::fs::write(&path, trace.to_csv()).map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "\nwrote {} trace records ({} packets) to {path}",
            trace.len(),
            trace.total_packets()
        );
    }
    Ok(())
}

/// The per-relation values node `v` would report after local predicates —
/// the `per_rel` payload of its upsert.
fn stream_per_rel(snet: &SensorNetwork, cq: &CompiledQuery, v: NodeId) -> Vec<Option<Vec<f64>>> {
    (0..cq.num_relations())
        .map(|r| {
            let schema = cq.schema(r);
            if snet.belongs(v, schema.name()) {
                let vals = snet.values_for(v, schema);
                cq.eval_local(r, &vals).then_some(vals)
            } else {
                None
            }
        })
        .collect()
}

/// One step of the stream driver's LCG; the state is a plain `u64` so
/// checkpoints can carry it.
fn lcg_pick(rng: &mut u64, m: u64) -> u64 {
    *rng = rng
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*rng >> 33) % m.max(1)
}

fn cmd_stream(args: &Args) -> Result<(), String> {
    let mut known = vec![
        "nodes",
        "area",
        "seed",
        "base",
        "fields",
        "sql",
        "batches",
        "rate",
        "expire",
        "verify-every",
        "data",
    ];
    known.extend_from_slice(CHECKPOINT_OPTS);
    args.ensure_known(&known).map_err(|e| e.to_string())?;
    let sql = args
        .get_str("sql")
        .ok_or("stream needs --sql \"SELECT ...\"")?
        .to_owned();
    let batches: u64 = args
        .get_or("batches", 8, "integer")
        .map_err(|e| e.to_string())?;
    let rate: f64 = args
        .get_or("rate", 0.05, "fraction")
        .map_err(|e| e.to_string())?;
    if !(0.0..=1.0).contains(&rate) || rate == 0.0 {
        return Err("--rate must be in (0, 1]".into());
    }
    let expire: f64 = args
        .get_or("expire", 0.0, "fraction")
        .map_err(|e| e.to_string())?;
    if !(0.0..1.0).contains(&expire) {
        return Err("--expire must be in [0, 1)".into());
    }
    let verify_every: u64 = args
        .get_or("verify-every", 0, "integer")
        .map_err(|e| e.to_string())?;
    let seed: u64 = args
        .get_or("seed", 1, "integer")
        .map_err(|e| e.to_string())?;
    let snet_seed = seed;
    let mut snet = build_network(args)?;
    // A loaded trace is a fixed snapshot; only generated fields drift.
    let specs = if args.get_str("data").is_some() {
        Vec::new()
    } else {
        field_specs(args)?
    };
    let q = parse(&sql).map_err(|e| e.to_string())?;
    let cq = snet.compile(&q).map_err(|e| e.to_string())?;
    let n = snet.len() as u32;
    let mut engine = StreamJoinEngine::new(cq.clone());
    // Shadow of what the engine has been fed, keyed by origin: the batch-join
    // reference must see the values at upsert time, not the drifted field.
    let mut shadow: std::collections::BTreeMap<NodeId, Vec<Option<Vec<f64>>>> =
        std::collections::BTreeMap::new();
    let mut rng: u64 = seed ^ 0x9e37_79b9_7f4a_7c15;
    let verify = |engine: &StreamJoinEngine,
                  shadow: &std::collections::BTreeMap<NodeId, Vec<Option<Vec<f64>>>>|
     -> Result<usize, String> {
        let tuples: Vec<Vec<(NodeId, Vec<f64>)>> = (0..cq.num_relations())
            .map(|r| {
                shadow
                    .iter()
                    .filter_map(|(&v, pr)| pr[r].clone().map(|vals| (v, vals)))
                    .collect()
            })
            .collect();
        let reference = exact_join(&cq, &tuples);
        let streamed = engine.result();
        if streamed.result.same_result(&reference.result)
            && streamed.contributors == reference.contributors
        {
            Ok(reference.result.len())
        } else {
            Err("streaming result diverged from the batch join — bug!".into())
        }
    };
    println!(
        "network: {} nodes, {} relations, kernels: {}",
        n,
        cq.num_relations(),
        kernels_active()
    );
    let stream_digest = |stats: &sensjoin_core::BatchStats, cached_rows: usize| -> u64 {
        let mut w = Writer::new();
        persist::put_batch_stats(&mut w, stats);
        w.put_usize(cached_rows);
        persist::fnv1a(&w.into_bytes())
    };
    let mut ckpt = checkpoint_args(args)?;
    let mut start_batch = 0u64;
    let mut wal_digests = std::collections::BTreeMap::new();
    let mut recovered = None;
    if ckpt.resume {
        let store = ckpt.store.as_ref().expect("--resume implies a store");
        let rec = store.recover().map_err(|e| e.to_string())?;
        if rec.degraded {
            eprintln!("warning: corrupt checkpoint artifacts skipped; resuming from older state");
        }
        if let Some((seq, payload)) = rec.snapshot {
            start_batch = seq;
            recovered = Some(payload);
        }
        // Batch indexes are the WAL keys; the snapshot covers batch
        // `start_batch` itself, so only strictly later records replay.
        let wal_from = if recovered.is_some() {
            start_batch + 1
        } else {
            0
        };
        wal_digests = wal_round_digests(&rec.wal, wal_from)?;
    }
    let mut cold = sensjoin_core::BatchStats::default();
    let mut total = sensjoin_core::BatchStats::default();
    match recovered {
        Some(payload) => {
            let mut r = Reader::new(&payload);
            let mut restore = || -> Result<(), persist::CodecError> {
                cold = persist::get_batch_stats(&mut r)?;
                total = persist::get_batch_stats(&mut r)?;
                rng = r.get_u64()?;
                let nshadow = r.get_count(5)?;
                for _ in 0..nshadow {
                    let v = NodeId(r.get_u32()?);
                    let nrel = r.get_count(1)?;
                    let mut per_rel = Vec::with_capacity(nrel);
                    for _ in 0..nrel {
                        per_rel.push(match r.get_bool()? {
                            true => Some(persist::get_f64_vec(&mut r)?),
                            false => None,
                        });
                    }
                    shadow.insert(v, per_rel);
                }
                engine = persist::get_stream_engine(&mut r, cq.clone())?;
                r.expect_end()
            };
            restore().map_err(|e| format!("snapshot state decode failed: {e}"))?;
            println!(
                "resumed from checkpoint: {start_batch} batches restored, \
                 {} logged batches to replay",
                wal_digests.len()
            );
        }
        None => {
            // Cold load: every node arrives in one batch.
            let ops: Vec<StreamOp> = (0..n)
                .map(|i| {
                    let v = NodeId(i);
                    let per_rel = stream_per_rel(&snet, &cq, v);
                    shadow.insert(v, per_rel.clone());
                    StreamOp::Upsert { origin: v, per_rel }
                })
                .collect();
            cold = engine.apply_batch(&ops);
            let (partitions, promoted) = engine.index_depth();
            println!(
                "cold load: {} ops, {} result rows cached, {} candidates, \
                 {partitions} index partitions ({promoted} promoted)",
                cold.ops,
                engine.cached_rows(),
                cold.candidates,
            );
            if let Some(store) = &mut ckpt.store {
                let digest = stream_digest(&cold, engine.cached_rows());
                log_or_verify_round(store, &wal_digests, 0, digest)?;
            }
        }
    }
    println!(
        "\n{:>5} {:>5} {:>7} {:>7} {:>7} {:>11} {:>7}",
        "batch", "ops", "+rows", "-rows", "result", "candidates", "promos"
    );
    for b in (start_batch + 1)..=batches {
        if !specs.is_empty() {
            snet.resample(&specs, snet_seed.wrapping_add(b));
        }
        let upserts = ((rate * n as f64).ceil() as usize).clamp(1, n as usize);
        let mut chosen: std::collections::BTreeSet<NodeId> = std::collections::BTreeSet::new();
        while chosen.len() < upserts {
            chosen.insert(NodeId(lcg_pick(&mut rng, n as u64) as u32));
        }
        let expirable: Vec<NodeId> = shadow
            .keys()
            .filter(|v| !chosen.contains(v))
            .copied()
            .collect();
        let expires = ((expire * shadow.len() as f64).ceil() as usize).min(expirable.len());
        let mut victims: std::collections::BTreeSet<NodeId> = std::collections::BTreeSet::new();
        while victims.len() < expires {
            victims.insert(expirable[lcg_pick(&mut rng, expirable.len() as u64) as usize]);
        }
        let mut ops: Vec<StreamOp> = Vec::with_capacity(chosen.len() + victims.len());
        for &v in &chosen {
            let per_rel = stream_per_rel(&snet, &cq, v);
            shadow.insert(v, per_rel.clone());
            ops.push(StreamOp::Upsert { origin: v, per_rel });
        }
        for &v in &victims {
            shadow.remove(&v);
            ops.push(StreamOp::Expire { origin: v });
        }
        let stats = engine.apply_batch(&ops);
        println!(
            "{b:>5} {:>5} {:>7} {:>7} {:>7} {:>11} {:>7}",
            stats.ops,
            stats.rows_added,
            stats.rows_removed,
            engine.cached_rows(),
            stats.candidates,
            stats.promotions
        );
        total.merge(&stats);
        if let Some(store) = &mut ckpt.store {
            store
                .crash_check(CrashPoint::PostRound)
                .map_err(|e| e.to_string())?;
            log_or_verify_round(
                store,
                &wal_digests,
                b,
                stream_digest(&stats, engine.cached_rows()),
            )?;
            if b % ckpt.every == 0 {
                let mut w = Writer::new();
                persist::put_batch_stats(&mut w, &cold);
                persist::put_batch_stats(&mut w, &total);
                w.put_u64(rng);
                w.put_usize(shadow.len());
                for (v, per_rel) in &shadow {
                    w.put_u32(v.0);
                    w.put_usize(per_rel.len());
                    for pr in per_rel {
                        match pr {
                            Some(vals) => {
                                w.put_bool(true);
                                persist::put_f64_vec(&mut w, vals);
                            }
                            None => w.put_bool(false),
                        }
                    }
                }
                persist::put_stream_engine(&mut w, &engine);
                store
                    .save_snapshot(b, &w.into_bytes())
                    .map_err(|e| e.to_string())?;
            }
        }
        if (verify_every > 0 && b.is_multiple_of(verify_every)) || b == batches {
            let rows = verify(&engine, &shadow)?;
            println!("       verify: streaming matches batch join ({rows} rows)");
        }
    }
    let (partitions, promoted) = engine.index_depth();
    let per_op = if total.ops > 0 {
        total.candidates as f64 / total.ops as f64
    } else {
        0.0
    };
    println!(
        "\ndelta totals: {} ops, {} candidates ({per_op:.1}/op vs {} at cold load), \
         {} promotions, {partitions} index partitions ({promoted} promoted)",
        total.ops, total.candidates, cold.candidates, total.promotions
    );
    Ok(())
}

fn cmd_advise(args: &Args) -> Result<(), String> {
    args.ensure_known(&[
        "nodes", "area", "seed", "base", "fields", "sql", "fraction", "data",
    ])
    .map_err(|e| e.to_string())?;
    let sql = args
        .get_str("sql")
        .ok_or("advise needs --sql \"SELECT ...\"")?
        .to_owned();
    let fraction: f64 = args
        .get_or("fraction", 0.05, "number in 0..=1")
        .map_err(|e| e.to_string())?;
    if !(0.0..=1.0).contains(&fraction) {
        return Err("--fraction must be between 0 and 1".into());
    }
    let snet = build_network(args)?;
    let query = parse(&sql).map_err(|e| e.to_string())?;
    let cq = snet.compile(&query).map_err(|e| e.to_string())?;
    let model = CostModel::new(&snet, &cq);
    let beta = model.estimate_beta();
    let ext = model.external();
    let sens = model.sens_join(fraction, beta, &SensJoinConfig::default());
    println!(
        "network: {} nodes, tree depth {}",
        snet.len(),
        snet.net().routing().max_depth()
    );
    println!("assumed result fraction: {:.1} %", fraction * 100.0);
    println!("quadtree density: {beta:.1} bits/point (measured)\n");
    println!(
        "predicted external join: {:>8.0} packets {:>10.0} bytes",
        ext.packets, ext.bytes
    );
    println!(
        "predicted SENS-Join:     {:>8.0} packets {:>10.0} bytes",
        sens.packets, sens.bytes
    );
    println!("\nadvice: {:?}", model.recommend(fraction, beta));
    Ok(())
}

fn methods_for(name: &str) -> Result<Vec<Box<dyn JoinMethod>>, String> {
    Ok(match name {
        "sens" => vec![Box::new(SensJoin::default())],
        "external" => vec![Box::new(ExternalJoin)],
        "mediated" => vec![Box::new(MediatedJoin)],
        "noquad" => vec![Box::new(SensJoin::no_quadtree())],
        "all" => vec![
            Box::new(ExternalJoin),
            Box::new(SensJoin::default()),
            Box::new(MediatedJoin),
        ],
        other => return Err(format!("bad --method {other:?}")),
    })
}

fn execute_and_print(snet: &mut SensorNetwork, sql: &str, methods: &str) -> Result<(), String> {
    let query = parse(sql).map_err(|e| e.to_string())?;
    let cq = snet.compile(&query).map_err(|e| e.to_string())?;
    let mut outcomes: Vec<(String, JoinOutcome)> = Vec::new();
    for method in methods_for(methods)? {
        let out = method.execute(snet, &cq).map_err(|e| e.to_string())?;
        outcomes.push((method.name().to_owned(), out));
    }
    // Result (identical across methods by construction).
    let (_, first) = &outcomes[0];
    match &first.result {
        JoinResult::Aggregate(vals) => {
            print!("result:");
            for (item, v) in cq.select().iter().zip(vals) {
                match v {
                    Some(v) => print!("  {} = {v:.4}", item.name),
                    None => print!("  {} = NULL", item.name),
                }
            }
            println!();
        }
        JoinResult::Rows(rows) => {
            println!(
                "result: {} rows ({} contributing nodes)",
                rows.len(),
                first.contributors.len()
            );
            for row in rows.iter().take(10) {
                let cells: Vec<String> = row.iter().map(|v| format!("{v:.3}")).collect();
                println!("  ({})", cells.join(", "));
            }
            if rows.len() > 10 {
                println!("  ... {} more", rows.len() - 10);
            }
        }
    }
    let lossy = snet.net().lossy();
    if lossy {
        println!(
            "\n{:<12} {:>9} {:>10} {:>9} {:>10} {:>12} {:>10}",
            "method", "packets", "bytes", "retx", "overhead", "energy [mJ]", "time [ms]"
        );
    } else {
        println!(
            "\n{:<12} {:>9} {:>10} {:>12} {:>10}",
            "method", "packets", "bytes", "energy [mJ]", "time [ms]"
        );
    }
    for (name, out) in &outcomes {
        let marker = if out.complete { "" } else { "  [INCOMPLETE]" };
        if lossy {
            println!(
                "{:<12} {:>9} {:>10} {:>9} {:>10} {:>12.1} {:>10.0}{marker}",
                name,
                out.stats.total_tx_packets(),
                out.stats.total_tx_bytes(),
                out.stats.total_retx_packets(),
                out.stats.total_overhead_bytes(),
                out.stats.total_energy_uj() / 1000.0,
                out.latency_us as f64 / 1000.0
            );
        } else {
            println!(
                "{:<12} {:>9} {:>10} {:>12.1} {:>10.0}{marker}",
                name,
                out.stats.total_tx_packets(),
                out.stats.total_tx_bytes(),
                out.stats.total_energy_uj() / 1000.0,
                out.latency_us as f64 / 1000.0
            );
        }
    }
    // Cross-check. An incomplete execution lost result data by definition,
    // so only complete outcomes must agree.
    for (name, out) in &outcomes[1..] {
        if first.complete && out.complete && !out.result.same_result(&first.result) {
            return Err(format!("method {name} produced a different result — bug!"));
        }
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let mut known = vec![
        "nodes", "area", "seed", "base", "fields", "sql", "method", "trace", "data",
    ];
    known.extend_from_slice(ENERGY_OPTS);
    known.extend_from_slice(CHANNEL_OPTS);
    known.extend_from_slice(CHURN_OPTS);
    args.ensure_known(&known).map_err(|e| e.to_string())?;
    let sql = args
        .get_str("sql")
        .ok_or("run needs --sql \"SELECT ...\"")?
        .to_owned();
    let methods = args.get_str("method").unwrap_or("all").to_owned();
    let trace_path = args.get_str("trace").map(str::to_owned);
    if trace_path.is_some() && methods == "all" {
        return Err("--trace needs a single --method (the trace covers one execution)".into());
    }
    let mut snet = build_network(args)?;
    apply_channel(args, &mut snet)?;
    apply_churn(args, &mut snet)?;
    println!(
        "network: {} nodes, tree depth {}, base {}, energy model {}",
        snet.len(),
        snet.net().routing().max_depth(),
        snet.base(),
        energy_model(args)?.1
    );
    if snet.net().lossy() {
        println!(
            "channel: loss {:.1} %, arq {:?}",
            100.0
                * args
                    .get_or("loss", 0.0, "probability")
                    .map_err(|e| e.to_string())?,
            snet.net().arq()
        );
    }
    if snet.net().has_churn() {
        println!("churn: sampled fault timeline enabled (see --mtbf / --mttr / --churn-seed)");
    }
    if trace_path.is_some() {
        snet.net_mut().set_tracing(true);
    }
    execute_and_print(&mut snet, &sql, &methods)?;
    if let Some(path) = trace_path {
        let trace = snet
            .net()
            .trace()
            .ok_or("internal: trace missing after enabling tracing")?;
        std::fs::write(&path, trace.to_csv()).map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "\nwrote {} trace records ({} packets) to {path}",
            trace.len(),
            trace.total_packets()
        );
    }
    Ok(())
}

fn cmd_shell(args: &Args) -> Result<(), String> {
    args.ensure_known(&["nodes", "area", "seed", "base", "fields", "method", "data"])
        .map_err(|e| e.to_string())?;
    let methods = args.get_str("method").unwrap_or("all").to_owned();
    let mut snet = build_network(args)?;
    println!(
        "network: {} nodes, tree depth {} — enter a query ending in ONCE, or 'quit'",
        snet.len(),
        snet.net().routing().max_depth()
    );
    let stdin = std::io::stdin();
    loop {
        print!("sensjoin> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin
            .lock()
            .read_line(&mut line)
            .map_err(|e| e.to_string())?
            == 0
        {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.eq_ignore_ascii_case("quit") || line.eq_ignore_ascii_case("exit") {
            break;
        }
        if let Err(e) = execute_and_print(&mut snet, line, &methods) {
            eprintln!("error: {e}");
        }
    }
    Ok(())
}

/// Renders an ASCII map of the deployment: digits are routing-tree depths
/// (mod 10), `B` the base station, `!` unreachable nodes, `.` empty space.
fn ascii_map(snet: &SensorNetwork, cols: usize, rows: usize) -> String {
    let topo = snet.net().topology();
    let routing = snet.net().routing();
    let area = topo.area();
    let mut grid = vec![vec!['.'; cols]; rows];
    for v in (0..snet.len() as u32).map(NodeId) {
        let p = topo.position(v);
        let cx = ((p.x / area.width * cols as f64) as usize).min(cols - 1);
        let cy = ((p.y / area.height * rows as f64) as usize).min(rows - 1);
        let ch = if v == snet.base() {
            'B'
        } else {
            match routing.depth(v) {
                Some(d) => char::from_digit(d % 10, 10).unwrap_or('?'),
                None => '!',
            }
        };
        // Base station and failures win over plain depth digits.
        let cur = grid[rows - 1 - cy][cx];
        if cur == '.' || ch == 'B' || (ch == '!' && cur != 'B') {
            grid[rows - 1 - cy][cx] = ch;
        }
    }
    let mut out = String::new();
    out.push('+');
    out.push_str(&"-".repeat(cols));
    out.push_str("+\n");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push_str("|\n");
    }
    out.push('+');
    out.push_str(&"-".repeat(cols));
    out.push_str("+\n");
    out
}

fn cmd_topology(args: &Args) -> Result<(), String> {
    args.ensure_known(&["nodes", "area", "seed", "base", "fields", "map", "data"])
        .map_err(|e| e.to_string())?;
    let snet = build_network(args)?;
    let routing = snet.net().routing();
    let topo = snet.net().topology();
    let n = snet.len();
    let reachable = n - routing.unreachable().len();
    let mut depth_hist: std::collections::BTreeMap<u32, usize> = Default::default();
    let mut max_children = 0usize;
    let mut leaf = 0usize;
    for v in (0..n as u32).map(NodeId) {
        if let Some(d) = routing.depth(v) {
            *depth_hist.entry(d).or_default() += 1;
            max_children = max_children.max(routing.children(v).len());
            if routing.children(v).is_empty() {
                leaf += 1;
            }
        }
    }
    let avg_neighbors: f64 = (0..n as u32)
        .map(|i| topo.neighbors(NodeId(i)).len())
        .sum::<usize>() as f64
        / n as f64;
    println!("nodes:         {n} ({reachable} reachable)");
    println!(
        "area:          {:.0} m x {:.0} m",
        topo.area().width,
        topo.area().height
    );
    println!("radio range:   {:.0} m", topo.range());
    println!("avg neighbors: {avg_neighbors:.1}");
    println!("base station:  {}", snet.base());
    println!("tree depth:    {}", routing.max_depth());
    println!("leaf nodes:    {leaf}");
    println!("max children:  {max_children}");
    println!("depth histogram:");
    for (d, count) in depth_hist {
        println!("  {d:>3}: {}", "#".repeat((count * 60 / n).max(1)));
    }
    if args.flag("map") {
        println!("\nmap (digits = tree depth mod 10, B = base, ! = unreachable):");
        print!("{}", ascii_map(&snet, 72, 24));
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    args.ensure_known(&[
        "nodes",
        "area",
        "seed",
        "base",
        "fields",
        "fractions",
        "data",
    ])
    .map_err(|e| e.to_string())?;
    let fractions: Vec<f64> = args
        .get_str("fractions")
        .unwrap_or("1,5,25,60")
        .split(',')
        .map(|s| s.trim().parse::<f64>().map(|p| p / 100.0))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("bad --fractions: {e}"))?;
    let mut snet = build_network(args)?;
    let family = RangeQueryFamily::ratio_33();
    println!(
        "{:>10} {:>16} {:>16} {:>9}",
        "fraction", "external [pkts]", "SENS-Join [pkts]", "saving"
    );
    for f in fractions {
        let cal = family.calibrate(&snet, f);
        let q = parse(&cal.sql).map_err(|e| e.to_string())?;
        let cq = snet.compile(&q).map_err(|e| e.to_string())?;
        let ext = ExternalJoin
            .execute(&mut snet, &cq)
            .map_err(|e| e.to_string())?;
        let sj = SensJoin::default()
            .execute(&mut snet, &cq)
            .map_err(|e| e.to_string())?;
        println!(
            "{:>9.1}% {:>16} {:>16} {:>8.1}%",
            100.0 * cal.achieved_fraction,
            ext.stats.total_tx_packets(),
            sj.stats.total_tx_packets(),
            100.0
                * (1.0 - sj.stats.total_tx_packets() as f64 / ext.stats.total_tx_packets() as f64)
        );
    }
    Ok(())
}

/// `sensjoin serve`: simulate tenants submitting continuous queries
/// against a registry of deployments through the serving layer —
/// admission decisions, epoch batching, plan caching, and the metrics
/// surface, printed per tick and summarized at the end.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let mut known = vec![
        "nodes",
        "seed",
        "tenants",
        "deployments",
        "qps",
        "duration",
        "period",
        "skew",
        "max-groups",
        "queue-depth",
        "admit-per-tick",
        "no-cache",
    ];
    known.extend_from_slice(CHECKPOINT_OPTS);
    args.ensure_known(&known).map_err(|e| e.to_string())?;
    let nodes: usize = args
        .get_or("nodes", 80, "integer")
        .map_err(|e| e.to_string())?;
    let seed: u64 = args
        .get_or("seed", 1, "integer")
        .map_err(|e| e.to_string())?;
    let tenants: u64 = args
        .get_or("tenants", 64, "integer")
        .map_err(|e| e.to_string())?;
    let deployments: usize = args
        .get_or("deployments", 4, "integer")
        .map_err(|e| e.to_string())?;
    let qps: f64 = args
        .get_or("qps", 2.0, "number")
        .map_err(|e| e.to_string())?;
    let duration_s: u64 = args
        .get_or("duration", 300, "integer")
        .map_err(|e| e.to_string())?;
    let period_s: u64 = args
        .get_or("period", 30, "integer")
        .map_err(|e| e.to_string())?;
    let skew: f64 = args
        .get_or("skew", 0.5, "number")
        .map_err(|e| e.to_string())?;
    if deployments == 0 || period_s == 0 {
        return Err("serve needs --deployments ≥ 1 and --period ≥ 1".into());
    }
    let mut cfg = ServeConfig {
        period_us: period_s * 1_000_000,
        ..ServeConfig::default()
    };
    cfg.max_groups = args
        .get_or("max-groups", cfg.max_groups, "integer")
        .map_err(|e| e.to_string())?;
    cfg.queue_depth = args
        .get_or("queue-depth", cfg.queue_depth, "integer")
        .map_err(|e| e.to_string())?;
    cfg.admit_per_tick = args
        .get_or("admit-per-tick", cfg.admit_per_tick, "integer")
        .map_err(|e| e.to_string())?;
    cfg.plan_cache = !args.flag("no-cache");

    let mut ckpt = checkpoint_args(args)?;
    let specs: Vec<DeploymentSpec> = (0..deployments)
        .map(|d| DeploymentSpec::new(format!("dep{d}"), nodes, seed.wrapping_add(d as u64)))
        .collect();
    let mut start_tick = 0u64;
    let mut next_tenant = 0u64;
    let mut wal_digests = std::collections::BTreeMap::new();
    let mut restored = None;
    if ckpt.resume {
        let store = ckpt.store.as_ref().expect("--resume implies a store");
        let rec = store.recover().map_err(|e| e.to_string())?;
        if rec.degraded {
            eprintln!("warning: corrupt checkpoint artifacts skipped; resuming from older state");
        }
        if let Some((seq, payload)) = rec.snapshot {
            let mut r = Reader::new(&payload);
            let mut restore = || -> Result<(u64, Server), persist::CodecError> {
                let nt = r.get_u64()?;
                let bytes = r.get_bytes()?;
                let server = Server::restore_state(cfg.clone(), &specs, &bytes)?;
                r.expect_end()?;
                Ok((nt, server))
            };
            let (nt, server) =
                restore().map_err(|e| format!("snapshot state decode failed: {e}"))?;
            next_tenant = nt;
            restored = Some(server);
            start_tick = seq;
        }
        wal_digests = wal_round_digests(&rec.wal, start_tick)?;
    }
    let mut server = match restored {
        Some(server) => server,
        None => {
            let mut server = Server::new(cfg);
            for spec in &specs {
                server.add_deployment(spec).map_err(|e| e.to_string())?;
            }
            server
        }
    };
    println!(
        "serving {deployments} deployments × {nodes} nodes; {tenants} tenants, \
         {qps} submissions/s for {duration_s} s (epoch every {period_s} s)"
    );
    if start_tick > 0 {
        println!(
            "resumed from checkpoint: {start_tick} ticks restored, {} logged ticks to replay",
            wal_digests.len()
        );
    }

    let ticks = duration_s.div_ceil(period_s);
    let per_tick = (qps * period_s as f64).round().max(0.0) as u64;
    println!(
        "\n{:>5} {:>9} {:>9} {:>9} {:>6} {:>6} {:>7}",
        "tick", "submitted", "admitted", "rejected", "shed", "queue", "epochs"
    );
    for t in start_tick..ticks {
        let mut submitted = 0u64;
        let mut shed = 0u64;
        while submitted < per_tick && next_tenant < tenants {
            let i = next_tenant;
            next_tenant += 1;
            submitted += 1;
            // Template skew by fractional accumulation: any prefix of the
            // tenant sequence contains ⌊n·skew⌋±1 shared-template tenants,
            // interleaved with unique-constant ones.
            let shares = ((i + 1) as f64 * skew).floor() > (i as f64 * skew).floor();
            let sql = if shares {
                format!(
                    "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                     WHERE A.temp - B.temp > 4.0 SAMPLE PERIOD {period_s}"
                )
            } else {
                format!(
                    "SELECT A.pres, B.pres FROM Sensors A, Sensors B \
                     WHERE A.temp - B.temp > {:.2} SAMPLE PERIOD {period_s}",
                    3.0 + 0.01 * (i % 200) as f64
                )
            };
            // Deployment choice: a multiplicative hash, so it does not
            // correlate with the skew interleaving above.
            let dep = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % deployments;
            let decision = server.submit(Submission {
                tenant: TenantId(i),
                deployment: format!("dep{dep}"),
                sql,
                every: 1 + i % 3,
            });
            if decision.is_some_and(|d| !d.admitted()) {
                shed += 1;
            }
        }
        let report = server.tick().map_err(|e| format!("{e:?}"))?;
        let admitted = report.decisions.iter().filter(|d| d.admitted()).count();
        let rejected = report.decisions.len() - admitted;
        println!(
            "{t:>5} {submitted:>9} {admitted:>9} {rejected:>9} {shed:>6} {:>6} {:>7}",
            server.queue_len(),
            report.epochs.len()
        );
        if let Some(store) = &mut ckpt.store {
            store
                .crash_check(CrashPoint::PostRound)
                .map_err(|e| e.to_string())?;
            let mut w = Writer::new();
            w.put_u64(submitted);
            w.put_u64(shed);
            w.put_usize(admitted);
            w.put_usize(rejected);
            w.put_usize(server.queue_len());
            w.put_usize(report.epochs.len());
            for e in &report.epochs {
                w.put_u64(e.tenant.0);
                w.put_usize(e.outcome.result.len());
            }
            log_or_verify_round(store, &wal_digests, t, persist::fnv1a(&w.into_bytes()))?;
            if (t + 1) % ckpt.every == 0 {
                let mut w = Writer::new();
                w.put_u64(next_tenant);
                w.put_bytes(&server.export_state());
                store
                    .save_snapshot(t + 1, &w.into_bytes())
                    .map_err(|e| e.to_string())?;
            }
        }
    }

    let m = server.metrics();
    let lat = m.epoch_latency_us();
    println!(
        "\ntotals: {} submitted, {} admitted, {} rejected, {} shed",
        m.totals.submitted,
        m.totals.admitted,
        m.totals.rejected(),
        m.totals.shed
    );
    println!(
        "epoch latency: p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms over {} group epochs",
        lat.p50() as f64 / 1000.0,
        lat.p99() as f64 / 1000.0,
        lat.max() as f64 / 1000.0,
        lat.count()
    );
    println!(
        "plan cache: {} hits / {} builds ({:.0} % hit rate), {} plans cached",
        m.cache_hits,
        m.cache_misses,
        100.0 * m.cache_hit_rate(),
        server.cached_plans()
    );
    println!(
        "\n{:<8} {:>9} {:>8} {:>12} {:>12} {:>8}",
        "dep", "admitted", "epochs", "shared [B]", "solo-eq [B]", "saving"
    );
    for (d, dm) in m.deployments().iter().enumerate() {
        let saving = if dm.solo_bytes > 0 {
            100.0 * (1.0 - dm.shared_bytes as f64 / dm.solo_bytes as f64)
        } else {
            0.0
        };
        println!(
            "dep{d:<5} {:>9} {:>8} {:>12} {:>12} {saving:>7.1}%",
            dm.admission.admitted, dm.epochs, dm.shared_bytes, dm.solo_bytes
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn help_succeeds() {
        assert_eq!(dispatch(&args("help")), 0);
        assert_eq!(dispatch(&Args::default()), 0);
    }

    #[test]
    fn unknown_command_fails() {
        assert_ne!(dispatch(&args("frobnicate")), 0);
    }

    #[test]
    fn serve_runs_and_rejects_bad_flags() {
        let a = args(
            "serve --nodes 50 --seed 3 --tenants 6 --deployments 2 \
             --qps 1 --duration 90 --period 30 --skew 0.5",
        );
        assert_eq!(dispatch(&a), 0);
        assert_ne!(dispatch(&args("serve --bogus 1")), 0);
        assert_ne!(dispatch(&args("serve --deployments 0")), 0);
    }

    #[test]
    fn checkpoint_flags_require_dir_and_sane_values() {
        let sql = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                   WHERE A.temp - B.temp > 4.0 SAMPLE PERIOD 30";
        let with_sql = |spec: &str| {
            let mut a = args(spec);
            a.options.insert("sql".into(), sql.into());
            a
        };
        // Dependent flags without --checkpoint-dir are structured errors.
        assert_ne!(
            dispatch(&with_sql("continuous --nodes 40 --rounds 2 --resume")),
            0
        );
        assert_ne!(
            dispatch(&with_sql(
                "continuous --nodes 40 --rounds 2 --checkpoint-every 2"
            )),
            0
        );
        assert_ne!(
            dispatch(&with_sql(
                "continuous --nodes 40 --rounds 2 --crash-at PostRound"
            )),
            0
        );
        // Zero cadence and unknown crash points are rejected too.
        let dir = std::env::temp_dir().join(format!("sensjoin-cli-ckpt-{}", std::process::id()));
        let dirs = dir.to_string_lossy().into_owned();
        assert_ne!(
            dispatch(&with_sql(&format!(
                "continuous --nodes 40 --rounds 2 --checkpoint-dir {dirs} --checkpoint-every 0"
            ))),
            0
        );
        assert_ne!(
            dispatch(&with_sql(&format!(
                "continuous --nodes 40 --rounds 2 --checkpoint-dir {dirs} --crash-at Nowhere"
            ))),
            0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn continuous_crash_then_resume_completes() {
        let sql = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                   WHERE A.temp - B.temp > 4.0 SAMPLE PERIOD 30";
        let dir = std::env::temp_dir().join(format!("sensjoin-cli-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dirs = dir.to_string_lossy().into_owned();
        let with_sql = |spec: &str| {
            let mut a = args(spec);
            a.options.insert("sql".into(), sql.into());
            a
        };
        // Injected crash exits nonzero but leaves durable state...
        assert_ne!(
            dispatch(&with_sql(&format!(
                "continuous --nodes 40 --rounds 4 --checkpoint-dir {dirs} \
                 --checkpoint-every 2 --crash-at PostRound:3"
            ))),
            0
        );
        // ...and --resume finishes the run cleanly.
        assert_eq!(
            dispatch(&with_sql(&format!(
                "continuous --nodes 40 --rounds 4 --checkpoint-dir {dirs} --resume"
            ))),
            0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_executes_query() {
        let a = args("run --nodes 80 --seed 2 --method sens --sql placeholder");
        // Patch in a real query (whitespace split would break it).
        let mut a = a;
        a.options.insert(
            "sql".into(),
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 4.0 ONCE"
                .into(),
        );
        assert_eq!(dispatch(&a), 0);
    }

    #[test]
    fn run_rejects_bad_sql() {
        let mut a = args("run --nodes 50 --method sens");
        a.options.insert("sql".into(), "SELEKT nonsense".into());
        assert_ne!(dispatch(&a), 0);
        // And missing --sql entirely.
        assert_ne!(dispatch(&args("run --nodes 50")), 0);
    }

    #[test]
    fn ascii_map_renders() {
        let a = args("topology --nodes 120 --seed 4 --map");
        assert_eq!(dispatch(&a), 0);
        // Direct render check.
        let snet = build_network(&args("topology --nodes 120 --seed 4")).unwrap();
        let map = ascii_map(&snet, 40, 16);
        assert_eq!(map.matches('B').count(), 1);
        assert!(map.lines().count() == 18); // 16 rows + 2 borders
        assert!(map.chars().any(|c| c.is_ascii_digit()));
    }

    #[test]
    fn topology_and_sweep_run() {
        assert_eq!(dispatch(&args("topology --nodes 100 --seed 3")), 0);
        assert_eq!(
            dispatch(&args("sweep --nodes 120 --seed 3 --fractions 5,25")),
            0
        );
    }

    #[test]
    fn trace_writes_csv_consistent_with_stats() {
        let dir = std::env::temp_dir().join("sensjoin-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        let mut a = args("run --nodes 80 --seed 2 --method sens");
        a.options.insert(
            "sql".into(),
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 4.0 ONCE"
                .into(),
        );
        a.options
            .insert("trace".into(), path.to_str().unwrap().to_owned());
        assert_eq!(dispatch(&a), 0);
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.starts_with("seq,phase,kind,from,to,bytes,packets,retransmissions,acked\n"));
        assert!(csv.lines().count() > 10);
        // --trace with --method all is ambiguous.
        let mut bad = args("run --nodes 50 --method all --trace /tmp/x.csv");
        bad.options.insert(
            "sql".into(),
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B ONCE".into(),
        );
        assert_ne!(dispatch(&bad), 0);
    }

    #[test]
    fn churn_flags_run_on_every_executor() {
        let sql_once = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                        WHERE A.temp - B.temp > 3.0 ONCE";
        let sql_cont = "SELECT A.hum FROM Sensors A, Sensors B \
                        WHERE A.temp - B.temp > 2.0 SAMPLE PERIOD 30";
        // Aggressive churn so the timeline actually fires at test scale.
        let mut a = args(
            "run --nodes 80 --seed 3 --method sens --churn 60 --mtbf 20 --mttr 10 --churn-seed 5",
        );
        a.options.insert("sql".into(), sql_once.into());
        assert_eq!(dispatch(&a), 0);
        let mut c = args("continuous --nodes 70 --seed 3 --rounds 3 --churn 60 --mtbf 20");
        c.options.insert("sql".into(), sql_cont.into());
        assert_eq!(dispatch(&c), 0);
        let mut m = args("multi --nodes 70 --seed 3 --epochs 2 --churn 60 --mtbf 20");
        m.positional = vec![sql_cont.into()];
        assert_eq!(dispatch(&m), 0);
        // --mtbf without --churn is rejected, as are nonsense values.
        let mut bad = args("run --nodes 50 --mtbf 20");
        bad.options.insert("sql".into(), sql_once.into());
        assert_ne!(dispatch(&bad), 0);
        let mut bad = args("run --nodes 50 --churn 0");
        bad.options.insert("sql".into(), sql_once.into());
        assert_ne!(dispatch(&bad), 0);
    }

    #[test]
    fn energy_model_flag_selects_and_prints() {
        let sql = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                   WHERE A.temp - B.temp > 4.0 ONCE";
        for model in ["micaz", "sunspot", "byte:2.5"] {
            let mut a = args("run --nodes 60 --seed 2 --method sens");
            a.options.insert("energy-model".into(), model.into());
            a.options.insert("sql".into(), sql.into());
            assert_eq!(dispatch(&a), 0, "--energy-model {model} failed");
        }
        // The flag reaches the continuous executor too.
        let mut c = args("continuous --nodes 60 --seed 3 --rounds 2 --energy-model sunspot");
        c.options.insert(
            "sql".into(),
            "SELECT A.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 2.0 SAMPLE PERIOD 30"
                .into(),
        );
        assert_eq!(dispatch(&c), 0);
        // Unknown models and nonsense byte costs are rejected.
        let mut bad = args("run --nodes 50 --energy-model fusion");
        bad.options.insert("sql".into(), sql.into());
        assert_ne!(dispatch(&bad), 0);
        let mut bad = args("run --nodes 50 --energy-model byte:-1");
        bad.options.insert("sql".into(), sql.into());
        assert_ne!(dispatch(&bad), 0);
    }

    #[test]
    fn lifetime_runs_until_criterion() {
        // A tiny battery guarantees deaths well inside the round cap.
        let a = args("lifetime --nodes 50 --seed 3 --battery 0.005 --jitter 0.1 --max-rounds 30");
        assert_eq!(dispatch(&a), 0);
        let b = args(
            "lifetime --nodes 50 --seed 3 --battery 0.005 --parent-policy power-aware \
             --until death:10 --max-rounds 30",
        );
        assert_eq!(dispatch(&b), 0);
        let c = args(
            "lifetime --nodes 50 --seed 3 --battery 0.005 --until partition \
             --max-rounds 10 --energy-model sunspot",
        );
        assert_eq!(dispatch(&c), 0);
        // Bad parameters are rejected.
        assert_ne!(dispatch(&args("lifetime --battery 0")), 0);
        assert_ne!(dispatch(&args("lifetime --jitter 1.5")), 0);
        assert_ne!(dispatch(&args("lifetime --parent-policy psychic")), 0);
        assert_ne!(dispatch(&args("lifetime --until death:0")), 0);
        assert_ne!(dispatch(&args("lifetime --until eventually")), 0);
        assert_ne!(dispatch(&args("lifetime --max-rounds 0")), 0);
        assert_ne!(dispatch(&args("lifetime --bogus 1")), 0);
    }

    #[test]
    fn multi_runs_concurrent_queries() {
        let mut a = args("multi --nodes 70 --seed 5 --epochs 2 --every 1,2");
        a.positional = vec![
            "SELECT A.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 2 SAMPLE PERIOD 30"
                .into(),
            "SELECT B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 3 SAMPLE PERIOD 30"
                .into(),
        ];
        assert_eq!(dispatch(&a), 0);
        // No queries, or a mismatched --every list, is an error.
        assert_ne!(dispatch(&args("multi --nodes 50")), 0);
        let mut bad = args("multi --nodes 50 --every 1,2,3");
        bad.positional = vec!["SELECT A.temp FROM Sensors A, Sensors B ONCE".into()];
        assert_ne!(dispatch(&bad), 0);
    }

    #[test]
    fn bad_options_rejected() {
        assert_ne!(dispatch(&args("run --bogus 1")), 0);
        assert_ne!(dispatch(&args("topology --base nowhere")), 0);
        assert_ne!(dispatch(&args("topology --fields lava")), 0);
    }

    #[test]
    fn lossy_run_with_arq() {
        let mut a = args("run --nodes 60 --seed 3 --method sens --loss 0.05 --retries 8");
        a.options.insert(
            "sql".into(),
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 4.0 ONCE"
                .into(),
        );
        assert_eq!(dispatch(&a), 0);
        // Bursty variant with summary-and-repair.
        let mut b = args(
            "run --nodes 60 --seed 3 --method sens --loss 0.05 --burst 4 \
             --arq summary --retries 8",
        );
        b.options.insert(
            "sql".into(),
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 4.0 ONCE"
                .into(),
        );
        assert_eq!(dispatch(&b), 0);
        // Bad channel parameters are rejected.
        assert_ne!(dispatch(&args("run --nodes 50 --loss 1.5 --sql x")), 0);
        assert_ne!(
            dispatch(&args("run --nodes 50 --loss 0.1 --arq wishful --sql x")),
            0
        );
    }

    #[test]
    fn continuous_runs_rounds() {
        let mut a = args("continuous --nodes 60 --seed 5 --rounds 3");
        a.options.insert(
            "sql".into(),
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 3.0 SAMPLE PERIOD 30"
                .into(),
        );
        assert_eq!(dispatch(&a), 0);
        // Lossy continuous rounds with the default ack ARQ.
        let mut b = args("continuous --nodes 60 --seed 5 --rounds 3 --loss 0.05 --retries 8");
        b.options.insert(
            "sql".into(),
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 3.0 SAMPLE PERIOD 30"
                .into(),
        );
        assert_eq!(dispatch(&b), 0);
        // Missing --sql is an error.
        assert_ne!(dispatch(&args("continuous --nodes 50")), 0);
    }
}
