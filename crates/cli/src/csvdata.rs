//! CSV loading of real deployment traces.
//!
//! Format: a header line `x,y,attr1,attr2,...` followed by one line per
//! node. Positions are meters; attribute types are inferred from the names
//! (`temp*` → °C, `hum*` → %, `pres*` → hPa, `light*` → lx, `volt*` → V,
//! anything else a raw 2-byte value).

use sensjoin_core::{attr_type_for, ExternalData};
use sensjoin_field::Position;

/// Parses a trace CSV into [`ExternalData`].
pub fn parse_csv(text: &str) -> Result<ExternalData, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or("empty CSV")?;
    let cols: Vec<&str> = header.split(',').map(str::trim).collect();
    if cols.len() < 3 || !cols[0].eq_ignore_ascii_case("x") || !cols[1].eq_ignore_ascii_case("y") {
        return Err("header must be 'x,y,<attr>,...' with at least one attribute".into());
    }
    let attrs: Vec<(String, sensjoin_relation::AttrType)> = cols[2..]
        .iter()
        .map(|name| ((*name).to_owned(), attr_type_for(name)))
        .collect();
    let mut positions = Vec::new();
    let mut rows = Vec::new();
    for (lineno, line) in lines {
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != cols.len() {
            return Err(format!(
                "line {}: {} cells, expected {}",
                lineno + 1,
                cells.len(),
                cols.len()
            ));
        }
        let parse = |i: usize| -> Result<f64, String> {
            cells[i]
                .parse()
                .map_err(|_| format!("line {}: bad number {:?}", lineno + 1, cells[i]))
        };
        positions.push(Position::new(parse(0)?, parse(1)?));
        let row: Result<Vec<f64>, String> = (2..cells.len()).map(parse).collect();
        rows.push(row?);
    }
    if positions.is_empty() {
        return Err("CSV contains no data rows".into());
    }
    Ok(ExternalData {
        positions,
        attrs,
        rows,
    })
}

/// The bounding square of the positions, with a 5 % margin.
pub fn bounding_area(data: &ExternalData) -> sensjoin_field::Area {
    let max_x = data.positions.iter().map(|p| p.x).fold(0.0f64, f64::max);
    let max_y = data.positions.iter().map(|p| p.y).fold(0.0f64, f64::max);
    let side = (max_x.max(max_y) * 1.05).max(1.0);
    sensjoin_field::Area::new(side, side)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
x,y,temp,hum
10.0,20.0,21.5,40.1
30.0,40.0,22.0,39.0

55.5,60.0,20.0,44.4
";

    #[test]
    fn parses_sample() {
        let d = parse_csv(SAMPLE).unwrap();
        assert_eq!(d.positions.len(), 3);
        assert_eq!(d.attrs.len(), 2);
        assert_eq!(d.attrs[0].0, "temp");
        assert_eq!(d.rows[2], vec![20.0, 44.4]);
        let area = bounding_area(&d);
        assert!(area.width >= 60.0);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_csv("").is_err());
        assert!(parse_csv("a,b,c\n1,2,3\n").is_err()); // header not x,y
        assert!(parse_csv("x,y,temp\n1,2\n").is_err()); // cell count
        assert!(parse_csv("x,y,temp\n1,2,zzz\n").is_err()); // bad number
        assert!(parse_csv("x,y,temp\n").is_err()); // no rows
    }
}
