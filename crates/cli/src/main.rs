//! `sensjoin` — run join queries over simulated sensor networks.
//!
//! ```text
//! sensjoin run --sql "SELECT ..." [--nodes N] [--seed S] [--method all]
//! sensjoin shell [--nodes N] [--seed S]        interactive SQL loop
//! sensjoin topology [--nodes N] [--seed S]     routing-tree statistics
//! sensjoin sweep [--fractions 1,5,25] [...]    selectivity sweep
//! sensjoin multi "SQL1" "SQL2" [--epochs E]    concurrent queries sharing
//!                                              one collection phase
//! sensjoin stream --sql "..." [--batches B]    streaming-ingestion engine
//!                                              driver (delta batches)
//! sensjoin lifetime [--battery J] [--until C]  battery-powered rounds until
//!                                              first death / partition /
//!                                              N %-death (network lifetime)
//! sensjoin serve [--tenants T] [--qps Q]       multi-tenant serving
//!                                              simulation (admission,
//!                                              plan caching, metrics)
//! ```

mod args;
mod commands;
mod csvdata;

use args::Args;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let code = match Args::parse(raw) {
        Ok(args) => commands::dispatch(&args),
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    };
    std::process::exit(code);
}
