//! MSB-first bit I/O for the compressed stream formats.

/// Bit-level writer (MSB-first within each byte).
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        if self.len / 8 == self.buf.len() {
            self.buf.push(0);
        }
        if bit {
            self.buf[self.len / 8] |= 0x80 >> (self.len % 8);
        }
        self.len += 1;
    }

    /// Appends the low `count` bits of `value`, most significant first.
    #[inline]
    pub fn push_bits(&mut self, value: u64, count: u32) {
        debug_assert!(count <= 64);
        for i in (0..count).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    /// Appends a Huffman code given as `(code, len)` (code already MSB-first).
    #[inline]
    pub fn push_code(&mut self, code: u32, len: u8) {
        self.push_bits(u64::from(code), u32::from(len));
    }

    /// Pads to a byte boundary with zero bits.
    pub fn align_byte(&mut self) {
        while !self.len.is_multiple_of(8) {
            self.push_bit(false);
        }
    }

    /// Appends whole bytes (must be byte-aligned).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        debug_assert_eq!(self.len % 8, 0, "push_bytes requires alignment");
        self.buf.extend_from_slice(bytes);
        self.len += bytes.len() * 8;
    }

    /// Bits written so far.
    pub fn len_bits(&self) -> usize {
        self.len
    }

    /// Returns the padded byte buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bit-level reader (MSB-first within each byte).
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Reads from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.buf.len() * 8 {
            return None;
        }
        let bit = (self.buf[self.pos / 8] >> (7 - self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `count` bits MSB-first.
    #[inline]
    pub fn read_bits(&mut self, count: u32) -> Option<u64> {
        debug_assert!(count <= 64);
        let mut v = 0u64;
        for _ in 0..count {
            v = (v << 1) | u64::from(self.read_bit()?);
        }
        Some(v)
    }

    /// Skips to the next byte boundary.
    pub fn align_byte(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Reads `n` whole bytes (must be byte-aligned).
    pub fn read_bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        debug_assert_eq!(self.pos % 8, 0);
        let start = self.pos / 8;
        if start + n > self.buf.len() {
            return None;
        }
        self.pos += n * 8;
        Some(&self.buf[start..start + n])
    }

    /// Bit position.
    #[allow(dead_code)] // diagnostic helper, exercised in tests
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_roundtrip() {
        let mut w = BitWriter::new();
        w.push_bits(0b110, 3);
        w.align_byte();
        w.push_bytes(&[0xAB, 0xCD]);
        w.push_bits(0x3FF, 10);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b110));
        r.align_byte();
        assert_eq!(r.read_bytes(2), Some(&[0xAB, 0xCD][..]));
        assert_eq!(r.read_bits(10), Some(0x3FF));
    }

    #[test]
    fn end_of_stream() {
        let mut r = BitReader::new(&[0x80]);
        assert_eq!(r.read_bits(8), Some(0x80));
        assert_eq!(r.read_bit(), None);
    }
}
