//! The "bzip2-like" codec: block-wise Burrows–Wheeler transform,
//! move-to-front, zero-run-length coding and a dynamic Huffman back end.

use crate::bitio::{BitReader, BitWriter};
use crate::checksum::adler32;
use crate::huffman::{Decoder, Encoder};
use crate::mtf::{mtf_decode, mtf_encode};
use crate::{Codec, DecompressError};

/// Container magic ("SB" for sensor-bzip).
const MAGIC: [u8; 2] = [b'S', b'B'];
/// Maximum block size. Real bzip2 uses 100 KiB–900 KiB; pre-computation
/// messages are far smaller, so blocks rarely split at all.
const BLOCK: usize = 1 << 15;
/// Entropy alphabet: 0..=255 MTF symbols, 256 = zero-run escape, 257 = EOB.
const NSYM: usize = 258;
const ZRUN: usize = 256;
const EOB: usize = 257;

/// Sorts the cyclic rotations of `data` by prefix doubling, returning the
/// BWT (last column) and the primary index (row of the original string).
pub fn bwt_forward(data: &[u8]) -> (Vec<u8>, u32) {
    let n = data.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rank: Vec<u32> = data.iter().map(|&b| u32::from(b)).collect();
    let mut next_rank = vec![0u32; n];
    let mut k = 1usize;
    loop {
        let key = |i: u32| -> (u32, u32) {
            let i = i as usize;
            (rank[i], rank[(i + k) % n])
        };
        order.sort_unstable_by_key(|&i| key(i));
        next_rank[order[0] as usize] = 0;
        for w in 1..n {
            let prev = order[w - 1];
            let cur = order[w];
            next_rank[cur as usize] = next_rank[prev as usize] + u32::from(key(prev) != key(cur));
        }
        std::mem::swap(&mut rank, &mut next_rank);
        if rank[order[n - 1] as usize] as usize == n - 1 || k >= n {
            break;
        }
        k *= 2;
    }
    let mut last = Vec::with_capacity(n);
    let mut primary = 0u32;
    for (row, &start) in order.iter().enumerate() {
        if start == 0 {
            primary = row as u32;
        }
        last.push(data[(start as usize + n - 1) % n]);
    }
    (last, primary)
}

/// Inverts [`bwt_forward`].
///
/// Returns `None` if `primary` is out of range.
pub fn bwt_inverse(last: &[u8], primary: u32) -> Option<Vec<u8>> {
    let n = last.len();
    if n == 0 {
        return if primary == 0 { Some(Vec::new()) } else { None };
    }
    if primary as usize >= n {
        return None;
    }
    let mut counts = [0usize; 256];
    for &c in last {
        counts[usize::from(c)] += 1;
    }
    let mut starts = [0usize; 256];
    let mut sum = 0;
    for c in 0..256 {
        starts[c] = sum;
        sum += counts[c];
    }
    let mut occ = [0usize; 256];
    let mut lf = vec![0u32; n];
    for (i, &c) in last.iter().enumerate() {
        let c = usize::from(c);
        lf[i] = (starts[c] + occ[c]) as u32;
        occ[c] += 1;
    }
    let mut out = vec![0u8; n];
    let mut row = primary as usize;
    for slot in out.iter_mut().rev() {
        *slot = last[row];
        row = lf[row] as usize;
    }
    Some(out)
}

/// Zero-run-length encodes an MTF stream into entropy symbols.
fn zrle_encode(mtf: &[u8]) -> Vec<(usize, u32)> {
    // (symbol, run_payload); run_payload only meaningful for ZRUN.
    let mut out = Vec::with_capacity(mtf.len() / 2 + 2);
    let mut i = 0;
    while i < mtf.len() {
        if mtf[i] == 0 {
            let mut run = 1u32;
            while i + (run as usize) < mtf.len() && mtf[i + run as usize] == 0 {
                run += 1;
            }
            out.push((ZRUN, run));
            i += run as usize;
        } else {
            out.push((usize::from(mtf[i]), 0));
            i += 1;
        }
    }
    out.push((EOB, 0));
    out
}

/// The "bzip2-like" codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bwt;

impl Codec for Bwt {
    fn name(&self) -> &'static str {
        "bwt-mtf-huffman (bzip2-like)"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut w = BitWriter::new();
        w.push_bytes(&MAGIC);
        let n_blocks = data.len().div_ceil(BLOCK);
        w.push_bits(n_blocks as u64, 16);
        for block in data.chunks(BLOCK) {
            let (last, primary) = bwt_forward(block);
            let symbols = zrle_encode(&mtf_encode(&last));
            let mut freq = vec![0u64; NSYM];
            for &(s, _) in &symbols {
                freq[s] += 1;
            }
            let (enc, lengths) = Encoder::from_freqs(&freq);
            w.push_bits(block.len() as u64, 16);
            w.push_bits(u64::from(primary), 16);
            // 4-bit code lengths don't fit (max 15 does); 4 bits per length.
            for &l in &lengths {
                w.push_bits(u64::from(l), 4);
            }
            for &(s, run) in &symbols {
                enc.emit(s, &mut w);
                if s == ZRUN {
                    // Elias-style: 5-bit width, then the run value itself.
                    let bits = 32 - run.leading_zeros();
                    w.push_bits(u64::from(bits), 5);
                    w.push_bits(u64::from(run), bits);
                }
            }
            w.align_byte();
        }
        w.push_bits(u64::from(adler32(data)), 32);
        w.finish()
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, DecompressError> {
        let mut r = BitReader::new(data);
        if r.read_bytes(2) != Some(&MAGIC[..]) {
            return Err(DecompressError::BadMagic);
        }
        let n_blocks = r.read_bits(16).ok_or(DecompressError::Truncated)? as usize;
        let mut out = Vec::new();
        for _ in 0..n_blocks {
            let len = r.read_bits(16).ok_or(DecompressError::Truncated)? as usize;
            let primary = r.read_bits(16).ok_or(DecompressError::Truncated)? as u32;
            let mut lengths = vec![0u8; NSYM];
            for l in lengths.iter_mut() {
                *l = r.read_bits(4).ok_or(DecompressError::Truncated)? as u8;
            }
            let dec = Decoder::from_lengths(&lengths);
            let mut mtf = Vec::with_capacity(len);
            loop {
                let s = dec.read_symbol(&mut r)?;
                match s {
                    EOB => break,
                    ZRUN => {
                        let bits = r.read_bits(5).ok_or(DecompressError::Truncated)? as u32;
                        if bits == 0 || bits > 17 {
                            return Err(DecompressError::Corrupt("bad zero-run width"));
                        }
                        let run = r.read_bits(bits).ok_or(DecompressError::Truncated)?;
                        if mtf.len() + run as usize > len {
                            return Err(DecompressError::Corrupt("zero run overflow"));
                        }
                        mtf.extend(std::iter::repeat_n(0u8, run as usize));
                    }
                    s => {
                        if mtf.len() >= len {
                            return Err(DecompressError::Corrupt("block overflow"));
                        }
                        mtf.push(s as u8);
                    }
                }
            }
            if mtf.len() != len {
                return Err(DecompressError::Corrupt("block underflow"));
            }
            let last = mtf_decode(&mtf);
            let block =
                bwt_inverse(&last, primary).ok_or(DecompressError::Corrupt("bad primary index"))?;
            out.extend_from_slice(&block);
            r.align_byte();
        }
        let sum = r.read_bits(32).ok_or(DecompressError::Truncated)? as u32;
        if sum != adler32(&out) {
            return Err(DecompressError::ChecksumMismatch);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bwt_banana() {
        // Classic example: rotations of "banana" sorted; last column.
        let (last, primary) = bwt_forward(b"banana");
        assert_eq!(bwt_inverse(&last, primary).unwrap(), b"banana");
        // "banana" BWT (cyclic, no sentinel) is "nnbaaa".
        assert_eq!(&last, b"nnbaaa");
    }

    #[test]
    fn bwt_roundtrip_various() {
        for data in [
            b"".to_vec(),
            b"a".to_vec(),
            b"abracadabra".to_vec(),
            b"mississippi".to_vec(),
            vec![0u8; 1000],
            (0u8..=255).cycle().take(5000).collect(),
        ] {
            let (last, primary) = bwt_forward(&data);
            assert_eq!(bwt_inverse(&last, primary).unwrap(), data);
        }
    }

    #[test]
    fn bwt_all_equal_rotations() {
        // Degenerate input where all rotations compare equal.
        let data = vec![b'x'; 64];
        let (last, primary) = bwt_forward(&data);
        assert_eq!(bwt_inverse(&last, primary).unwrap(), data);
    }

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let packed = Bwt.compress(data);
        assert_eq!(Bwt.decompress(&packed).unwrap(), data, "len {}", data.len());
        packed
    }

    #[test]
    fn codec_roundtrip() {
        roundtrip(b"");
        roundtrip(b"x");
        roundtrip(&b"the quick brown fox ".repeat(100));
        roundtrip(&(0u32..20_000).map(|i| (i % 7) as u8).collect::<Vec<_>>());
    }

    #[test]
    fn multi_block_roundtrip() {
        let data: Vec<u8> = (0u32..100_000).map(|i| (i / 100) as u8).collect();
        assert!(data.len() > BLOCK);
        roundtrip(&data);
    }

    #[test]
    fn repetitive_text_compresses() {
        let data = b"sensor reading 21.5 sensor reading 21.6 ".repeat(100);
        let packed = roundtrip(&data);
        assert!(
            packed.len() < data.len() / 3,
            "{} of {}",
            packed.len(),
            data.len()
        );
    }

    #[test]
    fn small_input_overhead_exceeds_savings() {
        // The paper's observation: bzip2 *grows* small inputs (5666 > 5619
        // packets in §VI-B).
        let data = b"21.5;400;300";
        let packed = Bwt.compress(data);
        assert!(packed.len() > data.len());
        assert_eq!(Bwt.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn corrupt_detected() {
        let data = b"correct horse battery staple".repeat(10);
        let mut packed = Bwt.compress(&data);
        let mid = packed.len() / 2;
        packed[mid] ^= 0x10;
        assert!(Bwt.decompress(&packed).is_err());
        assert_eq!(Bwt.decompress(b"XY"), Err(DecompressError::BadMagic));
    }
}
