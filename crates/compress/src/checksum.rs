//! Adler-32, the checksum of the zlib container.

const MOD_ADLER: u32 = 65_521;

/// Computes the Adler-32 checksum of `data`.
pub fn adler32(data: &[u8]) -> u32 {
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    // Process in chunks small enough that the sums cannot overflow before
    // the modulo (5552 is the standard bound).
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += u32::from(byte);
            b += a;
        }
        a %= MOD_ADLER;
        b %= MOD_ADLER;
    }
    (b << 16) | a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 1950 reference values.
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"a"), 0x0062_0062);
        assert_eq!(adler32(b"abc"), 0x024D_0127);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn large_input_no_overflow() {
        let data = vec![0xFFu8; 1_000_000];
        // Just ensure it terminates and is stable.
        assert_eq!(adler32(&data), adler32(&data));
    }
}
