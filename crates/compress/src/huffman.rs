//! Canonical Huffman coding with length-limited codes.
//!
//! Both compressed formats use canonical codes: only the code *lengths* are
//! stored in headers; codes are reconstructed deterministically (shorter
//! codes first, ties by symbol index). Lengths are limited to
//! [`MAX_CODE_LEN`]; if the optimal tree is deeper, symbol frequencies are
//! repeatedly halved (floored at 1) until it fits — the standard practical
//! workaround, costing a negligible fraction of a bit per symbol.

use crate::bitio::{BitReader, BitWriter};
use crate::DecompressError;

/// Maximum Huffman code length (as in DEFLATE).
pub const MAX_CODE_LEN: u8 = 15;

/// Computes canonical code lengths for `freqs` (0 = symbol absent).
///
/// Returns one length per symbol; all-zero frequencies yield all-zero
/// lengths. A single present symbol gets length 1.
pub fn code_lengths(freqs: &[u64]) -> Vec<u8> {
    let mut freqs = freqs.to_vec();
    loop {
        let lengths = huffman_lengths(&freqs);
        if lengths.iter().all(|&l| l <= MAX_CODE_LEN) {
            return lengths;
        }
        for f in freqs.iter_mut().filter(|f| **f > 0) {
            *f = (*f >> 1).max(1);
        }
    }
}

/// Unrestricted Huffman code lengths via the classic two-queue algorithm.
fn huffman_lengths(freqs: &[u64]) -> Vec<u8> {
    #[derive(Debug)]
    struct Node {
        freq: u64,
        kids: Option<(usize, usize)>,
        symbol: usize,
    }
    let mut nodes: Vec<Node> = freqs
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f > 0)
        .map(|(s, &f)| Node {
            freq: f,
            kids: None,
            symbol: s,
        })
        .collect();
    let mut lengths = vec![0u8; freqs.len()];
    match nodes.len() {
        0 => return lengths,
        1 => {
            lengths[nodes[0].symbol] = 1;
            return lengths;
        }
        _ => {}
    }
    // Min-heap over (freq, node index).
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| std::cmp::Reverse((n.freq, i)))
        .collect();
    while heap.len() > 1 {
        let std::cmp::Reverse((fa, a)) = heap.pop().expect("len > 1");
        let std::cmp::Reverse((fb, b)) = heap.pop().expect("len > 1");
        let parent = nodes.len();
        nodes.push(Node {
            freq: fa + fb,
            kids: Some((a, b)),
            symbol: usize::MAX,
        });
        heap.push(std::cmp::Reverse((fa + fb, parent)));
    }
    // Depth-first depth assignment from the root.
    let root = nodes.len() - 1;
    let mut stack = vec![(root, 0u8)];
    while let Some((i, depth)) = stack.pop() {
        match nodes[i].kids {
            Some((a, b)) => {
                stack.push((a, depth + 1));
                stack.push((b, depth + 1));
            }
            None => lengths[nodes[i].symbol] = depth.max(1),
        }
    }
    lengths
}

/// Assigns canonical codes (MSB-first values) from lengths.
pub fn canonical_codes(lengths: &[u8]) -> Vec<u32> {
    let max_len = lengths.iter().copied().max().unwrap_or(0);
    let mut bl_count = vec![0u32; usize::from(max_len) + 1];
    for &l in lengths {
        if l > 0 {
            bl_count[usize::from(l)] += 1;
        }
    }
    let mut next_code = vec![0u32; usize::from(max_len) + 2];
    let mut code = 0u32;
    for bits in 1..=usize::from(max_len) {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next_code[usize::from(l)];
                next_code[usize::from(l)] += 1;
                c
            }
        })
        .collect()
}

/// An encoding table: canonical `(code, length)` per symbol.
#[derive(Debug, Clone)]
pub struct Encoder {
    codes: Vec<u32>,
    lengths: Vec<u8>,
}

impl Encoder {
    /// Builds an encoder from code lengths.
    pub fn from_lengths(lengths: &[u8]) -> Self {
        Self {
            codes: canonical_codes(lengths),
            lengths: lengths.to_vec(),
        }
    }

    /// Builds an encoder (and the lengths to ship) from frequencies.
    pub fn from_freqs(freqs: &[u64]) -> (Self, Vec<u8>) {
        let lengths = code_lengths(freqs);
        (Self::from_lengths(&lengths), lengths)
    }

    /// Emits the code for `symbol`.
    ///
    /// # Panics
    /// Panics (debug) if the symbol has no code.
    #[inline]
    pub fn emit(&self, symbol: usize, w: &mut BitWriter) {
        let len = self.lengths[symbol];
        debug_assert!(len > 0, "symbol {symbol} has no code");
        w.push_code(self.codes[symbol], len);
    }

    /// Length of the code for `symbol` in bits (0 if absent).
    #[inline]
    pub fn len_of(&self, symbol: usize) -> u8 {
        self.lengths[symbol]
    }
}

/// A decoding table for canonical codes: per-length first-code ranges.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// For each length l: (first_code, first_index, count).
    ranges: Vec<(u32, u32, u32)>,
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u32>,
    max_len: u8,
}

impl Decoder {
    /// Builds a decoder from code lengths.
    pub fn from_lengths(lengths: &[u8]) -> Self {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        let mut symbols: Vec<u32> = (0..lengths.len() as u32)
            .filter(|&s| lengths[s as usize] > 0)
            .collect();
        symbols.sort_by_key(|&s| (lengths[s as usize], s));
        let codes = canonical_codes(lengths);
        let mut ranges = vec![(0u32, 0u32, 0u32); usize::from(max_len) + 1];
        let mut idx = 0u32;
        for l in 1..=max_len {
            let count = lengths.iter().filter(|&&x| x == l).count() as u32;
            let first_code = symbols
                .get(idx as usize)
                .filter(|&&s| lengths[s as usize] == l)
                .map(|&s| codes[s as usize])
                .unwrap_or(0);
            ranges[usize::from(l)] = (first_code, idx, count);
            idx += count;
        }
        Self {
            ranges,
            symbols,
            max_len,
        }
    }

    /// Decodes one symbol from the reader.
    pub fn read_symbol(&self, r: &mut BitReader<'_>) -> Result<usize, DecompressError> {
        let mut code = 0u32;
        for l in 1..=self.max_len {
            code = (code << 1) | u32::from(r.read_bit().ok_or(DecompressError::Truncated)?);
            let (first, idx, count) = self.ranges[usize::from(l)];
            if count > 0 && code >= first && code < first + count {
                return Ok(self.symbols[(idx + code - first) as usize] as usize);
            }
        }
        Err(DecompressError::Corrupt("invalid Huffman code"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_symbols(freqs: &[u64], stream: &[usize]) {
        let (enc, lengths) = Encoder::from_freqs(freqs);
        let dec = Decoder::from_lengths(&lengths);
        let mut w = BitWriter::new();
        for &s in stream {
            enc.emit(s, &mut w);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in stream {
            assert_eq!(dec.read_symbol(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn skewed_frequencies() {
        let freqs = [1000, 500, 100, 10, 1, 0, 3];
        roundtrip_symbols(&freqs, &[0, 1, 2, 3, 4, 6, 0, 0, 1]);
        let lengths = code_lengths(&freqs);
        // More frequent symbols never get longer codes.
        assert!(lengths[0] <= lengths[1]);
        assert!(lengths[1] <= lengths[2]);
        assert_eq!(lengths[5], 0);
    }

    #[test]
    fn single_symbol_alphabet() {
        let lengths = code_lengths(&[0, 42, 0]);
        assert_eq!(lengths, vec![0, 1, 0]);
        roundtrip_symbols(&[0, 42, 0], &[1, 1, 1]);
    }

    #[test]
    fn kraft_inequality_holds() {
        let freqs: Vec<u64> = (1..=300).map(|i| i * i).collect();
        let lengths = code_lengths(&freqs);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-i32::from(l)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft sum {kraft}");
        assert!(lengths.iter().all(|&l| l <= MAX_CODE_LEN));
    }

    #[test]
    fn length_limit_enforced() {
        // Fibonacci-like frequencies force deep optimal trees.
        let mut freqs = vec![1u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = code_lengths(&freqs);
        assert!(lengths.iter().all(|&l| l > 0 && l <= MAX_CODE_LEN));
        // Still decodable.
        roundtrip_symbols(&freqs, &[0, 39, 20, 5]);
    }

    #[test]
    fn canonical_code_order() {
        // lengths (2,1,3,3) -> canonical: sym1=0, sym0=10, sym2=110, sym3=111
        let codes = canonical_codes(&[2, 1, 3, 3]);
        assert_eq!(codes, vec![0b10, 0b0, 0b110, 0b111]);
    }

    #[test]
    fn invalid_code_detected() {
        // Alphabet {0,1} with lengths [1,0]: only code '0' valid at len 1...
        // lengths [1] for symbol 0 only; reading '1' forever is invalid.
        let dec = Decoder::from_lengths(&[1, 0]);
        let bytes = [0xFF];
        let mut r = BitReader::new(&bytes);
        assert!(dec.read_symbol(&mut r).is_err());
    }

    #[test]
    fn empty_alphabet() {
        assert_eq!(code_lengths(&[0, 0, 0]), vec![0, 0, 0]);
    }
}
