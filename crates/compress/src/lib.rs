#![warn(missing_docs)]

//! General-purpose compression baselines for the SENS-Join evaluation.
//!
//! §VI-B of the paper compares the quadtree representation against two
//! classic general-purpose compressors on the Join-Attribute-Collection
//! traffic: **zlib** (LZ77 + Huffman coding) and **bzip2** (Burrows–Wheeler
//! transform). Neither runs on actual sensor nodes — the comparison
//! establishes an *upper bound* on what generic compression could achieve,
//! and shows that it is poor on the small data volumes of the
//! pre-computation (fixed headers dominate, there is little history for LZ
//! matching, BWT blocks are tiny).
//!
//! This crate implements both families from scratch:
//!
//! * [`Lz77Huffman`] — "zlib-like": greedy hash-chain LZ77 (32 KiB window,
//!   3..=258 byte matches) followed by canonical Huffman coding with
//!   DEFLATE's length/distance code structure; each block is emitted in
//!   whichever of {stored, static codes, dynamic codes} is smallest, plus a
//!   small container header and an Adler-32 checksum — the same structural
//!   overheads real zlib pays.
//! * [`Bwt`] — "bzip2-like": block-wise Burrows–Wheeler transform (prefix-
//!   doubling rotation sort), move-to-front, zero-run-length coding, and a
//!   dynamic Huffman back end, with a container magic and per-block headers.
//! * [`Identity`] — the "no compression" baseline.
//!
//! All codecs implement [`Codec`] and round-trip losslessly (lossy
//! compression would produce incorrect join results, §VI-B).
//!
//! # Example
//!
//! ```
//! use sensjoin_compress::{Codec, Lz77Huffman, Bwt, Identity};
//!
//! let data = b"abcabcabcabcabcabc from a sensor network".repeat(10);
//! for codec in [&Lz77Huffman as &dyn Codec, &Bwt, &Identity] {
//!     let packed = codec.compress(&data);
//!     assert_eq!(codec.decompress(&packed).unwrap(), data);
//! }
//! assert!(Lz77Huffman.compress(&data).len() < data.len());
//! ```

mod bitio;
mod bwt;
mod checksum;
mod huffman;
mod lz77;
mod mtf;
mod zlib_like;

pub use bwt::Bwt;
pub use zlib_like::Lz77Huffman;

/// Errors during decompression of a corrupt or truncated stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// The stream ended early.
    Truncated,
    /// The container magic did not match.
    BadMagic,
    /// A Huffman code or structural field was invalid.
    Corrupt(&'static str),
    /// The checksum did not match the decompressed payload.
    ChecksumMismatch,
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed stream truncated"),
            DecompressError::BadMagic => write!(f, "container magic mismatch"),
            DecompressError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
            DecompressError::ChecksumMismatch => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for DecompressError {}

/// A lossless byte-stream codec.
pub trait Codec {
    /// Human-readable codec name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Compresses `data`. Always succeeds; incompressible input may grow by
    /// the container overhead.
    fn compress(&self, data: &[u8]) -> Vec<u8>;

    /// Decompresses a buffer produced by [`Codec::compress`].
    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, DecompressError>;
}

/// The "no compression" baseline: bytes pass through unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Codec for Identity {
    fn name(&self) -> &'static str {
        "none"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        data.to_vec()
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, DecompressError> {
        Ok(data.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let data = b"hello".to_vec();
        assert_eq!(Identity.compress(&data), data);
        assert_eq!(Identity.decompress(&data).unwrap(), data);
        assert_eq!(Identity.name(), "none");
    }
}
