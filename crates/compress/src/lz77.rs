//! Greedy LZ77 matching with hash chains (the zlib matcher, simplified).

/// Sliding-window size (32 KiB, as in zlib).
pub const WINDOW: usize = 32 * 1024;
/// Minimum useful match length.
pub const MIN_MATCH: usize = 3;
/// Maximum match length (as in DEFLATE).
pub const MAX_MATCH: usize = 258;
/// Maximum hash-chain probes per position.
const MAX_CHAIN: usize = 128;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes back.
    Match {
        /// Match length, `MIN_MATCH..=MAX_MATCH`.
        len: u16,
        /// Distance, `1..=WINDOW`.
        dist: u16,
    },
}

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let h = (u32::from(data[i]) << 16) ^ (u32::from(data[i + 1]) << 8) ^ u32::from(data[i + 2]);
    (h.wrapping_mul(2654435761) >> 17) as usize & (HASH_SIZE - 1)
}

const HASH_SIZE: usize = 1 << 14;

/// Tokenizes `data` with greedy longest-match parsing.
pub fn tokenize(data: &[u8]) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(data.len() / 2 + 1);
    if data.len() < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    // head[h] = most recent position with hash h; prev[i % WINDOW] = previous
    // position in the chain of i.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW];
    let mut i = 0;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            let mut cand = head[h];
            let mut probes = 0;
            while cand != usize::MAX && i - cand <= WINDOW && probes < MAX_CHAIN {
                let max_len = (data.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < max_len && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l == max_len {
                        break;
                    }
                }
                cand = prev[cand % WINDOW];
                probes += 1;
            }
            // Update chains for position i.
            prev[i % WINDOW] = head[h];
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                len: best_len as u16,
                dist: best_dist as u16,
            });
            // Insert skipped positions into the hash chains so later matches
            // can reference inside this match.
            for j in i + 1..(i + best_len).min(data.len().saturating_sub(MIN_MATCH - 1)) {
                let h = hash3(data, j);
                prev[j % WINDOW] = head[h];
                head[h] = j;
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
    tokens
}

/// Expands a token stream back into bytes.
///
/// Returns `None` on an out-of-range back-reference.
pub fn expand(tokens: &[Token]) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = usize::from(dist);
                let len = usize::from(len);
                if dist == 0 || dist > out.len() {
                    return None;
                }
                let start = out.len() - dist;
                // Overlapping copies are legal (dist < len repeats).
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let toks = tokenize(data);
        assert_eq!(expand(&toks).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
    }

    #[test]
    fn repetitive_input_produces_matches() {
        let data = b"abcabcabcabcabcabcabc";
        let toks = tokenize(data);
        assert!(toks.iter().any(|t| matches!(t, Token::Match { .. })));
        assert!(toks.len() < data.len());
        roundtrip(data);
    }

    #[test]
    fn overlapping_match_rle_style() {
        let data = vec![b'x'; 500];
        let toks = tokenize(&data);
        // A run compresses to a literal plus dist-1 matches.
        assert!(toks.len() <= 4, "{} tokens", toks.len());
        assert_eq!(expand(&toks).unwrap(), data);
    }

    #[test]
    fn incompressible_input() {
        // Pseudo-random bytes: mostly literals but still correct.
        let data: Vec<u8> = (0u32..2000)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn long_match_capped() {
        let data = vec![7u8; 10_000];
        for t in tokenize(&data) {
            if let Token::Match { len, .. } = t {
                assert!(usize::from(len) <= MAX_MATCH);
            }
        }
        roundtrip(&data);
    }

    #[test]
    fn bad_backreference_rejected() {
        assert_eq!(expand(&[Token::Match { len: 3, dist: 5 }]), None);
        assert_eq!(
            expand(&[Token::Literal(1), Token::Match { len: 3, dist: 0 }]),
            None
        );
    }
}
