//! Move-to-front transform (the bzip2 stage between BWT and entropy coding).

/// Applies move-to-front: each byte is replaced by its index in a
/// recency-ordered alphabet, which is then rotated to put the byte first.
/// After a BWT, the output is heavily skewed towards small values.
pub fn mtf_encode(data: &[u8]) -> Vec<u8> {
    let mut alphabet: Vec<u8> = (0..=255).collect();
    data.iter()
        .map(|&b| {
            let idx = alphabet
                .iter()
                .position(|&a| a == b)
                .expect("byte in alphabet");
            alphabet[..=idx].rotate_right(1);
            idx as u8
        })
        .collect()
}

/// Inverts [`mtf_encode`].
pub fn mtf_decode(data: &[u8]) -> Vec<u8> {
    let mut alphabet: Vec<u8> = (0..=255).collect();
    data.iter()
        .map(|&idx| {
            let b = alphabet[usize::from(idx)];
            alphabet[..=usize::from(idx)].rotate_right(1);
            b
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = b"bananaaa mississippi".to_vec();
        assert_eq!(mtf_decode(&mtf_encode(&data)), data);
    }

    #[test]
    fn runs_become_zeros() {
        let enc = mtf_encode(b"aaaabbbb");
        assert_eq!(&enc[1..4], &[0, 0, 0]);
        assert_eq!(&enc[5..], &[0, 0, 0]);
    }

    #[test]
    fn empty() {
        assert_eq!(mtf_encode(b""), Vec::<u8>::new());
        assert_eq!(mtf_decode(b""), Vec::<u8>::new());
    }

    #[test]
    fn all_bytes_roundtrip() {
        let data: Vec<u8> = (0..=255).chain((0..=255).rev()).collect();
        assert_eq!(mtf_decode(&mtf_encode(&data)), data);
    }
}
