//! The "zlib-like" codec: LZ77 tokens entropy-coded with canonical Huffman
//! codes using DEFLATE's length/distance code structure, in a container with
//! a magic, a per-stream block-mode choice (stored / static / dynamic codes)
//! and an Adler-32 trailer — the same structural costs real zlib pays, which
//! is what makes it a fair §VI-B baseline.

use crate::bitio::{BitReader, BitWriter};
use crate::checksum::adler32;
use crate::huffman::{Decoder, Encoder};
use crate::lz77::{expand, tokenize, Token};
use crate::{Codec, DecompressError};

/// Container magic ("SZ" for sensor-zlib).
const MAGIC: [u8; 2] = [b'S', b'Z'];
/// End-of-block symbol in the literal/length alphabet.
const EOB: usize = 256;
/// Literal/length alphabet size.
const NLIT: usize = 286;
/// Distance alphabet size.
const NDIST: usize = 30;

/// DEFLATE length code bases (codes 257..=285 encode lengths 3..=258).
const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LEN_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// DEFLATE distance code bases (codes 0..=29 encode distances 1..=32768).
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Maps a match length (3..=258) to `(code_offset, extra_bits, extra_value)`.
fn length_code(len: u16) -> (usize, u8, u16) {
    let idx = LEN_BASE.iter().rposition(|&b| b <= len).expect("len >= 3");
    (idx, LEN_EXTRA[idx], len - LEN_BASE[idx])
}

/// Maps a distance (1..=32768) to `(code, extra_bits, extra_value)`.
fn dist_code(dist: u16) -> (usize, u8, u16) {
    let idx = DIST_BASE
        .iter()
        .rposition(|&b| b <= dist)
        .expect("dist >= 1");
    (idx, DIST_EXTRA[idx], dist - DIST_BASE[idx])
}

/// DEFLATE's fixed literal/length code lengths.
fn static_lit_lengths() -> Vec<u8> {
    let mut l = vec![8u8; 288];
    for x in l.iter_mut().take(256).skip(144) {
        *x = 9;
    }
    for x in l.iter_mut().take(280).skip(256) {
        *x = 7;
    }
    l.truncate(NLIT);
    l
}

fn static_dist_lengths() -> Vec<u8> {
    vec![5u8; NDIST]
}

/// The "zlib-like" codec. Stateless; construct with `Lz77Huffman`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lz77Huffman;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Stored = 0,
    Static = 1,
    Dynamic = 2,
}

impl Codec for Lz77Huffman {
    fn name(&self) -> &'static str {
        "lz77-huffman (zlib-like)"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let tokens = tokenize(data);
        // Gather frequencies, EOB included.
        let mut lit_freq = vec![0u64; NLIT];
        let mut dist_freq = vec![0u64; NDIST];
        lit_freq[EOB] = 1;
        for &t in &tokens {
            match t {
                Token::Literal(b) => lit_freq[usize::from(b)] += 1,
                Token::Match { len, dist } => {
                    lit_freq[257 + length_code(len).0] += 1;
                    dist_freq[dist_code(dist).0] += 1;
                }
            }
        }
        let (dyn_lit, dyn_lit_lens) = Encoder::from_freqs(&lit_freq);
        let (dyn_dist, dyn_dist_lens) = Encoder::from_freqs(&dist_freq);
        let static_lit = Encoder::from_lengths(&static_lit_lengths());
        let static_dist = Encoder::from_lengths(&static_dist_lengths());

        let payload_bits = |lit: &Encoder, dist: &Encoder| -> usize {
            let mut bits = usize::from(lit.len_of(EOB));
            for &t in &tokens {
                bits += match t {
                    Token::Literal(b) => usize::from(lit.len_of(usize::from(b))),
                    Token::Match { len, dist: d } => {
                        let (lc, le, _) = length_code(len);
                        let (dc, de, _) = dist_code(d);
                        usize::from(lit.len_of(257 + lc))
                            + usize::from(le)
                            + usize::from(dist.len_of(dc))
                            + usize::from(de)
                    }
                };
            }
            bits
        };

        let header_bits = {
            let mut probe = BitWriter::new();
            write_lengths(&dyn_lit_lens, &mut probe);
            write_lengths(&dyn_dist_lens, &mut probe);
            probe.len_bits()
        };
        let stored_bits = 8 /* pad upper bound */ + 32 + data.len() * 8;
        let static_bits = payload_bits(&static_lit, &static_dist);
        let dynamic_bits = header_bits + payload_bits(&dyn_lit, &dyn_dist);
        let mode = if stored_bits <= static_bits && stored_bits <= dynamic_bits {
            Mode::Stored
        } else if static_bits <= dynamic_bits {
            Mode::Static
        } else {
            Mode::Dynamic
        };

        let mut w = BitWriter::new();
        w.push_bytes(&MAGIC);
        w.push_bits(mode as u64, 2);
        match mode {
            Mode::Stored => {
                w.align_byte();
                w.push_bits(data.len() as u64, 32);
                w.push_bytes(data);
            }
            Mode::Static => {
                write_tokens(&tokens, &static_lit, &static_dist, &mut w);
            }
            Mode::Dynamic => {
                write_lengths(&dyn_lit_lens, &mut w);
                write_lengths(&dyn_dist_lens, &mut w);
                write_tokens(&tokens, &dyn_lit, &dyn_dist, &mut w);
            }
        }
        w.align_byte();
        w.push_bits(u64::from(adler32(data)), 32);
        w.finish()
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, DecompressError> {
        let mut r = BitReader::new(data);
        if r.read_bytes(2) != Some(&MAGIC[..]) {
            return Err(DecompressError::BadMagic);
        }
        let mode = r.read_bits(2).ok_or(DecompressError::Truncated)?;
        let out = match mode {
            0 => {
                r.align_byte();
                let len = r.read_bits(32).ok_or(DecompressError::Truncated)? as usize;
                r.read_bytes(len)
                    .ok_or(DecompressError::Truncated)?
                    .to_vec()
            }
            1 => {
                let lit = Decoder::from_lengths(&static_lit_lengths());
                let dist = Decoder::from_lengths(&static_dist_lengths());
                read_tokens(&lit, &dist, &mut r)?
            }
            2 => {
                let lit_lens = read_lengths(NLIT, &mut r)?;
                let dist_lens = read_lengths(NDIST, &mut r)?;
                let lit = Decoder::from_lengths(&lit_lens);
                let dist = Decoder::from_lengths(&dist_lens);
                read_tokens(&lit, &dist, &mut r)?
            }
            _ => return Err(DecompressError::Corrupt("unknown block mode")),
        };
        r.align_byte();
        let sum = r.read_bits(32).ok_or(DecompressError::Truncated)? as u32;
        if sum != adler32(&out) {
            return Err(DecompressError::ChecksumMismatch);
        }
        Ok(out)
    }
}

fn write_tokens(tokens: &[Token], lit: &Encoder, dist: &Encoder, w: &mut BitWriter) {
    for &t in tokens {
        match t {
            Token::Literal(b) => lit.emit(usize::from(b), w),
            Token::Match { len, dist: d } => {
                let (lc, le, lv) = length_code(len);
                lit.emit(257 + lc, w);
                w.push_bits(u64::from(lv), u32::from(le));
                let (dc, de, dv) = dist_code(d);
                dist.emit(dc, w);
                w.push_bits(u64::from(dv), u32::from(de));
            }
        }
    }
    lit.emit(EOB, w);
}

fn read_tokens(
    lit: &Decoder,
    dist: &Decoder,
    r: &mut BitReader<'_>,
) -> Result<Vec<u8>, DecompressError> {
    let mut tokens = Vec::new();
    loop {
        let s = lit.read_symbol(r)?;
        if s == EOB {
            break;
        }
        if s < 256 {
            tokens.push(Token::Literal(s as u8));
        } else {
            let lc = s - 257;
            if lc >= LEN_BASE.len() {
                return Err(DecompressError::Corrupt("bad length code"));
            }
            let extra = r
                .read_bits(u32::from(LEN_EXTRA[lc]))
                .ok_or(DecompressError::Truncated)?;
            let len = LEN_BASE[lc] + extra as u16;
            let dc = dist.read_symbol(r)?;
            if dc >= DIST_BASE.len() {
                return Err(DecompressError::Corrupt("bad distance code"));
            }
            let dextra = r
                .read_bits(u32::from(DIST_EXTRA[dc]))
                .ok_or(DecompressError::Truncated)?;
            let d = DIST_BASE[dc] + dextra as u16;
            tokens.push(Token::Match { len, dist: d });
        }
    }
    expand(&tokens).ok_or(DecompressError::Corrupt("backreference out of range"))
}

/// Writes a code-length sequence: 9-bit count, then 5-bit tokens where
/// `0..=15` are literal lengths, `16` starts a zero run (7-bit count-1) and
/// `17` repeats the previous length (4-bit count-1).
fn write_lengths(lengths: &[u8], w: &mut BitWriter) {
    w.push_bits(lengths.len() as u64, 9);
    let mut i = 0;
    while i < lengths.len() {
        let l = lengths[i];
        let mut run = 1;
        while i + run < lengths.len() && lengths[i + run] == l {
            run += 1;
        }
        if l == 0 && run >= 2 {
            let mut left = run;
            while left > 0 {
                let n = left.min(128);
                w.push_bits(16, 5);
                w.push_bits(n as u64 - 1, 7);
                left -= n;
            }
        } else {
            w.push_bits(u64::from(l), 5);
            let mut left = run - 1;
            while left > 0 {
                let n = left.min(16);
                w.push_bits(17, 5);
                w.push_bits(n as u64 - 1, 4);
                left -= n;
            }
        }
        i += run;
    }
}

fn read_lengths(expect: usize, r: &mut BitReader<'_>) -> Result<Vec<u8>, DecompressError> {
    let count = r.read_bits(9).ok_or(DecompressError::Truncated)? as usize;
    if count != expect {
        return Err(DecompressError::Corrupt("alphabet size mismatch"));
    }
    let mut out: Vec<u8> = Vec::with_capacity(count);
    while out.len() < count {
        let tok = r.read_bits(5).ok_or(DecompressError::Truncated)?;
        match tok {
            0..=15 => out.push(tok as u8),
            16 => {
                let n = r.read_bits(7).ok_or(DecompressError::Truncated)? as usize + 1;
                if out.len() + n > count {
                    return Err(DecompressError::Corrupt("zero run overflow"));
                }
                out.extend(std::iter::repeat_n(0, n));
            }
            17 => {
                let n = r.read_bits(4).ok_or(DecompressError::Truncated)? as usize + 1;
                let prev = *out
                    .last()
                    .ok_or(DecompressError::Corrupt("repeat at start"))?;
                if out.len() + n > count {
                    return Err(DecompressError::Corrupt("repeat run overflow"));
                }
                out.extend(std::iter::repeat_n(prev, n));
            }
            _ => return Err(DecompressError::Corrupt("bad length token")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let packed = Lz77Huffman.compress(data);
        assert_eq!(Lz77Huffman.decompress(&packed).unwrap(), data);
        packed
    }

    #[test]
    fn empty_input() {
        let packed = roundtrip(b"");
        assert!(packed.len() <= 8, "{} bytes for empty", packed.len());
    }

    #[test]
    fn text_compresses() {
        let data = b"the quick brown fox jumps over the lazy dog, \
                     the quick brown fox jumps over the lazy dog"
            .repeat(20);
        let packed = roundtrip(&data);
        assert!(packed.len() < data.len() / 4);
    }

    #[test]
    fn small_input_has_overhead() {
        // The paper's point: tiny inputs gain little or nothing.
        let data = b"21.5,44.1";
        let packed = roundtrip(data);
        assert!(packed.len() + 4 > data.len());
    }

    #[test]
    fn random_input_stored_mode() {
        let data: Vec<u8> = (0u32..4096)
            .map(|i| (i.wrapping_mul(0x9E3779B9) >> 11) as u8)
            .collect();
        let packed = roundtrip(&data);
        // Stored mode caps the blow-up at container overhead.
        assert!(packed.len() <= data.len() + 16);
    }

    #[test]
    fn runs_compress_extremely_well() {
        let data = vec![0u8; 10_000];
        let packed = roundtrip(&data);
        assert!(packed.len() < 100, "{} bytes", packed.len());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut packed = Lz77Huffman.compress(b"hello world hello world");
        packed[0] = b'X';
        assert_eq!(
            Lz77Huffman.decompress(&packed),
            Err(DecompressError::BadMagic)
        );
    }

    #[test]
    fn corrupt_payload_detected() {
        let data = b"hello world hello world hello world".repeat(4);
        let mut packed = Lz77Huffman.compress(&data);
        let mid = packed.len() / 2;
        packed[mid] ^= 0x40;
        assert!(Lz77Huffman.decompress(&packed).is_err());
    }

    #[test]
    fn truncated_stream_detected() {
        let data = b"hello world hello world".repeat(8);
        let packed = Lz77Huffman.compress(&data);
        assert!(Lz77Huffman.decompress(&packed[..packed.len() - 5]).is_err());
    }

    #[test]
    fn length_and_dist_code_tables() {
        assert_eq!(length_code(3), (0, 0, 0));
        assert_eq!(length_code(10), (7, 0, 0));
        assert_eq!(length_code(11), (8, 1, 0));
        assert_eq!(length_code(12), (8, 1, 1));
        assert_eq!(length_code(258), (28, 0, 0));
        assert_eq!(dist_code(1), (0, 0, 0));
        assert_eq!(dist_code(5), (4, 1, 0));
        assert_eq!(dist_code(6), (4, 1, 1));
        assert_eq!(dist_code(32768), (29, 13, 8191));
    }

    #[test]
    fn length_header_roundtrip() {
        let lens: Vec<u8> = (0..NLIT)
            .map(|i| match i % 7 {
                0 | 1 => 0,
                2 => 5,
                3 => 5,
                _ => 9,
            })
            .collect();
        let mut w = BitWriter::new();
        write_lengths(&lens, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(read_lengths(NLIT, &mut r).unwrap(), lens);
    }
}
