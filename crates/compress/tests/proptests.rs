//! Property-based round-trip tests for both compressors.

use proptest::prelude::*;
use sensjoin_compress::{Bwt, Codec, Identity, Lz77Huffman};

/// Strategy producing realistic byte streams: random, repetitive, and
/// sensor-like structured data.
fn data_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Arbitrary bytes.
        prop::collection::vec(any::<u8>(), 0..2048),
        // Highly repetitive.
        (any::<u8>(), 0usize..4096).prop_map(|(b, n)| vec![b; n]),
        // Sensor-record-like: repeating small structures with drift.
        (0u16..1000, 1usize..400).prop_map(|(base, n)| {
            (0..n)
                .flat_map(|i| {
                    let v = base.wrapping_add((i % 17) as u16);
                    v.to_le_bytes()
                })
                .collect()
        }),
        // Text-like.
        "[a-z ]{0,1500}".prop_map(|s| s.into_bytes()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lz77_roundtrip(data in data_strategy()) {
        let packed = Lz77Huffman.compress(&data);
        prop_assert_eq!(Lz77Huffman.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn bwt_roundtrip(data in data_strategy()) {
        let packed = Bwt.compress(&data);
        prop_assert_eq!(Bwt.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn identity_roundtrip(data in data_strategy()) {
        let packed = Identity.compress(&data);
        prop_assert_eq!(Identity.decompress(&packed).unwrap(), data);
    }

    /// Compression is bounded: stored-mode fallback caps expansion.
    #[test]
    fn lz77_bounded_expansion(data in prop::collection::vec(any::<u8>(), 0..2048)) {
        let packed = Lz77Huffman.compress(&data);
        prop_assert!(packed.len() <= data.len() + 16,
            "{} from {}", packed.len(), data.len());
    }

    /// Codecs never mistake each other's containers for their own.
    #[test]
    fn magic_disambiguates(data in prop::collection::vec(any::<u8>(), 1..512)) {
        let z = Lz77Huffman.compress(&data);
        let b = Bwt.compress(&data);
        prop_assert!(Bwt.decompress(&z).is_err());
        prop_assert!(Lz77Huffman.decompress(&b).is_err());
    }
}
