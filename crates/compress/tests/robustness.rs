//! Adversarial-input robustness for the decompressors: arbitrary and
//! corrupted streams must produce clean errors, never panics or hangs.

use proptest::prelude::*;
use sensjoin_compress::{Bwt, Codec, Lz77Huffman};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lz77_random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Lz77Huffman.decompress(&bytes);
    }

    #[test]
    fn bwt_random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Bwt.decompress(&bytes);
    }

    /// Magic-prefixed garbage exercises the structural parsers, not just the
    /// magic check.
    #[test]
    fn magic_prefixed_garbage(mut bytes in prop::collection::vec(any::<u8>(), 2..256)) {
        bytes[0] = b'S';
        bytes[1] = b'Z';
        let _ = Lz77Huffman.decompress(&bytes);
        bytes[1] = b'B';
        let _ = Bwt.decompress(&bytes);
    }

    /// Truncating a valid stream anywhere yields an error, never a wrong
    /// silent success (the checksum guards the tail).
    #[test]
    fn truncation_detected(
        data in prop::collection::vec(any::<u8>(), 1..512),
        cut_fraction in 0.05f64..0.95,
    ) {
        for codec in [&Lz77Huffman as &dyn Codec, &Bwt] {
            let packed = codec.compress(&data);
            let cut = ((packed.len() as f64 * cut_fraction) as usize).min(packed.len() - 1);
            if let Ok(out) = codec.decompress(&packed[..cut]) {
                prop_assert_eq!(out, data.clone(),
                    "truncated stream decoded to wrong data ({})", codec.name());
            }
        }
    }
}
