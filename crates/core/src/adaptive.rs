//! Adaptive method selection across repeated executions.
//!
//! A `SAMPLE PERIOD` query re-executes periodically, and the best join
//! method depends on the (drifting) result fraction — below the break-even
//! SENS-Join wins, above it the external join does (Fig. 10). The base
//! station observes the fraction for free in every execution, so it can
//! re-plan each round with the [`CostModel`]: that is exactly what
//! [`AdaptiveJoin`] does. The first round runs SENS-Join (whose
//! pre-computation also measures the quadtree density parameter); every
//! later round runs whichever method the model predicts cheaper for the
//! fraction observed last round.

use crate::costmodel::{CostModel, MethodChoice};
use crate::outcome::{JoinOutcome, ProtocolError};
use crate::snetwork::SensorNetwork;
use crate::{ExternalJoin, JoinMethod, SensJoin, SensJoinConfig};
use sensjoin_query::CompiledQuery;

/// A stateful executor that re-plans the join method every round.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveJoin {
    /// SENS-Join parameters used when SENS-Join is chosen.
    pub config: SensJoinConfig,
    /// The fraction observed in the previous round.
    last_fraction: Option<f64>,
    /// Measured quadtree bits/point (from the first round's model).
    beta: Option<f64>,
    /// What the last round executed (for reporting).
    last_choice: Option<MethodChoice>,
}

impl AdaptiveJoin {
    /// Creates an adaptive executor with paper-default SENS-Join parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The method executed in the most recent round.
    pub fn last_choice(&self) -> Option<MethodChoice> {
        self.last_choice
    }

    /// The fraction observed in the most recent round.
    pub fn last_fraction(&self) -> Option<f64> {
        self.last_fraction
    }

    /// Executes one round, re-planning from the previous round's observation.
    pub fn execute_round(
        &mut self,
        snet: &mut SensorNetwork,
        query: &CompiledQuery,
    ) -> Result<JoinOutcome, ProtocolError> {
        let choice = match self.last_fraction {
            None => MethodChoice::SensJoin, // cold start: measure cheaply
            Some(fraction) => {
                let model = CostModel::new(snet, query);
                let beta = *self.beta.get_or_insert_with(|| model.estimate_beta());
                model.recommend(fraction, beta)
            }
        };
        let outcome = match choice {
            MethodChoice::SensJoin => {
                SensJoin::with_config(self.config.clone()).execute(snet, query)?
            }
            MethodChoice::External => ExternalJoin.execute(snet, query)?,
        };
        self.last_fraction = Some(outcome.contributor_fraction(snet.len()));
        self.last_choice = Some(choice);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snetwork::SensorNetworkBuilder;
    use crate::workload::RangeQueryFamily;
    use sensjoin_field::{Area, Placement};
    use sensjoin_query::parse;
    use sensjoin_sim::BaseChoice;

    fn snet(seed: u64) -> SensorNetwork {
        SensorNetworkBuilder::new()
            .area(Area::new(500.0, 500.0))
            .placement(Placement::UniformRandom { n: 350 })
            .base(BaseChoice::NearestCorner)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn adapts_to_the_selectivity_regime() {
        let mut s = snet(3);
        let family = RangeQueryFamily::ratio_33();
        // Selective query: after the cold round, stays on SENS-Join.
        let cal = family.calibrate(&s, 0.03);
        let cq = s.compile(&parse(&cal.sql).unwrap()).unwrap();
        let mut adaptive = AdaptiveJoin::new();
        for _ in 0..3 {
            adaptive.execute_round(&mut s, &cq).unwrap();
        }
        assert_eq!(adaptive.last_choice(), Some(MethodChoice::SensJoin));
        // Unselective query: switches to the external join after observing
        // the high fraction in round 1.
        let cal2 = family.calibrate(&s, 0.95);
        let cq2 = s.compile(&parse(&cal2.sql).unwrap()).unwrap();
        let mut adaptive = AdaptiveJoin::new();
        let first = adaptive.execute_round(&mut s, &cq2).unwrap();
        assert_eq!(adaptive.last_choice(), Some(MethodChoice::SensJoin));
        let second = adaptive.execute_round(&mut s, &cq2).unwrap();
        assert_eq!(adaptive.last_choice(), Some(MethodChoice::External));
        assert!(first.result.same_result(&second.result));
        // The switch paid off.
        assert!(second.stats.total_tx_packets() < first.stats.total_tx_packets());
    }

    #[test]
    fn results_stay_exact_across_switches() {
        let mut s = snet(9);
        let cal = RangeQueryFamily::ratio_33().calibrate(&s, 0.5);
        let cq = s.compile(&parse(&cal.sql).unwrap()).unwrap();
        let reference = ExternalJoin.execute(&mut s, &cq).unwrap();
        let mut adaptive = AdaptiveJoin::new();
        for round in 0..3 {
            let out = adaptive.execute_round(&mut s, &cq).unwrap();
            assert!(out.result.same_result(&reference.result), "round {round}");
        }
    }
}
