//! Specialized related-work baseline: the mediated join.
//!
//! Coman et al. ("On join location in sensor networks", MDM 2007 — paper
//! §II) compute the join at a *mediator* node inside the network: all input
//! tuples are collected at the mediator over a collection tree rooted there,
//! the join is evaluated in-network, and only the result rows travel on to
//! the base station. The paper argues such methods are "only efficient if
//! the input relations are distributed over two small regions ... close to
//! each other, compared to their distance to the base station" and that the
//! external join outperformed them "in each of our experiments"; this
//! implementation lets the benchmark suite *verify* that claim instead of
//! assuming it (`related_work` bench).

use crate::config::SensJoinConfig;
use crate::engine::{exact_join, JoinSpace};
use crate::outcome::{JoinOutcome, JoinResult, ProtocolError};
use crate::repr::{collect_node_data, project_to_schema, FullRec};
use crate::snetwork::SensorNetwork;
use crate::wave::up_wave_on_sync;
use crate::JoinMethod;
use sensjoin_query::CompiledQuery;
use sensjoin_relation::NodeId;
use sensjoin_sim::RoutingTree;

/// Phase label of the tuple collection towards the mediator.
pub const PHASE_MEDIATED_COLLECTION: &str = "mediated-collection";
/// Phase label of the result shipment mediator → base station.
pub const PHASE_MEDIATED_RESULT: &str = "mediated-result";

/// The mediated join: join at an in-network mediator, ship the result.
///
/// The mediator is the contributing-region node minimizing the total hop
/// count to all contributing nodes (approximated over a candidate sample,
/// which is how a coordinator would pick it from imprecise region
/// knowledge).
#[derive(Debug, Clone, Copy, Default)]
pub struct MediatedJoin;

struct Batch {
    tuples: Vec<FullRec>,
    bytes: usize,
}

impl MediatedJoin {
    /// Picks the mediator: among candidate nodes (contributors plus the node
    /// nearest their centroid), the one minimizing total hops to all
    /// contributors.
    fn pick_mediator(snet: &SensorNetwork, members: &[NodeId]) -> NodeId {
        let topo = snet.net().topology();
        let cx = members.iter().map(|&v| topo.position(v).x).sum::<f64>() / members.len() as f64;
        let cy = members.iter().map(|&v| topo.position(v).y).sum::<f64>() / members.len() as f64;
        let centroid_node = topo
            .nodes()
            .filter(|&v| snet.net().routing().depth(v).is_some())
            .min_by(|&a, &b| {
                let da = (topo.position(a).x - cx).hypot(topo.position(a).y - cy);
                let db = (topo.position(b).x - cx).hypot(topo.position(b).y - cy);
                da.total_cmp(&db)
            })
            .expect("network is non-empty");
        // Sample candidates: the centroid node plus a spread of members.
        let mut candidates = vec![centroid_node];
        let step = (members.len() / 8).max(1);
        candidates.extend(members.iter().step_by(step).copied());
        candidates.sort_unstable();
        candidates.dedup();
        candidates
            .into_iter()
            .min_by_key(|&cand| {
                let tree = RoutingTree::build(topo, cand);
                members
                    .iter()
                    .map(|&m| tree.depth(m).map_or(u64::from(u32::MAX), u64::from))
                    .sum::<u64>()
            })
            .expect("candidates are non-empty")
    }
}

impl JoinMethod for MediatedJoin {
    fn name(&self) -> &'static str {
        "mediated"
    }

    fn execute(
        &self,
        snet: &mut SensorNetwork,
        query: &CompiledQuery,
    ) -> Result<JoinOutcome, ProtocolError> {
        snet.net_mut().reset_stats();
        let space = JoinSpace::build(query, snet, &SensJoinConfig::default());
        let data = collect_node_data(snet, query, &space);
        let base = snet.base();
        let members: Vec<NodeId> = (0..snet.len() as u32)
            .map(NodeId)
            .filter(|&v| snet.net().routing().depth(v).is_some())
            .filter(|&v| data[v.0 as usize].rec.is_some())
            .collect();
        if members.is_empty() {
            // Nothing to join: no traffic at all.
            let result = if query.is_aggregate() {
                JoinResult::Aggregate(query.aggregate(&[]))
            } else {
                JoinResult::Rows(Vec::new())
            };
            return Ok(JoinOutcome {
                result,
                stats: snet.net().stats().clone(),
                latency_us: 0,
                latency_slotted_us: 0,
                contributors: Default::default(),
                complete: true,
                churned: false,
            });
        }
        let mediator = Self::pick_mediator(snet, &members);
        // Collection tree rooted at the mediator.
        let tree = RoutingTree::build(snet.net().topology(), mediator);
        let (batch, rep_collect) = up_wave_on_sync(
            snet.net_mut(),
            &tree,
            &|_| true,
            |v, received: Vec<Batch>| {
                let mut tuples = Vec::new();
                let mut bytes = 0;
                for mut b in received {
                    bytes += b.bytes;
                    tuples.append(&mut b.tuples);
                }
                if let Some(rec) = &data[v.0 as usize].rec {
                    bytes += rec.bytes;
                    tuples.push(rec.clone());
                }
                Batch { tuples, bytes }
            },
            |b| b.bytes,
            PHASE_MEDIATED_COLLECTION,
        );

        // Join at the mediator.
        let master = snet.master_schema().clone();
        let tuples_per_rel: Vec<Vec<(NodeId, Vec<f64>)>> = (0..query.num_relations())
            .map(|r| {
                let flag = space.flag(r);
                batch
                    .tuples
                    .iter()
                    .filter(|rec| rec.flags.intersects(flag))
                    .map(|rec| {
                        (
                            rec.origin,
                            project_to_schema(&master, query.schema(r), &rec.values),
                        )
                    })
                    .collect()
            })
            .collect();
        let computation = exact_join(query, &tuples_per_rel);

        // Ship the result rows mediator -> base along the shortest path.
        let row_bytes = 2 * query.select().len(); // 2 bytes per output value
        let result_bytes = match &computation.result {
            JoinResult::Rows(rows) => rows.len() * row_bytes,
            JoinResult::Aggregate(_) => row_bytes,
        };
        let mut t_ship = 0;
        let mut shipped = true;
        if mediator != base && result_bytes > 0 {
            // Path in the base-rooted tree's topology: BFS from the mediator
            // tree is not towards the base, so use the base tree's path.
            let base_tree = snet.net().routing().clone();
            // depth(mediator) is Some because members are reachable.
            let path = base_tree
                .path_to_base(mediator)
                .expect("mediator reaches the base station");
            for hop in path.windows(2) {
                let d = snet.net_mut().unicast_delivery(
                    hop[0],
                    hop[1],
                    result_bytes,
                    PHASE_MEDIATED_RESULT,
                );
                t_ship += d.time;
                // A result batch dropped on any hop never reaches the base.
                shipped &= d.complete;
            }
        }
        Ok(JoinOutcome {
            result: computation.result,
            stats: snet.net().stats().clone(),
            latency_us: rep_collect.timing.pipelined + t_ship,
            latency_slotted_us: rep_collect.timing.slotted + t_ship,
            contributors: computation.contributors,
            complete: rep_collect.damaged.is_empty() && shipped,
            churned: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snetwork::SensorNetworkBuilder;
    use crate::ExternalJoin;
    use sensjoin_field::{Area, Placement};
    use sensjoin_query::parse;

    fn snet(seed: u64) -> SensorNetwork {
        SensorNetworkBuilder::new()
            .area(Area::new(400.0, 400.0))
            .placement(Placement::UniformRandom { n: 150 })
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn mediated_result_is_exact() {
        for seed in [1, 5] {
            let mut s = snet(seed);
            let cq = s
                .compile(
                    &parse(
                        "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                         WHERE A.temp - B.temp > 3.0 ONCE",
                    )
                    .unwrap(),
                )
                .unwrap();
            let ext = ExternalJoin.execute(&mut s, &cq).unwrap();
            let med = MediatedJoin.execute(&mut s, &cq).unwrap();
            assert!(ext.result.same_result(&med.result), "seed {seed}");
            assert_eq!(ext.contributors, med.contributors);
        }
    }

    #[test]
    fn uniform_placement_favors_external() {
        // The paper's claim: outside the "two small regions" scenario the
        // external join beats the mediated join (the result must travel to
        // the base anyway, and the mediator adds no filtering).
        let mut s = snet(2);
        let cq = s
            .compile(
                &parse(
                    "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                     WHERE A.temp - B.temp > 1.0 ONCE",
                )
                .unwrap(),
            )
            .unwrap();
        let ext = ExternalJoin.execute(&mut s, &cq).unwrap();
        let med = MediatedJoin.execute(&mut s, &cq).unwrap();
        assert!(
            ext.stats.total_tx_packets() <= med.stats.total_tx_packets(),
            "external {} should beat mediated {} on uniform placements",
            ext.stats.total_tx_packets(),
            med.stats.total_tx_packets()
        );
    }

    #[test]
    fn clustered_regions_can_favor_mediated() {
        // Two small relation regions far from the (corner) base: the
        // mediated join's home turf. With a selective query the result is
        // small, so joining in place and shipping a few rows beats hauling
        // every tuple across the network.
        use sensjoin_relation::{AttrType, Attribute, Schema, SensorRelation};
        use sensjoin_sim::BaseChoice;
        let area = Area::new(1000.0, 1000.0);
        let n = 1200usize;
        let schema = |name: &str| {
            Schema::new(
                name,
                vec![
                    Attribute::new("x", AttrType::Meters),
                    Attribute::new("y", AttrType::Meters),
                    Attribute::new("temp", AttrType::Celsius),
                    Attribute::new("hum", AttrType::Percent),
                ],
            )
        };
        // Build once to learn positions, then restrict the relations to two
        // small far-corner regions (same seed reproduces the topology).
        let probe = SensorNetworkBuilder::new()
            .area(area)
            .placement(Placement::UniformRandom { n })
            .base(BaseChoice::NearestCorner)
            .seed(3)
            .build()
            .unwrap();
        let region = |x0: f64, y0: f64| -> Vec<NodeId> {
            (0..n as u32)
                .map(NodeId)
                .filter(|&v| {
                    let p = probe.net().topology().position(v);
                    (p.x - x0).hypot(p.y - y0) < 120.0 && probe.net().routing().depth(v).is_some()
                })
                .collect()
        };
        let left = region(750.0, 850.0);
        let right = region(870.0, 750.0);
        assert!(
            left.len() >= 5 && right.len() >= 5,
            "scenario needs populated regions"
        );
        let mut snet = SensorNetworkBuilder::new()
            .area(area)
            .placement(Placement::UniformRandom { n })
            .base(BaseChoice::NearestCorner)
            .seed(3)
            .relations(vec![
                SensorRelation::over_nodes(schema("Left"), left),
                SensorRelation::over_nodes(schema("Right"), right),
            ])
            .build()
            .unwrap();
        let cq = snet
            .compile(
                &parse(
                    "SELECT L.hum, R.hum FROM Left L, Right R \
                     WHERE L.temp - R.temp > 5.0 ONCE",
                )
                .unwrap(),
            )
            .unwrap();
        let ext = ExternalJoin.execute(&mut snet, &cq).unwrap();
        let med = MediatedJoin.execute(&mut snet, &cq).unwrap();
        assert!(ext.result.same_result(&med.result));
        assert!(
            med.stats.total_tx_packets() < ext.stats.total_tx_packets(),
            "mediated {} should win on clustered far regions (external {})",
            med.stats.total_tx_packets(),
            ext.stats.total_tx_packets()
        );
    }
}
