//! A Bloom-filter semi-join variant — the road not taken.
//!
//! §V of the paper dismisses Bloom filters as the compact representation:
//! "Mechanisms like Bloom Filters cannot serve ... since they only allow for
//! evaluating equi-joins." This module implements that alternative honestly
//! so the benchmark suite can *show* the trade-off instead of citing it:
//!
//! * [`BloomSemiJoin`] only accepts two-relation queries whose every join
//!   predicate is an equality between attributes ([`ProtocolError`] is
//!   returned for Q1/Q2-style range or distance conditions);
//! * the collection phase aggregates one fixed-size Bloom filter per
//!   relation by OR-ing along the tree — near the leaves this costs the full
//!   filter width where SENS-Join ships a handful of bytes;
//! * both filters are flooded during dissemination — a Bloom filter cannot
//!   be intersected with a subtree's join-attribute knowledge, so Selective
//!   Filter Forwarding has no analogue;
//! * a node ships its tuple when its (quantized) key might be in the *other*
//!   relation's filter; Bloom false positives, like quantization false
//!   positives, are weeded out by the exact final join.
//!
//! Equality is evaluated on quantization cells (equal values always share a
//! cell, so there are no false negatives), keeping result exactness.

use crate::config::SensJoinConfig;
use crate::engine::{exact_join, JoinSpace};
use crate::outcome::{JoinOutcome, ProtocolError};
use crate::repr::{collect_node_data, project_to_schema, FullRec};
use crate::snetwork::SensorNetwork;
use crate::wave::{down_wave, up_wave, DownArrival};
use crate::JoinMethod;
use sensjoin_query::{CExpr, CmpOp, CompiledQuery};
use sensjoin_relation::NodeId;

/// Phase labels.
pub const PHASE_BLOOM_COLLECTION: &str = "1-bloom-collection";
/// Filter-flood phase label.
pub const PHASE_BLOOM_FLOOD: &str = "2-bloom-flood";
/// Final phase label.
pub const PHASE_BLOOM_FINAL: &str = "3-bloom-final";

/// A classic Bloom filter over `u64` keys.
///
/// # Example
///
/// ```
/// use sensjoin_core::BloomFilter;
///
/// let mut f = BloomFilter::new(1024, 5);
/// f.insert(42);
/// assert!(f.contains(42));        // never a false negative
/// assert_eq!(f.wire_size(), 128); // fixed width, the §V trade-off
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m: usize,
    k: u32,
}

impl BloomFilter {
    /// Creates an `m`-bit filter with `k` hash functions.
    ///
    /// # Panics
    /// Panics if `m` is 0 or `k` is 0.
    pub fn new(m: usize, k: u32) -> Self {
        assert!(m > 0 && k > 0);
        Self {
            bits: vec![0; m.div_ceil(64)],
            m,
            k,
        }
    }

    #[inline]
    fn index(&self, key: u64, i: u32) -> usize {
        // SplitMix64 with per-hash seeding: independent, fast, no tables.
        let mut z = key ^ (u64::from(i).wrapping_mul(0x9E3779B97F4A7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z % self.m as u64) as usize
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u64) {
        for i in 0..self.k {
            let b = self.index(key, i);
            self.bits[b / 64] |= 1 << (b % 64);
        }
    }

    /// Membership test (false positives possible, no false negatives).
    pub fn contains(&self, key: u64) -> bool {
        (0..self.k).all(|i| {
            let b = self.index(key, i);
            self.bits[b / 64] & (1 << (b % 64)) != 0
        })
    }

    /// Unions another filter into this one (same parameters).
    ///
    /// # Panics
    /// Panics on parameter mismatch.
    pub fn union(&mut self, other: &BloomFilter) {
        assert_eq!((self.m, self.k), (other.m, other.k), "incompatible filters");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Wire size in bytes.
    pub fn wire_size(&self) -> usize {
        self.m.div_ceil(8)
    }

    /// Fraction of set bits (load factor).
    pub fn load(&self) -> f64 {
        let ones: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        f64::from(ones) / self.m as f64
    }
}

/// The Bloom-filter semi-join method (equi-joins over two relations only).
#[derive(Debug, Clone)]
pub struct BloomSemiJoin {
    /// Protocol parameters (quantization config is shared with SENS-Join).
    pub config: SensJoinConfig,
    /// Filter width per relation, in bits.
    pub bits: usize,
    /// Number of hash functions.
    pub hashes: u32,
}

impl Default for BloomSemiJoin {
    fn default() -> Self {
        Self {
            config: SensJoinConfig::default(),
            bits: 4096,
            hashes: 7,
        }
    }
}

/// Checks that the query is a pure two-relation equi-join; returns the
/// offending reason otherwise.
fn validate(query: &CompiledQuery) -> Result<(), ProtocolError> {
    if query.num_relations() != 2 {
        return Err(ProtocolError::Representation(
            "Bloom semi-join supports exactly two relations".to_owned(),
        ));
    }
    for pred in query.join_preds() {
        match pred {
            CExpr::Cmp {
                op: CmpOp::Eq,
                lhs,
                rhs,
            } => {
                let ok = matches!(
                    (lhs.as_ref(), rhs.as_ref()),
                    (CExpr::Col { rel: a, .. }, CExpr::Col { rel: b, .. }) if a != b
                );
                if !ok {
                    return Err(ProtocolError::Representation(
                        "Bloom semi-join needs attribute = attribute equality predicates"
                            .to_owned(),
                    ));
                }
            }
            other => {
                return Err(ProtocolError::Representation(format!(
                    "Bloom filters only allow equi-joins (paper §V); cannot evaluate {other:?}"
                )))
            }
        }
    }
    Ok(())
}

struct BloomPair {
    a: BloomFilter,
    b: BloomFilter,
}

struct Batch {
    tuples: Vec<FullRec>,
    bytes: usize,
}

impl JoinMethod for BloomSemiJoin {
    fn name(&self) -> &'static str {
        "bloom-semi-join"
    }

    fn execute(
        &self,
        snet: &mut SensorNetwork,
        query: &CompiledQuery,
    ) -> Result<JoinOutcome, ProtocolError> {
        validate(query)?;
        snet.net_mut().reset_stats();
        let space = JoinSpace::build(query, snet, &self.config);
        let data = collect_node_data(snet, query, &space);
        let (bits, hashes) = (self.bits, self.hashes);
        // Keys are the quantized join-attribute cells: equal values always
        // share a cell, so no true match is lost.
        let flag_a = space.flag(0);
        let flag_b = space.flag(1);

        // ---- Phase 1: OR-aggregate one filter per relation up the tree ----
        let (pair, rep1) = up_wave(
            snet.net_mut(),
            &|_| true,
            |v, received: Vec<BloomPair>| {
                let mut out = BloomPair {
                    a: BloomFilter::new(bits, hashes),
                    b: BloomFilter::new(bits, hashes),
                };
                for p in received {
                    out.a.union(&p.a);
                    out.b.union(&p.b);
                }
                if let Some(rec) = &data[v.0 as usize].rec {
                    if rec.flags.intersects(flag_a) {
                        out.a.insert(rec.z);
                    }
                    if rec.flags.intersects(flag_b) {
                        out.b.insert(rec.z);
                    }
                }
                out
            },
            |p| p.a.wire_size() + p.b.wire_size(),
            PHASE_BLOOM_COLLECTION,
        );

        // If any collection message was lost, the base's filters miss keys
        // and could wrongly prune true matches: degrade to pass-through
        // (exactly like SENS-Join's conservative fallback).
        let collection_damaged = !rep1.damaged.is_empty();

        // ---- Phase 2: flood both filters (no pruning possible) ----
        let flood = BloomPair {
            a: pair.a,
            b: pair.b,
        };
        let mut node_seen: Vec<bool> = vec![false; snet.len()];
        // Nodes whose flood copy was lost have no filter and must ship
        // everything.
        let mut node_flooded: Vec<bool> = vec![false; snet.len()];
        let pair_size = flood.a.wire_size() + flood.b.wire_size();
        // `true` = the message carries the real filter pair; `false` = the
        // sender's own copy was lost, so only a (cheap) "no filter" marker
        // travels and the receiver must pass everything through too.
        type FloodMsg = bool;
        let rep2 = down_wave(
            snet.net_mut(),
            &|_| true,
            |v, arrival: DownArrival<'_, FloodMsg>| {
                node_seen[v.0 as usize] = true;
                let have = match arrival {
                    DownArrival::Origin => true,
                    DownArrival::Intact(&have) => have,
                    DownArrival::Damaged => false,
                };
                node_flooded[v.0 as usize] = have;
                Some(have)
            },
            |&have| if have { pair_size } else { 1 },
            PHASE_BLOOM_FLOOD,
        );

        // ---- Phase 3: semi-join check against the *other* side ----
        let base = snet.base();
        let (batch, rep3) = up_wave(
            snet.net_mut(),
            &|_| true,
            |v, received: Vec<Batch>| {
                let mut tuples = Vec::new();
                let mut bytes = 0;
                for mut b in received {
                    bytes += b.bytes;
                    tuples.append(&mut b.tuples);
                }
                if let Some(rec) = &data[v.0 as usize].rec {
                    let survives = collection_damaged
                        || !node_flooded[v.0 as usize]
                        || (rec.flags.intersects(flag_a) && flood.b.contains(rec.z))
                        || (rec.flags.intersects(flag_b) && flood.a.contains(rec.z));
                    if survives {
                        if v != base {
                            bytes += rec.bytes;
                        }
                        tuples.push(rec.clone());
                    }
                }
                Batch { tuples, bytes }
            },
            |b| b.bytes,
            PHASE_BLOOM_FINAL,
        );

        // ---- Exact join at the base station ----
        let master = snet.master_schema().clone();
        let tuples_per_rel: Vec<Vec<(NodeId, Vec<f64>)>> = (0..2)
            .map(|r| {
                let flag = space.flag(r);
                batch
                    .tuples
                    .iter()
                    .filter(|rec| rec.flags.intersects(flag))
                    .map(|rec| {
                        (
                            rec.origin,
                            project_to_schema(&master, query.schema(r), &rec.values),
                        )
                    })
                    .collect()
            })
            .collect();
        let computation = exact_join(query, &tuples_per_rel);
        Ok(JoinOutcome {
            result: computation.result,
            stats: snet.net().stats().clone(),
            latency_us: rep1.timing.then(rep2.timing).then(rep3.timing).pipelined,
            latency_slotted_us: rep1.timing.then(rep2.timing).then(rep3.timing).slotted,
            contributors: computation.contributors,
            complete: rep3.damaged.is_empty(),
            churned: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snetwork::SensorNetworkBuilder;
    use crate::{ExternalJoin, QuantizationConfig};
    use sensjoin_field::{Area, Placement};
    use sensjoin_query::parse;

    #[test]
    fn bloom_filter_basics() {
        let mut f = BloomFilter::new(1024, 5);
        for key in 0..100u64 {
            f.insert(key * 7919);
        }
        for key in 0..100u64 {
            assert!(f.contains(key * 7919), "no false negatives");
        }
        let fps = (0..10_000u64)
            .map(|k| 1_000_000 + k)
            .filter(|&k| f.contains(k))
            .count();
        // ~100 keys in 1024 bits with 5 hashes: fp rate well below 10 %.
        assert!(fps < 1000, "{fps} false positives");
        assert!(f.load() > 0.0 && f.load() < 0.6);
        assert_eq!(f.wire_size(), 128);
    }

    #[test]
    fn union_is_bitwise() {
        let mut a = BloomFilter::new(256, 3);
        let mut b = BloomFilter::new(256, 3);
        a.insert(1);
        b.insert(2);
        a.union(&b);
        assert!(a.contains(1) && a.contains(2));
    }

    fn snet(seed: u64) -> SensorNetwork {
        SensorNetworkBuilder::new()
            .area(Area::new(400.0, 400.0))
            .placement(Placement::UniformRandom { n: 150 })
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_non_equi_joins() {
        let mut s = snet(1);
        for sql in [
            // Range condition (Q1-style).
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 1.0 ONCE",
            // Distance condition (Q2-style).
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE distance(A.x, A.y, B.x, B.y) > 100 ONCE",
            // Equality, but against an expression.
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp = B.temp + 1 ONCE",
        ] {
            let cq = s.compile(&parse(sql).unwrap()).unwrap();
            let err = BloomSemiJoin::default().execute(&mut s, &cq);
            assert!(
                matches!(err, Err(ProtocolError::Representation(_))),
                "{sql} should be rejected"
            );
        }
    }

    #[test]
    fn equi_join_is_exact() {
        let mut s = snet(2);
        // Fine quantization so that "equal cell" is a selective key.
        let config = SensJoinConfig {
            quantization: QuantizationConfig::new().with("light", 0.0, 1000.0, 0.01),
            ..Default::default()
        };
        let sql = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                   WHERE A.light = B.light ONCE";
        let cq = s.compile(&parse(sql).unwrap()).unwrap();
        let ext = ExternalJoin.execute(&mut s, &cq).unwrap();
        let bloom = BloomSemiJoin {
            config,
            ..Default::default()
        }
        .execute(&mut s, &cq)
        .unwrap();
        // Note: both evaluate exact equality at the base; cells only gate
        // shipping.
        assert!(ext.result.same_result(&bloom.result));
    }

    #[test]
    fn fixed_size_filters_cost_more_near_leaves() {
        let mut s = snet(3);
        let sql = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                   WHERE A.light = B.light ONCE";
        let cq = s.compile(&parse(sql).unwrap()).unwrap();
        let bloom = BloomSemiJoin::default().execute(&mut s, &cq).unwrap();
        let sens = crate::SensJoin::default().execute(&mut s, &cq).unwrap();
        assert!(sens.result.same_result(&bloom.result));
        // The paper's point: the adaptive quadtree beats fixed-width Bloom
        // filters on collection volume.
        let quad = sens.stats.phase(crate::PHASE_COLLECTION).tx_bytes;
        let blm = bloom.stats.phase(PHASE_BLOOM_COLLECTION).tx_bytes;
        assert!(quad < blm, "quadtree {quad} !< bloom {blm}");
    }
}
