//! Disjoint per-node mutable state for parallel wave callbacks.
//!
//! The `_sync` wave engines in [`crate::wave`] call a node's callback
//! exactly once, and parallel execution partitions nodes across worker
//! threads by subtree — two threads never run callbacks for the same node.
//! [`NodeCells`] turns that structural guarantee into mutable access to
//! per-node state (`Vec<TupleBuf>`, per-node filters, …) from a `Fn + Sync`
//! closure: each callback touches only its own node's cell.

use sensjoin_relation::NodeId;
use std::marker::PhantomData;

/// A slice of per-node cells that worker threads may mutate concurrently —
/// one cell per node, indexed by [`NodeId`].
///
/// # Disjointness contract
///
/// [`NodeCells::with`] hands out `&mut` access without locking. This is
/// sound exactly when no two concurrent `with` calls target the same node.
/// Wave callbacks uphold the contract by construction when they only touch
/// the cell of the node they were invoked for: the wave engines visit every
/// node once and never run one node's callback on two threads. Debug builds
/// verify the contract with a per-cell guard and panic on overlap.
pub struct NodeCells<'a, T> {
    ptr: *mut T,
    len: usize,
    #[cfg(debug_assertions)]
    busy: Vec<std::sync::atomic::AtomicBool>,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: access is per-cell disjoint under the documented contract; cells
// move between threads only as `&mut T` within `with`, so `T: Send`
// suffices for both sharing the handle and sending it.
unsafe impl<T: Send> Sync for NodeCells<'_, T> {}
unsafe impl<T: Send> Send for NodeCells<'_, T> {}

impl<'a, T> NodeCells<'a, T> {
    /// Wraps a per-node state slice (`cells[v.0 as usize]` is node `v`'s).
    pub fn new(cells: &'a mut [T]) -> Self {
        Self {
            len: cells.len(),
            #[cfg(debug_assertions)]
            busy: cells
                .iter()
                .map(|_| std::sync::atomic::AtomicBool::new(false))
                .collect(),
            ptr: cells.as_mut_ptr(),
            _marker: PhantomData,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no cells.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Runs `f` with mutable access to node `v`'s cell. See the
    /// [disjointness contract](NodeCells#disjointness-contract); debug
    /// builds panic if two threads (or a reentrant call) overlap on the
    /// same node.
    pub fn with<R>(&self, v: NodeId, f: impl FnOnce(&mut T) -> R) -> R {
        let i = v.0 as usize;
        assert!(i < self.len, "node {v} out of bounds ({} cells)", self.len);
        #[cfg(debug_assertions)]
        {
            use std::sync::atomic::Ordering;
            if self.busy[i]
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                panic!("concurrent access to node cell {v}");
            }
        }
        // SAFETY: i < len, and the disjointness contract (debug-checked
        // above) guarantees no aliasing access to this cell.
        let out = f(unsafe { &mut *self.ptr.add(i) });
        #[cfg(debug_assertions)]
        self.busy[i].store(false, std::sync::atomic::Ordering::Release);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_threaded_mutation() {
        let mut state = vec![0u64; 64];
        let cells = NodeCells::new(&mut state);
        std::thread::scope(|s| {
            for t in 0..4 {
                let cells = &cells;
                s.spawn(move || {
                    for i in (t..64).step_by(4) {
                        cells.with(NodeId(i as u32), |c| *c += i as u64 + 1);
                    }
                });
            }
        });
        drop(cells);
        for (i, &v) in state.iter().enumerate() {
            assert_eq!(v, i as u64 + 1);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "concurrent access")]
    fn reentrant_access_is_caught() {
        let mut state = vec![0u8; 4];
        let cells = NodeCells::new(&mut state);
        cells.with(NodeId(2), |_| cells.with(NodeId(2), |c| *c += 1));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_is_caught() {
        let mut state = vec![0u8; 4];
        let cells = NodeCells::new(&mut state);
        cells.with(NodeId(4), |c| *c += 1);
    }
}
