//! Protocol configuration.

use sensjoin_relation::AttrType;

/// How join-attribute tuple sets are represented on the wire during the
/// pre-computation (§V / §VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Representation {
    /// The paper's pointerless quadtree over Z-order numbers (default).
    #[default]
    Quadtree,
    /// Raw quantized join-attribute tuples, no compact representation
    /// (the "SENS_No-Quad" variant of Fig. 16).
    Raw,
    /// Raw tuples compressed hop-by-hop with the zlib-like codec (§VI-B).
    Zlib,
    /// Raw tuples compressed hop-by-hop with the bzip2-like codec (§VI-B).
    Bzip2,
}

impl Representation {
    /// Name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Representation::Quadtree => "quadtree",
            Representation::Raw => "raw",
            Representation::Zlib => "zlib-like",
            Representation::Bzip2 => "bzip2-like",
        }
    }
}

/// Quantization ranges and resolutions per attribute (§V-B).
///
/// "These ranges are specific to the environment of the WSN. It is therefore
/// possible to fix them while setting up the network" — the configuration
/// maps attribute names to `[min, max]` bounds and a resolution; unknown
/// attributes fall back to a per-type default resolution and must get their
/// range from the deployment (the builder derives generous bounds from the
/// field specs, mimicking setup-time estimation).
#[derive(Debug, Clone, Default)]
pub struct QuantizationConfig {
    entries: Vec<(String, f64, f64, f64)>,
}

impl QuantizationConfig {
    /// Empty configuration (everything from per-type defaults + deployment
    /// ranges).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `[min, max]` and resolution for attribute `name`.
    pub fn with(mut self, name: impl Into<String>, min: f64, max: f64, resolution: f64) -> Self {
        self.entries.push((name.into(), min, max, resolution));
        self
    }

    /// Looks up the configuration for `name`.
    pub fn get(&self, name: &str) -> Option<(f64, f64, f64)> {
        self.entries
            .iter()
            .find(|(n, ..)| n == name)
            .map(|&(_, min, max, res)| (min, max, res))
    }

    /// The paper's experiment resolutions: 0.1 °C for temperatures, 1 m for
    /// coordinates (§V-B); other types get resolutions of comparable
    /// relative coarseness.
    pub fn default_resolution(ty: AttrType) -> f64 {
        match ty {
            AttrType::Celsius => 0.1,
            AttrType::Meters => 1.0,
            AttrType::Percent => 0.25,
            AttrType::Hectopascal => 0.1,
            AttrType::Lux => 25.0,
            AttrType::Volts => 0.01,
            AttrType::Raw(_) => 1.0,
        }
    }
}

/// All SENS-Join protocol parameters.
#[derive(Debug, Clone)]
pub struct SensJoinConfig {
    /// Treecut threshold `D_max` in bytes (paper: 30; must stay below the
    /// maximum packet payload, §IV-E). `0` disables Treecut.
    pub dmax: usize,
    /// Memory cap for a node's `SubtreeJoinAtts` in bytes (paper: 500).
    /// Nodes whose subtree synopsis exceeds it forward the filter unpruned.
    pub filter_memory_limit: usize,
    /// Enables Selective Filter Forwarding (§IV-C). Disabled, the filter is
    /// flooded to every active node (ablation).
    pub selective_forwarding: bool,
    /// Wire representation of join-attribute tuple sets.
    pub representation: Representation,
    /// Quantization overrides.
    pub quantization: QuantizationConfig,
    /// Multiplies every dimension's resolution (ablation: §V-B "the
    /// performance ... is insensitive to the resolution ... as long as it is
    /// not too coarse").
    pub resolution_scale: f64,
}

impl Default for SensJoinConfig {
    fn default() -> Self {
        Self {
            dmax: 30,
            filter_memory_limit: 500,
            selective_forwarding: true,
            representation: Representation::Quadtree,
            quantization: QuantizationConfig::new(),
            resolution_scale: 1.0,
        }
    }
}

impl SensJoinConfig {
    /// The paper's defaults.
    pub fn paper() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SensJoinConfig::default();
        assert_eq!(c.dmax, 30);
        assert_eq!(c.filter_memory_limit, 500);
        assert!(c.selective_forwarding);
        assert_eq!(c.representation, Representation::Quadtree);
    }

    #[test]
    fn quantization_lookup() {
        let q = QuantizationConfig::new().with("temp", -10.0, 50.0, 0.1);
        assert_eq!(q.get("temp"), Some((-10.0, 50.0, 0.1)));
        assert_eq!(q.get("hum"), None);
        assert_eq!(
            QuantizationConfig::default_resolution(AttrType::Celsius),
            0.1
        );
        assert_eq!(
            QuantizationConfig::default_resolution(AttrType::Meters),
            1.0
        );
    }

    #[test]
    fn representation_names() {
        assert_eq!(Representation::Quadtree.name(), "quadtree");
        assert_eq!(Representation::Bzip2.name(), "bzip2-like");
    }
}
