//! Continuous queries with temporal filter reuse — the paper's stated
//! follow-on work (§VIII: "we currently investigate if the filtering can be
//! optimized for continuous queries by exploiting temporal correlations").
//!
//! A `SAMPLE PERIOD` query re-executes every period. Re-running SENS-Join
//! from scratch repays the full pre-computation each round even when the
//! physical fields barely moved. [`ContinuousSensJoin`] keeps state between
//! rounds and ships only *deltas*:
//!
//! * **Delta collection** — a node reports its quantized join-attribute cell
//!   only when it *changed*; deltas are counted (two descendants may occupy
//!   the same cell), aggregated up the tree, and the base station maintains
//!   a reference-counted cell population.
//! * **Filter-delta dissemination** — the base recomputes the filter
//!   (CPU-only) and disseminates only added/removed filter cells, pruned per
//!   subtree exactly like Selective Filter Forwarding.
//! * **ε-suppressed final phase** — a matching node re-sends its complete
//!   tuple only when it newly matches or a referenced attribute drifted by
//!   more than `epsilon` since it last reported; nodes leaving the filter
//!   send a 2-byte retraction. The base answers each round from its tuple
//!   cache.
//!
//! With `epsilon = 0` every value change of a matching node is re-reported
//! and the result is **exact** each round; with `epsilon > 0` the result is
//! computed from ≤ε-stale attribute values (the standard approximate-caching
//! trade-off in sensor databases). Treecut is disabled in continuous mode —
//! proxies would hold stale tuples across rounds — and nodes spend a little
//! more memory on counted subtree synopses; both trade-offs are inherent to
//! the delta design.
//!
//! Round 0 flows through the very same delta machinery (everything is an
//! "add"), so a single code path serves cold start and steady state.

use crate::cells::NodeCells;
use crate::config::{Representation, SensJoinConfig};
use crate::engine::JoinSpace;
use crate::incremental::{CellCounts, FilterEngine};
use crate::ingest::{StreamJoinEngine, StreamOp};
use crate::outcome::{JoinOutcome, ProtocolError};
use crate::persist;
use crate::repr::{collect_node_data, project_to_schema, FullRec, JoinAttrMsg};
use crate::snetwork::SensorNetwork;
use crate::wave::{down_wave_sync, up_wave_sync, DownArrival};

/// Maximum number of times a continuous round is (re-)executed when data
/// loss survives the ARQ budget (first attempt included).
pub const MAX_ROUND_ATTEMPTS: u32 = 3;
use sensjoin_quadtree::{Point, PointSet, RelFlags};
use sensjoin_query::CompiledQuery;
use sensjoin_relation::NodeId;
use sensjoin_sim::{DeltaBatchStats, Time};
use std::collections::BTreeMap;

/// Phase labels of the continuous rounds.
pub const PHASE_DELTA_COLLECTION: &str = "1-delta-collection";
/// Filter-delta dissemination label.
pub const PHASE_FILTER_DELTA: &str = "2-filter-delta";
/// ε-suppressed final phase label.
pub const PHASE_FINAL_DELTA: &str = "3-final-delta";

/// Counted cell population: per cell, one counter per relation-role bit.
type Counts = CellCounts;

fn apply_delta(into: &mut Counts, delta: &Counts) {
    for (&z, d) in delta {
        let e = into.entry(z).or_insert([0; 8]);
        for b in 0..8 {
            e[b] += d[b];
        }
        if e.iter().all(|&c| c == 0) {
            into.remove(&z);
        }
    }
}

fn counts_to_set(counts: &Counts) -> PointSet {
    PointSet::from_points(counts.iter().filter_map(|(&z, c)| {
        let mut flags = 0u8;
        for (b, &cnt) in c.iter().enumerate() {
            debug_assert!(cnt >= 0, "negative cell count");
            if cnt > 0 {
                flags |= 1 << b;
            }
        }
        (flags != 0).then_some(Point {
            z,
            flags: RelFlags(flags),
        })
    }))
}

fn flag_bits(flags: u8) -> impl Iterator<Item = usize> {
    (0..8).filter(move |&b| flags & (1 << b) != 0)
}

/// Folds one engine batch's counters into the cumulative accounting.
fn record_batch(into: &mut DeltaBatchStats, b: &crate::ingest::BatchStats) {
    into.record(
        b.ops as u64,
        b.inserted as u64,
        b.expired as u64,
        b.rows_added as u64,
        b.rows_removed as u64,
        b.candidates as u64,
        b.promotions as u64,
    );
}

/// A cell-population delta traveling up the tree in phase 1. Additions and
/// removals aggregate *separately*: two nodes swapping cells must not cancel
/// each other out, or the base could never re-announce the filter state of
/// the swapped-into cell to its new holder.
#[derive(Debug, Clone, Default)]
struct Delta {
    adds: Counts,
    dels: Counts,
}

impl Delta {
    fn record(&mut self, z: u64, flags: u8, sign: i64) {
        let map = if sign > 0 {
            &mut self.adds
        } else {
            &mut self.dels
        };
        let e = map.entry(z).or_insert([0; 8]);
        for b in flag_bits(flags) {
            e[b] += sign.abs();
        }
    }

    fn merge(&mut self, other: &Delta) {
        apply_delta(&mut self.adds, &other.adds);
        apply_delta(&mut self.dels, &other.dels);
    }

    /// The net population change (adds − dels), built in one pass without
    /// cloning the adds map.
    fn net(&self) -> Counts {
        let mut net = Counts::with_capacity(self.adds.len() + self.dels.len());
        for (&z, a) in &self.adds {
            let mut e = *a;
            if let Some(d) = self.dels.get(&z) {
                for b in 0..8 {
                    e[b] -= d[b];
                }
            }
            if e.iter().any(|&c| c != 0) {
                net.insert(z, e);
            }
        }
        for (&z, d) in &self.dels {
            if self.adds.contains_key(&z) {
                continue; // already netted above
            }
            let mut e = [0i64; 8];
            for b in 0..8 {
                e[b] = -d[b];
            }
            net.insert(z, e);
        }
        net
    }

    fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.dels.is_empty()
    }

    /// Wire size: the added and removed cell sets travel quadtree-encoded;
    /// multiplicities beyond the first per (cell, role) cost one extra byte.
    fn wire_size(&self, space: &JoinSpace) -> usize {
        if self.is_empty() {
            return 0;
        }
        let mut extra = 0usize;
        let to_set = |counts: &Counts, extra: &mut usize| -> PointSet {
            PointSet::from_points(counts.iter().filter_map(|(&z, c)| {
                let mut flags = 0u8;
                for (b, &cnt) in c.iter().enumerate() {
                    if cnt > 0 {
                        flags |= 1 << b;
                        *extra += (cnt - 1) as usize;
                    }
                }
                (flags != 0).then_some(Point {
                    z,
                    flags: RelFlags(flags),
                })
            }))
        };
        let adds = to_set(&self.adds, &mut extra);
        let dels = to_set(&self.dels, &mut extra);
        JoinAttrMsg::filter_wire_size(&adds, Representation::Quadtree, space)
            + JoinAttrMsg::filter_wire_size(&dels, Representation::Quadtree, space)
            + extra
            + 1 // add/del split marker
    }
}

/// A filter delta traveling down the tree in phase 2.
#[derive(Debug, Clone, Default)]
struct FilterDelta {
    added: PointSet,
    removed: PointSet,
}

impl FilterDelta {
    fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    fn wire_size(&self, space: &JoinSpace) -> usize {
        if self.is_empty() {
            return 0;
        }
        JoinAttrMsg::filter_wire_size(&self.added, Representation::Quadtree, space)
            + JoinAttrMsg::filter_wire_size(&self.removed, Representation::Quadtree, space)
            + 1
    }

    /// Applies the delta to a node's filter view.
    fn apply(&self, filter: &mut PointSet) {
        let mut merged = filter.union(&self.added);
        if !self.removed.is_empty() {
            merged = PointSet::from_points(merged.iter().filter_map(|p| {
                let lost = self.removed.flags_of(p.z).map_or(0, |f| f.0);
                let kept = p.flags.0 & !lost;
                (kept != 0).then_some(Point {
                    z: p.z,
                    flags: RelFlags(kept),
                })
            }));
        }
        *filter = merged;
    }
}

/// Final-phase message: fresh tuples plus retractions.
#[derive(Default)]
struct FinalDelta {
    tuples: Vec<FullRec>,
    retractions: Vec<NodeId>,
    bytes: usize,
}

/// Per-round persistent state.
struct State {
    space: JoinSpace,
    /// Per node: (z, flags) last reported into the population.
    last_cell: Vec<Option<(u64, u8)>>,
    /// Per node: master values last shipped to the base.
    last_values: Vec<Option<Vec<f64>>>,
    /// Per node: whether the node's tuple is cached at the base.
    matched: Vec<bool>,
    /// Per node: current (delta-maintained) filter view.
    node_filter: Vec<PointSet>,
    /// Per node: counted cell population of its subtree (incl. itself).
    subtree: Vec<Counts>,
    /// Base station: incremental filter engine (owns the global population)
    /// and the filter as of the last round (for delta dissemination).
    engine: FilterEngine,
    filter: PointSet,
    /// Base station: tuple cache (flags at send time + master values).
    cache: BTreeMap<NodeId, (u8, Vec<f64>)>,
    /// Base station: persistent streaming join over the cache. Each round's
    /// tuple deltas update the cached result in O(Δ) instead of re-running
    /// the batch join over every cached tuple.
    stream: StreamJoinEngine,
    /// Master indices of attributes referenced by the query (drift scope).
    drift_attrs: Vec<usize>,
    rounds: u64,
}

/// The continuous SENS-Join executor. Create once per `SAMPLE PERIOD`
/// query; call [`ContinuousSensJoin::execute_round`] after each resample.
///
/// # Example
///
/// ```
/// use sensjoin_core::{ContinuousSensJoin, SensorNetworkBuilder};
/// use sensjoin_field::{presets, Area, Placement};
/// use sensjoin_query::parse;
///
/// let mut snet = SensorNetworkBuilder::new()
///     .area(Area::new(300.0, 300.0))
///     .placement(Placement::UniformRandom { n: 100 })
///     .seed(3)
///     .build()
///     .unwrap();
/// let q = parse(
///     "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
///      WHERE A.temp - B.temp > 4.0 SAMPLE PERIOD 30",
/// ).unwrap();
/// let cq = snet.compile(&q).unwrap();
/// let mut cont = ContinuousSensJoin::new(); // epsilon = 0: exact rounds
/// let cold = cont.execute_round(&mut snet, &cq).unwrap();
/// // Unchanged snapshot: the steady state is free.
/// let warm = cont.execute_round(&mut snet, &cq).unwrap();
/// assert_eq!(warm.stats.total_tx_packets(), 0);
/// assert!(warm.result.same_result(&cold.result));
/// ```
pub struct ContinuousSensJoin {
    /// Protocol parameters (Treecut is ignored — continuous mode keeps every
    /// node active).
    pub config: SensJoinConfig,
    /// Value-drift threshold for re-reporting (0 = exact results).
    pub epsilon: f64,
    state: Option<State>,
    /// Streaming-ingestion accounting, cumulative across rounds (survives
    /// re-execution resyncs, which rebuild the engine).
    delta_stats: DeltaBatchStats,
    /// Previous round's latency — the simulated time that elapsed since the
    /// last churn boundary (rounds are the continuous executor's boundaries).
    last_latency_us: Time,
}

impl ContinuousSensJoin {
    /// An exact (`epsilon = 0`) continuous executor with paper defaults.
    pub fn new() -> Self {
        Self::with_epsilon(0.0)
    }

    /// A continuous executor tolerating ≤`epsilon` staleness per referenced
    /// attribute.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(epsilon >= 0.0);
        Self {
            config: SensJoinConfig::default(),
            epsilon,
            state: None,
            delta_stats: DeltaBatchStats::default(),
            last_latency_us: 0,
        }
    }

    /// Number of rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.rounds)
    }

    /// Accumulated streaming-ingestion accounting: how much incremental
    /// join work the base station performed across all rounds so far.
    pub fn delta_stats(&self) -> DeltaBatchStats {
        self.delta_stats
    }

    /// Serializes the executor's full mutable state (cumulative accounting
    /// plus, when warm, the per-round [`State`]) for checkpointing. The
    /// query and config are *not* serialized — the resuming process
    /// reconstructs them deterministically and passes the query to
    /// [`ContinuousSensJoin::restore_state`].
    pub fn encode_state(&self, w: &mut persist::Writer) {
        persist::put_delta_stats(w, &self.delta_stats);
        w.put_u64(self.last_latency_us);
        match &self.state {
            None => w.put_bool(false),
            Some(st) => {
                w.put_bool(true);
                persist::put_join_space(w, &st.space);
                w.put_usize(st.last_cell.len());
                for cell in &st.last_cell {
                    match cell {
                        None => w.put_bool(false),
                        Some((z, f)) => {
                            w.put_bool(true);
                            w.put_u64(*z);
                            w.put_u8(*f);
                        }
                    }
                }
                for values in &st.last_values {
                    match values {
                        None => w.put_bool(false),
                        Some(v) => {
                            w.put_bool(true);
                            persist::put_f64_vec(w, v);
                        }
                    }
                }
                for &m in &st.matched {
                    w.put_bool(m);
                }
                for f in &st.node_filter {
                    persist::put_point_set(w, f);
                }
                for c in &st.subtree {
                    persist::put_cell_counts(w, c);
                }
                persist::put_cell_counts(w, st.engine.counts());
                persist::put_point_set(w, &st.filter);
                w.put_usize(st.cache.len());
                for (v, (flags, values)) in &st.cache {
                    w.put_u32(v.0);
                    w.put_u8(*flags);
                    persist::put_f64_vec(w, values);
                }
                persist::put_stream_engine(w, &st.stream);
                w.put_usize(st.drift_attrs.len());
                for &a in &st.drift_attrs {
                    w.put_usize(a);
                }
                w.put_u64(st.rounds);
            }
        }
    }

    /// Restores state serialized by [`ContinuousSensJoin::encode_state`].
    /// `query` must be the same compiled query the state was saved under.
    /// The filter engine is rebuilt by applying the saved counted population
    /// as one delta from empty — bit-identical to the maintained engine by
    /// the incremental filter's core guarantee.
    pub fn restore_state(
        &mut self,
        r: &mut persist::Reader<'_>,
        query: &CompiledQuery,
    ) -> Result<(), persist::CodecError> {
        use persist::CodecError;
        self.delta_stats = persist::get_delta_stats(r)?;
        self.last_latency_us = r.get_u64()?;
        if !r.get_bool()? {
            self.state = None;
            return Ok(());
        }
        let space = persist::get_join_space(r)?;
        let n = r.get_count(1)?;
        let mut last_cell = Vec::new();
        for _ in 0..n {
            last_cell.push(if r.get_bool()? {
                Some((r.get_u64()?, r.get_u8()?))
            } else {
                None
            });
        }
        let mut last_values = Vec::new();
        for _ in 0..n {
            last_values.push(if r.get_bool()? {
                Some(persist::get_f64_vec(r)?)
            } else {
                None
            });
        }
        let mut matched = Vec::new();
        for _ in 0..n {
            matched.push(r.get_bool()?);
        }
        let mut node_filter = Vec::new();
        for _ in 0..n {
            node_filter.push(persist::get_point_set(r)?);
        }
        let mut subtree = Vec::new();
        for _ in 0..n {
            subtree.push(persist::get_cell_counts(r)?);
        }
        let counts = persist::get_cell_counts(r)?;
        let mut engine = FilterEngine::new(query, &space);
        engine.apply_delta(query, &space, &counts);
        if engine.counts() != &counts {
            return Err(CodecError::Invariant("filter engine counts diverged"));
        }
        let filter = persist::get_point_set(r)?;
        let nc = r.get_count(8)?;
        let mut cache = BTreeMap::new();
        for _ in 0..nc {
            let v = NodeId(r.get_u32()?);
            let flags = r.get_u8()?;
            cache.insert(v, (flags, persist::get_f64_vec(r)?));
        }
        let stream = persist::get_stream_engine(r, query.clone())?;
        let na = r.get_count(8)?;
        let mut drift_attrs = Vec::new();
        for _ in 0..na {
            drift_attrs.push(r.get_usize()?);
        }
        let rounds = r.get_u64()?;
        self.state = Some(State {
            space,
            last_cell,
            last_values,
            matched,
            node_filter,
            subtree,
            engine,
            filter,
            cache,
            stream,
            drift_attrs,
            rounds,
        });
        Ok(())
    }

    /// Executes one round on the network's current snapshot.
    ///
    /// On a lossy channel, a permanently lost delta (after the ARQ budget)
    /// desynchronizes the distributed per-node state the incremental
    /// protocol relies on. The recovery is the paper's §IV-F re-execution:
    /// drop all state and re-run the round as a cold full collection, up to
    /// [`MAX_ROUND_ATTEMPTS`] times. All attempts' traffic is charged to the
    /// returned stats; `complete` is `false` only if even the last attempt
    /// lost data.
    pub fn execute_round(
        &mut self,
        snet: &mut SensorNetwork,
        query: &CompiledQuery,
    ) -> Result<JoinOutcome, ProtocolError> {
        snet.net_mut().reset_stats();
        // Rounds are the continuous executor's churn boundaries: crashes and
        // revivals take effect between rounds, never mid-round, so every
        // round's contributing set is the population alive at its start.
        let mut churned = false;
        if snet.net().has_churn() {
            let out = snet.net_mut().apply_churn(self.last_latency_us);
            churned = !out.crashed.is_empty() || !out.revived.is_empty();
            if !out.is_empty() {
                self.reconcile_churn(snet, query);
            }
        }
        let mut out = self.round_once(snet, query)?;
        let mut attempts = 1;
        while !out.complete && attempts < MAX_ROUND_ATTEMPTS {
            attempts += 1;
            // Resync: discard every node's delta baseline and the base's
            // cache, then replay the round as a first (full) round.
            self.state = None;
            let prev = out;
            out = self.round_once(snet, query)?;
            // Re-execution is sequential: latencies add up. Stats are
            // cumulative already (reset only happens above).
            out.latency_us += prev.latency_us;
            out.latency_slotted_us += prev.latency_slotted_us;
        }
        if !out.complete {
            // Even the last attempt lost data: nodes advanced their delta
            // baselines for messages the base never saw, so the distributed
            // state is desynchronized. Drop it — the next round cold-starts
            // as a full collection instead of trusting poisoned baselines
            // (whose retractions could underflow the base's cell counts).
            self.state = None;
        }
        out.stats = snet.net_mut().take_stats();
        out.churned = churned;
        self.last_latency_us = out.latency_us;
        Ok(out)
    }

    /// Reconciles the persistent round state with a churn boundary so the
    /// next round's deltas stay sound over the repaired tree.
    ///
    /// Every node that is dead or detached sheds its distributed state: its
    /// last reported cell leaves the base population as a synthesized
    /// deletion (the base learned of the death from the repair
    /// notifications, so this is radio-free), its cached tuple is retracted,
    /// and its delta baselines are cleared so a later revival or
    /// reattachment re-adds it as a fresh node. The counted subtree
    /// synopses are positional — a reattached subtree's cells must move to
    /// its new ancestors for filter-delta pruning to stay sound — so they
    /// are recomputed over the repaired tree from the surviving baselines.
    fn reconcile_churn(&mut self, snet: &SensorNetwork, query: &CompiledQuery) {
        let Some(st) = &mut self.state else { return };
        let net = snet.net();
        let routing = net.routing();
        let mut departed = Delta::default();
        let mut any_departed = false;
        let mut expirations: Vec<StreamOp> = Vec::new();
        for i in 0..st.last_cell.len() {
            let v = NodeId(i as u32);
            if net.is_alive(v) && routing.depth(v).is_some() {
                continue;
            }
            if let Some((z, f)) = st.last_cell[i].take() {
                departed.record(z, f, -1);
                any_departed = true;
            }
            st.last_values[i] = None;
            st.matched[i] = false;
            st.node_filter[i] = PointSet::new();
            if st.cache.remove(&v).is_some() {
                expirations.push(StreamOp::Expire { origin: v });
            }
        }
        if !expirations.is_empty() {
            let b = st.stream.apply_batch(&expirations);
            record_batch(&mut self.delta_stats, &b);
        }
        for c in st.subtree.iter_mut() {
            *c = Counts::default();
        }
        for i in 0..st.last_cell.len() {
            if let Some((z, f)) = st.last_cell[i] {
                let mut one = Delta::default();
                one.record(z, f, 1);
                let net_d = one.net();
                let mut u = NodeId(i as u32);
                apply_delta(&mut st.subtree[u.0 as usize], &net_d);
                while let Some(p) = routing.parent(u) {
                    apply_delta(&mut st.subtree[p.0 as usize], &net_d);
                    u = p;
                }
            }
        }
        if any_departed {
            // The filter shrinks accordingly; the removals reach the
            // survivors through the next round's ordinary filter delta
            // (computed against `st.filter`).
            st.engine.apply_delta(query, &st.space, &departed.net());
        }
    }

    fn round_once(
        &mut self,
        snet: &mut SensorNetwork,
        query: &CompiledQuery,
    ) -> Result<JoinOutcome, ProtocolError> {
        let n = snet.len();
        if self.state.is_none() {
            let space = JoinSpace::build(query, snet, &self.config);
            let master = snet.master_schema();
            let mut names: Vec<&str> = Vec::new();
            for r in 0..query.num_relations() {
                for &a in query.referenced_attrs(r) {
                    let name = query.schema(r).attrs()[a].name();
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
            let drift_attrs = names
                .iter()
                .map(|&nm| master.index_of(nm).expect("validated"))
                .collect();
            self.state = Some(State {
                engine: FilterEngine::new(query, &space),
                stream: StreamJoinEngine::new(query.clone()),
                space,
                last_cell: vec![None; n],
                last_values: vec![None; n],
                matched: vec![false; n],
                node_filter: vec![PointSet::new(); n],
                subtree: (0..n).map(|_| Counts::default()).collect(),
                filter: PointSet::new(),
                cache: BTreeMap::new(),
                drift_attrs,
                rounds: 0,
            });
        }
        let st = self.state.as_mut().expect("just initialized");
        let space = &st.space;
        let data = collect_node_data(snet, query, space);
        let base = snet.base();

        // ---- Phase 1: delta collection ----
        let last_cell = NodeCells::new(&mut st.last_cell);
        let subtree = NodeCells::new(&mut st.subtree);
        let (base_delta, rep1) = up_wave_sync(
            snet.net_mut(),
            &|_| true,
            |v, received: Vec<Delta>| {
                let mut merged = Delta::default();
                for d in received {
                    merged.merge(&d);
                }
                let cur = data[v.0 as usize].rec.as_ref().map(|r| (r.z, r.flags.0));
                last_cell.with(v, |last| {
                    if cur != *last {
                        if let Some((z, f)) = *last {
                            merged.record(z, f, -1);
                        }
                        if let Some((z, f)) = cur {
                            merged.record(z, f, 1);
                        }
                        *last = cur;
                    }
                });
                subtree.with(v, |counts| apply_delta(counts, &merged.net()));
                merged
            },
            |d| d.wire_size(space),
            PHASE_DELTA_COLLECTION,
        );
        drop((last_cell, subtree));

        // ---- Base station: incremental filter maintenance ----
        // The engine folds the round's net delta into its persistent
        // population and indexes and recomputes only the affected cells'
        // filter bits — bit-identical to a fresh `prejoin_filter` over the
        // full population, at cost proportional to the delta.
        let new_filter = st
            .engine
            .apply_delta(query, &st.space, &base_delta.net())
            .clone();
        let mut added = PointSet::new();
        let mut removed = PointSet::new();
        for p in new_filter.iter() {
            let old = st.filter.flags_of(p.z).map_or(0, |f| f.0);
            let gained = p.flags.0 & !old;
            if gained != 0 {
                added.insert(p.z, RelFlags(gained));
            }
        }
        for p in st.filter.iter() {
            let new = new_filter.flags_of(p.z).map_or(0, |f| f.0);
            let lost = p.flags.0 & !new;
            if lost != 0 {
                removed.insert(p.z, RelFlags(lost));
            }
        }
        // Re-announce filter entries for cells whose population grew this
        // round: a node that just *moved into* an already-filtered cell has
        // no way to know the cell matches (its filter view predates its
        // move), so the unchanged filter entry must flow to it again. The
        // subtree pruning then routes it exactly to the mover's branch.
        for (&z, c) in &base_delta.adds {
            if c.iter().any(|&x| x > 0) {
                if let Some(f) = new_filter.flags_of(z) {
                    added.insert(z, f);
                }
            }
        }
        st.filter = new_filter;
        let full_delta = FilterDelta { added, removed };

        // ---- Phase 2: filter-delta dissemination ----
        let node_filter = NodeCells::new(&mut st.node_filter);
        let subtree = &st.subtree;
        let rep2 = down_wave_sync(
            snet.net_mut(),
            &|_| true,
            |v, arrival: DownArrival<'_, FilterDelta>| {
                let fd: &FilterDelta = match arrival {
                    DownArrival::Intact(fd) => {
                        node_filter.with(v, |nf| fd.apply(nf));
                        fd
                    }
                    DownArrival::Origin => &full_delta, // base station originates
                    // The delta is gone and this node's filter view is now
                    // stale; the round-level resync rebuilds everything, so
                    // don't forward anything further.
                    DownArrival::Damaged => return None,
                };
                if fd.is_empty() {
                    return None;
                }
                // Prune to the child subtrees' cells (Selective Filter
                // Forwarding on deltas).
                let sub = counts_to_set(&subtree[v.0 as usize]);
                let pruned = FilterDelta {
                    added: fd.added.intersect(&sub),
                    removed: fd.removed.intersect(&sub),
                };
                (!pruned.is_empty()).then_some(pruned)
            },
            |fd| fd.wire_size(space),
            PHASE_FILTER_DELTA,
        );
        drop(node_filter);
        // The base's own filter view is the filter itself.
        st.node_filter[base.0 as usize] = st.filter.clone();

        // ---- Phase 3: ε-suppressed final phase ----
        let epsilon = self.epsilon;
        let node_filter = &st.node_filter;
        let last_values = NodeCells::new(&mut st.last_values);
        let matched = NodeCells::new(&mut st.matched);
        let drift_attrs = &st.drift_attrs;
        let (final_delta, rep3) = up_wave_sync(
            snet.net_mut(),
            &|_| true,
            |v, received: Vec<FinalDelta>| {
                let mut out = FinalDelta::default();
                for mut f in received {
                    out.bytes += f.bytes;
                    out.tuples.append(&mut f.tuples);
                    out.retractions.append(&mut f.retractions);
                }
                let i = v.0 as usize;
                let matching = data[i]
                    .rec
                    .as_ref()
                    .is_some_and(|rec| node_filter[i].contains_matching(rec.z, rec.flags));
                let was_matched = matched.with(v, |m| std::mem::replace(m, matching));
                if matching {
                    let rec = data[i].rec.as_ref().expect("matching implies a tuple");
                    last_values.with(v, |last| {
                        let drifted = match last {
                            None => true,
                            Some(old) => drift_attrs
                                .iter()
                                .any(|&a| (old[a] - rec.values[a]).abs() > epsilon),
                        };
                        if !was_matched || drifted {
                            *last = Some(rec.values.clone());
                            if v != base {
                                out.bytes += rec.bytes;
                            }
                            out.tuples.push(rec.clone());
                        }
                    });
                } else if was_matched {
                    if v != base {
                        out.bytes += 2; // origin id retraction
                    }
                    out.retractions.push(v);
                    last_values.with(v, |last| *last = None);
                }
                out
            },
            |f| f.bytes,
            PHASE_FINAL_DELTA,
        );
        drop((last_values, matched));

        // ---- Base station: cache maintenance + streaming join ----
        // The round's tuple deltas feed the persistent streaming engine,
        // which re-enumerates only the bindings anchored at changed tuples;
        // its cached result is bit-identical to re-running `exact_join`
        // over the full cache (the pre-streaming behavior).
        let master = snet.master_schema();
        let ops: Vec<StreamOp> = final_delta
            .tuples
            .iter()
            .map(|rec| StreamOp::Upsert {
                origin: rec.origin,
                per_rel: (0..query.num_relations())
                    .map(|r| {
                        rec.flags
                            .intersects(space.flag(r))
                            .then(|| project_to_schema(master, query.schema(r), &rec.values))
                    })
                    .collect(),
            })
            .chain(
                final_delta
                    .retractions
                    .iter()
                    .map(|&origin| StreamOp::Expire { origin }),
            )
            .collect();
        let batch = st.stream.apply_batch(&ops);
        record_batch(&mut self.delta_stats, &batch);
        for rec in final_delta.tuples {
            st.cache.insert(rec.origin, (rec.flags.0, rec.values));
        }
        for origin in final_delta.retractions {
            st.cache.remove(&origin);
        }
        let computation = st.stream.result();
        st.rounds += 1;
        Ok(JoinOutcome {
            result: computation.result,
            // Cumulative since `execute_round` reset them; the wrapper
            // replaces this with the final (all-attempt) numbers.
            stats: snet.net().stats().clone(),
            latency_us: rep1.timing.then(rep2.timing).then(rep3.timing).pipelined,
            latency_slotted_us: rep1.timing.then(rep2.timing).then(rep3.timing).slotted,
            contributors: computation.contributors,
            // Any lost delta (either direction) desynchronizes state; the
            // wrapper resyncs by cold-restarting the round.
            complete: rep1.damaged.is_empty() && rep2.damaged.is_empty() && rep3.damaged.is_empty(),
            // The wrapper stamps the real value after applying boundaries.
            churned: false,
        })
    }
}

impl Default for ContinuousSensJoin {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snetwork::SensorNetworkBuilder;
    use crate::{ExternalJoin, JoinMethod};
    use sensjoin_field::{presets, Area, FieldSpec, Placement};
    use sensjoin_query::parse;

    fn snet(seed: u64) -> SensorNetwork {
        SensorNetworkBuilder::new()
            .area(Area::new(400.0, 400.0))
            .placement(Placement::UniformRandom { n: 150 })
            .seed(seed)
            .build()
            .unwrap()
    }

    const SQL: &str = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                       WHERE A.temp - B.temp > 3.0 SAMPLE PERIOD 30";

    #[test]
    fn exact_rounds_match_fresh_execution() {
        let mut s = snet(4);
        let cq = s.compile(&parse(SQL).unwrap()).unwrap();
        let mut cont = ContinuousSensJoin::new();
        for round in 0..4u64 {
            s.resample(&presets::indoor_climate(), 500 + round);
            let fresh = ExternalJoin.execute(&mut s, &cq).unwrap();
            let cont_out = cont.execute_round(&mut s, &cq).unwrap();
            assert!(
                fresh.result.same_result(&cont_out.result),
                "round {round}: {} vs {} rows",
                fresh.result.len(),
                cont_out.result.len()
            );
            assert_eq!(fresh.contributors, cont_out.contributors, "round {round}");
        }
        assert_eq!(cont.rounds(), 4);
    }

    #[test]
    fn unchanged_snapshot_costs_nothing() {
        let mut s = snet(5);
        let cq = s.compile(&parse(SQL).unwrap()).unwrap();
        let mut cont = ContinuousSensJoin::new();
        let first = cont.execute_round(&mut s, &cq).unwrap();
        assert!(first.stats.total_tx_packets() > 0);
        // Same snapshot again: no cell changed, no value drifted.
        let second = cont.execute_round(&mut s, &cq).unwrap();
        assert_eq!(
            second.stats.total_tx_packets(),
            0,
            "steady state must be free"
        );
        assert!(first.result.same_result(&second.result));
    }

    #[test]
    fn slow_drift_with_epsilon_is_cheap() {
        let mut s = snet(6);
        let cq = s.compile(&parse(SQL).unwrap()).unwrap();
        let mut cont = ContinuousSensJoin::with_epsilon(0.5);
        // Drifting fields: tiny per-round noise.
        let drift_fields = |round: u64| -> Vec<FieldSpec> {
            let mut f = presets::indoor_climate();
            for spec in &mut f {
                spec.noise = 0.001 * (round as f64 + 1.0);
            }
            f
        };
        s.resample(&drift_fields(0), 100);
        let cold = cont.execute_round(&mut s, &cq).unwrap();
        let mut warm_total = 0u64;
        for round in 1..5u64 {
            // Re-generate with the *same* seed: the underlying field is
            // identical, only the white noise differs slightly.
            s.resample(&drift_fields(round), 100);
            let out = cont.execute_round(&mut s, &cq).unwrap();
            warm_total += out.stats.total_tx_packets();
        }
        assert!(
            warm_total / 4 < cold.stats.total_tx_packets() / 4,
            "warm rounds ({warm_total} pkts over 4) should be far below the cold \
             round ({} pkts)",
            cold.stats.total_tx_packets()
        );
    }

    #[test]
    fn epsilon_bounds_staleness() {
        let mut s = snet(7);
        let cq = s.compile(&parse(SQL).unwrap()).unwrap();
        let eps = 0.25;
        let mut cont = ContinuousSensJoin::with_epsilon(eps);
        for round in 0..3u64 {
            s.resample(&presets::indoor_climate(), 900 + round);
            let out = cont.execute_round(&mut s, &cq).unwrap();
            // Every cached value is within eps of the node's true reading on
            // the referenced attributes.
            let st = cont.state.as_ref().unwrap();
            for (&origin, (_, cached)) in &st.cache {
                for &a in &st.drift_attrs {
                    let truth = s.readings(origin)[a];
                    assert!(
                        (cached[a] - truth).abs() <= eps + 1e-12,
                        "round {round}: cache of {origin} stale by {}",
                        (cached[a] - truth).abs()
                    );
                }
            }
            let _ = out;
        }
    }

    #[test]
    fn retractions_shrink_the_cache() {
        let mut s = snet(8);
        let cq = s.compile(&parse(SQL).unwrap()).unwrap();
        let mut cont = ContinuousSensJoin::new();
        s.resample(&presets::indoor_climate(), 1);
        cont.execute_round(&mut s, &cq).unwrap();
        let cached_before = cont.state.as_ref().unwrap().cache.len();
        // A radically different snapshot: most old matches dissolve.
        s.resample(&presets::uncorrelated(), 2);
        let out = cont.execute_round(&mut s, &cq).unwrap();
        let st = cont.state.as_ref().unwrap();
        // Cache is consistent: exactly the currently matched nodes.
        let matched_now = st.matched.iter().filter(|&&m| m).count();
        assert_eq!(st.cache.len(), matched_now);
        let _ = (cached_before, out);
    }
}
