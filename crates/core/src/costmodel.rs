//! Analytical cost model and join-method advisor.
//!
//! The paper justifies its design by a cost analysis of candidate join
//! locations (its companion workshop paper [20], "Where in the sensor
//! network should the join be computed, after all?"). This module provides
//! that layer for downstream users: closed-form per-method cost estimates
//! computed from the *actual* routing tree (which the base station knows)
//! plus two workload parameters — the expected fraction of contributing
//! nodes and the expected result-row count — and a [`CostModel::recommend`]
//! call that picks the cheapest method *without running anything*.
//!
//! The estimates deliberately reuse the simulator's exact packetization
//! arithmetic, so for the external join the prediction is exact; for
//! SENS-Join the collection term depends on how well the quadtree compresses
//! a subtree's cells, summarized by a single calibratable "bits per point"
//! parameter ([`CostModel::estimate_beta`] measures it from one base-station
//! encoding of the current population — knowledge the base acquires for free
//! in every execution). The `cost_model` bench validates predictions against
//! simulation across the selectivity sweep.

use crate::config::SensJoinConfig;
use crate::engine::JoinSpace;
use crate::repr::{collect_node_data, JoinAttrMsg};
use crate::snetwork::SensorNetwork;
use sensjoin_query::CompiledQuery;
use sensjoin_relation::NodeId;

/// A predicted execution cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Predicted total transmissions.
    pub packets: f64,
    /// Predicted total payload bytes.
    pub bytes: f64,
}

/// Which join method the advisor picks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodChoice {
    /// Ship everything, join at the base station.
    External,
    /// Run the SENS-Join pre-computation.
    SensJoin,
}

/// The analytical model, bound to a deployment and a compiled query.
///
/// # Example
///
/// ```
/// use sensjoin_core::{CostModel, SensJoinConfig, SensorNetworkBuilder};
/// use sensjoin_field::{Area, Placement};
/// use sensjoin_query::parse;
///
/// let snet = SensorNetworkBuilder::new()
///     .area(Area::new(300.0, 300.0))
///     .placement(Placement::UniformRandom { n: 120 })
///     .seed(7)
///     .build()
///     .unwrap();
/// let q = parse(
///     "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
///      WHERE A.temp - B.temp > 5.0 ONCE",
/// ).unwrap();
/// let cq = snet.compile(&q).unwrap();
/// let model = CostModel::new(&snet, &cq);
/// let beta = model.estimate_beta();
/// let ext = model.external();
/// let sens = model.sens_join(0.05, beta, &SensJoinConfig::default());
/// assert!(ext.packets > 0.0 && sens.packets > 0.0);
/// println!("advice: {:?}", model.recommend(0.05, beta));
/// ```
#[derive(Debug)]
pub struct CostModel<'a> {
    snet: &'a SensorNetwork,
    query: &'a CompiledQuery,
    /// Member-subtree sizes: contributing nodes in each node's subtree
    /// (including itself).
    member_subtree: Vec<u32>,
    /// Projected tuple bytes per contributing node.
    tuple_bytes: Vec<usize>,
}

impl<'a> CostModel<'a> {
    /// Builds the model (one linear pass over the tree).
    pub fn new(snet: &'a SensorNetwork, query: &'a CompiledQuery) -> Self {
        let space = JoinSpace::build(query, snet, &SensJoinConfig::default());
        let data = collect_node_data(snet, query, &space);
        let routing = snet.net().routing();
        let n = snet.len();
        let mut member_subtree = vec![0u32; n];
        let mut tuple_bytes = vec![0usize; n];
        for &v in routing.bottom_up_order() {
            let i = v.0 as usize;
            if let Some(rec) = &data[i].rec {
                member_subtree[i] += 1;
                tuple_bytes[i] = rec.bytes;
            }
            if let Some(p) = routing.parent(v) {
                member_subtree[p.0 as usize] += member_subtree[i];
            }
        }
        Self {
            snet,
            query,
            member_subtree,
            tuple_bytes,
        }
    }

    fn payload(&self) -> f64 {
        self.snet.net().radio().max_payload as f64
    }

    /// Mean projected tuple size over contributing nodes.
    fn mean_tuple_bytes(&self) -> f64 {
        let (sum, count) = self
            .tuple_bytes
            .iter()
            .filter(|&&b| b > 0)
            .fold((0usize, 0usize), |(s, c), &b| (s + b, c + 1));
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    /// Exact cost of the external join: every non-base reachable node
    /// forwards its member subtree's tuples.
    pub fn external(&self) -> CostEstimate {
        let routing = self.snet.net().routing();
        let t = self.mean_tuple_bytes();
        let mut packets = 0.0;
        let mut bytes = 0.0;
        for v in self.snet.net().topology().nodes() {
            if v == self.snet.base() || routing.depth(v).is_none() {
                continue;
            }
            let b = self.member_subtree[v.0 as usize] as f64 * t;
            bytes += b;
            packets += (b / self.payload()).ceil();
        }
        CostEstimate { packets, bytes }
    }

    /// Measures the quadtree's effective bits per point by encoding the
    /// current population once (the base station learns this for free in any
    /// execution; 2.5 bytes/point is a reasonable prior for correlated
    /// climate data).
    pub fn estimate_beta(&self) -> f64 {
        let space = JoinSpace::build(self.query, self.snet, &SensJoinConfig::default());
        let data = collect_node_data(self.snet, self.query, &space);
        let mut msg = JoinAttrMsg::new();
        let mut count = 0usize;
        for d in data.iter() {
            if let Some(rec) = &d.rec {
                msg.insert(rec.z, rec.flags, &rec.coords);
                count += 1;
            }
        }
        if count == 0 {
            return 8.0;
        }
        let bits = 8.0
            * JoinAttrMsg::filter_wire_size(
                &msg.set,
                crate::config::Representation::Quadtree,
                &space,
            ) as f64;
        bits / count as f64
    }

    /// Predicted SENS-Join cost for a workload where a `fraction` of the
    /// contributing nodes appears in the result, with quadtree density
    /// `beta` bits per point (see [`CostModel::estimate_beta`]).
    pub fn sens_join(&self, fraction: f64, beta: f64, config: &SensJoinConfig) -> CostEstimate {
        assert!((0.0..=1.0).contains(&fraction));
        let routing = self.snet.net().routing();
        let base = self.snet.base();
        let t = self.mean_tuple_bytes();
        let p = self.payload();
        let n_members = self.member_subtree[base.0 as usize] as f64;
        let mut packets = 0.0;
        let mut bytes = 0.0;
        for v in self.snet.net().topology().nodes() {
            if v == base || routing.depth(v).is_none() {
                continue;
            }
            let s = self.member_subtree[v.0 as usize] as f64;
            // Collection: Treecut ships complete tuples while cheap.
            let b = if s * t <= config.dmax as f64 {
                s * t
            } else {
                // Quadtree of the subtree's cells (dedup makes this an
                // upper bound; beta absorbs the average effect).
                s * beta / 8.0
            };
            if b > 0.0 {
                bytes += b;
                packets += (b / p).ceil();
            }
            // Filter dissemination reaches a node iff a matching node is in
            // its subtree: P = 1 - (1 - s/N)^(fraction*N). Its broadcast
            // carries the pruned filter (≈ matching-in-subtree points).
            if !routing.children(v).is_empty() || v == base {
                let expect_matching = fraction * s;
                let covered = 1.0 - (1.0 - s / n_members).powf(fraction * n_members);
                let fb = expect_matching * beta / 8.0;
                if fb > 0.0 {
                    bytes += covered * fb;
                    packets += covered * (fb / p).ceil().max(1.0);
                }
            }
            // Final phase: matching tuples of the subtree flow up.
            let fin = fraction * s * t;
            if fin > 0.0 {
                bytes += fin;
                // A node transmits in the final phase only if its subtree
                // holds a matching tuple.
                let has_match = 1.0 - (1.0 - s / n_members).powf(fraction * n_members);
                packets += has_match * (fin / p).ceil().max(1.0);
            }
        }
        CostEstimate { packets, bytes }
    }

    /// Advises the cheaper of external join and SENS-Join for the expected
    /// `fraction` (using a measured or prior `beta`).
    pub fn recommend(&self, fraction: f64, beta: f64) -> MethodChoice {
        let ext = self.external();
        let sens = self.sens_join(fraction, beta, &SensJoinConfig::default());
        if sens.packets <= ext.packets {
            MethodChoice::SensJoin
        } else {
            MethodChoice::External
        }
    }

    /// Member-subtree size of a node (contributing nodes below and including
    /// it) — exposed for diagnostics.
    pub fn member_subtree(&self, v: NodeId) -> u32 {
        self.member_subtree[v.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snetwork::SensorNetworkBuilder;
    use crate::workload::RangeQueryFamily;
    use crate::{ExternalJoin, JoinMethod, SensJoin};
    use sensjoin_field::{Area, Placement};
    use sensjoin_query::parse;
    use sensjoin_sim::BaseChoice;

    fn setup(n: usize, seed: u64, target: f64) -> (SensorNetwork, CompiledQuery, f64) {
        let snet = SensorNetworkBuilder::new()
            .area(Area::for_constant_density(n))
            .placement(Placement::UniformRandom { n })
            .base(BaseChoice::NearestCorner)
            .seed(seed)
            .build()
            .unwrap();
        let cal = RangeQueryFamily::ratio_33().calibrate(&snet, target);
        let cq = snet.compile(&parse(&cal.sql).unwrap()).unwrap();
        (snet, cq, cal.achieved_fraction)
    }

    #[test]
    fn external_prediction_is_nearly_exact() {
        let (mut snet, cq, _) = setup(400, 3, 0.05);
        let model = CostModel::new(&snet, &cq);
        let predicted = model.external();
        let actual = ExternalJoin.execute(&mut snet, &cq).unwrap();
        let err = (predicted.packets - actual.stats.total_tx_packets() as f64).abs()
            / actual.stats.total_tx_packets() as f64;
        assert!(
            err < 0.01,
            "external prediction off by {:.1} %",
            err * 100.0
        );
        assert!(
            (predicted.bytes - actual.stats.total_tx_bytes() as f64).abs()
                < 1.0 + 0.01 * actual.stats.total_tx_bytes() as f64
        );
    }

    #[test]
    fn sens_prediction_within_reason() {
        let (mut snet, cq, fraction) = setup(400, 5, 0.05);
        let model = CostModel::new(&snet, &cq);
        let beta = model.estimate_beta();
        let predicted = model.sens_join(fraction, beta, &SensJoinConfig::default());
        let actual = SensJoin::default().execute(&mut snet, &cq).unwrap();
        let err = (predicted.packets - actual.stats.total_tx_packets() as f64).abs()
            / actual.stats.total_tx_packets() as f64;
        assert!(
            err < 0.35,
            "SENS prediction {:.0} vs actual {} ({:.0} % off)",
            predicted.packets,
            actual.stats.total_tx_packets(),
            err * 100.0
        );
    }

    #[test]
    fn recommendation_matches_simulation_at_the_extremes() {
        // Very selective: SENS-Join must be advised and must actually win.
        let (mut snet, cq, fraction) = setup(350, 7, 0.02);
        let model = CostModel::new(&snet, &cq);
        let beta = model.estimate_beta();
        assert_eq!(model.recommend(fraction, beta), MethodChoice::SensJoin);
        let ext = ExternalJoin.execute(&mut snet, &cq).unwrap();
        let sens = SensJoin::default().execute(&mut snet, &cq).unwrap();
        assert!(sens.stats.total_tx_packets() < ext.stats.total_tx_packets());
        // Everything joins: external must be advised.
        let (snet2, cq2, fraction2) = setup(350, 7, 0.98);
        let model2 = CostModel::new(&snet2, &cq2);
        assert_eq!(
            model2.recommend(fraction2.max(0.95), beta),
            MethodChoice::External
        );
    }

    #[test]
    fn beta_is_plausible() {
        let (snet, cq, _) = setup(300, 9, 0.05);
        let model = CostModel::new(&snet, &cq);
        let beta = model.estimate_beta();
        // Structural bounds, not constants tuned to one RNG stream: beta is
        // the wire size in bits per inserted point, so it must be positive,
        // and a one-dimensional quadtree key is at most 64 bits wide.
        assert!(beta > 0.0 && beta < 64.0, "beta {beta}");
    }
}
