//! The base-station join engine: conservative pre-join and exact join.

use crate::config::SensJoinConfig;
use crate::outcome::JoinResult;
use crate::snetwork::SensorNetwork;
use sensjoin_quadtree::{Point, PointSet, RelFlags, TreeShape};
use sensjoin_query::{CompiledQuery, Interval};
use sensjoin_relation::NodeId;
use sensjoin_zorder::{Dimension, ZSpace};
use std::collections::BTreeSet;

/// The shared quantization space of a query (§V-B) plus the bookkeeping to
/// move between relations, dimensions and quadtree keys.
#[derive(Debug, Clone)]
pub struct JoinSpace {
    zspace: ZSpace,
    /// Per relation: dimension index of each join attribute (parallel to
    /// `CompiledQuery::join_attrs(rel)`).
    maps: Vec<Vec<usize>>,
    shape: TreeShape,
}

impl JoinSpace {
    /// Builds the space for `query` over `snet`'s environment: ranges come
    /// from the quantization config or, failing that, from setup-time
    /// estimation ([`SensorNetwork::attr_bounds`]); resolutions come from
    /// the config or the per-type defaults, scaled by
    /// `config.resolution_scale`.
    pub fn build(query: &CompiledQuery, snet: &SensorNetwork, config: &SensJoinConfig) -> Self {
        let (dim_specs, maps) = query.join_layout();
        let dims: Vec<Dimension> = if dim_specs.is_empty() {
            // No join attributes (pure cross product): a degenerate
            // single-cell space. Every tuple lands in the same cell and the
            // pre-join keeps everything — correct, never beneficial.
            vec![Dimension::new("_any", 0.0, 0.0, 1.0)]
        } else {
            dim_specs
                .iter()
                .map(|(name, ty)| {
                    let (min, max, res) = match config.quantization.get(name) {
                        Some(cfg) => cfg,
                        None => {
                            let (lo, hi) = snet
                                .attr_bounds(name)
                                .unwrap_or_else(|| panic!("no range for attribute {name:?}"));
                            let res = crate::config::QuantizationConfig::default_resolution(*ty);
                            (lo, hi, res)
                        }
                    };
                    Dimension::new(name.clone(), min, max, res * config.resolution_scale)
                })
                .collect()
        };
        let zspace = ZSpace::new(dims).expect("join space dimensions fit 64 bits");
        let flag_bits = query.num_relations().min(8) as u8;
        let shape = TreeShape::new(zspace.level_schedule(), flag_bits);
        Self {
            zspace,
            maps,
            shape,
        }
    }

    /// The underlying Z-order space.
    pub fn zspace(&self) -> &ZSpace {
        &self.zspace
    }

    /// The quadtree shape (flag level + interleave levels).
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// Relation flag for relation `rel`.
    pub fn flag(&self, rel: usize) -> RelFlags {
        RelFlags::relation(rel, self.maps.len())
    }

    /// Encodes a node's join-attribute values. `dim_values[d]` is the value
    /// for dimension `d`, or `None` when no member relation of the node
    /// covers that dimension (encoded as cell 0).
    pub fn encode(&self, dim_values: &[Option<f64>]) -> u64 {
        let coords: Vec<u64> = self
            .zspace
            .dims()
            .iter()
            .zip(dim_values)
            .map(|(d, v)| v.map_or(0, |v| d.coordinate(v)))
            .collect();
        self.zspace.encode_cells(&coords)
    }

    /// Collects the dimension values of `node` for its member relations:
    /// dimension `maps[rel][p]` receives the value of join attribute `p` of
    /// relation `rel`.
    pub fn dim_values(
        &self,
        query: &CompiledQuery,
        values_per_rel: &[Option<Vec<f64>>],
    ) -> Vec<Option<f64>> {
        let mut out = vec![None; self.zspace.arity()];
        for (rel, vals) in values_per_rel.iter().enumerate() {
            if let Some(vals) = vals {
                for (p, &attr) in query.join_attrs(rel).iter().enumerate() {
                    out[self.maps[rel][p]] = Some(vals[attr]);
                }
            }
        }
        out
    }

    /// The interval of join attribute `attr` of relation `rel` for a point
    /// with the given cell box.
    fn attr_interval(
        &self,
        query: &CompiledQuery,
        cell_box: &[(f64, f64)],
        rel: usize,
        attr: usize,
    ) -> Interval {
        let p = query
            .join_attrs(rel)
            .iter()
            .position(|&a| a == attr)
            .expect("join predicates only reference join attributes");
        let (lo, hi) = cell_box[self.maps[rel][p]];
        Interval::new(lo, hi)
    }
}

/// Computes the join filter (§IV step 1a): the set of quantized
/// join-attribute tuples that *possibly* have a join partner, with the
/// relation roles in which they matched.
///
/// Conservative by construction — every real match survives quantization
/// because predicates are evaluated with interval arithmetic over the cells.
pub fn prejoin_filter(query: &CompiledQuery, space: &JoinSpace, points: &PointSet) -> PointSet {
    let n = query.num_relations();
    // Role lists: indices of points usable as relation r.
    let lists: Vec<Vec<usize>> = (0..n)
        .map(|r| {
            let flag = space.flag(r);
            points
                .points()
                .iter()
                .enumerate()
                .filter(|(_, p)| p.flags.intersects(flag))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    // Pre-decode every point's cell box once.
    let boxes: Vec<Vec<(f64, f64)>> = points
        .points()
        .iter()
        .map(|p| space.zspace.cell_box(p.z))
        .collect();
    // Predicates annotated with the highest relation they reference, so a
    // partial binding of relations 0..=k can check them as early as possible.
    let pred_rels: Vec<usize> = query
        .join_preds()
        .iter()
        .map(|p| p.relations().into_iter().max().unwrap_or(0))
        .collect();

    let mut matched: Vec<u8> = vec![0; points.len()];
    let mut binding: Vec<usize> = Vec::with_capacity(n);
    descend(
        query,
        space,
        &lists,
        &boxes,
        &pred_rels,
        &mut binding,
        &mut matched,
    );

    PointSet::from_points(
        matched
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f != 0)
            .map(|(i, &f)| Point {
                z: points.points()[i].z,
                flags: RelFlags(f),
            }),
    )
}

fn descend(
    query: &CompiledQuery,
    space: &JoinSpace,
    lists: &[Vec<usize>],
    boxes: &[Vec<(f64, f64)>],
    pred_rels: &[usize],
    binding: &mut Vec<usize>,
    matched: &mut [u8],
) {
    let rel = binding.len();
    if rel == lists.len() {
        // Full binding survived every predicate: mark all roles.
        for (r, &idx) in binding.iter().enumerate() {
            matched[idx] |= space.flag(r).0;
        }
        return;
    }
    for &idx in &lists[rel] {
        binding.push(idx);
        let env = |r: usize, a: usize| -> Interval {
            space.attr_interval(query, &boxes[binding[r]], r, a)
        };
        let ok = query
            .join_preds()
            .iter()
            .zip(pred_rels)
            .filter(|&(_, &maxrel)| maxrel == rel)
            .all(|(p, _)| sensjoin_query::eval_predicate_interval(p, &env).possible());
        if ok && !query.is_const_false() {
            descend(query, space, lists, boxes, pred_rels, binding, matched);
        }
        binding.pop();
    }
}

/// The exact join at the base station plus contribution tracking.
#[derive(Debug, Clone)]
pub struct JoinComputation {
    /// The query answer.
    pub result: JoinResult,
    /// Origins of tuples appearing in at least one result row.
    pub contributors: BTreeSet<NodeId>,
}

/// Computes the exact join over complete tuples. `tuples[rel]` are the
/// candidate tuples of relation `rel`: `(origin node, values aligned to the
/// relation's schema)`. Local predicates are assumed already applied at the
/// nodes; join predicates are evaluated here with full precision.
pub fn exact_join(query: &CompiledQuery, tuples: &[Vec<(NodeId, Vec<f64>)>]) -> JoinComputation {
    assert_eq!(tuples.len(), query.num_relations());
    let pred_rels: Vec<usize> = query
        .join_preds()
        .iter()
        .map(|p| p.relations().into_iter().max().unwrap_or(0))
        .collect();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut keys: Vec<Vec<f64>> = Vec::new();
    let mut contributors = BTreeSet::new();
    let mut binding: Vec<usize> = Vec::with_capacity(tuples.len());
    if !query.is_const_false() {
        exact_descend(
            query,
            tuples,
            &pred_rels,
            &mut binding,
            &mut rows,
            &mut keys,
            &mut contributors,
        );
    }
    let result = if query.has_group_by() {
        // Group rows by key (bitwise f64 keys: all methods compute the same
        // expressions, so grouping is deterministic) and fold each group.
        let mut groups: std::collections::BTreeMap<Vec<u64>, Vec<Vec<f64>>> = Default::default();
        for (key, row) in keys.into_iter().zip(rows) {
            let kb: Vec<u64> = key.iter().map(|v| v.to_bits()).collect();
            groups.entry(kb).or_default().push(row);
        }
        JoinResult::Rows(groups.values().map(|g| query.fold_group(g)).collect())
    } else if query.is_aggregate() {
        JoinResult::Aggregate(query.aggregate(&rows))
    } else {
        JoinResult::Rows(rows)
    };
    JoinComputation {
        result,
        contributors,
    }
}

#[allow(clippy::too_many_arguments)]
fn exact_descend(
    query: &CompiledQuery,
    tuples: &[Vec<(NodeId, Vec<f64>)>],
    pred_rels: &[usize],
    binding: &mut Vec<usize>,
    rows: &mut Vec<Vec<f64>>,
    keys: &mut Vec<Vec<f64>>,
    contributors: &mut BTreeSet<NodeId>,
) {
    let rel = binding.len();
    if rel == tuples.len() {
        let env = |r: usize, a: usize| -> f64 { tuples[r][binding[r]].1[a] };
        rows.push(query.eval_select_row(&env));
        if query.has_group_by() {
            keys.push(query.eval_group_key(&env));
        }
        for (r, &idx) in binding.iter().enumerate() {
            contributors.insert(tuples[r][idx].0);
        }
        return;
    }
    for idx in 0..tuples[rel].len() {
        binding.push(idx);
        let env = |r: usize, a: usize| -> f64 { tuples[r][binding[r]].1[a] };
        let ok = query
            .join_preds()
            .iter()
            .zip(pred_rels)
            .filter(|&(_, &maxrel)| maxrel == rel)
            .all(|(p, _)| sensjoin_query::eval_predicate(p, &env));
        if ok {
            exact_descend(query, tuples, pred_rels, binding, rows, keys, contributors);
        }
        binding.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snetwork::SensorNetworkBuilder;
    use sensjoin_field::{Area, Placement};
    use sensjoin_query::parse;

    fn setup(sql: &str) -> (SensorNetwork, CompiledQuery, JoinSpace) {
        let snet = SensorNetworkBuilder::new()
            .area(Area::new(300.0, 300.0))
            .placement(Placement::UniformRandom { n: 80 })
            .seed(11)
            .build()
            .unwrap();
        let q = parse(sql).unwrap();
        let cq = snet.compile(&q).unwrap();
        let space = JoinSpace::build(&cq, &snet, &SensJoinConfig::default());
        (snet, cq, space)
    }

    /// All tuples of the network, per relation.
    fn all_tuples(snet: &SensorNetwork, cq: &CompiledQuery) -> Vec<Vec<(NodeId, Vec<f64>)>> {
        (0..cq.num_relations())
            .map(|r| {
                let schema = cq.schema(r);
                (0..snet.len() as u32)
                    .map(NodeId)
                    .filter(|&n| snet.belongs(n, schema.name()))
                    .map(|n| (n, snet.values_for(n, schema)))
                    .filter(|(_, v)| cq.eval_local(r, v))
                    .collect()
            })
            .collect()
    }

    /// Encodes every node into the join space (test helper mirroring the
    /// protocol's node-side encoding).
    fn all_points(snet: &SensorNetwork, cq: &CompiledQuery, space: &JoinSpace) -> PointSet {
        let mut set = PointSet::new();
        for n in (0..snet.len() as u32).map(NodeId) {
            let per_rel: Vec<Option<Vec<f64>>> = (0..cq.num_relations())
                .map(|r| {
                    let schema = cq.schema(r);
                    if snet.belongs(n, schema.name()) {
                        let v = snet.values_for(n, schema);
                        cq.eval_local(r, &v).then_some(v)
                    } else {
                        None
                    }
                })
                .collect();
            let mut flags = 0u8;
            for (r, v) in per_rel.iter().enumerate() {
                if v.is_some() {
                    flags |= space.flag(r).0;
                }
            }
            if flags != 0 {
                let dims = space.dim_values(cq, &per_rel);
                set.insert(space.encode(&dims), RelFlags(flags));
            }
        }
        set
    }

    #[test]
    fn filter_never_loses_a_joining_tuple() {
        let (snet, cq, space) = setup(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.2 ONCE",
        );
        let tuples = all_tuples(&snet, &cq);
        let exact = exact_join(&cq, &tuples);
        let points = all_points(&snet, &cq, &space);
        let filter = prejoin_filter(&cq, &space, &points);
        // Every contributing node's cell must be in the filter with its role.
        for &n in &exact.contributors {
            let v = snet.values_for(n, cq.schema(0));
            let dims = space.dim_values(&cq, &[Some(v.clone()), Some(v)]);
            let z = space.encode(&dims);
            assert!(
                filter.contains_matching(z, RelFlags::BOTH),
                "contributor {n} missing from filter"
            );
        }
        // And the filter is selective (not everything).
        assert!(filter.len() <= points.len());
    }

    #[test]
    fn exact_join_matches_bruteforce() {
        let (snet, cq, _) = setup(
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 1.5 ONCE",
        );
        let tuples = all_tuples(&snet, &cq);
        let res = exact_join(&cq, &tuples);
        // Brute force over pairs.
        let mut expect = 0;
        let ti = 2; // temp index in schema
        for (_, a) in &tuples[0] {
            for (_, b) in &tuples[1] {
                if a[ti] - b[ti] > 1.5 {
                    expect += 1;
                }
            }
        }
        assert_eq!(res.result.len(), expect);
    }

    #[test]
    fn aggregate_query_result() {
        let (snet, cq, _) = setup(
            "SELECT MIN(distance(A.x, A.y, B.x, B.y)) FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 1.0 ONCE",
        );
        let tuples = all_tuples(&snet, &cq);
        let res = exact_join(&cq, &tuples);
        match res.result {
            JoinResult::Aggregate(vals) => {
                assert_eq!(vals.len(), 1);
                if !res.contributors.is_empty() {
                    assert!(vals[0].is_some());
                    assert!(vals[0].unwrap() >= 0.0);
                }
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn cross_join_degenerate_space() {
        let (snet, cq, space) = setup("SELECT A.temp, B.temp FROM Sensors A, Sensors B ONCE");
        // No join predicates: single-cell space, everything in the filter.
        assert_eq!(space.zspace().total_bits(), 0);
        let points = all_points(&snet, &cq, &space);
        assert_eq!(points.len(), 1);
        let filter = prejoin_filter(&cq, &space, &points);
        assert_eq!(filter.len(), 1);
        assert_eq!(filter.points()[0].flags, RelFlags::BOTH);
    }

    #[test]
    fn three_way_join_filter() {
        let (snet, cq, space) = setup(
            "SELECT A.temp, B.temp, C.temp FROM Sensors A, Sensors B, Sensors C \
             WHERE |A.temp - B.temp| < 0.1 AND |B.temp - C.temp| < 0.1 ONCE",
        );
        let tuples = all_tuples(&snet, &cq);
        let exact = exact_join(&cq, &tuples);
        let points = all_points(&snet, &cq, &space);
        let filter = prejoin_filter(&cq, &space, &points);
        for &n in &exact.contributors {
            let v = snet.values_for(n, cq.schema(0));
            let dims = space.dim_values(&cq, &[Some(v.clone()), Some(v.clone()), Some(v)]);
            let z = space.encode(&dims);
            assert!(filter.contains_matching(z, RelFlags(0b111)));
        }
    }
}
