//! The base-station join engine: conservative pre-join and exact join.
//!
//! Both entry points ([`prejoin_filter`], [`exact_join`]) run a
//! **partitioned** descent: per descend level, the predicate classification
//! of [`sensjoin_query::analyze`] drives one hash index (equi predicates) or
//! sorted-key index (band predicates) *per indexable predicate* on that
//! level; the probe with the fewest candidates drives the scan and the other
//! indexed predicates become O(1) membership tests, so the level scans the
//! **intersection** of all indexed candidate sets, while the unchanged
//! residual predicate check still runs on every survivor. Levels without an
//! indexable predicate scan exactly like the nested-loop reference. The outermost level is chunked across threads
//! (behind the default-on `parallel` feature) and the per-chunk outputs are
//! merged in chunk order, so results — rows, their order, contributors, and
//! the filter bitmask — are bit-identical to [`exact_join_nested`] /
//! [`prejoin_filter_nested`], which are retained as the plain reference
//! implementations (and as the baseline of the `engine_scaling` benchmark).

use crate::config::SensJoinConfig;
use crate::outcome::JoinResult;
use crate::partition::{exact_plan, filter_plan, ExactIndex, ExactProbe, FilterIndex};
use crate::snetwork::SensorNetwork;
use sensjoin_quadtree::{Point, PointSet, RelFlags, TreeShape};
use sensjoin_query::{CompiledQuery, Interval};
use sensjoin_relation::NodeId;
use sensjoin_zorder::{Dimension, ZSpace};
use std::collections::BTreeSet;
use std::ops::Range;

/// The shared quantization space of a query (§V-B) plus the bookkeeping to
/// move between relations, dimensions and quadtree keys.
#[derive(Debug, Clone)]
pub struct JoinSpace {
    zspace: ZSpace,
    /// Per relation: dimension index of each join attribute (parallel to
    /// `CompiledQuery::join_attrs(rel)`).
    maps: Vec<Vec<usize>>,
    shape: TreeShape,
}

impl JoinSpace {
    /// Builds the space for `query` over `snet`'s environment: ranges come
    /// from the quantization config or, failing that, from setup-time
    /// estimation ([`SensorNetwork::attr_bounds`]); resolutions come from
    /// the config or the per-type defaults, scaled by
    /// `config.resolution_scale`.
    pub fn build(query: &CompiledQuery, snet: &SensorNetwork, config: &SensJoinConfig) -> Self {
        let (dim_specs, maps) = query.join_layout();
        let dims: Vec<Dimension> = if dim_specs.is_empty() {
            // No join attributes (pure cross product): a degenerate
            // single-cell space. Every tuple lands in the same cell and the
            // pre-join keeps everything — correct, never beneficial.
            vec![Dimension::new("_any", 0.0, 0.0, 1.0)]
        } else {
            dim_specs
                .iter()
                .map(|(name, ty)| {
                    let (min, max, res) = match config.quantization.get(name) {
                        Some(cfg) => cfg,
                        None => {
                            let (lo, hi) = snet
                                .attr_bounds(name)
                                .unwrap_or_else(|| panic!("no range for attribute {name:?}"));
                            let res = crate::config::QuantizationConfig::default_resolution(*ty);
                            (lo, hi, res)
                        }
                    };
                    Dimension::new(name.clone(), min, max, res * config.resolution_scale)
                })
                .collect()
        };
        let zspace = ZSpace::new(dims).expect("join space dimensions fit 64 bits");
        let flag_bits = query.num_relations().min(8) as u8;
        let shape = TreeShape::new(zspace.level_schedule(), flag_bits);
        Self {
            zspace,
            maps,
            shape,
        }
    }

    /// Decomposes the space into plain data for checkpointing: per-dimension
    /// `(name, min, max, resolution)`, the per-relation dimension maps, and
    /// the shape's flag bits. A space must be *serialized*, never rebuilt
    /// from resume-time readings — [`SensorNetwork::attr_bounds`] would see
    /// different samples and yield a different quantization.
    #[allow(clippy::type_complexity)]
    pub fn to_parts(&self) -> (Vec<(String, f64, f64, f64)>, Vec<Vec<usize>>, u8) {
        let dims = self
            .zspace
            .dims()
            .iter()
            .map(|d| (d.name().to_owned(), d.min(), d.max(), d.resolution()))
            .collect();
        (dims, self.maps.clone(), self.shape.flag_bits())
    }

    /// Rebuilds a space from [`JoinSpace::to_parts`] output.
    /// [`Dimension::new`] stores its arguments verbatim, so the round trip
    /// is exact.
    pub fn from_parts(
        dims: Vec<(String, f64, f64, f64)>,
        maps: Vec<Vec<usize>>,
        flag_bits: u8,
    ) -> Self {
        let dims: Vec<Dimension> = dims
            .into_iter()
            .map(|(name, min, max, res)| Dimension::new(name, min, max, res))
            .collect();
        let zspace = ZSpace::new(dims).expect("checkpointed join space fits 64 bits");
        let shape = TreeShape::new(zspace.level_schedule(), flag_bits);
        Self {
            zspace,
            maps,
            shape,
        }
    }

    /// The underlying Z-order space.
    pub fn zspace(&self) -> &ZSpace {
        &self.zspace
    }

    /// The quadtree shape (flag level + interleave levels).
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// Relation flag for relation `rel`.
    pub fn flag(&self, rel: usize) -> RelFlags {
        RelFlags::relation(rel, self.maps.len())
    }

    /// Encodes a node's join-attribute values. `dim_values[d]` is the value
    /// for dimension `d`, or `None` when no member relation of the node
    /// covers that dimension (encoded as cell 0).
    pub fn encode(&self, dim_values: &[Option<f64>]) -> u64 {
        let coords: Vec<u64> = self
            .zspace
            .dims()
            .iter()
            .zip(dim_values)
            .map(|(d, v)| v.map_or(0, |v| d.coordinate(v)))
            .collect();
        self.zspace.encode_cells(&coords)
    }

    /// Collects the dimension values of `node` for its member relations:
    /// dimension `maps[rel][p]` receives the value of join attribute `p` of
    /// relation `rel`.
    pub fn dim_values(
        &self,
        query: &CompiledQuery,
        values_per_rel: &[Option<Vec<f64>>],
    ) -> Vec<Option<f64>> {
        let mut out = vec![None; self.zspace.arity()];
        for (rel, vals) in values_per_rel.iter().enumerate() {
            if let Some(vals) = vals {
                for (p, &attr) in query.join_attrs(rel).iter().enumerate() {
                    out[self.maps[rel][p]] = Some(vals[attr]);
                }
            }
        }
        out
    }

    /// The interval of join attribute `attr` of relation `rel` for a point
    /// with the given cell box.
    pub(crate) fn attr_interval(
        &self,
        query: &CompiledQuery,
        cell_box: &[(f64, f64)],
        rel: usize,
        attr: usize,
    ) -> Interval {
        let p = query
            .join_attrs(rel)
            .iter()
            .position(|&a| a == attr)
            .expect("join predicates only reference join attributes");
        let (lo, hi) = cell_box[self.maps[rel][p]];
        Interval::new(lo, hi)
    }
}

/// Highest relation referenced per join predicate, so a partial binding of
/// relations `0..=k` can check each predicate as early as possible.
pub(crate) fn pred_max_rels(query: &CompiledQuery) -> Vec<usize> {
    query
        .join_preds()
        .iter()
        .map(|p| p.relations().into_iter().max().unwrap_or(0))
        .collect()
}

/// Runs `f` over contiguous chunks of `0..n_items` and returns the chunk
/// results **in chunk order**. With the `parallel` feature (default) and
/// `worthwhile` work, chunks run on scoped threads; otherwise a single
/// chunk runs inline. Order-preserving merging keeps the parallel engine
/// bit-identical to the sequential one.
fn run_chunked<T, F>(n_items: usize, worthwhile: bool, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    #[cfg(feature = "parallel")]
    if worthwhile && n_items >= 2 {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n_items);
        if threads > 1 {
            let chunk = n_items.div_ceil(threads);
            return std::thread::scope(|s| {
                let f = &f;
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let lo = t * chunk;
                        let hi = ((t + 1) * chunk).min(n_items);
                        s.spawn(move || f(lo..hi))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("join worker panicked"))
                    .collect()
            });
        }
    }
    #[cfg(not(feature = "parallel"))]
    let _ = worthwhile;
    vec![f(0..n_items)]
}

/// Whether the estimated descent work (outer size × inner search space)
/// justifies spawning threads.
fn worth_parallelizing(outer: usize, inner_sizes: impl Iterator<Item = usize>) -> bool {
    let inner: usize = inner_sizes
        .map(|s| s.max(1))
        .fold(1usize, |a, b| a.saturating_mul(b));
    outer.saturating_mul(inner) >= (1 << 13)
}

/// Computes the join filter (§IV step 1a): the set of quantized
/// join-attribute tuples that *possibly* have a join partner, with the
/// relation roles in which they matched.
///
/// Conservative by construction — every real match survives quantization
/// because predicates are evaluated with interval arithmetic over the cells.
///
/// Partitioned evaluation: levels with an equi/band predicate on plain
/// column sides probe a sorted array of cell intervals instead of scanning
/// every point; the marked bitmask is identical to
/// [`prejoin_filter_nested`]'s because candidate pruning only removes points
/// whose residual interval check is definitely false.
pub fn prejoin_filter(query: &CompiledQuery, space: &JoinSpace, points: &PointSet) -> PointSet {
    let (lists, boxes) = filter_inputs(query, space, points);
    let pred_rels = pred_max_rels(query);
    let mut matched: Vec<u8> = vec![0; points.len()];
    if !query.is_const_false() && !lists.is_empty() {
        let list_lens: Vec<usize> = lists.iter().map(|l| l.len()).collect();
        let plan = filter_plan(query, &list_lens, &pred_rels, |rel, attr, pos| {
            space.attr_interval(query, &boxes[lists[rel][pos]], rel, attr)
        });
        let run = FilterRun {
            query,
            space,
            lists: &lists,
            boxes: &boxes,
            pred_rels: &pred_rels,
            plan: &plan,
        };
        let worthwhile = worth_parallelizing(lists[0].len(), lists.iter().skip(1).map(|l| l.len()));
        let parts = run_chunked(lists[0].len(), worthwhile, |range| {
            let mut local: Vec<u8> = vec![0; points.len()];
            let mut binding: Vec<usize> = Vec::with_capacity(lists.len());
            for pos in range {
                run.step(0, pos, &mut binding, &mut local);
            }
            local
        });
        for part in parts {
            for (m, p) in matched.iter_mut().zip(part) {
                *m |= p;
            }
        }
    }
    collect_filter(points, &matched)
}

/// The nested-loop reference pre-join filter (the original implementation):
/// kept for equivalence testing and as the benchmark baseline. Produces the
/// same [`PointSet`] as [`prejoin_filter`].
pub fn prejoin_filter_nested(
    query: &CompiledQuery,
    space: &JoinSpace,
    points: &PointSet,
) -> PointSet {
    let (lists, boxes) = filter_inputs(query, space, points);
    let pred_rels = pred_max_rels(query);
    let mut matched: Vec<u8> = vec![0; points.len()];
    let mut binding: Vec<usize> = Vec::with_capacity(lists.len());
    // The query's truth value is binding-independent: check it once instead
    // of per loop iteration.
    if !query.is_const_false() {
        descend_nested(
            query,
            space,
            &lists,
            &boxes,
            &pred_rels,
            &mut binding,
            &mut matched,
        );
    }
    collect_filter(points, &matched)
}

/// Role lists (point indices usable as each relation) and pre-decoded cell
/// boxes — the shared setup of both filter implementations.
#[allow(clippy::type_complexity)]
fn filter_inputs(
    query: &CompiledQuery,
    space: &JoinSpace,
    points: &PointSet,
) -> (Vec<Vec<usize>>, Vec<Vec<(f64, f64)>>) {
    let n = query.num_relations();
    let lists: Vec<Vec<usize>> = (0..n)
        .map(|r| {
            let flag = space.flag(r);
            points
                .points()
                .iter()
                .enumerate()
                .filter(|(_, p)| p.flags.intersects(flag))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    let boxes: Vec<Vec<(f64, f64)>> = points
        .points()
        .iter()
        .map(|p| space.zspace.cell_box(p.z))
        .collect();
    (lists, boxes)
}

fn collect_filter(points: &PointSet, matched: &[u8]) -> PointSet {
    PointSet::from_points(
        matched
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f != 0)
            .map(|(i, &f)| Point {
                z: points.points()[i].z,
                flags: RelFlags(f),
            }),
    )
}

/// Shared context of the partitioned filter descent.
struct FilterRun<'a> {
    query: &'a CompiledQuery,
    space: &'a JoinSpace,
    lists: &'a [Vec<usize>],
    boxes: &'a [Vec<(f64, f64)>],
    pred_rels: &'a [usize],
    plan: &'a [Vec<FilterIndex>],
}

impl FilterRun<'_> {
    fn descend(&self, binding: &mut Vec<usize>, matched: &mut [u8]) {
        let rel = binding.len();
        if rel == self.lists.len() {
            // Full binding survived every predicate: mark all roles.
            for (r, &idx) in binding.iter().enumerate() {
                matched[idx] |= self.space.flag(r).0;
            }
            return;
        }
        // Intersect the candidate windows of every index on this level: the
        // smallest window drives, the rest degrade to rank membership tests
        // folded into the iteration. The driver's sorted runs are walked in
        // place — `matched` is an OR-bitmask, so emission order is free and
        // no position list is materialized per binding step.
        let mut probes: Vec<(&FilterIndex, Vec<Range<usize>>)> = Vec::new();
        for ix in &self.plan[rel] {
            let probe = self.space.attr_interval(
                self.query,
                &self.boxes[binding[ix.probe_rel()]],
                ix.probe_rel(),
                ix.probe_attr(),
            );
            if let Some(ranges) = ix.probe(probe) {
                probes.push((ix, ranges));
            }
        }
        let Some(di) =
            (0..probes.len()).min_by_key(|&i| probes[i].1.iter().map(|r| r.len()).sum::<usize>())
        else {
            for pos in 0..self.lists[rel].len() {
                self.step(rel, pos, binding, matched);
            }
            return;
        };
        let (dix, dranges) = &probes[di];
        for r in dranges {
            for &(_, pos) in &dix.entries()[r.clone()] {
                let ok = probes
                    .iter()
                    .enumerate()
                    .all(|(i, (ix, rs))| i == di || ix.accepts(rs, pos));
                if ok {
                    self.step(rel, pos as usize, binding, matched);
                }
            }
        }
    }

    /// Binds role-list position `pos` at level `rel`, applies the residual
    /// interval check (identical to the nested reference) and recurses.
    fn step(&self, rel: usize, pos: usize, binding: &mut Vec<usize>, matched: &mut [u8]) {
        let idx = self.lists[rel][pos];
        binding.push(idx);
        let ok = {
            let env = |r: usize, a: usize| -> Interval {
                self.space
                    .attr_interval(self.query, &self.boxes[binding[r]], r, a)
            };
            self.query
                .join_preds()
                .iter()
                .zip(self.pred_rels)
                .filter(|&(_, &maxrel)| maxrel == rel)
                .all(|(p, _)| sensjoin_query::eval_predicate_interval(p, &env).possible())
        };
        if ok {
            self.descend(binding, matched);
        }
        binding.pop();
    }
}

fn descend_nested(
    query: &CompiledQuery,
    space: &JoinSpace,
    lists: &[Vec<usize>],
    boxes: &[Vec<(f64, f64)>],
    pred_rels: &[usize],
    binding: &mut Vec<usize>,
    matched: &mut [u8],
) {
    let rel = binding.len();
    if rel == lists.len() {
        // Full binding survived every predicate: mark all roles.
        for (r, &idx) in binding.iter().enumerate() {
            matched[idx] |= space.flag(r).0;
        }
        return;
    }
    for &idx in &lists[rel] {
        binding.push(idx);
        let env = |r: usize, a: usize| -> Interval {
            space.attr_interval(query, &boxes[binding[r]], r, a)
        };
        let ok = query
            .join_preds()
            .iter()
            .zip(pred_rels)
            .filter(|&(_, &maxrel)| maxrel == rel)
            .all(|(p, _)| sensjoin_query::eval_predicate_interval(p, &env).possible());
        if ok {
            descend_nested(query, space, lists, boxes, pred_rels, binding, matched);
        }
        binding.pop();
    }
}

/// The exact join at the base station plus contribution tracking.
#[derive(Debug, Clone)]
pub struct JoinComputation {
    /// The query answer.
    pub result: JoinResult,
    /// Origins of tuples appearing in at least one result row.
    pub contributors: BTreeSet<NodeId>,
}

/// Accumulated outputs of one (chunk of the) exact descent. Also the bridge
/// the streaming engine ([`crate::ingest::StreamJoinEngine`]) feeds its row
/// cache through, so both paths share one finalization.
#[derive(Default)]
pub(crate) struct ExactAcc {
    pub(crate) rows: Vec<Vec<f64>>,
    pub(crate) keys: Vec<Vec<f64>>,
    pub(crate) contributors: BTreeSet<NodeId>,
}

/// Computes the exact join over complete tuples. `tuples[rel]` are the
/// candidate tuples of relation `rel`: `(origin node, values aligned to the
/// relation's schema)`. Local predicates are assumed already applied at the
/// nodes; join predicates are evaluated here with full precision.
///
/// Partitioned evaluation: each descend level with an equi (band) predicate
/// probes a hash (sorted) index for its candidate tuples; the outer level is
/// chunked across threads behind the `parallel` feature. Rows, row order,
/// grouping and contributors are bit-identical to [`exact_join_nested`].
pub fn exact_join(query: &CompiledQuery, tuples: &[Vec<(NodeId, Vec<f64>)>]) -> JoinComputation {
    assert_eq!(tuples.len(), query.num_relations());
    let pred_rels = pred_max_rels(query);
    let mut acc = ExactAcc::default();
    if !query.is_const_false() {
        let plan = exact_plan(query, tuples, &pred_rels);
        let run = ExactRun {
            query,
            tuples,
            pred_rels: &pred_rels,
            plan: &plan,
        };
        if tuples.is_empty() {
            // Zero relations: descend's base case emits the single
            // empty-binding row, exactly like the nested reference.
            run.descend(&mut Vec::new(), &mut acc);
        } else {
            let worthwhile =
                worth_parallelizing(tuples[0].len(), tuples.iter().skip(1).map(|t| t.len()));
            let parts = run_chunked(tuples[0].len(), worthwhile, |range| {
                let mut part = ExactAcc::default();
                let mut binding: Vec<usize> = Vec::with_capacity(tuples.len());
                for pos in range {
                    run.step(0, pos, &mut binding, &mut part);
                }
                part
            });
            // Chunk-order merge: rows/keys concatenate to the sequential
            // order, the contributor set unions.
            for part in parts {
                acc.rows.extend(part.rows);
                acc.keys.extend(part.keys);
                acc.contributors.extend(part.contributors);
            }
        }
    }
    finalize_exact(query, acc)
}

/// The nested-loop reference exact join (the original implementation): kept
/// for equivalence testing and as the benchmark baseline. Produces the same
/// [`JoinComputation`] as [`exact_join`].
pub fn exact_join_nested(
    query: &CompiledQuery,
    tuples: &[Vec<(NodeId, Vec<f64>)>],
) -> JoinComputation {
    assert_eq!(tuples.len(), query.num_relations());
    let pred_rels = pred_max_rels(query);
    let mut acc = ExactAcc::default();
    let mut binding: Vec<usize> = Vec::with_capacity(tuples.len());
    if !query.is_const_false() {
        exact_descend_nested(query, tuples, &pred_rels, &mut binding, &mut acc);
    }
    finalize_exact(query, acc)
}

/// Grouping / aggregation folding shared by both exact implementations and
/// the streaming engine.
pub(crate) fn finalize_exact(query: &CompiledQuery, acc: ExactAcc) -> JoinComputation {
    let ExactAcc {
        rows,
        keys,
        contributors,
    } = acc;
    let result = if query.has_group_by() {
        // Group rows by key (bitwise f64 keys: all methods compute the same
        // expressions, so grouping is deterministic) and fold each group.
        let mut groups: std::collections::BTreeMap<Vec<u64>, Vec<Vec<f64>>> = Default::default();
        for (key, row) in keys.into_iter().zip(rows) {
            let kb: Vec<u64> = key.iter().map(|v| v.to_bits()).collect();
            groups.entry(kb).or_default().push(row);
        }
        JoinResult::Rows(groups.values().map(|g| query.fold_group(g)).collect())
    } else if query.is_aggregate() {
        JoinResult::Aggregate(query.aggregate(&rows))
    } else {
        JoinResult::Rows(rows)
    };
    JoinComputation {
        result,
        contributors,
    }
}

/// Shared context of the partitioned exact descent.
struct ExactRun<'a> {
    query: &'a CompiledQuery,
    tuples: &'a [Vec<(NodeId, Vec<f64>)>],
    pred_rels: &'a [usize],
    plan: &'a [Vec<ExactIndex<'a>>],
}

impl ExactRun<'_> {
    fn descend(&self, binding: &mut Vec<usize>, out: &mut ExactAcc) {
        let rel = binding.len();
        if rel == self.tuples.len() {
            let env = |r: usize, a: usize| -> f64 { self.tuples[r][binding[r]].1[a] };
            out.rows.push(self.query.eval_select_row(&env));
            if self.query.has_group_by() {
                out.keys.push(self.query.eval_group_key(&env));
            }
            for (r, &idx) in binding.iter().enumerate() {
                out.contributors.insert(self.tuples[r][idx].0);
            }
            return;
        }
        // Intersect the candidate sets of every index on this level: the
        // probe with the fewest candidates drives the scan, the rest degrade
        // to O(1) membership tests folded into the iteration (no candidate
        // window is copied or double-passed per binding step).
        let probes: Vec<(&ExactIndex, ExactProbe)> = {
            let env = |r: usize, a: usize| -> f64 { self.tuples[r][binding[r]].1[a] };
            self.plan[rel]
                .iter()
                .map(|ix| (ix, ix.probe(&env)))
                .filter(|(_, p)| !matches!(p, ExactProbe::All))
                .collect()
        };
        let Some(di) = (0..probes.len()).min_by_key(|&i| probes[i].0.count(&probes[i].1)) else {
            for pos in 0..self.tuples[rel].len() {
                self.step(rel, pos, binding, out);
            }
            return;
        };
        let others_ok = |pos: u32| {
            probes
                .iter()
                .enumerate()
                .all(|(i, (ix, p))| i == di || ix.contains(p, pos))
        };
        let (dix, dprobe) = &probes[di];
        if let Some(bucket) = dix.hash_slice(dprobe) {
            // Equi driver: the bucket is already ascending — iterate the
            // borrowed slice directly.
            for &pos in bucket {
                if others_ok(pos) {
                    self.step(rel, pos as usize, binding, out);
                }
            }
        } else {
            // Band driver: runs are key-ordered, so a position sort is
            // needed to preserve the nested loop's emission order.
            for &pos in &dix.materialize(dprobe) {
                if others_ok(pos) {
                    self.step(rel, pos as usize, binding, out);
                }
            }
        }
    }

    /// Binds tuple `pos` at level `rel`, applies the residual predicate
    /// check (identical to the nested reference) and recurses.
    fn step(&self, rel: usize, pos: usize, binding: &mut Vec<usize>, out: &mut ExactAcc) {
        binding.push(pos);
        let ok = {
            let env = |r: usize, a: usize| -> f64 { self.tuples[r][binding[r]].1[a] };
            self.query
                .join_preds()
                .iter()
                .zip(self.pred_rels)
                .filter(|&(_, &maxrel)| maxrel == rel)
                .all(|(p, _)| sensjoin_query::eval_predicate(p, &env))
        };
        if ok {
            self.descend(binding, out);
        }
        binding.pop();
    }
}

fn exact_descend_nested(
    query: &CompiledQuery,
    tuples: &[Vec<(NodeId, Vec<f64>)>],
    pred_rels: &[usize],
    binding: &mut Vec<usize>,
    out: &mut ExactAcc,
) {
    let rel = binding.len();
    if rel == tuples.len() {
        let env = |r: usize, a: usize| -> f64 { tuples[r][binding[r]].1[a] };
        out.rows.push(query.eval_select_row(&env));
        if query.has_group_by() {
            out.keys.push(query.eval_group_key(&env));
        }
        for (r, &idx) in binding.iter().enumerate() {
            out.contributors.insert(tuples[r][idx].0);
        }
        return;
    }
    for idx in 0..tuples[rel].len() {
        binding.push(idx);
        let env = |r: usize, a: usize| -> f64 { tuples[r][binding[r]].1[a] };
        let ok = query
            .join_preds()
            .iter()
            .zip(pred_rels)
            .filter(|&(_, &maxrel)| maxrel == rel)
            .all(|(p, _)| sensjoin_query::eval_predicate(p, &env));
        if ok {
            exact_descend_nested(query, tuples, pred_rels, binding, out);
        }
        binding.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snetwork::SensorNetworkBuilder;
    use sensjoin_field::{Area, Placement};
    use sensjoin_query::parse;

    fn setup(sql: &str) -> (SensorNetwork, CompiledQuery, JoinSpace) {
        let snet = SensorNetworkBuilder::new()
            .area(Area::new(300.0, 300.0))
            .placement(Placement::UniformRandom { n: 80 })
            .seed(11)
            .build()
            .unwrap();
        let q = parse(sql).unwrap();
        let cq = snet.compile(&q).unwrap();
        let space = JoinSpace::build(&cq, &snet, &SensJoinConfig::default());
        (snet, cq, space)
    }

    /// All tuples of the network, per relation.
    fn all_tuples(snet: &SensorNetwork, cq: &CompiledQuery) -> Vec<Vec<(NodeId, Vec<f64>)>> {
        (0..cq.num_relations())
            .map(|r| {
                let schema = cq.schema(r);
                (0..snet.len() as u32)
                    .map(NodeId)
                    .filter(|&n| snet.belongs(n, schema.name()))
                    .map(|n| (n, snet.values_for(n, schema)))
                    .filter(|(_, v)| cq.eval_local(r, v))
                    .collect()
            })
            .collect()
    }

    /// Encodes every node into the join space (test helper mirroring the
    /// protocol's node-side encoding).
    fn all_points(snet: &SensorNetwork, cq: &CompiledQuery, space: &JoinSpace) -> PointSet {
        let mut set = PointSet::new();
        for n in (0..snet.len() as u32).map(NodeId) {
            let per_rel: Vec<Option<Vec<f64>>> = (0..cq.num_relations())
                .map(|r| {
                    let schema = cq.schema(r);
                    if snet.belongs(n, schema.name()) {
                        let v = snet.values_for(n, schema);
                        cq.eval_local(r, &v).then_some(v)
                    } else {
                        None
                    }
                })
                .collect();
            let mut flags = 0u8;
            for (r, v) in per_rel.iter().enumerate() {
                if v.is_some() {
                    flags |= space.flag(r).0;
                }
            }
            if flags != 0 {
                let dims = space.dim_values(cq, &per_rel);
                set.insert(space.encode(&dims), RelFlags(flags));
            }
        }
        set
    }

    #[test]
    fn filter_never_loses_a_joining_tuple() {
        let (snet, cq, space) = setup(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.2 ONCE",
        );
        let tuples = all_tuples(&snet, &cq);
        let exact = exact_join(&cq, &tuples);
        let points = all_points(&snet, &cq, &space);
        let filter = prejoin_filter(&cq, &space, &points);
        // Every contributing node's cell must be in the filter with its role.
        for &n in &exact.contributors {
            let v = snet.values_for(n, cq.schema(0));
            let dims = space.dim_values(&cq, &[Some(v.clone()), Some(v)]);
            let z = space.encode(&dims);
            assert!(
                filter.contains_matching(z, RelFlags::BOTH),
                "contributor {n} missing from filter"
            );
        }
        // And the filter is selective (not everything).
        assert!(filter.len() <= points.len());
    }

    #[test]
    fn exact_join_matches_bruteforce() {
        let (snet, cq, _) = setup(
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 1.5 ONCE",
        );
        let tuples = all_tuples(&snet, &cq);
        let res = exact_join(&cq, &tuples);
        // Brute force over pairs.
        let mut expect = 0;
        let ti = 2; // temp index in schema
        for (_, a) in &tuples[0] {
            for (_, b) in &tuples[1] {
                if a[ti] - b[ti] > 1.5 {
                    expect += 1;
                }
            }
        }
        assert_eq!(res.result.len(), expect);
    }

    #[test]
    fn aggregate_query_result() {
        let (snet, cq, _) = setup(
            "SELECT MIN(distance(A.x, A.y, B.x, B.y)) FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 1.0 ONCE",
        );
        let tuples = all_tuples(&snet, &cq);
        let res = exact_join(&cq, &tuples);
        match res.result {
            JoinResult::Aggregate(vals) => {
                assert_eq!(vals.len(), 1);
                if !res.contributors.is_empty() {
                    assert!(vals[0].is_some());
                    assert!(vals[0].unwrap() >= 0.0);
                }
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn cross_join_degenerate_space() {
        let (snet, cq, space) = setup("SELECT A.temp, B.temp FROM Sensors A, Sensors B ONCE");
        // No join predicates: single-cell space, everything in the filter.
        assert_eq!(space.zspace().total_bits(), 0);
        let points = all_points(&snet, &cq, &space);
        assert_eq!(points.len(), 1);
        let filter = prejoin_filter(&cq, &space, &points);
        assert_eq!(filter.len(), 1);
        assert_eq!(filter.points()[0].flags, RelFlags::BOTH);
    }

    #[test]
    fn three_way_join_filter() {
        let (snet, cq, space) = setup(
            "SELECT A.temp, B.temp, C.temp FROM Sensors A, Sensors B, Sensors C \
             WHERE |A.temp - B.temp| < 0.1 AND |B.temp - C.temp| < 0.1 ONCE",
        );
        let tuples = all_tuples(&snet, &cq);
        let exact = exact_join(&cq, &tuples);
        let points = all_points(&snet, &cq, &space);
        let filter = prejoin_filter(&cq, &space, &points);
        for &n in &exact.contributors {
            let v = snet.values_for(n, cq.schema(0));
            let dims = space.dim_values(&cq, &[Some(v.clone()), Some(v.clone()), Some(v)]);
            let z = space.encode(&dims);
            assert!(filter.contains_matching(z, RelFlags(0b111)));
        }
    }

    /// Regression: on the probe side of an `|f(A) − g(B)| op c` predicate
    /// the index is built on the *rhs* relation, so the probe coordinate is
    /// decreasing and the two accepted d-intervals of `Gt`/`Ge`/`Eq` map to
    /// a suffix run followed by a prefix run of the sorted keys; both runs
    /// must survive the range merge (a naive ascending merge drops the
    /// prefix and loses rows).
    #[test]
    fn abs_gt_band_keeps_both_runs() {
        use sensjoin_relation::{AttrType, Attribute, Schema};
        let schema = Schema::new("Sensors", vec![Attribute::new("temp", AttrType::Celsius)]);
        let temps = [-4.0, -2.0, 0.0, 2.0, 4.0];
        let tuples: Vec<Vec<(NodeId, Vec<f64>)>> = (0..2)
            .map(|r| {
                temps
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| (NodeId((r * 100 + i) as u32), vec![t]))
                    .collect()
            })
            .collect();
        for (sql, expect) in [
            // 20 ordered pairs differ by more than 1: all but the diagonal.
            ("|A.temp - B.temp| > 1.0", 20),
            ("|A.temp - B.temp| >= 2.0", 20),
            // |d| = 2 holds for the 8 adjacent pairs.
            ("|A.temp - B.temp| = 2.0", 8),
        ] {
            let q = parse(&format!(
                "SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE {sql} ONCE"
            ))
            .unwrap();
            let cq = CompiledQuery::compile(&q, &[schema.clone(), schema.clone()]).unwrap();
            let new = exact_join(&cq, &tuples);
            let old = exact_join_nested(&cq, &tuples);
            assert_eq!(old.result.len(), expect, "reference sanity for {sql}");
            assert_eq!(new.result.len(), expect, "partitioned lost rows for {sql}");
            assert_eq!(new.contributors, old.contributors, "{sql}");
        }
    }

    /// Index intersection: a 3-way join whose last descent level carries
    /// *two* indexable predicates (a band `A–C` and an equi `B–C`) must use
    /// both — smallest window drives, the other becomes a membership probe —
    /// and still match the nested reference bit for bit, for the exact join
    /// and the pre-join filter alike.
    #[test]
    fn index_intersection_on_shared_level_matches_nested() {
        for sql in [
            // Both predicates' highest relation is C: level 2 gets a sorted
            // (band) and a hash (equi) index.
            "SELECT A.temp, B.temp, C.temp FROM Sensors A, Sensors B, Sensors C \
             WHERE |A.temp - C.temp| < 0.4 AND B.hum = C.hum ONCE",
            // Three predicates, two of them (band + band) on level C.
            "SELECT A.temp, B.temp, C.temp FROM Sensors A, Sensors B, Sensors C \
             WHERE |A.temp - C.temp| < 0.5 AND B.temp - C.temp > -0.5 \
             AND A.hum - B.hum > -30.0 ONCE",
        ] {
            let (snet, cq, space) = setup(sql);
            // Sanity: the last level really holds two indexes.
            let pred_rels = pred_max_rels(&cq);
            assert!(
                pred_rels.iter().filter(|&&r| r == 2).count() >= 2,
                "test premise: two predicates on level 2 for {sql}"
            );
            let tuples = all_tuples(&snet, &cq);
            let new = exact_join(&cq, &tuples);
            let old = exact_join_nested(&cq, &tuples);
            assert_eq!(new.contributors, old.contributors, "{sql}");
            match (&new.result, &old.result) {
                (JoinResult::Rows(a), JoinResult::Rows(b)) => {
                    let bits = |rows: &[Vec<f64>]| -> Vec<Vec<u64>> {
                        rows.iter()
                            .map(|r| r.iter().map(|v| v.to_bits()).collect())
                            .collect()
                    };
                    assert_eq!(bits(a), bits(b), "row mismatch for {sql}");
                }
                (a, b) => panic!("result kind mismatch for {sql}: {a:?} vs {b:?}"),
            }
            let points = all_points(&snet, &cq, &space);
            let new_f = prejoin_filter(&cq, &space, &points);
            let old_f = prejoin_filter_nested(&cq, &space, &points);
            assert_eq!(new_f.points(), old_f.points(), "filter mismatch for {sql}");
        }
    }

    /// The partitioned engine and the nested-loop reference agree exactly —
    /// rows, row order, contributors and filter bitmask — across predicate
    /// classes (equi / band / abs-band / general / mixed).
    #[test]
    fn partitioned_engine_matches_nested_reference() {
        for sql in [
            "SELECT A.temp, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp = B.temp ONCE",
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 1.5 ONCE",
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.2 ONCE",
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| > 1.0 ONCE",
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| >= 1.0 ONCE",
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| = 0.0 ONCE",
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE A.temp < B.temp AND A.hum - B.hum > 10.0 ONCE",
            "SELECT A.x, B.x FROM Sensors A, Sensors B \
             WHERE distance(A.x, A.y, B.x, B.y) < 40.0 ONCE",
            "SELECT A.temp, B.temp, C.temp FROM Sensors A, Sensors B, Sensors C \
             WHERE |A.temp - B.temp| < 0.3 AND B.temp - C.temp > 0.5 ONCE",
        ] {
            let (snet, cq, space) = setup(sql);
            let tuples = all_tuples(&snet, &cq);
            let new = exact_join(&cq, &tuples);
            let old = exact_join_nested(&cq, &tuples);
            assert_eq!(new.contributors, old.contributors, "{sql}");
            match (&new.result, &old.result) {
                (JoinResult::Rows(a), JoinResult::Rows(b)) => {
                    let bits = |rows: &[Vec<f64>]| -> Vec<Vec<u64>> {
                        rows.iter()
                            .map(|r| r.iter().map(|v| v.to_bits()).collect())
                            .collect()
                    };
                    assert_eq!(bits(a), bits(b), "row mismatch for {sql}");
                }
                (a, b) => panic!("result kind mismatch for {sql}: {a:?} vs {b:?}"),
            }
            let points = all_points(&snet, &cq, &space);
            let new_f = prejoin_filter(&cq, &space, &points);
            let old_f = prejoin_filter_nested(&cq, &space, &points);
            assert_eq!(new_f.points(), old_f.points(), "filter mismatch for {sql}");
        }
    }
}
