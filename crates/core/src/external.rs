//! The external join: the state-of-the-art general-purpose baseline (§VI).

use crate::config::SensJoinConfig;
use crate::engine::{exact_join, JoinSpace};
use crate::outcome::{JoinOutcome, ProtocolError};
use crate::repr::{collect_node_data, project_to_schema, FullRec};
use crate::snetwork::SensorNetwork;
use crate::wave::up_wave;
use crate::JoinMethod;
use sensjoin_query::CompiledQuery;
use sensjoin_relation::NodeId;

/// Sends both input relations to the base station and joins there.
///
/// The implementation is the paper's "state-of-the-art" variant: selections
/// and projections are performed as early as possible (nodes only ship the
/// attributes the query references, §VI), and tuples are aggregated into
/// packets as they move up the routing tree. Despite its simplicity it is
/// *optimal* when the join selectivity is very low, and it is the baseline
/// every figure of the evaluation compares against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExternalJoin;

/// Tuples accumulated on the way up.
struct Batch {
    tuples: Vec<FullRec>,
    bytes: usize,
}

impl JoinMethod for ExternalJoin {
    fn name(&self) -> &'static str {
        "external"
    }

    fn execute(
        &self,
        snet: &mut SensorNetwork,
        query: &CompiledQuery,
    ) -> Result<JoinOutcome, ProtocolError> {
        snet.net_mut().reset_stats();
        // The join space is only used to precompute node data uniformly with
        // SENS-Join (z-numbers are ignored here).
        let space = JoinSpace::build(query, snet, &SensJoinConfig::default());
        let data = collect_node_data(snet, query, &space);

        let (base_batch, rep) = up_wave(
            snet.net_mut(),
            &|_| true,
            |v, received: Vec<Batch>| {
                let mut tuples = Vec::new();
                let mut bytes = 0;
                for mut b in received {
                    bytes += b.bytes;
                    tuples.append(&mut b.tuples);
                }
                if let Some(rec) = &data[v.0 as usize].rec {
                    bytes += rec.bytes;
                    tuples.push(rec.clone());
                }
                Batch { tuples, bytes }
            },
            |b| b.bytes,
            "collection",
        );

        let master = snet.master_schema().clone();
        let tuples_per_rel: Vec<Vec<(NodeId, Vec<f64>)>> = (0..query.num_relations())
            .map(|r| {
                let flag = space.flag(r);
                base_batch
                    .tuples
                    .iter()
                    .filter(|rec| rec.flags.intersects(flag))
                    .map(|rec| {
                        (
                            rec.origin,
                            project_to_schema(&master, query.schema(r), &rec.values),
                        )
                    })
                    .collect()
            })
            .collect();
        let computation = exact_join(query, &tuples_per_rel);
        Ok(JoinOutcome {
            result: computation.result,
            stats: snet.net().stats().clone(),
            latency_us: rep.timing.pipelined,
            latency_slotted_us: rep.timing.slotted,
            contributors: computation.contributors,
            // The external join ships raw tuples: any permanent loss is a
            // missing result row, so the single wave must arrive intact.
            complete: rep.damaged.is_empty(),
            churned: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::JoinResult;
    use crate::snetwork::SensorNetworkBuilder;
    use sensjoin_field::{Area, Placement};
    use sensjoin_query::parse;

    fn snet(n: usize, seed: u64) -> SensorNetwork {
        SensorNetworkBuilder::new()
            .area(Area::new(300.0, 300.0))
            .placement(Placement::UniformRandom { n })
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn matches_oracle_join() {
        let mut s = snet(70, 2);
        let q = parse(
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 2.0 ONCE",
        )
        .unwrap();
        let cq = s.compile(&q).unwrap();
        let out = ExternalJoin.execute(&mut s, &cq).unwrap();
        // Oracle: brute force over readings of reachable nodes (nodes cut
        // off from the base station cannot contribute).
        let ti = s.master_index("temp").unwrap();
        let temps: Vec<f64> = (0..s.len() as u32)
            .filter(|&i| s.net().routing().depth(NodeId(i)).is_some())
            .map(|i| s.readings(NodeId(i))[ti])
            .collect();
        let mut expect = 0;
        for a in &temps {
            for b in &temps {
                if a - b > 2.0 {
                    expect += 1;
                }
            }
        }
        assert_eq!(out.result.len(), expect);
    }

    #[test]
    fn every_node_transmits_once_per_packetload() {
        let mut s = snet(60, 4);
        let q = parse(
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.01 ONCE",
        )
        .unwrap();
        let cq = s.compile(&q).unwrap();
        let out = ExternalJoin.execute(&mut s, &cq).unwrap();
        // Every non-base reachable node ships >= 1 packet (it has a tuple).
        let base = s.base();
        for i in 0..s.len() as u32 {
            let v = NodeId(i);
            if v != base && s.net().routing().depth(v).is_some() {
                assert!(out.stats.node(v).tx_packets >= 1, "{v} silent");
            }
        }
        // Total bytes shipped = sum over nodes of (subtree tuples x 4 bytes):
        // spot-check the base's children carried everything.
        assert_eq!(
            out.stats.phase("collection").tx_packets,
            out.stats.total_tx_packets()
        );
    }

    #[test]
    fn aggregate_query() {
        let mut s = snet(50, 9);
        let q = parse(
            "SELECT MIN(distance(A.x, A.y, B.x, B.y)) FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 1.0 ONCE",
        )
        .unwrap();
        let cq = s.compile(&q).unwrap();
        let out = ExternalJoin.execute(&mut s, &cq).unwrap();
        match out.result {
            JoinResult::Aggregate(v) => assert_eq!(v.len(), 1),
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn latency_positive_and_bounded() {
        let mut s = snet(60, 1);
        let q = parse(
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.1 ONCE",
        )
        .unwrap();
        let cq = s.compile(&q).unwrap();
        let out = ExternalJoin.execute(&mut s, &cq).unwrap();
        assert!(out.latency_us > 0);
    }
}
