//! Incremental pre-join filtering for continuous queries.
//!
//! [`crate::prejoin_filter`] recomputes the filter from scratch: it rebuilds
//! every per-level index and re-runs the interval descent over the **whole**
//! cell population, so base-station CPU per round of a continuous query is
//! O(population) even when a single node moved. [`FilterEngine`] keeps the
//! filter state *across* rounds and re-derives only what a round's counted
//! cell delta can actually change:
//!
//! * **Persistent indexes** — one sorted interval-key array per `(relation,
//!   attribute)` referenced by a classified (equi/band) predicate, updated
//!   in place from added/removed cells instead of rebuilt.
//! * **Component factorization** — the predicate graph (roles as vertices,
//!   join predicates as edges) splits into connected components; a cell's
//!   filter bit for role `r` factors into "some binding over `r`'s component
//!   contains this cell at `r`" (a *local* bit) and "every other component
//!   has at least one satisfying binding" (a per-component counter). Only
//!   local bits need per-cell maintenance; cross-component influence is the
//!   O(1) all-satisfiable flag.
//! * **Affected-set recomputation** — a round only recomputes local bits of
//!   the *affected set*: cells whose role membership changed (seeds) plus
//!   cells reachable from a seed through predicate-compatible candidate
//!   windows (probing the updated indexes, widened exactly like the fresh
//!   filter's `FilterIndex` probes). Every other cell keeps the previous
//!   round's bit.
//!
//! # Why the affected set is sufficient (bit-identical guarantee)
//!
//! Suppose cell `z`'s bit for role `r` differs between rounds. Then some
//! binding containing `z` at `r` exists in exactly one of the two
//! populations; that witness binding must contain a seed cell (otherwise it
//! exists identically in both). Take a shortest path in the component's
//! predicate graph from `r` to a seed-occupied role: its interior cells are
//! non-seeds, hence present in *both* populations, and each consecutive pair
//! satisfies the connecting predicate (the witness survives every residual
//! check). Walking that path backwards from the seed, every hop lands inside
//! the conservative candidate window of the previous cell — the same
//! interval widening the fresh filter uses, which never excludes a
//! possibly-satisfying pair — so the DFS over simple paths from all seeds
//! visits `(z, r)`. Recomputed bits use the identical interval residuals as
//! [`crate::prejoin_filter`], hence the maintained filter is bit-identical
//! to a fresh rebuild on every round's population (enforced by tests here
//! and by the network-level round-equivalence proptest).

use crate::engine::JoinSpace;
use crate::partition::interval_probe_ranges;
use sensjoin_quadtree::{PointSet, RelFlags};
use sensjoin_query::{
    eval_predicate_interval, BandForm, CExpr, CmpOp, CompiledQuery, Interval, PredClass, PredSide,
};
use std::collections::{HashMap, HashSet};

/// Counted cell population: per cell, one reference counter per
/// relation-role flag bit (two descendants of a routing-tree node may occupy
/// the same cell, so plain set semantics would lose removals).
pub type CellCounts = HashMap<u64, [i64; 8]>;

/// A persistent sorted interval index over the cells present in one role:
/// `(cell interval of `attr`, cell Z-number)` sorted by `(lo, z)`. Cell
/// intervals of one attribute are grid cells of one dimension — disjoint or
/// equal — so both endpoints are monotone along the order and
/// [`interval_probe_ranges`] applies unchanged.
#[derive(Clone)]
struct SortedIdx {
    rel: usize,
    attr: usize,
    entries: Vec<(Interval, u64)>,
}

/// Replaces sorted `base` with `(base ∪ add) ∖ del` in one pass. `add` and
/// `del` must be sorted under `cmp`; every `del` element must be in `base`
/// and no `add` element may be (a round touches each key at most once).
fn merge_sorted<T: Copy, F: Fn(&T, &T) -> std::cmp::Ordering>(
    base: &mut Vec<T>,
    add: &[T],
    del: &[T],
    cmp: F,
) {
    if add.is_empty() && del.is_empty() {
        return;
    }
    let mut out = Vec::with_capacity(base.len() + add.len() - del.len());
    let (mut ai, mut di) = (0, 0);
    for &x in base.iter() {
        while ai < add.len() && cmp(&add[ai], &x) == std::cmp::Ordering::Less {
            out.push(add[ai]);
            ai += 1;
        }
        if di < del.len() && cmp(&del[di], &x) == std::cmp::Ordering::Equal {
            di += 1;
            continue;
        }
        out.push(x);
    }
    out.extend_from_slice(&add[ai..]);
    debug_assert_eq!(di, del.len(), "removal of an absent key");
    *base = out;
}

/// An indexable probe of one predicate-graph hop: reaching role
/// [`Edge::to`], keys live in index `idx` and the probe interval is
/// attribute `probe_attr` of the source cell.
#[derive(Clone)]
struct Hop {
    idx: usize,
    probe_attr: usize,
    key_is_lhs: bool,
    form: BandForm,
}

/// A predicate-graph edge (one per predicate and direction). No hop means
/// the predicate has no index-friendly shape: the hop widens to the whole
/// destination role.
#[derive(Clone)]
struct Edge {
    to: usize,
    hop: Option<Hop>,
}

/// Persistent, delta-maintained pre-join filter for one continuous query.
/// Construct once per query ([`FilterEngine::new`]), then feed every round's
/// counted cell delta to [`FilterEngine::apply_delta`]; the returned filter
/// is bit-identical to `prejoin_filter(query, space, population)` on the
/// post-delta population.
///
/// ```
/// use sensjoin_core::{
///     prejoin_filter, CellCounts, FilterEngine, JoinSpace, SensJoinConfig,
///     SensorNetworkBuilder,
/// };
/// use sensjoin_field::{Area, Placement};
/// use sensjoin_query::parse;
///
/// let snet = SensorNetworkBuilder::new()
///     .area(Area::new(200.0, 200.0))
///     .placement(Placement::UniformRandom { n: 40 })
///     .seed(5)
///     .build()
///     .unwrap();
/// let cq = snet
///     .compile(&parse(
///         "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
///          WHERE A.temp - B.temp > 1.0 SAMPLE PERIOD 30",
///     ).unwrap())
///     .unwrap();
/// let space = JoinSpace::build(&cq, &snet, &SensJoinConfig::default());
/// let mut engine = FilterEngine::new(&cq, &space);
///
/// // Two nodes appear, one cell apart, each usable as either role (+1
/// // occupancy on both roles' flag bits):
/// let mut delta = CellCounts::new();
/// for temp in [20.0, 22.0] {
///     let mut e = [0i64; 8];
///     for r in 0..2 {
///         e[space.flag(r).0.trailing_zeros() as usize] += 1;
///     }
///     delta.insert(space.encode(&[Some(temp)]), e);
/// }
/// let filter = engine.apply_delta(&cq, &space, &delta).clone();
///
/// // Invariant: identical to a from-scratch filter on the new population.
/// assert_eq!(filter, prejoin_filter(&cq, &space, engine.population()));
/// ```
#[derive(Clone)]
pub struct FilterEngine {
    const_false: bool,
    num_rels: usize,
    /// Per role: its flag bit (`space.flag(r).0`, single bit).
    flag_of: Vec<u8>,
    /// Per role: connected component id in the predicate graph.
    comp_of: Vec<usize>,
    /// Per component: member roles, ascending.
    comp_roles: Vec<Vec<usize>>,
    /// Per role: outgoing predicate-graph edges.
    edges: Vec<Vec<Edge>>,
    /// Per join predicate: referenced roles, ascending (residual schedule).
    pred_roles: Vec<Vec<usize>>,
    idx: Vec<SortedIdx>,
    counts: CellCounts,
    population: PointSet,
    /// Per role: present cells, ascending Z.
    role_cells: Vec<Vec<u64>>,
    /// Component-local filter bits per cell (flag-bit convention).
    local: PointSet,
    /// Per component: number of set `(cell, role)` local bits; the
    /// component is satisfiable iff positive.
    sat: Vec<i64>,
    empty: PointSet,
}

/// Union-find root with path halving.
fn find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

/// Immutable context of one existence descent (see [`FilterEngine::holds`]):
/// the role binding order (pinned role first), the per-level residual
/// schedule, and the pinned cell.
struct Descent<'a> {
    query: &'a CompiledQuery,
    space: &'a JoinSpace,
    order: &'a [usize],
    sched: &'a [Vec<usize>],
    pin_z: u64,
}

/// The `(lhs, rhs)` sides and comparison shape of a classified predicate.
fn class_sides(class: &PredClass) -> Option<(&PredSide, &PredSide, BandForm)> {
    match class {
        PredClass::Equi { lhs, rhs } => Some((lhs, rhs, BandForm::Direct(CmpOp::Eq))),
        PredClass::Band { lhs, rhs, form } => Some((lhs, rhs, *form)),
        PredClass::General => None,
    }
}

impl FilterEngine {
    /// Builds the (empty-population) engine for `query` over `space`.
    pub fn new(query: &CompiledQuery, space: &JoinSpace) -> Self {
        let n = query.num_relations();
        let pred_roles: Vec<Vec<usize>> = query
            .join_preds()
            .iter()
            .map(|p| p.relations().into_iter().collect())
            .collect();
        let flag_of: Vec<u8> = (0..n).map(|r| space.flag(r).0).collect();

        // Components of the predicate graph.
        let mut parent: Vec<usize> = (0..n).collect();
        for p in query.join_preds() {
            let rels: Vec<usize> = p.relations().into_iter().collect();
            for w in rels.windows(2) {
                let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
                if a != b {
                    parent[a] = b;
                }
            }
        }
        let mut comp_of = vec![usize::MAX; n];
        let mut comp_roles: Vec<Vec<usize>> = Vec::new();
        for r in 0..n {
            let root = find(&mut parent, r);
            if comp_of[root] == usize::MAX {
                comp_of[root] = comp_roles.len();
                comp_roles.push(Vec::new());
            }
            comp_of[r] = comp_of[root];
            comp_roles[comp_of[root]].push(r);
        }

        // Indexes, edges and level probes from the predicate classes.
        let mut idx: Vec<SortedIdx> = Vec::new();
        let mut idx_of: HashMap<(usize, usize), usize> = HashMap::new();
        let mut ensure_idx = |rel: usize, attr: usize, idx: &mut Vec<SortedIdx>| -> usize {
            *idx_of.entry((rel, attr)).or_insert_with(|| {
                idx.push(SortedIdx {
                    rel,
                    attr,
                    entries: Vec::new(),
                });
                idx.len() - 1
            })
        };
        let mut edges: Vec<Vec<Edge>> = (0..n).map(|_| Vec::new()).collect();
        for (pi, class) in query.pred_classes().iter().enumerate() {
            let Some((lhs, rhs, form)) = class_sides(class) else {
                // General predicate: full (index-less) hops between every
                // pair of referenced roles, both directions.
                let rels: Vec<usize> = query.join_preds()[pi].relations().into_iter().collect();
                for (i, &a) in rels.iter().enumerate() {
                    for &b in &rels[i + 1..] {
                        edges[a].push(Edge { to: b, hop: None });
                        edges[b].push(Edge { to: a, hop: None });
                    }
                }
                continue;
            };
            // Only plain column sides index (their cell intervals align with
            // the quantization grid); compound sides get full hops.
            let cols = match (&lhs.expr, &rhs.expr) {
                (CExpr::Col { attr: la, .. }, CExpr::Col { attr: ra, .. }) => Some((*la, *ra)),
                _ => None,
            };
            let (a, b) = (lhs.rel, rhs.rel);
            match cols {
                Some((la, ra)) => {
                    let ia = ensure_idx(a, la, &mut idx);
                    let ib = ensure_idx(b, ra, &mut idx);
                    edges[a].push(Edge {
                        to: b,
                        hop: Some(Hop {
                            idx: ib,
                            probe_attr: la,
                            key_is_lhs: false,
                            form,
                        }),
                    });
                    edges[b].push(Edge {
                        to: a,
                        hop: Some(Hop {
                            idx: ia,
                            probe_attr: ra,
                            key_is_lhs: true,
                            form,
                        }),
                    });
                }
                None => {
                    edges[a].push(Edge { to: b, hop: None });
                    edges[b].push(Edge { to: a, hop: None });
                }
            }
        }

        Self {
            const_false: query.is_const_false(),
            num_rels: n,
            flag_of,
            comp_of,
            sat: vec![0; comp_roles.len()],
            comp_roles,
            edges,
            pred_roles,
            idx,
            counts: CellCounts::default(),
            population: PointSet::new(),
            role_cells: (0..n).map(|_| Vec::new()).collect(),
            local: PointSet::new(),
            empty: PointSet::new(),
        }
    }

    /// The maintained cell population (presence flags per cell).
    pub fn population(&self) -> &PointSet {
        &self.population
    }

    /// The maintained reference-counted population.
    pub fn counts(&self) -> &CellCounts {
        &self.counts
    }

    /// The current filter: bit-identical to a fresh `prejoin_filter` over
    /// the current population.
    pub fn filter(&self) -> &PointSet {
        if !self.const_false && self.num_rels > 0 && self.sat.iter().all(|&s| s > 0) {
            &self.local
        } else {
            &self.empty
        }
    }

    /// Applies one round's counted cell delta and returns the updated
    /// filter. Work scales with the delta's affected set, not the
    /// population; an empty (or presence-preserving) delta returns the
    /// cached filter untouched.
    pub fn apply_delta(
        &mut self,
        query: &CompiledQuery,
        space: &JoinSpace,
        delta: &CellCounts,
    ) -> &PointSet {
        // 1. Fold the delta into the counters, recording presence
        //    transitions `(z, old flags, new flags)`.
        let mut transitions: Vec<(u64, u8, u8)> = Vec::new();
        for (&z, d) in delta {
            if d.iter().all(|&x| x == 0) {
                continue;
            }
            let e = self.counts.entry(z).or_insert([0; 8]);
            let (mut old_f, mut new_f) = (0u8, 0u8);
            for b in 0..8 {
                if e[b] > 0 {
                    old_f |= 1 << b;
                }
                e[b] += d[b];
                debug_assert!(e[b] >= 0, "negative cell count");
                if e[b] > 0 {
                    new_f |= 1 << b;
                }
            }
            if e.iter().all(|&c| c == 0) {
                self.counts.remove(&z);
            }
            if old_f != new_f {
                transitions.push((z, old_f, new_f));
            }
        }
        if transitions.is_empty() {
            // Steady state (or count-only changes): nothing can differ.
            return self.filter();
        }
        transitions.sort_unstable_by_key(|&(z, _, _)| z);

        // 2. Maintain population, role lists and indexes. Per-transition
        //    `Vec::insert`/`remove` would memmove O(index) bytes per changed
        //    cell; instead the round's changes are batched and each touched
        //    structure is merged in one O(index + changes) pass.
        let mut role_add: Vec<Vec<u64>> = vec![Vec::new(); self.num_rels];
        let mut role_del: Vec<Vec<u64>> = vec![Vec::new(); self.num_rels];
        let mut idx_add: Vec<Vec<(Interval, u64)>> = vec![Vec::new(); self.idx.len()];
        let mut idx_del: Vec<Vec<(Interval, u64)>> = vec![Vec::new(); self.idx.len()];
        for &(z, old_f, new_f) in &transitions {
            self.population.set_flags(z, RelFlags(new_f));
            let bx = space.zspace().cell_box(z);
            for r in 0..self.num_rels {
                let fb = self.flag_of[r];
                let (had, has) = (old_f & fb != 0, new_f & fb != 0);
                if had == has {
                    continue;
                }
                if has {
                    role_add[r].push(z);
                } else {
                    role_del[r].push(z);
                }
                for (ii, ix) in self.idx.iter().enumerate() {
                    if ix.rel != r {
                        continue;
                    }
                    let iv = space.attr_interval(query, &bx, r, ix.attr);
                    if has {
                        idx_add[ii].push((iv, z));
                    } else {
                        idx_del[ii].push((iv, z));
                    }
                }
            }
        }
        // Transitions are z-sorted, so the role batches are already ordered.
        for r in 0..self.num_rels {
            merge_sorted(
                &mut self.role_cells[r],
                &role_add[r],
                &role_del[r],
                |&a, &b| a.cmp(&b),
            );
        }
        for (ii, ix) in self.idx.iter_mut().enumerate() {
            let key = |a: &(Interval, u64), b: &(Interval, u64)| {
                a.0.lo.total_cmp(&b.0.lo).then(a.1.cmp(&b.1))
            };
            idx_add[ii].sort_unstable_by(key);
            idx_del[ii].sort_unstable_by(key);
            merge_sorted(&mut ix.entries, &idx_add[ii], &idx_del[ii], key);
        }
        if self.const_false || self.num_rels == 0 {
            return &self.empty;
        }

        // 3. Affected set: seeds (changed (cell, role) bits) plus everything
        //    reachable over simple predicate-graph paths through candidate
        //    windows of the updated indexes.
        let mut affected: HashMap<u64, u8> = HashMap::new(); // z → role mask
        let mut seen: HashSet<(u64, u8, u8)> = HashSet::new(); // (z, role, path mask)
        let mut stack: Vec<(u64, usize, u8)> = Vec::new();
        for &(z, old_f, new_f) in &transitions {
            for r in 0..self.num_rels {
                if (old_f ^ new_f) & self.flag_of[r] != 0 {
                    *affected.entry(z).or_insert(0) |= 1 << r;
                    if seen.insert((z, r as u8, 1 << r)) {
                        stack.push((z, r, 1 << r));
                    }
                }
            }
        }
        while let Some((z, r, vis)) = stack.pop() {
            let bx = space.zspace().cell_box(z);
            for edge in &self.edges[r] {
                if vis & (1 << edge.to) != 0 {
                    continue;
                }
                let nvis = vis | (1 << edge.to);
                let mut visit = |z2: u64| {
                    *affected.entry(z2).or_insert(0) |= 1 << edge.to;
                    if seen.insert((z2, edge.to as u8, nvis)) {
                        stack.push((z2, edge.to, nvis));
                    }
                };
                // The hop's candidate window, widened exactly like the
                // fresh filter's index probes; no usable index → whole role.
                let ranges = edge.hop.as_ref().and_then(|h| {
                    let p = space.attr_interval(query, &bx, r, h.probe_attr);
                    let e = &self.idx[h.idx].entries;
                    interval_probe_ranges(e, h.form, h.key_is_lhs, p).map(|rs| (h.idx, rs))
                });
                match ranges {
                    Some((ix, rs)) => {
                        for rg in rs {
                            for &(_, z2) in &self.idx[ix].entries[rg] {
                                visit(z2);
                            }
                        }
                    }
                    None => {
                        for &z2 in &self.role_cells[edge.to] {
                            visit(z2);
                        }
                    }
                }
            }
        }

        // 4. Recompute affected bits; everything else keeps last round's.
        let mut pairs: Vec<(u64, u8)> = affected.into_iter().collect();
        pairs.sort_unstable();
        for (z, mask) in pairs {
            for r in 0..self.num_rels {
                if mask & (1 << r) == 0 {
                    continue;
                }
                let newbit = self.holds(query, space, z, r);
                let old_flags = self.local.flags_of(z).map_or(0, |f| f.0);
                let fb = self.flag_of[r];
                if (old_flags & fb != 0) != newbit {
                    let nf = if newbit {
                        old_flags | fb
                    } else {
                        old_flags & !fb
                    };
                    self.local.set_flags(z, RelFlags(nf));
                    self.sat[self.comp_of[r]] += if newbit { 1 } else { -1 };
                }
            }
        }
        self.filter()
    }

    /// Whether some binding over role `r`'s component contains cell `z` at
    /// role `r` — the component-local filter bit, computed with the same
    /// interval residuals as the fresh descent (existence short-circuit).
    ///
    /// The descent binds the pinned role *first* so every later level can
    /// probe an index keyed by an already-bound neighbor — without this, a
    /// pin at a predicate's higher role would scan the entire partner role.
    fn holds(&self, query: &CompiledQuery, space: &JoinSpace, z: u64, r: usize) -> bool {
        let fb = self.flag_of[r];
        if self.population.flags_of(z).map_or(0, |f| f.0) & fb == 0 {
            return false;
        }
        let comp = self.comp_of[r];
        let mut order: Vec<usize> = Vec::with_capacity(self.comp_roles[comp].len());
        order.push(r);
        order.extend(self.comp_roles[comp].iter().copied().filter(|&x| x != r));
        // Residual schedule: each component predicate runs at the first
        // level that has all of its roles bound.
        let mut sched: Vec<Vec<usize>> = vec![Vec::new(); order.len()];
        for (pi, roles) in self.pred_roles.iter().enumerate() {
            if self.comp_of[roles[0]] != comp {
                continue;
            }
            let lvl = roles
                .iter()
                .map(|ro| order.iter().position(|x| x == ro).expect("component role"))
                .max()
                .expect("join predicate binds roles");
            sched[lvl].push(pi);
        }
        let mut boxes: Vec<Option<Vec<(f64, f64)>>> = vec![None; self.num_rels];
        let d = Descent {
            query,
            space,
            order: &order,
            sched: &sched,
            pin_z: z,
        };
        self.exists(&d, 0, &mut boxes)
    }

    fn exists(
        &self,
        d: &Descent<'_>,
        level: usize,
        boxes: &mut Vec<Option<Vec<(f64, f64)>>>,
    ) -> bool {
        let Descent {
            query,
            space,
            order,
            sched,
            pin_z,
        } = *d;
        let Some(&rr) = order.get(level) else {
            return true;
        };
        // Candidates: the pinned cell alone at level 0; elsewhere the
        // smallest indexed window probed from any bound role (conservative
        // superset, same widening as the fresh filter), or the whole role
        // when no indexed predicate reaches `rr` from a bound role.
        let window: Option<Vec<u64>> = if level == 0 {
            Some(vec![pin_z])
        } else {
            let mut best: Option<Vec<u64>> = None;
            for &o in &order[..level] {
                let bx = boxes[o].as_ref().expect("earlier level bound");
                for edge in &self.edges[o] {
                    let Some(h) = edge.hop.as_ref().filter(|_| edge.to == rr) else {
                        continue;
                    };
                    let p = space.attr_interval(query, bx, o, h.probe_attr);
                    let e = &self.idx[h.idx].entries;
                    if let Some(ranges) = interval_probe_ranges(e, h.form, h.key_is_lhs, p) {
                        let cnt: usize = ranges.iter().map(|r| r.len()).sum();
                        if best.as_ref().is_none_or(|b| cnt < b.len()) {
                            best = Some(
                                ranges
                                    .into_iter()
                                    .flat_map(|rg| e[rg].iter().map(|&(_, z2)| z2))
                                    .collect(),
                            );
                        }
                    }
                }
            }
            best
        };
        let cells: &[u64] = match &window {
            Some(w) => w,
            None => &self.role_cells[rr],
        };
        for &z2 in cells {
            boxes[rr] = Some(space.zspace().cell_box(z2));
            let env = |rel: usize, attr: usize| -> Interval {
                space.attr_interval(query, boxes[rel].as_ref().expect("bound"), rel, attr)
            };
            let ok = sched[level]
                .iter()
                .all(|&pi| eval_predicate_interval(&query.join_preds()[pi], &env).possible());
            if ok && self.exists(d, level + 1, boxes) {
                boxes[rr] = None;
                return true;
            }
            boxes[rr] = None;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::prejoin_filter;

    /// Deterministic LCG, independent of the rand shim's stream.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    fn setup(sql: &str) -> (CompiledQuery, JoinSpace) {
        use crate::config::SensJoinConfig;
        use crate::snetwork::SensorNetworkBuilder;
        use sensjoin_field::{Area, Placement};
        let snet = SensorNetworkBuilder::new()
            .area(Area::new(300.0, 300.0))
            .placement(Placement::UniformRandom { n: 60 })
            .seed(13)
            .build()
            .unwrap();
        let q = sensjoin_query::parse(sql).unwrap();
        let cq = snet.compile(&q).unwrap();
        let space = JoinSpace::build(&cq, &snet, &SensJoinConfig::default());
        (cq, space)
    }

    /// One random population move: a counted add, removal, or role flip.
    fn random_delta(
        rng: &mut Lcg,
        counts: &CellCounts,
        space: &JoinSpace,
        num_rels: usize,
        moves: usize,
    ) -> CellCounts {
        let mut delta = CellCounts::default();
        let max_z = 1u64 << space.zspace().total_bits().min(12);
        let present: Vec<(u64, usize)> = counts
            .iter()
            .flat_map(|(&z, c)| {
                c.iter()
                    .enumerate()
                    .filter(|&(_, &cnt)| cnt > 0)
                    .map(move |(b, _)| (z, b))
            })
            .collect();
        for _ in 0..moves {
            // Role r occupies flag bit `num_rels - 1 - r`, so the valid
            // count slots are exactly 0..num_rels.
            let flag_bit = rng.below(num_rels as u64) as usize;
            if !present.is_empty() && rng.below(2) == 0 {
                // Remove one occupancy (may keep the cell via other counts).
                let (z, b) = present[rng.below(present.len() as u64) as usize];
                let have = counts.get(&z).map_or(0, |c| c[b]) + delta.get(&z).map_or(0, |c| c[b]);
                if have > 0 {
                    delta.entry(z).or_insert([0; 8])[b] -= 1;
                    continue;
                }
            }
            let z = rng.below(max_z);
            delta.entry(z).or_insert([0; 8])[flag_bit] += 1;
        }
        delta
    }

    /// The incremental filter is bit-identical to a fresh `prejoin_filter`
    /// on every round's population, across predicate classes.
    #[test]
    fn incremental_matches_fresh_every_round() {
        for sql in [
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE A.temp = B.temp ONCE",
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.4 ONCE",
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| > 1.0 ONCE",
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 2.0 ONCE",
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B ONCE",
            "SELECT A.x, B.x FROM Sensors A, Sensors B \
             WHERE distance(A.x, A.y, B.x, B.y) < 60.0 ONCE",
            "SELECT A.temp, B.temp, C.temp FROM Sensors A, Sensors B, Sensors C \
             WHERE |A.temp - B.temp| < 0.5 AND B.temp - C.temp > 0.5 ONCE",
            "SELECT A.temp, B.hum, C.hum FROM Sensors A, Sensors B, Sensors C \
             WHERE |A.temp - C.temp| < 0.5 AND B.hum = C.hum ONCE",
        ] {
            let (cq, space) = setup(sql);
            let mut engine = FilterEngine::new(&cq, &space);
            let mut rng = Lcg(0xC0FFEE ^ sql.len() as u64);
            let mut nonempty = 0;
            for round in 0..12 {
                let moves = if round == 0 {
                    40
                } else {
                    1 + rng.below(6) as usize
                };
                let delta =
                    random_delta(&mut rng, engine.counts(), &space, cq.num_relations(), moves);
                let incremental = engine.apply_delta(&cq, &space, &delta).clone();
                let fresh = prejoin_filter(&cq, &space, engine.population());
                assert_eq!(
                    incremental.points(),
                    fresh.points(),
                    "round {round} of {sql}"
                );
                nonempty += usize::from(!fresh.is_empty());
            }
            // Guard against a vacuously-green comparison of empty filters.
            assert!(nonempty > 0, "filter never populated for {sql}");
        }
    }

    /// A presence-preserving delta (count changes only) must leave the
    /// cached filter untouched — the steady-state fast path.
    #[test]
    fn count_only_delta_is_free() {
        let (cq, space) = setup(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.4 ONCE",
        );
        let mut engine = FilterEngine::new(&cq, &space);
        let mut rng = Lcg(7);
        let delta = random_delta(&mut rng, engine.counts(), &space, 2, 30);
        engine.apply_delta(&cq, &space, &delta);
        let before = engine.filter().clone();
        // Duplicate an existing occupancy, then retract the duplicate.
        let (&z, c) = engine.counts().iter().next().expect("population nonempty");
        let b = c.iter().position(|&x| x > 0).expect("nonempty counters");
        let mut dup = CellCounts::default();
        dup.entry(z).or_insert([0; 8])[b] = 1;
        assert_eq!(
            engine.apply_delta(&cq, &space, &dup).points(),
            before.points()
        );
        let mut retract = CellCounts::default();
        retract.entry(z).or_insert([0; 8])[b] = -1;
        assert_eq!(
            engine.apply_delta(&cq, &space, &retract).points(),
            before.points()
        );
        assert_eq!(
            engine
                .apply_delta(&cq, &space, &CellCounts::default())
                .points(),
            before.points()
        );
    }

    /// Disconnected predicate components: emptying one component's role
    /// must empty the whole filter (the all-satisfiable flag), and refilling
    /// it must restore the other component's bits without recomputing them.
    #[test]
    fn component_satisfiability_gates_the_filter() {
        let (cq, space) = setup(
            "SELECT A.temp, B.temp, C.hum, D.hum \
             FROM Sensors A, Sensors B, Sensors C, Sensors D \
             WHERE |A.temp - B.temp| < 5.0 AND C.hum = D.hum ONCE",
        );
        let mut engine = FilterEngine::new(&cq, &space);
        let mut rng = Lcg(99);
        for round in 0..8 {
            let delta = random_delta(&mut rng, engine.counts(), &space, 4, 12);
            engine.apply_delta(&cq, &space, &delta);
            let fresh = prejoin_filter(&cq, &space, engine.population());
            assert_eq!(engine.filter().points(), fresh.points(), "round {round}");
        }
        // The random rounds only check bit-identity; pin satisfiability
        // deterministically. One cell holding every role satisfies both
        // components (a cell trivially joins itself), so the filter cannot
        // be empty afterwards.
        let mut seed_cell = CellCounts::default();
        let all_roles = seed_cell
            .entry(space.encode(&[Some(20.0), Some(50.0)]))
            .or_insert([0; 8]);
        for role in all_roles.iter_mut().take(4) {
            *role += 1;
        }
        engine.apply_delta(&cq, &space, &seed_cell);
        let fresh = prejoin_filter(&cq, &space, engine.population());
        assert_eq!(engine.filter().points(), fresh.points(), "seeded cell");
        assert!(!engine.filter().is_empty(), "both components satisfiable");
        // Drain role D entirely: no D-binding can exist, filter must empty.
        let mut drain = CellCounts::default();
        let dbit = 0; // role D (r = 3 of 4) occupies flag bit 4 - 1 - 3

        for (&z, c) in engine.counts() {
            if c[dbit] > 0 {
                drain.entry(z).or_insert([0; 8])[dbit] = -c[dbit];
            }
        }
        engine.apply_delta(&cq, &space, &drain);
        assert!(engine.filter().is_empty(), "unsatisfiable component");
        let fresh = prejoin_filter(&cq, &space, engine.population());
        assert!(fresh.points().is_empty());
    }
}
