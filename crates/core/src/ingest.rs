//! Streaming ingestion engine: O(Δ) steady-state joins over tuple deltas.
//!
//! The continuous pipeline originally recomputed [`crate::exact_join`] from
//! scratch every round, even when only a handful of readings changed. This
//! module maintains the join *incrementally*: a persistent
//! [`StreamJoinEngine`] is fed per-relation tuple deltas
//! ([`StreamOp::Upsert`] / [`StreamOp::Expire`]) and updates a cached result
//! set anchored at the changed tuples only, so a batch of `Δ` changes costs
//! `O(Δ · candidates-per-probe)` instead of `O(Π |Rᵢ|)`.
//!
//! # Partitioned delta indexes
//!
//! Each indexable join conjunct (equi or band, see
//! [`sensjoin_query::PredClass`]) gets one incremental index *per side*, so
//! a delta anchored in either relation can probe the other:
//!
//! * **Equi** conjuncts hash key bits to slot lists.
//! * **Band** conjuncts partition the key line into fixed-width buckets
//!   (width derived from the band constant). Cold partitions stay single
//!   sorted runs; partitions that absorb many arrivals are *promoted* to a
//!   finer sub-bucket tier (PanJoin-style hot/cold split), bounding probe
//!   run lengths under skew. Probes compute a conservative bucket window
//!   from the probe value, then cut the gathered runs with the vectorized
//!   [`sensjoin_simd::band_mask`] residual kernel before the full-precision
//!   predicate gate runs.
//!
//! # Equivalence to the batch join
//!
//! The cached result rows are keyed by the per-relation origin vector in a
//! `BTreeMap`. Tuple stores fed in ascending [`NodeId`] order (as the
//! continuous cache does) make lexicographic origin order coincide with the
//! batch descent's emission order, so [`StreamJoinEngine::result`] — which
//! replays the cache through the same finalization as [`crate::exact_join`]
//! — is *bit-identical* to recomputing the batch join over the live tuples:
//! same rows, same order, same grouping folds, same contributor set.

use crate::engine::{finalize_exact, ExactAcc, JoinComputation};
use crate::partition::key_bits;
use sensjoin_query::{eval_expr, eval_predicate, BandForm, CExpr, CmpOp, CompiledQuery, PredClass};
use sensjoin_relation::NodeId;
use sensjoin_simd::{band_mask, for_each_set, CmpKind, MaskForm};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A band partition is promoted to sub-buckets once it holds this many
/// entries.
const PROMOTE_LEN: usize = 64;
/// Promotion splits a bucket into sub-buckets of `width / SUB_FACTOR`.
const SUB_FACTOR: f64 = 16.0;

/// One tuple-level change fed to [`StreamJoinEngine::apply_batch`].
///
/// A node contributes at most one tuple per relation (its current reading),
/// so deltas are keyed by origin node.
#[derive(Debug, Clone)]
pub enum StreamOp {
    /// Insert or replace every tuple of `origin`: `per_rel[r]` carries the
    /// schema-aligned values for relation `r` (`None`: the node does not
    /// currently contribute to `r`). Replaces the node's previous
    /// membership wholesale (an upsert is an expire followed by inserts).
    Upsert {
        /// The producing node.
        origin: NodeId,
        /// Per-relation values, aligned to each relation's schema. Local
        /// predicates are assumed already applied (tuples failing them are
        /// `None`), mirroring [`crate::exact_join`]'s contract.
        per_rel: Vec<Option<Vec<f64>>>,
    },
    /// Remove every tuple of `origin`.
    Expire {
        /// The node whose tuples leave the window.
        origin: NodeId,
    },
}

/// Accounting for one delta batch.
#[derive(Debug, Default, Clone, Copy)]
pub struct BatchStats {
    /// Ops applied.
    pub ops: usize,
    /// Tuples inserted (one per `(relation, origin)` pair).
    pub inserted: usize,
    /// Tuples expired.
    pub expired: usize,
    /// Result rows added by this batch.
    pub rows_added: usize,
    /// Result rows removed by this batch.
    pub rows_removed: usize,
    /// Candidate bindings examined during anchored re-enumeration — the
    /// steady-state work metric (`O(Δ)` claim: stays proportional to the
    /// batch, not the relations).
    pub candidates: usize,
    /// Band partitions promoted to sub-bucket tiers during this batch.
    pub promotions: usize,
}

impl BatchStats {
    /// Folds another batch's counters into `self`.
    pub fn merge(&mut self, other: &BatchStats) {
        self.ops += other.ops;
        self.inserted += other.inserted;
        self.expired += other.expired;
        self.rows_added += other.rows_added;
        self.rows_removed += other.rows_removed;
        self.candidates += other.candidates;
        self.promotions += other.promotions;
    }
}

/// Slot-based tuple store of one relation.
#[derive(Debug, Default)]
struct RelStore {
    /// Slot → origin (stale when the slot is free).
    origins: Vec<NodeId>,
    /// Slot → schema-aligned values.
    values: Vec<Vec<f64>>,
    /// Slot liveness.
    live: Vec<bool>,
    /// Origin → live slot.
    by_origin: HashMap<NodeId, u32>,
    /// Reusable free slots.
    free: Vec<u32>,
}

impl RelStore {
    fn insert(&mut self, origin: NodeId, values: Vec<f64>) -> u32 {
        debug_assert!(!self.by_origin.contains_key(&origin));
        let slot = match self.free.pop() {
            Some(s) => {
                self.origins[s as usize] = origin;
                self.values[s as usize] = values;
                self.live[s as usize] = true;
                s
            }
            None => {
                self.origins.push(origin);
                self.values.push(values);
                self.live.push(true);
                (self.origins.len() - 1) as u32
            }
        };
        self.by_origin.insert(origin, slot);
        slot
    }

    fn free_slot(&mut self, slot: u32) {
        let origin = self.origins[slot as usize];
        self.by_origin.remove(&origin);
        self.live[slot as usize] = false;
        self.values[slot as usize] = Vec::new();
        self.free.push(slot);
    }
}

/// A sorted key run: parallel `(keys, slots)` arrays, keys ascending. SoA so
/// the whole run feeds [`band_mask`] directly.
#[derive(Debug, Default, Clone)]
struct Run {
    keys: Vec<f64>,
    slots: Vec<u32>,
}

impl Run {
    fn insert(&mut self, key: f64, slot: u32) {
        let at = self.keys.partition_point(|&k| k < key);
        self.keys.insert(at, key);
        self.slots.insert(at, slot);
    }

    fn remove(&mut self, key: f64, slot: u32) {
        let lo = self.keys.partition_point(|&k| k < key);
        let hi = self.keys.partition_point(|&k| k <= key);
        for i in lo..hi {
            if self.slots[i] == slot {
                self.keys.remove(i);
                self.slots.remove(i);
                return;
            }
        }
        debug_assert!(false, "index entry missing on removal");
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

/// One bucket of a band index: a cold sorted run, or — once hot — a tier of
/// finer sub-bucket runs.
#[derive(Debug, Default)]
struct Partition {
    /// Lifetime arrivals (monotone; drives nothing once promoted but is the
    /// hotness signal reported by [`StreamJoinEngine::index_depth`]).
    arrivals: u64,
    cold: Run,
    hot: Option<BTreeMap<i64, Run>>,
}

impl Partition {
    /// Inserts, promoting to sub-buckets when the cold run grows past
    /// [`PROMOTE_LEN`]. Returns whether a promotion happened.
    fn insert(&mut self, key: f64, slot: u32, sub_width: f64) -> bool {
        self.arrivals += 1;
        if let Some(sub) = &mut self.hot {
            sub.entry(bucket_of(key, sub_width))
                .or_default()
                .insert(key, slot);
            return false;
        }
        self.cold.insert(key, slot);
        if self.cold.len() <= PROMOTE_LEN {
            return false;
        }
        self.promote(sub_width);
        true
    }

    /// Splits the cold run into sub-bucket runs. Checkpoint restore also
    /// forces this on partitions that were hot when snapshotted, since
    /// replaying only the *live* tuples may not cross the threshold again.
    fn promote(&mut self, sub_width: f64) {
        let mut sub: BTreeMap<i64, Run> = BTreeMap::new();
        for (&k, &s) in self.cold.keys.iter().zip(&self.cold.slots) {
            // Draining a sorted run in order keeps every sub-run sorted.
            let run = sub.entry(bucket_of(k, sub_width)).or_default();
            run.keys.push(k);
            run.slots.push(s);
        }
        self.cold = Run::default();
        self.hot = Some(sub);
    }

    fn remove(&mut self, key: f64, slot: u32, sub_width: f64) {
        if let Some(sub) = &mut self.hot {
            let b = bucket_of(key, sub_width);
            if let Some(run) = sub.get_mut(&b) {
                run.remove(key, slot);
                if run.len() == 0 {
                    sub.remove(&b);
                }
            }
        } else {
            self.cold.remove(key, slot);
        }
    }

    /// Visits every run overlapping the key window `[lo, hi]` (already
    /// widened by the caller at bucket granularity).
    fn for_runs_in(&self, lo: f64, hi: f64, sub_width: f64, f: &mut impl FnMut(&[f64], &[u32])) {
        match &self.hot {
            Some(sub) => {
                let lo_b = bucket_of(lo, sub_width).saturating_sub(1);
                let hi_b = bucket_of(hi, sub_width).saturating_add(1);
                for run in sub.range(lo_b..=hi_b).map(|(_, r)| r) {
                    f(&run.keys, &run.slots);
                }
            }
            None => f(&self.cold.keys, &self.cold.slots),
        }
    }
}

/// The incremental index kinds.
#[derive(Debug)]
enum IndexKind {
    /// Equi conjunct: key bits → ascending slot list.
    Equi { map: HashMap<u64, Vec<u32>> },
    /// Band conjunct: bucketed sorted runs with hot-partition promotion.
    Band {
        form: MaskForm,
        width: f64,
        buckets: BTreeMap<i64, Partition>,
    },
}

/// One incremental index: the keyed side of an indexable conjunct on one
/// relation, probed with the other side's value.
#[derive(Debug)]
struct IngestIndex {
    /// The relation the probe expression reads (must be bound first).
    other_rel: usize,
    /// Key expression over the indexed relation.
    key_expr: CExpr,
    /// Probe expression over `other_rel`.
    probe_expr: CExpr,
    kind: IndexKind,
}

impl IngestIndex {
    /// The key of `values` under this index (the key expression only reads
    /// the indexed relation).
    fn key_of(&self, rel: usize, values: &[f64]) -> f64 {
        eval_expr(&self.key_expr, &|r: usize, a: usize| {
            debug_assert_eq!(r, rel);
            values[a]
        })
    }

    fn insert(&mut self, key: f64, slot: u32) -> bool {
        match &mut self.kind {
            IndexKind::Equi { map } => {
                if let Some(bits) = key_bits(key) {
                    map.entry(bits).or_default().push(slot);
                }
                false
            }
            IndexKind::Band { width, buckets, .. } => {
                if key.is_nan() {
                    // No comparison with a NaN operand is ever true: the
                    // tuple can never pass this conjunct, so it needs no
                    // entry (mirrors the batch engine's sorted index).
                    return false;
                }
                let sub_width = *width / SUB_FACTOR;
                buckets
                    .entry(bucket_of(key, *width))
                    .or_default()
                    .insert(key, slot, sub_width)
            }
        }
    }

    fn remove(&mut self, key: f64, slot: u32) {
        match &mut self.kind {
            IndexKind::Equi { map } => {
                if let Some(bits) = key_bits(key) {
                    if let Some(v) = map.get_mut(&bits) {
                        v.retain(|&s| s != slot);
                        if v.is_empty() {
                            map.remove(&bits);
                        }
                    }
                }
            }
            IndexKind::Band { width, buckets, .. } => {
                if key.is_nan() {
                    return;
                }
                let b = bucket_of(key, *width);
                let sub_width = *width / SUB_FACTOR;
                if let Some(part) = buckets.get_mut(&b) {
                    part.remove(key, slot, sub_width);
                    if part.cold.len() == 0 && part.hot.as_ref().is_none_or(|s| s.is_empty()) {
                        buckets.remove(&b);
                    }
                }
            }
        }
    }

    /// Candidate slots for probe value `p`: `None` when the index cannot
    /// prune (the caller scans), `Some` with a conservative superset of the
    /// conjunct's true matches otherwise.
    fn probe(&self, p: f64, scratch: &mut Vec<u64>) -> Option<Vec<u32>> {
        match &self.kind {
            IndexKind::Equi { map } => Some(
                key_bits(p)
                    .and_then(|b| map.get(&b))
                    .cloned()
                    .unwrap_or_default(),
            ),
            IndexKind::Band {
                form,
                width,
                buckets,
            } => {
                match probe_window(*form, p) {
                    Window::Empty => Some(Vec::new()),
                    Window::All => None,
                    Window::Range(lo, hi) => {
                        let lo_b = bucket_of(lo, *width).saturating_sub(1);
                        let hi_b = bucket_of(hi, *width).saturating_add(1);
                        let sub_width = *width / SUB_FACTOR;
                        let mut out = Vec::new();
                        for part in buckets.range(lo_b..=hi_b).map(|(_, p)| p) {
                            part.for_runs_in(lo, hi, sub_width, &mut |keys, slots| {
                                // Vectorized residual cut over the run; exact
                                // for this conjunct, so survivors only face
                                // the remaining predicates.
                                band_mask(keys, p, *form, scratch);
                                for_each_set(scratch, |i| out.push(slots[i]));
                            });
                        }
                        Some(out)
                    }
                }
            }
        }
    }
}

/// Clamped fixed-width bucket of a key (±∞ land in the extreme buckets;
/// NaN keys are never inserted).
fn bucket_of(key: f64, width: f64) -> i64 {
    let b = (key / width).floor();
    if b <= i64::MIN as f64 {
        i64::MIN
    } else if b >= i64::MAX as f64 {
        i64::MAX
    } else {
        b as i64
    }
}

fn cmp_kind(op: CmpOp) -> Option<CmpKind> {
    Some(match op {
        CmpOp::Lt => CmpKind::Lt,
        CmpOp::Le => CmpKind::Le,
        CmpOp::Gt => CmpKind::Gt,
        CmpOp::Ge => CmpKind::Ge,
        CmpOp::Eq => CmpKind::Eq,
        CmpOp::Ne => return None,
    })
}

fn mirror(op: CmpKind) -> CmpKind {
    match op {
        CmpKind::Lt => CmpKind::Gt,
        CmpKind::Le => CmpKind::Ge,
        CmpKind::Gt => CmpKind::Lt,
        CmpKind::Ge => CmpKind::Le,
        CmpKind::Eq => CmpKind::Eq,
    }
}

/// Conservative key window accepted by `form` at probe value `p`.
enum Window {
    /// No key can match (NaN probe, inverted band).
    Empty,
    /// The index cannot bound the match set — scan.
    All,
    /// Matching keys lie within `[lo, hi]` (inclusive; possibly infinite).
    Range(f64, f64),
}

fn probe_window(form: MaskForm, p: f64) -> Window {
    if p.is_nan() {
        return Window::Empty;
    }
    // Normalize to `key op pivot`.
    let ray = |op: CmpKind, pivot: f64| -> Window {
        if pivot.is_nan() {
            return Window::All;
        }
        match op {
            CmpKind::Lt | CmpKind::Le => Window::Range(f64::NEG_INFINITY, pivot),
            CmpKind::Gt | CmpKind::Ge => Window::Range(pivot, f64::INFINITY),
            CmpKind::Eq => Window::Range(pivot, pivot),
        }
    };
    match form {
        MaskForm::Direct { op, key_is_lhs } => {
            let op = if key_is_lhs { op } else { mirror(op) };
            ray(op, p)
        }
        MaskForm::Diff { op, c, key_is_lhs } => {
            // key − p op c  ≡  key op p + c;   p − key op c  ≡  key m(op) p − c.
            if key_is_lhs {
                ray(op, p + c)
            } else {
                ray(mirror(op), p - c)
            }
        }
        MaskForm::AbsDiff { op, c, .. } => match op {
            // |key − p| ≤ c: the window [p − c, p + c] (inverted, hence
            // empty, for negative c — correctly so).
            CmpKind::Lt | CmpKind::Le | CmpKind::Eq => {
                let (lo, hi) = (p - c, p + c);
                if lo.is_nan() || hi.is_nan() {
                    Window::All
                } else if lo > hi {
                    Window::Empty
                } else {
                    Window::Range(lo, hi)
                }
            }
            // Complement bands accept two rays — no single window.
            CmpKind::Gt | CmpKind::Ge => Window::All,
        },
    }
}

/// A persistent streaming join over per-relation tuple deltas.
///
/// Feed batches of [`StreamOp`]s with [`StreamJoinEngine::apply_batch`];
/// read the full current answer with [`StreamJoinEngine::result`], which is
/// bit-identical to [`crate::exact_join`] over the live tuples (in ascending
/// origin order per relation).
#[derive(Debug)]
pub struct StreamJoinEngine {
    query: CompiledQuery,
    rels: Vec<RelStore>,
    /// Per relation: its incremental indexes.
    indexes: Vec<Vec<IngestIndex>>,
    /// Per join predicate: bitmask of referenced relations.
    pred_masks: Vec<u32>,
    /// Result cache: per-relation origin vector → projected row (+ group
    /// key). Lexicographic key order reproduces the batch emission order.
    rows: BTreeMap<Box<[u32]>, RowEntry>,
    /// Origin → result-row keys it appears in (the incremental contributor
    /// set: an entry exists iff the node contributes to ≥ 1 row).
    rows_of: HashMap<NodeId, BTreeSet<Box<[u32]>>>,
}

#[derive(Debug)]
struct RowEntry {
    row: Vec<f64>,
    gkey: Vec<f64>,
}

impl StreamJoinEngine {
    /// Creates an empty engine for `query`.
    ///
    /// # Panics
    /// Panics if the query joins more than 32 relations (the binding
    /// bitmask width; far beyond any sensor query).
    pub fn new(query: CompiledQuery) -> Self {
        let k = query.num_relations();
        assert!(k <= 32, "at most 32 relations");
        let pred_masks = query
            .join_preds()
            .iter()
            .map(|p| p.relations().into_iter().fold(0u32, |m, r| m | 1 << r))
            .collect();
        let mut indexes: Vec<Vec<IngestIndex>> = (0..k).map(|_| Vec::new()).collect();
        for pc in query.pred_classes() {
            match pc {
                PredClass::Equi { lhs, rhs } if lhs.rel != rhs.rel => {
                    for (key, probe) in [(lhs, rhs), (rhs, lhs)] {
                        indexes[key.rel].push(IngestIndex {
                            other_rel: probe.rel,
                            key_expr: key.expr.clone(),
                            probe_expr: probe.expr.clone(),
                            kind: IndexKind::Equi {
                                map: HashMap::new(),
                            },
                        });
                    }
                }
                PredClass::Band { lhs, rhs, form } if lhs.rel != rhs.rel => {
                    let width = match form {
                        BandForm::Diff { c, .. } | BandForm::AbsDiff { c, .. }
                            if c.is_finite() && c.abs() > 0.0 =>
                        {
                            c.abs()
                        }
                        _ => 1.0,
                    };
                    for (key, probe, key_is_lhs) in [(lhs, rhs, true), (rhs, lhs, false)] {
                        let Some(mf) = mask_form(form, key_is_lhs) else {
                            continue;
                        };
                        indexes[key.rel].push(IngestIndex {
                            other_rel: probe.rel,
                            key_expr: key.expr.clone(),
                            probe_expr: probe.expr.clone(),
                            kind: IndexKind::Band {
                                form: mf,
                                width,
                                buckets: BTreeMap::new(),
                            },
                        });
                    }
                }
                _ => {}
            }
        }
        Self {
            query,
            rels: (0..k).map(|_| RelStore::default()).collect(),
            indexes,
            pred_masks,
            rows: BTreeMap::new(),
            rows_of: HashMap::new(),
        }
    }

    /// The compiled query this engine maintains.
    pub fn query(&self) -> &CompiledQuery {
        &self.query
    }

    /// Live tuple count per relation.
    pub fn live_counts(&self) -> Vec<usize> {
        self.rels.iter().map(|s| s.by_origin.len()).collect()
    }

    /// Cached result-row count (pre-grouping).
    pub fn cached_rows(&self) -> usize {
        self.rows.len()
    }

    /// `(partitions, promoted partitions)` across every band index — the
    /// hot/cold split observability hook.
    pub fn index_depth(&self) -> (usize, usize) {
        let mut total = 0;
        let mut promoted = 0;
        for ix in self.indexes.iter().flatten() {
            if let IndexKind::Band { buckets, .. } = &ix.kind {
                total += buckets.len();
                promoted += buckets.values().filter(|p| p.hot.is_some()).count();
            }
        }
        (total, promoted)
    }

    /// Every live tuple as `(origin, per-relation values)` in ascending
    /// origin order — the checkpoint export. Replaying these through
    /// [`StreamJoinEngine::apply_batch`] as one upsert batch rebuilds an
    /// equivalent engine: result rows are keyed by origin vectors, so slot
    /// numbering (which replay does not reproduce) is unobservable.
    #[allow(clippy::type_complexity)]
    pub fn live_tuples(&self) -> Vec<(NodeId, Vec<Option<Vec<f64>>>)> {
        let mut origins: BTreeSet<NodeId> = BTreeSet::new();
        for rs in &self.rels {
            origins.extend(rs.by_origin.keys().copied());
        }
        origins
            .into_iter()
            .map(|o| {
                let per_rel = self
                    .rels
                    .iter()
                    .map(|rs| {
                        rs.by_origin
                            .get(&o)
                            .map(|&slot| rs.values[slot as usize].clone())
                    })
                    .collect();
                (o, per_rel)
            })
            .collect()
    }

    /// Per band index (relation-major order), per partition: `(bucket,
    /// lifetime arrivals, promoted)`. Tuple replay alone cannot reproduce
    /// this — arrivals count *lifetime* inserts, and a partition promoted by
    /// long-expired traffic may hold fewer than [`PROMOTE_LEN`] live tuples.
    pub fn band_state(&self) -> Vec<Vec<(i64, u64, bool)>> {
        let mut out = Vec::new();
        for ix in self.indexes.iter().flatten() {
            if let IndexKind::Band { buckets, .. } = &ix.kind {
                out.push(
                    buckets
                        .iter()
                        .map(|(&b, p)| (b, p.arrivals, p.hot.is_some()))
                        .collect(),
                );
            }
        }
        out
    }

    /// Restores band-index hotness exported by [`StreamJoinEngine::band_state`]
    /// after live-tuple replay: arrivals counters are set back and partitions
    /// that were promoted are force-promoted, so future promotion decisions
    /// and [`StreamJoinEngine::index_depth`] match the uninterrupted engine.
    pub fn restore_band_state(&mut self, state: &[Vec<(i64, u64, bool)>]) {
        let mut it = state.iter();
        for ix in self.indexes.iter_mut().flatten() {
            if let IndexKind::Band { width, buckets, .. } = &mut ix.kind {
                let Some(parts) = it.next() else { break };
                let sub_width = *width / SUB_FACTOR;
                for &(b, arrivals, hot) in parts {
                    if let Some(part) = buckets.get_mut(&b) {
                        part.arrivals = arrivals;
                        if hot && part.hot.is_none() {
                            part.promote(sub_width);
                        }
                    }
                }
            }
        }
    }

    /// Rebuilds an engine from checkpointed parts: replay the live tuples,
    /// then restore band-index hotness. The replay's [`BatchStats`] are
    /// deliberately discarded — they are reconstruction work, not traffic.
    #[allow(clippy::type_complexity)]
    pub fn restore(
        query: CompiledQuery,
        tuples: &[(NodeId, Vec<Option<Vec<f64>>>)],
        band: &[Vec<(i64, u64, bool)>],
    ) -> Self {
        let mut engine = Self::new(query);
        let ops: Vec<StreamOp> = tuples
            .iter()
            .map(|(origin, per_rel)| StreamOp::Upsert {
                origin: *origin,
                per_rel: per_rel.clone(),
            })
            .collect();
        let _ = engine.apply_batch(&ops);
        engine.restore_band_state(band);
        engine
    }

    /// Applies one delta batch and incrementally updates the cached result.
    ///
    /// All store/index changes land first; then the join is re-enumerated
    /// anchored at each tuple inserted (and still live) in this batch, so
    /// tuples arriving together join with each other exactly once.
    pub fn apply_batch(&mut self, ops: &[StreamOp]) -> BatchStats {
        let mut stats = BatchStats {
            ops: ops.len(),
            ..BatchStats::default()
        };
        let mut touched: BTreeSet<(usize, NodeId)> = BTreeSet::new();
        for op in ops {
            match op {
                StreamOp::Upsert { origin, per_rel } => {
                    assert_eq!(per_rel.len(), self.query.num_relations());
                    self.expire(*origin, &mut stats);
                    for (r, values) in per_rel.iter().enumerate() {
                        let Some(values) = values else { continue };
                        debug_assert_eq!(values.len(), self.query.schema(r).arity());
                        let slot = self.rels[r].insert(*origin, values.clone());
                        for ix in &mut self.indexes[r] {
                            let key = ix.key_of(r, &self.rels[r].values[slot as usize]);
                            if ix.insert(key, slot) {
                                stats.promotions += 1;
                            }
                        }
                        touched.insert((r, *origin));
                        stats.inserted += 1;
                    }
                }
                StreamOp::Expire { origin } => self.expire(*origin, &mut stats),
            }
        }
        if self.query.is_const_false() {
            return stats;
        }
        let mut scratch = Vec::new();
        let mut found: Vec<Vec<u32>> = Vec::new();
        for &(rel, origin) in &touched {
            // Skipped when a later op in the same batch expired the tuple.
            let Some(&slot) = self.rels[rel].by_origin.get(&origin) else {
                continue;
            };
            self.enumerate_anchored(rel, slot, &mut found, &mut stats, &mut scratch);
        }
        for binding in found {
            self.insert_row(&binding, &mut stats);
        }
        stats
    }

    /// The current query answer — bit-identical to [`crate::exact_join`]
    /// over the live tuples of every relation in ascending origin order.
    pub fn result(&self) -> JoinComputation {
        let mut acc = ExactAcc::default();
        if !self.query.is_const_false() {
            for entry in self.rows.values() {
                acc.rows.push(entry.row.clone());
                if self.query.has_group_by() {
                    acc.keys.push(entry.gkey.clone());
                }
            }
            acc.contributors = self.rows_of.keys().copied().collect();
        }
        finalize_exact(&self.query, acc)
    }

    /// Removes every tuple and result row of `origin`.
    fn expire(&mut self, origin: NodeId, stats: &mut BatchStats) {
        if let Some(keys) = self.rows_of.remove(&origin) {
            for key in keys {
                self.rows.remove(&key);
                stats.rows_removed += 1;
                for &o in key.iter().collect::<BTreeSet<_>>() {
                    if o == origin.0 {
                        continue;
                    }
                    if let Some(set) = self.rows_of.get_mut(&NodeId(o)) {
                        set.remove(&key);
                        if set.is_empty() {
                            self.rows_of.remove(&NodeId(o));
                        }
                    }
                }
            }
        }
        for r in 0..self.rels.len() {
            let Some(&slot) = self.rels[r].by_origin.get(&origin) else {
                continue;
            };
            for ix in &mut self.indexes[r] {
                let key = ix.key_of(r, &self.rels[r].values[slot as usize]);
                ix.remove(key, slot);
            }
            self.rels[r].free_slot(slot);
            stats.expired += 1;
        }
    }

    /// Enumerates every full binding containing `(anchor_rel, anchor_slot)`:
    /// the anchor binds first, remaining relations bind in ascending order,
    /// each probed through whichever of its indexes (with the probe side
    /// already bound) yields the fewest candidates.
    fn enumerate_anchored(
        &self,
        anchor_rel: usize,
        anchor_slot: u32,
        found: &mut Vec<Vec<u32>>,
        stats: &mut BatchStats,
        scratch: &mut Vec<u64>,
    ) {
        let k = self.rels.len();
        let mut order = Vec::with_capacity(k);
        order.push(anchor_rel);
        order.extend((0..k).filter(|&r| r != anchor_rel));
        let mut binding = vec![u32::MAX; k];
        self.try_bind(
            &order,
            0,
            anchor_slot,
            0,
            &mut binding,
            found,
            stats,
            scratch,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn try_bind(
        &self,
        order: &[usize],
        depth: usize,
        slot: u32,
        bound: u32,
        binding: &mut Vec<u32>,
        found: &mut Vec<Vec<u32>>,
        stats: &mut BatchStats,
        scratch: &mut Vec<u64>,
    ) {
        let rel = order[depth];
        binding[rel] = slot;
        let bound = bound | 1 << rel;
        stats.candidates += 1;
        // Full-precision gate: every predicate whose last referenced
        // relation just bound.
        let ok = {
            let env = |r: usize, a: usize| -> f64 { self.rels[r].values[binding[r] as usize][a] };
            self.query
                .join_preds()
                .iter()
                .zip(&self.pred_masks)
                .filter(|&(_, &m)| m & !bound == 0 && m >> rel & 1 == 1)
                .all(|(p, _)| eval_predicate(p, &env))
        };
        if ok {
            if depth + 1 == order.len() {
                found.push(binding.clone());
            } else {
                self.descend(order, depth + 1, bound, binding, found, stats, scratch);
            }
        }
        binding[rel] = u32::MAX;
    }

    #[allow(clippy::too_many_arguments)]
    fn descend(
        &self,
        order: &[usize],
        depth: usize,
        bound: u32,
        binding: &mut Vec<u32>,
        found: &mut Vec<Vec<u32>>,
        stats: &mut BatchStats,
        scratch: &mut Vec<u64>,
    ) {
        let rel = order[depth];
        match self.level_candidates(rel, bound, binding, scratch) {
            Some(cands) => {
                for slot in cands {
                    self.try_bind(order, depth, slot, bound, binding, found, stats, scratch);
                }
            }
            None => {
                // No usable index: scan the relation's live slots.
                for slot in 0..self.rels[rel].live.len() {
                    if self.rels[rel].live[slot] {
                        self.try_bind(
                            order,
                            depth,
                            slot as u32,
                            bound,
                            binding,
                            found,
                            stats,
                            scratch,
                        );
                    }
                }
            }
        }
    }

    /// The smallest candidate list over the relation's indexes whose probe
    /// side is already bound (`None`: no index can prune).
    fn level_candidates(
        &self,
        rel: usize,
        bound: u32,
        binding: &[u32],
        scratch: &mut Vec<u64>,
    ) -> Option<Vec<u32>> {
        let mut best: Option<Vec<u32>> = None;
        for ix in &self.indexes[rel] {
            if bound >> ix.other_rel & 1 == 0 {
                continue;
            }
            let p = eval_expr(&ix.probe_expr, &|r: usize, a: usize| {
                debug_assert_eq!(r, ix.other_rel);
                self.rels[r].values[binding[r] as usize][a]
            });
            if let Some(cands) = ix.probe(p, scratch) {
                if best.as_ref().is_none_or(|b| cands.len() < b.len()) {
                    best = Some(cands);
                }
            }
        }
        best
    }

    /// Inserts a freshly enumerated full binding into the row cache
    /// (idempotent: a row found from several anchors lands once).
    fn insert_row(&mut self, binding: &[u32], stats: &mut BatchStats) {
        let key: Box<[u32]> = binding
            .iter()
            .enumerate()
            .map(|(r, &s)| self.rels[r].origins[s as usize].0)
            .collect();
        if self.rows.contains_key(&key) {
            return;
        }
        let env = |r: usize, a: usize| -> f64 { self.rels[r].values[binding[r] as usize][a] };
        let entry = RowEntry {
            row: self.query.eval_select_row(&env),
            gkey: if self.query.has_group_by() {
                self.query.eval_group_key(&env)
            } else {
                Vec::new()
            },
        };
        for &o in key.iter().collect::<BTreeSet<_>>() {
            self.rows_of
                .entry(NodeId(o))
                .or_default()
                .insert(key.clone());
        }
        self.rows.insert(key, entry);
        stats.rows_added += 1;
    }
}

fn mask_form(form: &BandForm, key_is_lhs: bool) -> Option<MaskForm> {
    Some(match form {
        BandForm::Direct(op) => MaskForm::Direct {
            op: cmp_kind(*op)?,
            key_is_lhs,
        },
        BandForm::Diff { op, c } => MaskForm::Diff {
            op: cmp_kind(*op)?,
            c: *c,
            key_is_lhs,
        },
        BandForm::AbsDiff { op, c } => MaskForm::AbsDiff {
            op: cmp_kind(*op)?,
            c: *c,
            key_is_lhs,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::exact_join;
    use crate::snetwork::{SensorNetwork, SensorNetworkBuilder};
    use sensjoin_field::{Area, Placement};
    use sensjoin_query::parse;

    fn setup(sql: &str, n: usize, seed: u64) -> (SensorNetwork, CompiledQuery) {
        let snet = SensorNetworkBuilder::new()
            .area(Area::new(300.0, 300.0))
            .placement(Placement::UniformRandom { n })
            .seed(seed)
            .build()
            .unwrap();
        let q = parse(sql).unwrap();
        let cq = snet.compile(&q).unwrap();
        (snet, cq)
    }

    /// The per-relation values of node `n` after local predicates, i.e. the
    /// `per_rel` payload of its upsert.
    fn per_rel_of(snet: &SensorNetwork, cq: &CompiledQuery, n: NodeId) -> Vec<Option<Vec<f64>>> {
        (0..cq.num_relations())
            .map(|r| {
                let schema = cq.schema(r);
                if snet.belongs(n, schema.name()) {
                    let v = snet.values_for(n, schema);
                    cq.eval_local(r, &v).then_some(v)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Batch-join reference over a set of live nodes (ascending origins).
    fn reference(
        snet: &SensorNetwork,
        cq: &CompiledQuery,
        live: &BTreeSet<NodeId>,
    ) -> JoinComputation {
        let tuples: Vec<Vec<(NodeId, Vec<f64>)>> = (0..cq.num_relations())
            .map(|r| {
                live.iter()
                    .filter_map(|&n| per_rel_of(snet, cq, n)[r].clone().map(|v| (n, v)))
                    .collect()
            })
            .collect();
        exact_join(cq, &tuples)
    }

    fn assert_same(a: &JoinComputation, b: &JoinComputation) {
        assert_eq!(a.contributors, b.contributors);
        match (&a.result, &b.result) {
            (crate::JoinResult::Rows(x), crate::JoinResult::Rows(y)) => {
                let xb: Vec<Vec<u64>> = x
                    .iter()
                    .map(|r| r.iter().map(|v| v.to_bits()).collect())
                    .collect();
                let yb: Vec<Vec<u64>> = y
                    .iter()
                    .map(|r| r.iter().map(|v| v.to_bits()).collect())
                    .collect();
                assert_eq!(xb, yb);
            }
            (crate::JoinResult::Aggregate(x), crate::JoinResult::Aggregate(y)) => {
                let xb: Vec<Option<u64>> = x.iter().map(|v| v.map(f64::to_bits)).collect();
                let yb: Vec<Option<u64>> = y.iter().map(|v| v.map(f64::to_bits)).collect();
                assert_eq!(xb, yb);
            }
            _ => panic!("result kinds differ"),
        }
    }

    /// Drives the engine through insert/expire waves, checking bit-identity
    /// with the batch join after every batch.
    fn drive(sql: &str) {
        let (snet, cq) = setup(sql, 60, 7);
        let mut engine = StreamJoinEngine::new(cq.clone());
        let mut live: BTreeSet<NodeId> = BTreeSet::new();
        let n = snet.len() as u32;
        // Wave 1: everything arrives in two batches.
        for half in [0..n / 2, n / 2..n] {
            let ops: Vec<StreamOp> = half
                .clone()
                .map(|i| StreamOp::Upsert {
                    origin: NodeId(i),
                    per_rel: per_rel_of(&snet, &cq, NodeId(i)),
                })
                .collect();
            engine.apply_batch(&ops);
            live.extend(half.map(NodeId));
            assert_same(&engine.result(), &reference(&snet, &cq, &live));
        }
        // Wave 2: every third node expires.
        let ops: Vec<StreamOp> = (0..n)
            .step_by(3)
            .map(|i| StreamOp::Expire { origin: NodeId(i) })
            .collect();
        engine.apply_batch(&ops);
        live.retain(|o| o.0 % 3 != 0);
        assert_same(&engine.result(), &reference(&snet, &cq, &live));
        // Wave 3: some expired nodes return (slot reuse), mixed with fresh
        // expires in the same batch.
        let mut ops: Vec<StreamOp> = (0..n)
            .step_by(6)
            .map(|i| StreamOp::Upsert {
                origin: NodeId(i),
                per_rel: per_rel_of(&snet, &cq, NodeId(i)),
            })
            .collect();
        ops.push(StreamOp::Expire { origin: NodeId(1) });
        engine.apply_batch(&ops);
        for i in (0..n).step_by(6) {
            live.insert(NodeId(i));
        }
        live.remove(&NodeId(1));
        assert_same(&engine.result(), &reference(&snet, &cq, &live));
    }

    #[test]
    fn band_join_matches_batch() {
        drive(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.4 ONCE",
        );
    }

    #[test]
    fn diff_band_join_matches_batch() {
        drive(
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 1.5 ONCE",
        );
    }

    #[test]
    fn aggregate_join_matches_batch() {
        drive(
            "SELECT MIN(distance(A.x, A.y, B.x, B.y)) FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 1.0 ONCE",
        );
    }

    #[test]
    fn local_pred_membership_changes_match_batch() {
        drive(
            "SELECT A.hum, B.pres FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.5 AND A.hum > 40 ONCE",
        );
    }

    #[test]
    fn upsert_replaces_previous_tuple() {
        let (snet, cq) = setup(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.4 ONCE",
            40,
            3,
        );
        let mut engine = StreamJoinEngine::new(cq.clone());
        let all: Vec<StreamOp> = (0..snet.len() as u32)
            .map(|i| StreamOp::Upsert {
                origin: NodeId(i),
                per_rel: per_rel_of(&snet, &cq, NodeId(i)),
            })
            .collect();
        engine.apply_batch(&all);
        // Re-upsert node 5 with shifted values: the old tuple must vanish.
        let mut shifted = per_rel_of(&snet, &cq, NodeId(5));
        for v in shifted.iter_mut().flatten() {
            v[2] += 100.0; // temp attribute: move it out of every band
        }
        engine.apply_batch(&[StreamOp::Upsert {
            origin: NodeId(5),
            per_rel: shifted.clone(),
        }]);
        // Reference: all nodes, but node 5 carries the shifted values.
        let tuples: Vec<Vec<(NodeId, Vec<f64>)>> = (0..cq.num_relations())
            .map(|r| {
                (0..snet.len() as u32)
                    .filter_map(|i| {
                        let pr = if i == 5 {
                            shifted.clone()
                        } else {
                            per_rel_of(&snet, &cq, NodeId(i))
                        };
                        pr[r].clone().map(|v| (NodeId(i), v))
                    })
                    .collect()
            })
            .collect();
        assert_same(&engine.result(), &exact_join(&cq, &tuples));
    }

    #[test]
    fn hot_partitions_promote_and_stay_correct() {
        // A band far wider than the key spread: every key lands in the same
        // bucket, forcing promotions past PROMOTE_LEN arrivals.
        let (snet, cq) = setup(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 1000.0 ONCE",
            120,
            13,
        );
        let mut engine = StreamJoinEngine::new(cq.clone());
        let ops: Vec<StreamOp> = (0..snet.len() as u32)
            .map(|i| StreamOp::Upsert {
                origin: NodeId(i),
                per_rel: per_rel_of(&snet, &cq, NodeId(i)),
            })
            .collect();
        let stats = engine.apply_batch(&ops);
        assert!(stats.promotions > 0, "expected hot-partition promotions");
        let (parts, promoted) = engine.index_depth();
        assert!(promoted > 0 && promoted <= parts);
        let live: BTreeSet<NodeId> = (0..snet.len() as u32).map(NodeId).collect();
        assert_same(&engine.result(), &reference(&snet, &cq, &live));
        // Expiry out of promoted partitions must also hold up.
        let ops: Vec<StreamOp> = (0..snet.len() as u32)
            .step_by(2)
            .map(|i| StreamOp::Expire { origin: NodeId(i) })
            .collect();
        engine.apply_batch(&ops);
        let live: BTreeSet<NodeId> = live.into_iter().filter(|o| o.0 % 2 == 1).collect();
        assert_same(&engine.result(), &reference(&snet, &cq, &live));
    }

    #[test]
    fn steady_state_work_is_delta_bound() {
        let (snet, cq) = setup(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.05 ONCE",
            200,
            21,
        );
        let mut engine = StreamJoinEngine::new(cq.clone());
        let all: Vec<StreamOp> = (0..snet.len() as u32)
            .map(|i| StreamOp::Upsert {
                origin: NodeId(i),
                per_rel: per_rel_of(&snet, &cq, NodeId(i)),
            })
            .collect();
        let full = engine.apply_batch(&all);
        // A 2% delta re-upserting existing nodes examines far fewer
        // candidates than the initial full load.
        let delta: Vec<StreamOp> = (0..4u32)
            .map(|i| StreamOp::Upsert {
                origin: NodeId(i * 50),
                per_rel: per_rel_of(&snet, &cq, NodeId(i * 50)),
            })
            .collect();
        let small = engine.apply_batch(&delta);
        assert!(
            small.candidates * 10 <= full.candidates,
            "delta batch candidates {} vs full load {}",
            small.candidates,
            full.candidates
        );
    }
}
