#![warn(missing_docs)]

//! SENS-Join: efficient general-purpose join processing in sensor networks.
//!
//! This crate implements the protocols of the paper on top of the simulator
//! substrate:
//!
//! * [`ExternalJoin`] — the state-of-the-art general-purpose baseline (§VI):
//!   every node ships its (early-projected, early-selected) tuple to the
//!   base station, tuples are aggregated into packets as they move up the
//!   routing tree, and the join is computed externally.
//! * [`SensJoin`] — the paper's contribution (§IV): a pre-computation
//!   collects compactly-encoded join-attribute tuples (with **Treecut**
//!   switching to complete tuples near the leaves), the base station joins
//!   them conservatively on quantization cells and disseminates a **join
//!   filter** (pruned per subtree by **Selective Filter Forwarding**), and
//!   only filtered tuples are shipped for the exact final join.
//!
//! Both protocols implement [`JoinMethod`] and produce a [`JoinOutcome`]
//! carrying the (identical) query result, per-phase transmission statistics
//! and the end-to-end latency. Representation variants
//! ([`Representation::Raw`], zlib-like / bzip2-like compression) reproduce
//! the §VI-B comparison, and every protocol parameter of the paper
//! (`D_max` = 30 bytes, the 500-byte filter-memory cap, quantization
//! resolutions) is configurable through [`SensJoinConfig`].
//!
//! # Quickstart
//!
//! ```
//! use sensjoin_core::{SensorNetworkBuilder, SensJoin, ExternalJoin, JoinMethod};
//! use sensjoin_field::{Area, Placement};
//! use sensjoin_query::parse;
//! use sensjoin_sim::BaseChoice;
//!
//! let mut snet = SensorNetworkBuilder::new()
//!     .area(Area::for_constant_density(500))
//!     .placement(Placement::UniformRandom { n: 500 })
//!     .base(BaseChoice::NearestCorner)
//!     .seed(42)
//!     .build()
//!     .unwrap();
//! // A selective Q1-style query whose tuples are wider than the single
//! // join attribute — the regime the pre-join filter is built for. (Note
//! // that symmetric conditions like |A.temp - B.temp| < c make *every*
//! // node contribute, because SQL semantics pair each node with itself.)
//! let query = parse(
//!     "SELECT A.hum, A.pres, B.hum, B.pres FROM Sensors A, Sensors B \
//!      WHERE A.temp - B.temp > 5.0 ONCE",
//! ).unwrap();
//! let cq = snet.compile(&query).unwrap();
//!
//! let ext = ExternalJoin::default().execute(&mut snet, &cq).unwrap();
//! let sj = SensJoin::default().execute(&mut snet, &cq).unwrap();
//! assert!(ext.result.same_result(&sj.result)); // identical results,
//! // and on selective queries SENS-Join ships far less data:
//! assert!(sj.stats.total_tx_bytes() < ext.stats.total_tx_bytes());
//! assert!(sj.stats.total_tx_packets() < ext.stats.total_tx_packets());
//! ```

mod adaptive;
mod baselines;
mod bloom;
mod cells;
mod config;
mod continuous;
mod costmodel;
mod engine;
mod external;
mod incremental;
mod ingest;
mod outcome;
mod partition;
pub mod persist;
mod recovery;
mod repr;
mod scheduler;
mod sensjoin;
mod snetwork;
mod wave;
pub mod workload;

pub use adaptive::AdaptiveJoin;
pub use baselines::{MediatedJoin, PHASE_MEDIATED_COLLECTION, PHASE_MEDIATED_RESULT};
pub use bloom::{
    BloomFilter, BloomSemiJoin, PHASE_BLOOM_COLLECTION, PHASE_BLOOM_FINAL, PHASE_BLOOM_FLOOD,
};
pub use cells::NodeCells;
pub use config::{QuantizationConfig, Representation, SensJoinConfig};
pub use continuous::{
    ContinuousSensJoin, MAX_ROUND_ATTEMPTS, PHASE_DELTA_COLLECTION, PHASE_FILTER_DELTA,
    PHASE_FINAL_DELTA,
};
pub use costmodel::{CostEstimate, CostModel, MethodChoice};
pub use engine::{
    exact_join, exact_join_nested, prejoin_filter, prejoin_filter_nested, JoinComputation,
    JoinSpace,
};
pub use external::ExternalJoin;
pub use incremental::{CellCounts, FilterEngine};
pub use ingest::{BatchStats, StreamJoinEngine, StreamOp};
pub use outcome::{JoinOutcome, JoinResult, ProtocolError};
pub use recovery::{
    execute_with_rebuild_reexecution, execute_with_recovery, execute_with_reexecution,
    RecoveryOutcome, MAX_REEXECUTION_ATTEMPTS,
};
pub use repr::JoinAttrMsg;
pub use scheduler::{
    EpochReport, GroupFull, GroupOutcome, GroupRunner, PlanKey, QueryGroup, QueryId, QueryPlan,
    SoloCost, MAX_EPOCH_ATTEMPTS, MAX_GROUP_QUERIES, PHASE_SHARED_COLLECTION, PHASE_SHARED_FILTER,
    PHASE_SHARED_FINAL,
};
pub use sensjoin::{SensJoin, PHASE_COLLECTION, PHASE_FILTER, PHASE_FINAL};
pub use sensjoin_simd::kernels_active;
pub use snetwork::{
    attr_type_for, ExternalData, SensorNetwork, SensorNetworkBuilder, SensorNetworkError,
};
pub use wave::{set_wave_mode, wave_mode, WaveMode, PAR_MIN_PARTICIPANTS};

/// The trait every join method implements.
pub trait JoinMethod {
    /// Human-readable method name for experiment output.
    fn name(&self) -> &'static str;

    /// Executes the query once over the network's current snapshot,
    /// returning the result and the communication costs. Statistics in the
    /// network are reset at the start of the execution.
    fn execute(
        &self,
        snet: &mut SensorNetwork,
        query: &sensjoin_query::CompiledQuery,
    ) -> Result<JoinOutcome, ProtocolError>;
}
