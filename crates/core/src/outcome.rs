//! Execution outcomes: query results plus cost accounting.

use sensjoin_relation::NodeId;
use sensjoin_sim::{NetworkStats, Time};
use std::collections::BTreeSet;

/// Errors during protocol execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The base station is cut off from every other node.
    BaseIsolated,
    /// Internal representation failure (decode of a wire message).
    Representation(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BaseIsolated => write!(f, "base station has no neighbors"),
            ProtocolError::Representation(msg) => write!(f, "representation error: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// The computed query answer.
#[derive(Debug, Clone)]
pub enum JoinResult {
    /// Non-aggregate query: one row of SELECT values per joining binding.
    Rows(Vec<Vec<f64>>),
    /// Aggregate query: one value per SELECT item (`None` = SQL NULL).
    Aggregate(Vec<Option<f64>>),
}

impl JoinResult {
    /// Number of result rows (aggregates count as one).
    pub fn len(&self) -> usize {
        match self {
            JoinResult::Rows(r) => r.len(),
            JoinResult::Aggregate(_) => 1,
        }
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        match self {
            JoinResult::Rows(r) => r.is_empty(),
            JoinResult::Aggregate(_) => false,
        }
    }

    /// Multiset equality of results, independent of row order. Values are
    /// compared exactly: all join methods evaluate the same expressions on
    /// the same tuple values, so agreeing methods agree bitwise.
    pub fn same_result(&self, other: &JoinResult) -> bool {
        match (self, other) {
            (JoinResult::Rows(a), JoinResult::Rows(b)) => {
                if a.len() != b.len() {
                    return false;
                }
                let mut x = a.clone();
                let mut y = b.clone();
                let key = |r: &Vec<f64>| r.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                x.sort_by_key(key);
                y.sort_by_key(key);
                x == y
            }
            (JoinResult::Aggregate(a), JoinResult::Aggregate(b)) => a == b,
            _ => false,
        }
    }
}

/// Everything a protocol execution produces.
#[derive(Debug, Clone)]
pub struct JoinOutcome {
    /// The query answer (identical across correct join methods).
    pub result: JoinResult,
    /// Per-node / per-phase transmission and energy statistics.
    pub stats: NetworkStats,
    /// End-to-end latency (query start to result availability) under the
    /// pipelined model, in µs (see `wave::WaveTiming`).
    pub latency_us: Time,
    /// End-to-end latency under TAG-style slotted level scheduling, in µs —
    /// the model the paper's §VII response-time bound reflects.
    pub latency_slotted_us: Time,
    /// Nodes whose tuples appear in at least one result row — the paper's
    /// "fraction of nodes that contribute to the result" numerator.
    pub contributors: BTreeSet<NodeId>,
    /// Whether the result is guaranteed exact. `false` only when data-plane
    /// traffic was permanently lost on a lossy channel in a way the
    /// protocol's conservative fallbacks could not absorb (e.g. final-result
    /// tuples dropped after the ARQ budget); always `true` on a lossless
    /// network. Under node churn, `true` means the result is exact over the
    /// *surviving* nodes (liveness-projected exactness): every node that was
    /// present at query start and alive at query end is fully represented.
    pub complete: bool,
    /// Whether any churn event (crash or revival) was applied during this
    /// execution — i.e. after the query started, excluding the pre-start
    /// boundary. Rebuild-and-re-execute baselines restart on this flag.
    pub churned: bool,
}

impl JoinOutcome {
    /// Fraction of network nodes contributing to the result.
    pub fn contributor_fraction(&self, network_size: usize) -> f64 {
        self.contributors.len() as f64 / network_size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_equality_ignores_order() {
        let a = JoinResult::Rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![1.0, 2.0]]);
        let b = JoinResult::Rows(vec![vec![3.0, 4.0], vec![1.0, 2.0], vec![1.0, 2.0]]);
        let c = JoinResult::Rows(vec![vec![3.0, 4.0], vec![1.0, 2.0]]);
        assert!(a.same_result(&b));
        assert!(!a.same_result(&c));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn aggregate_equality() {
        let a = JoinResult::Aggregate(vec![Some(1.0), None]);
        let b = JoinResult::Aggregate(vec![Some(1.0), None]);
        let c = JoinResult::Aggregate(vec![Some(2.0), None]);
        assert!(a.same_result(&b));
        assert!(!a.same_result(&c));
        assert!(!a.same_result(&JoinResult::Rows(vec![])));
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
        assert!(JoinResult::Rows(vec![]).is_empty());
    }
}
