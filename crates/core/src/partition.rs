//! Partitioned candidate generation for the base-station join engine.
//!
//! For each descend level (relation) of the join, this module builds one
//! index **per classified predicate landing on that level** over the
//! relation's tuples (scalar case, [`exact_plan`]) or quantized points
//! (interval case, [`filter_plan`]), driven by the predicate
//! classification of [`sensjoin_query::analyze`]:
//!
//! * **equi** predicates (`f(A) = g(B)`) get a hash index on the exact bit
//!   pattern of the key (−0.0 folded onto 0.0, NaN keys dropped — both
//!   choices mirror IEEE `==`),
//! * **band** predicates (difference-form comparisons) get a sorted key
//!   array, probed with binary searches,
//! * **general** predicates get no index; their levels fall back to the
//!   full scan of the nested-loop descent.
//!
//! When a level carries several indexable predicates, the engine
//! *intersects* their candidate sets: the probe with the fewest candidates
//! drives the scan and every other probe degrades to an O(1) membership
//! test per candidate (a stored rank or key-bit lookup), so the scan cost
//! is `min` over the predicates' windows rather than the first one's.
//!
//! # Why the results are bit-identical to the nested loop
//!
//! The candidate set of a level only has to be a *superset* of the tuples
//! the residual filter (the unchanged predicate evaluation of the old
//! descent, which still runs on every candidate) accepts; order is restored
//! by sorting candidate positions ascending. Two properties make the
//! superset guarantee airtight without any epsilon slack:
//!
//! 1. keys and probes are evaluated from the **original predicate
//!    subtrees** (see [`sensjoin_query::analyze`]) with the same evaluator
//!    the residual uses, so both compute identical `f64`s, and
//! 2. the binary-search partition predicates evaluate the **same IEEE-754
//!    operations** as the residual (one subtraction and one comparison —
//!    never an algebraically solved bound), and IEEE subtraction and
//!    comparison are monotone, so each predicate's accepted set is a union
//!    of at most two contiguous runs of the sorted key array, found exactly
//!    by `partition_point`.

use sensjoin_query::{eval_expr, BandForm, CExpr, CmpOp, CompiledQuery, Interval, PredClass};
use sensjoin_relation::NodeId;
use std::collections::HashMap;
use std::ops::Range;

/// Folds a key value to its hash bits: −0.0 and 0.0 compare equal, so they
/// share a bucket; NaN never compares equal, so it has none.
pub(crate) fn key_bits(v: f64) -> Option<u64> {
    if v.is_nan() {
        None
    } else if v == 0.0 {
        Some(0.0_f64.to_bits())
    } else {
        Some(v.to_bits())
    }
}

/// A half-open/closed interval of *d-values* (see [`sorted_ranges`]); the
/// accepted set of one comparison in the monotone probe coordinate.
#[derive(Clone, Copy)]
struct DIv {
    lo: f64,
    lo_open: bool,
    hi: f64,
    hi_open: bool,
}

impl DIv {
    fn ray_below(hi: f64, hi_open: bool) -> Self {
        Self {
            lo: f64::NEG_INFINITY,
            lo_open: false,
            hi,
            hi_open,
        }
    }

    fn ray_above(lo: f64, lo_open: bool) -> Self {
        Self {
            lo,
            lo_open,
            hi: f64::INFINITY,
            hi_open: false,
        }
    }

    fn window(lo: f64, hi: f64, open: bool) -> Self {
        Self {
            lo,
            lo_open: open,
            hi,
            hi_open: open,
        }
    }

    /// `v` lies strictly below the interval.
    fn below(&self, v: f64) -> bool {
        v < self.lo || (self.lo_open && v == self.lo)
    }

    /// `v` lies strictly above the interval.
    fn above(&self, v: f64) -> bool {
        v > self.hi || (self.hi_open && v == self.hi)
    }
}

/// The d-intervals accepted by `d op c`, or `None` for "everything".
/// An empty vec means "nothing".
fn cmp_intervals(op: CmpOp, c: f64) -> Option<Vec<DIv>> {
    Some(match op {
        CmpOp::Lt => vec![DIv::ray_below(c, true)],
        CmpOp::Le => vec![DIv::ray_below(c, false)],
        CmpOp::Gt => vec![DIv::ray_above(c, true)],
        CmpOp::Ge => vec![DIv::ray_above(c, false)],
        CmpOp::Eq => vec![DIv::window(c, c, false)],
        CmpOp::Ne => return None, // not indexed (classified General)
    })
}

/// The d-intervals accepted by `|d| op c`.
fn abs_cmp_intervals(op: CmpOp, c: f64) -> Option<Vec<DIv>> {
    Some(match op {
        // |d| ≥ 0, so a non-positive upper bound accepts nothing …
        CmpOp::Lt if c <= 0.0 => vec![],
        CmpOp::Le if c < 0.0 => vec![],
        // … and a negative lower bound accepts everything.
        CmpOp::Gt if c < 0.0 => return None,
        CmpOp::Ge if c <= 0.0 => return None,
        CmpOp::Eq if c < 0.0 => vec![],
        CmpOp::Lt => vec![DIv::window(-c, c, true)],
        CmpOp::Le => vec![DIv::window(-c, c, false)],
        CmpOp::Gt => vec![DIv::ray_below(-c, true), DIv::ray_above(c, true)],
        CmpOp::Ge => vec![DIv::ray_below(-c, false), DIv::ray_above(c, false)],
        CmpOp::Eq => vec![DIv::window(-c, -c, false), DIv::window(c, c, false)],
        CmpOp::Ne => return None,
    })
}

/// Finds the positions of `keys` (ascending) whose d-value `d(key)` lies in
/// one of `ivs`, where `d` is monotone over the key order (`increasing`
/// tells which way). Exact: `partition_point` over a monotone predicate.
fn sorted_ranges(
    keys: &[(f64, u32)],
    d: impl Fn(f64) -> f64,
    increasing: bool,
    ivs: &[DIv],
) -> Vec<Range<usize>> {
    let mut ranges: Vec<Range<usize>> = ivs
        .iter()
        .filter_map(|iv| {
            let (start, end) = if increasing {
                (
                    keys.partition_point(|&(k, ref _t)| iv.below(d(k))),
                    keys.partition_point(|&(k, ref _t)| !iv.above(d(k))),
                )
            } else {
                (
                    keys.partition_point(|&(k, ref _t)| iv.above(d(k))),
                    keys.partition_point(|&(k, ref _t)| !iv.below(d(k))),
                )
            };
            (start < end).then_some(start..end)
        })
        .collect();
    // When `d` is decreasing, ascending d-intervals come out as descending
    // key ranges (e.g. `|d| > c`'s two rays map to a suffix run *then* a
    // prefix run) — sort before merging touching/overlapping ranges, so the
    // collected positions stay duplicate-free without dropping any run.
    ranges.sort_unstable_by_key(|r| r.start);
    let mut merged: Vec<Range<usize>> = Vec::with_capacity(ranges.len());
    for r in ranges {
        if let Some(last) = merged.last_mut() {
            if r.start <= last.end {
                last.end = last.end.max(r.end);
                continue;
            }
        }
        merged.push(r);
    }
    merged
}

// ---------------------------------------------------------------------------
// Exact (scalar) side
// ---------------------------------------------------------------------------

/// Per-level index for the exact join.
pub(crate) enum ExactIndex<'q> {
    /// Equi: key-bits → positions (ascending by construction).
    Hash {
        /// Probe-side expression (references `probe_rel` only).
        probe: &'q CExpr,
        /// Key bits → tuple positions.
        map: HashMap<u64, Vec<u32>>,
        /// Per tuple position: its key bits (`None` for NaN keys). Used for
        /// O(1) membership tests when another index drives the scan.
        bits_of: Vec<Option<u64>>,
    },
    /// Band: keys sorted ascending (NaN keys dropped — no comparison with a
    /// NaN operand is ever true).
    Sorted {
        probe: &'q CExpr,
        /// `(key value, tuple position)` sorted ascending by key.
        keys: Vec<(f64, u32)>,
        /// Per tuple position: its rank in `keys` (`u32::MAX` for dropped
        /// NaN keys). Used for O(1) membership tests.
        rank_of: Vec<u32>,
        /// Whether the indexed relation is the `lhs` side of the form.
        key_is_lhs: bool,
        form: BandForm,
    },
}

/// The outcome of probing one [`ExactIndex`] for a partial binding: an
/// abstract candidate set that can be counted, materialized, or membership-
/// tested without materializing.
pub(crate) enum ExactProbe {
    /// The index cannot prune for this binding (Ne forms, non-finite diff
    /// probes): every position is a candidate.
    All,
    /// Equi probe: the positions hashed under these key bits (`None`: the
    /// probe value is NaN — no candidate).
    Hash(Option<u64>),
    /// Band probe: disjoint runs of the sorted key array, ascending.
    Ranges(Vec<Range<usize>>),
}

impl ExactIndex<'_> {
    /// Probes the index for the current partial binding.
    pub(crate) fn probe(&self, env: &impl Fn(usize, usize) -> f64) -> ExactProbe {
        match self {
            ExactIndex::Hash { probe, .. } => ExactProbe::Hash(key_bits(eval_expr(probe, env))),
            ExactIndex::Sorted {
                probe,
                keys,
                key_is_lhs,
                form,
                ..
            } => {
                let p = eval_expr(probe, env);
                if p.is_nan() {
                    // Every comparison involving NaN is false.
                    return ExactProbe::Ranges(Vec::new());
                }
                let (d, increasing): (Box<dyn Fn(f64) -> f64>, bool) = match form {
                    // Direct comparisons probe the key value itself.
                    BandForm::Direct(_) => (Box::new(|k| k), true),
                    BandForm::Diff { .. } | BandForm::AbsDiff { .. } => {
                        if !p.is_finite() {
                            // inf − inf is NaN: subtraction monotonicity can
                            // break against infinite keys. Scan everything.
                            return ExactProbe::All;
                        }
                        if *key_is_lhs {
                            (Box::new(move |k| k - p), true)
                        } else {
                            (Box::new(move |k| p - k), false)
                        }
                    }
                };
                let ivs = match form {
                    BandForm::Direct(op) => {
                        // `key op p` or `p op key` ≡ `key mirror(op) p`.
                        let op = if *key_is_lhs { *op } else { mirror(*op) };
                        cmp_intervals(op, p)
                    }
                    BandForm::Diff { op, c } => cmp_intervals(*op, *c),
                    BandForm::AbsDiff { op, c } => abs_cmp_intervals(*op, *c),
                };
                let Some(ivs) = ivs else {
                    return ExactProbe::All;
                };
                ExactProbe::Ranges(sorted_ranges(keys, d, increasing, &ivs))
            }
        }
    }

    /// Number of candidate positions of `probe` (`usize::MAX` for
    /// [`ExactProbe::All`]), available without materializing.
    pub(crate) fn count(&self, probe: &ExactProbe) -> usize {
        match probe {
            ExactProbe::All => usize::MAX,
            ExactProbe::Hash(bits) => {
                let ExactIndex::Hash { map, .. } = self else {
                    unreachable!("probe kind matches index kind");
                };
                bits.and_then(|b| map.get(&b)).map_or(0, |v| v.len())
            }
            ExactProbe::Ranges(rs) => rs.iter().map(|r| r.len()).sum(),
        }
    }

    /// Borrows the hash bucket of an [`ExactProbe::Hash`] probe as an
    /// ascending position slice — the zero-copy path when an equi index
    /// drives the scan. `None` for range probes, whose runs are key-ordered
    /// and need a position sort (see [`ExactIndex::materialize`]).
    pub(crate) fn hash_slice(&self, probe: &ExactProbe) -> Option<&[u32]> {
        match (self, probe) {
            (ExactIndex::Hash { map, .. }, ExactProbe::Hash(bits)) => Some(
                bits.and_then(|b| map.get(&b))
                    .map_or(&[][..], |v| v.as_slice()),
            ),
            _ => None,
        }
    }

    /// Materializes a range probe into ascending tuple positions (the nested
    /// loop's emission order). Hash probes never reach here: their buckets
    /// are already ascending and are borrowed via [`ExactIndex::hash_slice`].
    pub(crate) fn materialize(&self, probe: &ExactProbe) -> Vec<u32> {
        match probe {
            ExactProbe::All => unreachable!("All probes never drive a scan"),
            ExactProbe::Hash(_) => unreachable!("hash drivers borrow their bucket"),
            ExactProbe::Ranges(rs) => {
                let ExactIndex::Sorted { keys, .. } = self else {
                    unreachable!("probe kind matches index kind");
                };
                let mut positions: Vec<u32> = rs
                    .iter()
                    .flat_map(|r| keys[r.clone()].iter().map(|&(_, pos)| pos))
                    .collect();
                positions.sort_unstable();
                positions
            }
        }
    }

    /// Whether tuple position `pos` is a candidate of `probe` — the O(1)
    /// membership test used when another index drives the scan.
    pub(crate) fn contains(&self, probe: &ExactProbe, pos: u32) -> bool {
        match probe {
            ExactProbe::All => true,
            ExactProbe::Hash(bits) => {
                let ExactIndex::Hash { bits_of, .. } = self else {
                    unreachable!("probe kind matches index kind");
                };
                bits.is_some() && bits_of[pos as usize] == *bits
            }
            ExactProbe::Ranges(rs) => {
                let ExactIndex::Sorted { rank_of, .. } = self else {
                    unreachable!("probe kind matches index kind");
                };
                let rank = rank_of[pos as usize];
                rank != u32::MAX && rs.iter().any(|r| r.contains(&(rank as usize)))
            }
        }
    }
}

fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

/// Builds the per-level index lists (empty list: full scan). Level `rel`
/// receives one index per classified predicate whose highest relation is
/// `rel` — the level where the old descent would first evaluate it — so a
/// level constrained by several indexable predicates intersects all of
/// their candidate sets.
pub(crate) fn exact_plan<'q>(
    query: &'q CompiledQuery,
    tuples: &[Vec<(NodeId, Vec<f64>)>],
    pred_rels: &[usize],
) -> Vec<Vec<ExactIndex<'q>>> {
    let mut levels: Vec<Vec<ExactIndex<'q>>> =
        (0..query.num_relations()).map(|_| Vec::new()).collect();
    for (pi, class) in query.pred_classes().iter().enumerate() {
        let rel = pred_rels[pi];
        let Some((rl, rr)) = class.relations() else {
            continue;
        };
        debug_assert_eq!(rl.max(rr), rel, "classified predicates span two relations");
        let (key_side, probe_side, key_is_lhs) = match class {
            PredClass::Equi { lhs, rhs } | PredClass::Band { lhs, rhs, .. } => {
                if rhs.rel == rel {
                    (rhs, lhs, false)
                } else {
                    (lhs, rhs, true)
                }
            }
            PredClass::General => continue,
        };
        let key_of = |values: &[f64]| {
            let env = |r: usize, a: usize| -> f64 {
                debug_assert_eq!(r, key_side.rel);
                values[a]
            };
            eval_expr(&key_side.expr, &env)
        };
        levels[rel].push(match class {
            PredClass::Equi { .. } => {
                let mut map: HashMap<u64, Vec<u32>> = HashMap::new();
                let mut bits_of: Vec<Option<u64>> = Vec::with_capacity(tuples[rel].len());
                for (pos, (_, values)) in tuples[rel].iter().enumerate() {
                    let bits = key_bits(key_of(values));
                    if let Some(bits) = bits {
                        map.entry(bits).or_default().push(pos as u32);
                    }
                    bits_of.push(bits);
                }
                ExactIndex::Hash {
                    probe: &probe_side.expr,
                    map,
                    bits_of,
                }
            }
            PredClass::Band { form, .. } => {
                let mut keys: Vec<(f64, u32)> = tuples[rel]
                    .iter()
                    .enumerate()
                    .filter_map(|(pos, (_, values))| {
                        let k = key_of(values);
                        (!k.is_nan()).then_some((k, pos as u32))
                    })
                    .collect();
                keys.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
                let mut rank_of = vec![u32::MAX; tuples[rel].len()];
                for (rank, &(_, pos)) in keys.iter().enumerate() {
                    rank_of[pos as usize] = rank as u32;
                }
                ExactIndex::Sorted {
                    probe: &probe_side.expr,
                    keys,
                    rank_of,
                    key_is_lhs,
                    form: *form,
                }
            }
            PredClass::General => unreachable!("filtered above"),
        });
    }
    levels
}

// ---------------------------------------------------------------------------
// Filter (interval) side
// ---------------------------------------------------------------------------

/// Per-level index for the conservative pre-join filter. Only built when
/// both predicate sides are plain column references: then the per-point key
/// intervals are quantization cells of one dimension, which are disjoint or
/// equal, so *both* endpoints are monotone along the sort order and every
/// survival condition becomes a window of the single sorted array.
pub(crate) struct FilterIndex {
    /// `(key cell interval, role-list position)` sorted ascending by `lo`.
    entries: Vec<(Interval, u32)>,
    /// Per role-list position: its rank in `entries` (dense — every
    /// position is indexed). Used for O(1) membership tests.
    rank_of: Vec<u32>,
    probe: PredSideRef,
    key_is_lhs: bool,
    form: BandForm,
}

/// A resolved column reference `(relation, attribute)` of the probe side.
struct PredSideRef {
    rel: usize,
    attr: usize,
}

/// The accepted runs of a sorted interval-key array for a probe interval
/// `p` under the predicate shape `form` / `key_is_lhs`, or `None` when the
/// predicate cannot prune ("everything is a candidate"). Generic over the
/// entry payload so both [`FilterIndex`] (role-list positions) and the
/// incremental engine's persistent indexes (cell Z-numbers) share the exact
/// same widening.
///
/// Each survival condition below is copied verbatim from the interval
/// comparison semantics in `sensjoin_query::interval` (`cmp_lt` / `cmp_le`
/// / `cmp_eq` over `Interval::sub` / `Interval::abs` images), evaluated
/// with the same `Interval` operations — never rearranged — so an entry is
/// excluded only if its residual check is `Tri::False`.
// The single-element `vec![a..b]` arms really are lists of ranges: the
// AbsDiff arms produce two.
#[allow(clippy::single_range_in_vec_init)]
pub(crate) fn interval_probe_ranges<T>(
    e: &[(Interval, T)],
    form: BandForm,
    key_is_lhs: bool,
    p: Interval,
) -> Option<Vec<Range<usize>>> {
    let n = e.len();
    // X = F − G where F is the lhs side of the form.
    let x = |k: Interval| if key_is_lhs { k.sub(p) } else { p.sub(k) };
    let ranges: Vec<Range<usize>> = match form {
        BandForm::Direct(op) => {
            // `l op r` with (l, r) = (key, probe) or (probe, key).
            let op = if key_is_lhs { op } else { mirror(op) };
            match op {
                // possible(l < r) ⇔ l.lo < r.hi
                CmpOp::Lt => vec![0..e.partition_point(|&(k, ref _t)| k.lo < p.hi)],
                CmpOp::Le => vec![0..e.partition_point(|&(k, ref _t)| k.lo <= p.hi)],
                // possible(l > r) ⇔ r.lo < l.hi
                CmpOp::Gt => vec![e.partition_point(|&(k, ref _t)| k.hi <= p.lo)..n],
                CmpOp::Ge => vec![e.partition_point(|&(k, ref _t)| k.hi < p.lo)..n],
                // possible(l = r) ⇔ the intervals overlap
                CmpOp::Eq => vec![
                    e.partition_point(|&(k, ref _t)| k.hi < p.lo)
                        ..e.partition_point(|&(k, ref _t)| k.lo <= p.hi),
                ],
                CmpOp::Ne => return None,
            }
        }
        BandForm::Diff { op, c } => {
            // possible((F−G) op c) in terms of X = F−G: Lt/Le bound
            // X.lo, Gt/Ge bound X.hi, Eq needs both. X's endpoints are
            // monotone along the entries: increasing when the key is F,
            // decreasing when the key is G.
            let inc = key_is_lhs;
            match op {
                CmpOp::Lt if inc => vec![0..e.partition_point(|&(k, ref _t)| x(k).lo < c)],
                CmpOp::Lt => vec![e.partition_point(|&(k, ref _t)| x(k).lo >= c)..n],
                CmpOp::Le if inc => vec![0..e.partition_point(|&(k, ref _t)| x(k).lo <= c)],
                CmpOp::Le => vec![e.partition_point(|&(k, ref _t)| x(k).lo > c)..n],
                CmpOp::Gt if inc => vec![e.partition_point(|&(k, ref _t)| x(k).hi <= c)..n],
                CmpOp::Gt => vec![0..e.partition_point(|&(k, ref _t)| x(k).hi > c)],
                CmpOp::Ge if inc => vec![e.partition_point(|&(k, ref _t)| x(k).hi < c)..n],
                CmpOp::Ge => vec![0..e.partition_point(|&(k, ref _t)| x(k).hi >= c)],
                CmpOp::Eq if inc => vec![
                    e.partition_point(|&(k, ref _t)| x(k).hi < c)
                        ..e.partition_point(|&(k, ref _t)| x(k).lo <= c),
                ],
                CmpOp::Eq => vec![
                    e.partition_point(|&(k, ref _t)| x(k).lo > c)
                        ..e.partition_point(|&(k, ref _t)| x(k).hi >= c),
                ],
                CmpOp::Ne => return None,
            }
        }
        BandForm::AbsDiff { op, c } => {
            let inc = key_is_lhs;
            match op {
                // possible(|X| < c) ⇔ X.lo < c ∧ −X.hi < c (for c > 0;
                // impossible otherwise since |X|.lo ≥ 0).
                CmpOp::Lt | CmpOp::Le => {
                    let strict = op == CmpOp::Lt;
                    if (strict && c <= 0.0) || (!strict && c < 0.0) {
                        vec![]
                    } else if inc {
                        let lo_ok = |k: Interval| {
                            let hi = x(k).hi;
                            if strict {
                                hi <= -c
                            } else {
                                hi < -c
                            }
                        };
                        let hi_ok = |k: Interval| {
                            let lo = x(k).lo;
                            if strict {
                                lo < c
                            } else {
                                lo <= c
                            }
                        };
                        vec![
                            e.partition_point(|&(k, ref _t)| lo_ok(k))
                                ..e.partition_point(|&(k, ref _t)| hi_ok(k)),
                        ]
                    } else {
                        let lo_ok = |k: Interval| {
                            let lo = x(k).lo;
                            if strict {
                                lo >= c
                            } else {
                                lo > c
                            }
                        };
                        let hi_ok = |k: Interval| {
                            let hi = x(k).hi;
                            if strict {
                                hi > -c
                            } else {
                                hi >= -c
                            }
                        };
                        vec![
                            e.partition_point(|&(k, ref _t)| lo_ok(k))
                                ..e.partition_point(|&(k, ref _t)| hi_ok(k)),
                        ]
                    }
                }
                // possible(|X| > c) ⇔ X.hi > c ∨ X.lo < −c (for c ≥ 0;
                // always possible otherwise). Prefix ∪ suffix.
                CmpOp::Gt | CmpOp::Ge => {
                    let strict = op == CmpOp::Gt;
                    if (strict && c < 0.0) || (!strict && c <= 0.0) {
                        return None;
                    }
                    let (lo_run, hi_run) = if inc {
                        (
                            0..e.partition_point(|&(k, ref _t)| {
                                let lo = x(k).lo;
                                if strict {
                                    lo < -c
                                } else {
                                    lo <= -c
                                }
                            }),
                            e.partition_point(|&(k, ref _t)| {
                                let hi = x(k).hi;
                                if strict {
                                    hi <= c
                                } else {
                                    hi < c
                                }
                            })..n,
                        )
                    } else {
                        (
                            0..e.partition_point(|&(k, ref _t)| {
                                let hi = x(k).hi;
                                if strict {
                                    hi > c
                                } else {
                                    hi >= c
                                }
                            }),
                            e.partition_point(|&(k, ref _t)| {
                                let lo = x(k).lo;
                                if strict {
                                    lo >= -c
                                } else {
                                    lo > -c
                                }
                            })..n,
                        )
                    };
                    if lo_run.end >= hi_run.start {
                        vec![0..n]
                    } else {
                        vec![lo_run, hi_run]
                    }
                }
                // possible(|X| = c): use the necessary |X|.lo ≤ c window
                // (the residual applies the full condition).
                CmpOp::Eq => {
                    if c < 0.0 {
                        vec![]
                    } else if inc {
                        vec![
                            e.partition_point(|&(k, ref _t)| x(k).hi < -c)
                                ..e.partition_point(|&(k, ref _t)| x(k).lo <= c),
                        ]
                    } else {
                        vec![
                            e.partition_point(|&(k, ref _t)| x(k).lo > c)
                                ..e.partition_point(|&(k, ref _t)| x(k).hi >= -c),
                        ]
                    }
                }
                CmpOp::Ne => return None,
            }
        }
    };
    Some(ranges.into_iter().filter(|r| r.start < r.end).collect())
}

impl FilterIndex {
    /// The accepted runs of `entries` for probe interval `p`, or `None`
    /// when this predicate cannot prune for that probe.
    pub(crate) fn probe(&self, p: Interval) -> Option<Vec<Range<usize>>> {
        interval_probe_ranges(&self.entries, self.form, self.key_is_lhs, p)
    }

    /// The sorted `(key interval, role-list position)` entries.
    pub(crate) fn entries(&self) -> &[(Interval, u32)] {
        &self.entries
    }

    /// Whether role-list position `pos` falls inside any of the accepted
    /// runs returned by [`FilterIndex::probe`]. O(runs), and runs is ≤ 2.
    pub(crate) fn accepts(&self, ranges: &[Range<usize>], pos: u32) -> bool {
        let rank = self.rank_of[pos as usize] as usize;
        ranges.iter().any(|r| r.contains(&rank))
    }

    /// The bound relation whose cell interval probes this index.
    pub(crate) fn probe_rel(&self) -> usize {
        self.probe.rel
    }

    /// The probed attribute of [`FilterIndex::probe_rel`].
    pub(crate) fn probe_attr(&self) -> usize {
        self.probe.attr
    }
}

/// Builds the filter-side plan. `key_interval(rel, attr, pos)` must return
/// the cell interval of attribute `attr` for the point at role-list
/// position `pos` of relation `rel`.
pub(crate) fn filter_plan(
    query: &CompiledQuery,
    list_lens: &[usize],
    pred_rels: &[usize],
    key_interval: impl Fn(usize, usize, usize) -> Interval,
) -> Vec<Vec<FilterIndex>> {
    let mut levels: Vec<Vec<FilterIndex>> =
        (0..query.num_relations()).map(|_| Vec::new()).collect();
    for (pi, class) in query.pred_classes().iter().enumerate() {
        let rel = pred_rels[pi];
        let (sides, form) = match class {
            PredClass::Equi { lhs, rhs } => ((lhs, rhs), BandForm::Direct(CmpOp::Eq)),
            PredClass::Band { lhs, rhs, form } => ((lhs, rhs), *form),
            PredClass::General => continue,
        };
        // Only plain column sides: their cell intervals are aligned (see
        // the struct docs); compound sides fall back to the full scan.
        let (CExpr::Col { attr: la, .. }, CExpr::Col { attr: ra, .. }) =
            (&sides.0.expr, &sides.1.expr)
        else {
            continue;
        };
        let key_is_lhs = sides.0.rel == rel;
        let (key_attr, probe) = if key_is_lhs {
            (
                *la,
                PredSideRef {
                    rel: sides.1.rel,
                    attr: *ra,
                },
            )
        } else {
            (
                *ra,
                PredSideRef {
                    rel: sides.0.rel,
                    attr: *la,
                },
            )
        };
        let mut entries: Vec<(Interval, u32)> = (0..list_lens[rel])
            .map(|pos| (key_interval(rel, key_attr, pos), pos as u32))
            .collect();
        entries.sort_unstable_by(|a, b| a.0.lo.total_cmp(&b.0.lo));
        let mut rank_of = vec![0u32; list_lens[rel]];
        for (rank, &(_, pos)) in entries.iter().enumerate() {
            rank_of[pos as usize] = rank as u32;
        }
        levels[rel].push(FilterIndex {
            entries,
            rank_of,
            probe,
            key_is_lhs,
            form,
        });
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_ranges_windows_and_rays() {
        let keys: Vec<(f64, u32)> = [1.0, 2.0, 3.0, 4.0, 5.0]
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u32))
            .collect();
        // d = identity, window (2, 4]: {3, 4}.
        let r = sorted_ranges(
            &keys,
            |k| k,
            true,
            &[DIv {
                lo: 2.0,
                lo_open: true,
                hi: 4.0,
                hi_open: false,
            }],
        );
        assert_eq!(r, vec![2..4]);
        // d = 10 − k (decreasing), ray above 7 (strict): 10−k > 7 ⇔ k < 3.
        let r = sorted_ranges(&keys, |k| 10.0 - k, false, &[DIv::ray_above(7.0, true)]);
        assert_eq!(r, vec![0..2]);
        // Two overlapping rays merge.
        let r = sorted_ranges(
            &keys,
            |k| k,
            true,
            &[DIv::ray_below(3.0, false), DIv::ray_above(2.0, false)],
        );
        assert_eq!(r, vec![0..5]);
    }

    #[test]
    fn sorted_ranges_decreasing_two_runs_both_survive() {
        // Probe p = 0 against keys [-4, -2, 0, 2, 4] with d(k) = p − k
        // (decreasing) and `|d| > 1`'s intervals (−∞, −1) ∪ (1, ∞): the
        // first interval is the *suffix* {2, 4}, the second the *prefix*
        // {-4, -2}. Both runs must survive the merge.
        let keys: Vec<(f64, u32)> = [-4.0, -2.0, 0.0, 2.0, 4.0]
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u32))
            .collect();
        let ivs = abs_cmp_intervals(CmpOp::Gt, 1.0).unwrap();
        let r = sorted_ranges(&keys, |k| 0.0 - k, false, &ivs);
        assert_eq!(r, vec![0..2, 3..5]);
        // |d| = 2 on the same decreasing coordinate: two singleton runs.
        let ivs = abs_cmp_intervals(CmpOp::Eq, 2.0).unwrap();
        let r = sorted_ranges(&keys, |k| 0.0 - k, false, &ivs);
        assert_eq!(r, vec![1..2, 3..4]);
    }

    #[test]
    fn key_bits_folds_zero_and_drops_nan() {
        assert_eq!(key_bits(-0.0), key_bits(0.0));
        assert!(key_bits(f64::NAN).is_none());
        assert_ne!(key_bits(1.0), key_bits(2.0));
    }
}
