//! Base-station crash recovery: versioned snapshots plus a write-ahead log.
//!
//! The paper's protocols are stateless per query, but the *base station* of
//! a continuous deployment accumulates state across rounds: filter-engine
//! cell counts, streaming join caches, scheduler epochs, serving-layer
//! registries. This module makes that state durable with two artifacts in a
//! checkpoint directory:
//!
//! * **Snapshots** (`snap-NNNNNNNNNN.ckpt`): a full, versioned, CRC-guarded
//!   image of the mutable base-station state, written every
//!   `--checkpoint-every` rounds via a write-to-temp + atomic-rename
//!   protocol. The latest two valid snapshots are retained so a torn write
//!   of the newest one degrades to the previous one.
//! * **Write-ahead log** (`wal.log`): one small record per completed round,
//!   holding the round index plus a digest of that round's observable
//!   output. Recovery restores the latest valid snapshot and deterministically
//!   *re-executes* the rounds after it (every RNG stream is part of the
//!   snapshot), checking each re-executed round's digest against the log.
//!
//! Because re-execution is bit-identical — same results, statistics, traces
//! and RNG draws as the uninterrupted run — the WAL does not need to carry
//! deltas, only enough to detect divergence. Corruption anywhere (torn WAL
//! tail, bit-flipped record, truncated snapshot) is detected by checksums and
//! degrades honestly: fall back to the previous snapshot or to a cold start,
//! re-execute the gap, never panic, never serve a wrong answer.
//!
//! [`CrashPoint`] names every durability-relevant site; [`CheckpointStore`]
//! can be armed to fail at any of them, leaving exactly the torn artifacts a
//! real crash would. The recovery tests sweep all sites.

use crate::engine::JoinSpace;
use crate::incremental::CellCounts;
use crate::ingest::{BatchStats, StreamJoinEngine};
use sensjoin_quadtree::{Point, PointSet, RelFlags};
use sensjoin_query::CompiledQuery;
use sensjoin_relation::NodeId;
use sensjoin_sim::{
    BatterySnapshot, ChurnAction, DeltaBatchStats, NetSnapshot, NetworkStats, NodeStats, Time,
    TraceRecord,
};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

/// On-disk snapshot format version. Bump on any incompatible layout change;
/// recovery rejects (degrades past) snapshots of other versions.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Snapshot file magic.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SJSN";

/// How many valid snapshots to retain (latest + one fallback).
pub const SNAPSHOTS_KEPT: usize = 2;

/// Upper bound on a single WAL record or snapshot payload. Anything larger
/// in a length prefix is treated as corruption, not an allocation request.
pub const MAX_RECORD_BYTES: u64 = 1 << 32;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A malformed byte stream fed to the state codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the encoding requires.
    Truncated,
    /// A length prefix larger than the remaining input allows.
    Oversize,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// An unknown enum tag.
    BadTag(u8),
    /// A decoded value violated a structural invariant.
    Invariant(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated input"),
            CodecError::Oversize => write!(f, "length prefix exceeds remaining input"),
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            CodecError::BadTag(t) => write!(f, "unknown tag {t}"),
            CodecError::Invariant(what) => write!(f, "invariant violated: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Why a checkpoint operation or recovery failed.
#[derive(Debug)]
pub enum RecoveryError {
    /// Filesystem failure (message carries the underlying error).
    Io(String),
    /// A checkpoint artifact failed validation.
    Corrupt {
        /// File the corruption was found in.
        file: String,
        /// What was wrong.
        detail: String,
    },
    /// `--resume` was requested but the directory holds no usable state.
    NoCheckpoint,
    /// An armed [`CrashPoint`] fired (test injection, not a real failure).
    Crash(CrashPoint),
    /// Snapshot payload failed to decode.
    State(CodecError),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            RecoveryError::Corrupt { file, detail } => {
                write!(f, "corrupt checkpoint artifact {file}: {detail}")
            }
            RecoveryError::NoCheckpoint => write!(f, "no usable checkpoint to resume from"),
            RecoveryError::Crash(p) => write!(f, "injected crash at {p}"),
            RecoveryError::State(e) => write!(f, "snapshot state decode failed: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> Self {
        RecoveryError::Io(e.to_string())
    }
}

impl From<CodecError> for RecoveryError {
    fn from(e: CodecError) -> Self {
        RecoveryError::State(e)
    }
}

// ---------------------------------------------------------------------------
// Crash injection
// ---------------------------------------------------------------------------

/// Every durability-relevant site where the base station can die. Arming a
/// [`CheckpointStore`] with one of these makes the matching operation stop
/// exactly there — leaving the same torn artifacts a real crash would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// After a round's results are produced but before anything is logged.
    PostRound,
    /// Mid WAL append: half of the record's bytes reach the file.
    MidWalAppend,
    /// Immediately after a WAL record is fully appended.
    PostWalAppend,
    /// Mid snapshot write: the temp file is left partially written.
    MidSnapshotWrite,
    /// Temp snapshot fully written but never renamed into place.
    PostSnapshotTmp,
    /// Snapshot renamed into place, crash before pruning old snapshots.
    PostSnapshotRename,
}

impl CrashPoint {
    /// All registered sites, in pipeline order — the sweep the recovery
    /// tests iterate.
    pub const ALL: [CrashPoint; 6] = [
        CrashPoint::PostRound,
        CrashPoint::MidWalAppend,
        CrashPoint::PostWalAppend,
        CrashPoint::MidSnapshotWrite,
        CrashPoint::PostSnapshotTmp,
        CrashPoint::PostSnapshotRename,
    ];
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[derive(Debug, Clone, Copy)]
struct CrashPlan {
    point: CrashPoint,
    /// Fire on the `occurrence`-th time the site is reached (1-based).
    occurrence: u32,
    seen: u32,
}

// ---------------------------------------------------------------------------
// Checkpoint store
// ---------------------------------------------------------------------------

/// State recovered from a checkpoint directory.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// Latest valid snapshot: its sequence number and payload bytes.
    pub snapshot: Option<(u64, Vec<u8>)>,
    /// Payloads of the WAL's valid prefix, in append order.
    pub wal: Vec<Vec<u8>>,
    /// Whether any artifact had to be skipped due to corruption — the run
    /// continues from older state, honestly, instead of failing.
    pub degraded: bool,
}

/// A checkpoint directory: snapshot files plus one append-only WAL.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    crash: Option<CrashPlan>,
}

impl CheckpointStore {
    /// Opens (creating if needed) the checkpoint directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, RecoveryError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, crash: None })
    }

    /// The directory this store writes to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the write-ahead log.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    /// Path of the snapshot with sequence number `seq`.
    pub fn snapshot_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("snap-{seq:010}.ckpt"))
    }

    /// Arms a crash: the `occurrence`-th time `point` is reached (1-based),
    /// the operation stops there and returns [`RecoveryError::Crash`].
    pub fn arm_crash(&mut self, point: CrashPoint, occurrence: u32) {
        self.crash = Some(CrashPlan {
            point,
            occurrence: occurrence.max(1),
            seen: 0,
        });
    }

    /// Disarms any pending crash plan.
    pub fn disarm_crash(&mut self) {
        self.crash = None;
    }

    /// Driver-visible injection site: call at a named point; returns
    /// `Err(Crash)` iff that site is armed and due.
    pub fn crash_check(&mut self, point: CrashPoint) -> Result<(), RecoveryError> {
        if let Some(plan) = &mut self.crash {
            if plan.point == point {
                plan.seen += 1;
                if plan.seen >= plan.occurrence {
                    self.crash = None;
                    return Err(RecoveryError::Crash(point));
                }
            }
        }
        Ok(())
    }

    /// Whether an armed crash at `point` would fire on its next check,
    /// *without* consuming it.
    fn crash_due(&self, point: CrashPoint) -> bool {
        self.crash
            .is_some_and(|p| p.point == point && p.seen + 1 >= p.occurrence)
    }

    /// Appends one record (`len | crc | payload`) to the WAL. The WAL is
    /// append-only for the lifetime of a run; snapshots never truncate it —
    /// recovery skips records at or before the snapshot's round.
    pub fn append_wal(&mut self, payload: &[u8]) -> Result<(), RecoveryError> {
        let mut rec = Vec::with_capacity(8 + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(payload).to_le_bytes());
        rec.extend_from_slice(payload);
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.wal_path())?;
        if self.crash_due(CrashPoint::MidWalAppend) {
            f.write_all(&rec[..rec.len() / 2])?;
            f.flush()?;
            return self.crash_check(CrashPoint::MidWalAppend);
        }
        // Consume a non-due MidWalAppend occurrence.
        self.crash_check(CrashPoint::MidWalAppend)?;
        f.write_all(&rec)?;
        f.flush()?;
        self.crash_check(CrashPoint::PostWalAppend)
    }

    /// Writes snapshot `seq` via temp-file + atomic rename, then prunes all
    /// but the newest [`SNAPSHOTS_KEPT`] snapshots.
    pub fn save_snapshot(&mut self, seq: u64, payload: &[u8]) -> Result<(), RecoveryError> {
        let bytes = frame_snapshot(seq, payload);
        let tmp = self.dir.join(format!("snap-{seq:010}.ckpt.tmp"));
        {
            let mut f = File::create(&tmp)?;
            if self.crash_due(CrashPoint::MidSnapshotWrite) {
                f.write_all(&bytes[..bytes.len() / 2])?;
                f.flush()?;
                return self.crash_check(CrashPoint::MidSnapshotWrite);
            }
            self.crash_check(CrashPoint::MidSnapshotWrite)?;
            f.write_all(&bytes)?;
            f.flush()?;
        }
        self.crash_check(CrashPoint::PostSnapshotTmp)?;
        fs::rename(&tmp, self.snapshot_path(seq))?;
        self.crash_check(CrashPoint::PostSnapshotRename)?;
        // Prune: keep the newest SNAPSHOTS_KEPT by sequence number.
        let mut seqs = self.list_snapshot_seqs()?;
        seqs.sort_unstable();
        while seqs.len() > SNAPSHOTS_KEPT {
            let old = seqs.remove(0);
            let _ = fs::remove_file(self.snapshot_path(old));
        }
        Ok(())
    }

    fn list_snapshot_seqs(&self) -> Result<Vec<u64>, RecoveryError> {
        let mut seqs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("snap-")
                .and_then(|rest| rest.strip_suffix(".ckpt"))
            {
                if let Ok(seq) = num.parse::<u64>() {
                    seqs.push(seq);
                }
            }
        }
        Ok(seqs)
    }

    /// Loads the newest valid snapshot and the WAL's valid prefix.
    ///
    /// Corrupt or torn artifacts are *skipped*, never fatal: a bad newest
    /// snapshot falls back to the previous one (then to a cold start), and
    /// the WAL scan stops at the first record whose length or checksum does
    /// not verify. `degraded` reports whether anything was skipped.
    pub fn recover(&self) -> Result<Recovered, RecoveryError> {
        let mut degraded = false;
        let mut seqs = self.list_snapshot_seqs()?;
        seqs.sort_unstable_by(|a, b| b.cmp(a)); // newest first
        let mut snapshot = None;
        for seq in seqs {
            match load_snapshot(&self.snapshot_path(seq), seq) {
                Ok(payload) => {
                    snapshot = Some((seq, payload));
                    break;
                }
                Err(_) => degraded = true,
            }
        }
        let (wal, wal_degraded) = match fs::read(self.wal_path()) {
            Ok(bytes) => scan_wal(&bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (Vec::new(), false),
            Err(e) => return Err(e.into()),
        };
        Ok(Recovered {
            snapshot,
            wal,
            degraded: degraded || wal_degraded,
        })
    }
}

/// Frames a snapshot payload: magic, version, seq, length, payload, CRC over
/// everything after the version field.
fn frame_snapshot(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(4 + 4 + 8 + 8 + payload.len() + 4);
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&seq.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(payload);
    let crc = crc32(&bytes[8..]);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

/// Validates one snapshot file; any failure means "try an older one".
fn load_snapshot(path: &Path, expect_seq: u64) -> Result<Vec<u8>, RecoveryError> {
    let corrupt = |detail: &str| RecoveryError::Corrupt {
        file: path.display().to_string(),
        detail: detail.to_string(),
    };
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 28 {
        return Err(corrupt("shorter than header"));
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(corrupt("unsupported version"));
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if seq != expect_seq {
        return Err(corrupt("sequence number does not match file name"));
    }
    let len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    if len > MAX_RECORD_BYTES || bytes.len() as u64 != 28 + len {
        return Err(corrupt("payload length mismatch"));
    }
    let payload_end = 24 + len as usize;
    let stored = u32::from_le_bytes(bytes[payload_end..payload_end + 4].try_into().unwrap());
    if crc32(&bytes[8..payload_end]) != stored {
        return Err(corrupt("checksum mismatch"));
    }
    Ok(bytes[24..payload_end].to_vec())
}

/// Returns the WAL's valid-prefix payloads plus whether a torn/corrupt tail
/// was skipped.
fn scan_wal(bytes: &[u8]) -> (Vec<Vec<u8>>, bool) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            return (out, true); // torn header
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let stored = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len as u64 > MAX_RECORD_BYTES || bytes.len() - pos - 8 < len {
            return (out, true); // torn or insane payload
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != stored {
            return (out, true); // bit-flipped record: stop at last good one
        }
        out.push(payload.to_vec());
        pos += 8 + len;
    }
    (out, false)
}

// ---------------------------------------------------------------------------
// Test corruption helpers
// ---------------------------------------------------------------------------

/// XORs `0xFF` into the byte at `offset` (fuzz/corruption tests).
pub fn flip_byte(path: &Path, offset: u64) -> std::io::Result<()> {
    let mut bytes = fs::read(path)?;
    let ix = (offset as usize).min(bytes.len().saturating_sub(1));
    if let Some(b) = bytes.get_mut(ix) {
        *b ^= 0xFF;
    }
    fs::write(path, bytes)
}

/// Truncates the file to `len` bytes (torn-write tests).
pub fn truncate_file(path: &Path, len: u64) -> std::io::Result<()> {
    let bytes = fs::read(path)?;
    let keep = (len as usize).min(bytes.len());
    fs::write(path, &bytes[..keep])
}

// ---------------------------------------------------------------------------
// Checksums and digests
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// FNV-1a 64-bit hash — the WAL's round-output digest.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Primitive codec
// ---------------------------------------------------------------------------

/// Little-endian, length-prefixed binary encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes a `usize` widened to `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes length-prefixed raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_usize(b.len());
        self.buf.extend_from_slice(b);
    }
}

/// Bounds-checked decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `buf` for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed — trailing garbage means a
    /// corrupt or mismatched payload.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Invariant("trailing bytes after payload"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `bool`; any byte other than 0/1 is corruption.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::BadTag(t)),
        }
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError::Oversize)
    }

    /// Reads an element count whose elements occupy at least
    /// `min_elem_bytes` each — bounding the count by the remaining input so
    /// corrupt prefixes can never drive huge allocations.
    pub fn get_count(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.get_usize()?;
        let bound = self.remaining() / min_elem_bytes.max(1);
        if n > bound {
            return Err(CodecError::Oversize);
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let n = self.get_count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// Reads length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let n = self.get_count(1)?;
        Ok(self.take(n)?.to_vec())
    }
}

// ---------------------------------------------------------------------------
// Shared-type encoders
// ---------------------------------------------------------------------------

/// Encodes a [`PointSet`] (z + flags per point).
pub fn put_point_set(w: &mut Writer, set: &PointSet) {
    w.put_usize(set.len());
    for p in set.points() {
        w.put_u64(p.z);
        w.put_u8(p.flags.0);
    }
}

/// Decodes a [`PointSet`]; enforces the sorted-unique-nonempty invariants.
pub fn get_point_set(r: &mut Reader<'_>) -> Result<PointSet, CodecError> {
    let n = r.get_count(9)?;
    let mut points = Vec::new();
    let mut last: Option<u64> = None;
    for _ in 0..n {
        let z = r.get_u64()?;
        let flags = RelFlags(r.get_u8()?);
        if flags.is_empty() {
            return Err(CodecError::Invariant("point with empty flags"));
        }
        if last.is_some_and(|l| l >= z) {
            return Err(CodecError::Invariant("points not strictly sorted"));
        }
        last = Some(z);
        points.push(Point { z, flags });
    }
    Ok(PointSet::from_points(points))
}

/// Encodes [`CellCounts`] in sorted key order (deterministic bytes).
pub fn put_cell_counts(w: &mut Writer, counts: &CellCounts) {
    let mut keys: Vec<u64> = counts.keys().copied().collect();
    keys.sort_unstable();
    w.put_usize(keys.len());
    for z in keys {
        w.put_u64(z);
        for &c in &counts[&z] {
            w.put_i64(c);
        }
    }
}

/// Decodes [`CellCounts`].
pub fn get_cell_counts(r: &mut Reader<'_>) -> Result<CellCounts, CodecError> {
    let n = r.get_count(8 + 8 * 8)?;
    let mut counts = CellCounts::default();
    for _ in 0..n {
        let z = r.get_u64()?;
        let mut row = [0i64; 8];
        for c in row.iter_mut() {
            *c = r.get_i64()?;
        }
        counts.insert(z, row);
    }
    Ok(counts)
}

/// Encodes per-node statistics counters.
pub fn put_node_stats(w: &mut Writer, s: &NodeStats) {
    w.put_u64(s.tx_packets);
    w.put_u64(s.tx_bytes);
    w.put_u64(s.rx_packets);
    w.put_u64(s.rx_bytes);
    w.put_u64(s.retx_packets);
    w.put_u64(s.retx_bytes);
    w.put_u64(s.ack_packets);
    w.put_u64(s.ack_bytes);
    w.put_u64(s.lost_packets);
    w.put_u64(s.deaths);
    w.put_f64(s.energy_uj);
}

/// Decodes per-node statistics counters.
pub fn get_node_stats(r: &mut Reader<'_>) -> Result<NodeStats, CodecError> {
    Ok(NodeStats {
        tx_packets: r.get_u64()?,
        tx_bytes: r.get_u64()?,
        rx_packets: r.get_u64()?,
        rx_bytes: r.get_u64()?,
        retx_packets: r.get_u64()?,
        retx_bytes: r.get_u64()?,
        ack_packets: r.get_u64()?,
        ack_bytes: r.get_u64()?,
        lost_packets: r.get_u64()?,
        deaths: r.get_u64()?,
        energy_uj: r.get_f64()?,
    })
}

/// Encodes network statistics (per-node array + per-phase map).
pub fn put_network_stats(w: &mut Writer, s: &NetworkStats) {
    w.put_usize(s.per_node().len());
    for ns in s.per_node() {
        put_node_stats(w, ns);
    }
    let phases: Vec<(&str, &NodeStats)> = s.phases().collect();
    w.put_usize(phases.len());
    for (name, ns) in phases {
        w.put_str(name);
        put_node_stats(w, ns);
    }
}

/// Decodes network statistics.
pub fn get_network_stats(r: &mut Reader<'_>) -> Result<NetworkStats, CodecError> {
    let n = r.get_count(88)?;
    let mut per_node = Vec::new();
    for _ in 0..n {
        per_node.push(get_node_stats(r)?);
    }
    let np = r.get_count(8)?;
    let mut per_phase = Vec::new();
    for _ in 0..np {
        let name = r.get_str()?;
        per_phase.push((name, get_node_stats(r)?));
    }
    Ok(NetworkStats::from_parts(per_node, per_phase))
}

/// Encodes one trace record.
pub fn put_trace_record(w: &mut Writer, t: &TraceRecord) {
    w.put_u64(t.seq);
    w.put_str(&t.phase);
    w.put_str(&t.kind);
    w.put_u32(t.from.0);
    w.put_usize(t.to.len());
    for n in &t.to {
        w.put_u32(n.0);
    }
    w.put_usize(t.bytes);
    w.put_usize(t.packets);
    w.put_u64(t.retransmissions);
    w.put_bool(t.acked);
}

/// Decodes one trace record.
pub fn get_trace_record(r: &mut Reader<'_>) -> Result<TraceRecord, CodecError> {
    let seq = r.get_u64()?;
    let phase = r.get_str()?;
    let kind = r.get_str()?;
    let from = NodeId(r.get_u32()?);
    let nto = r.get_count(4)?;
    let mut to = Vec::new();
    for _ in 0..nto {
        to.push(NodeId(r.get_u32()?));
    }
    Ok(TraceRecord {
        seq,
        phase,
        kind,
        from,
        to,
        bytes: r.get_usize()?,
        packets: r.get_usize()?,
        retransmissions: r.get_u64()?,
        acked: r.get_bool()?,
    })
}

fn put_churn_action(w: &mut Writer, a: ChurnAction) {
    w.put_u8(match a {
        ChurnAction::Crash => 0,
        ChurnAction::Revive => 1,
    });
}

fn get_churn_action(r: &mut Reader<'_>) -> Result<ChurnAction, CodecError> {
    match r.get_u8()? {
        0 => Ok(ChurnAction::Crash),
        1 => Ok(ChurnAction::Revive),
        t => Err(CodecError::BadTag(t)),
    }
}

fn put_opt<T>(w: &mut Writer, v: &Option<T>, put: impl FnOnce(&mut Writer, &T)) {
    match v {
        None => w.put_bool(false),
        Some(v) => {
            w.put_bool(true);
            put(w, v);
        }
    }
}

fn get_opt<T>(
    r: &mut Reader<'_>,
    get: impl FnOnce(&mut Reader<'_>) -> Result<T, CodecError>,
) -> Result<Option<T>, CodecError> {
    if r.get_bool()? {
        Ok(Some(get(r)?))
    } else {
        Ok(None)
    }
}

/// Encodes a full network-state snapshot ([`NetSnapshot`]).
pub fn put_net_snapshot(w: &mut Writer, s: &NetSnapshot) {
    w.put_usize(s.alive.len());
    for &a in &s.alive {
        w.put_bool(a);
    }
    w.put_usize(s.parent.len());
    for &p in &s.parent {
        w.put_u32(p);
    }
    for &d in &s.depth {
        w.put_u32(d);
    }
    put_network_stats(w, &s.stats);
    put_opt(w, &s.trace, |w, records| {
        w.put_usize(records.len());
        for t in records {
            put_trace_record(w, t);
        }
    });
    put_opt(w, &s.channel_states, |w, states| {
        w.put_usize(states.len());
        for &(from, to, words, bad) in states {
            w.put_u32(from.0);
            w.put_u32(to.0);
            for word in words {
                w.put_u64(word);
            }
            w.put_bool(bad);
        }
    });
    put_opt(w, &s.churn_timed, |w, timed| {
        w.put_usize(timed.len());
        for &(t, n, a) in timed {
            w.put_u64(t);
            w.put_u32(n.0);
            put_churn_action(w, a);
        }
    });
    w.put_usize(s.churn_boundary_events.len());
    for (boundary, events) in &s.churn_boundary_events {
        w.put_u32(*boundary);
        w.put_usize(events.len());
        for &(n, a) in events {
            w.put_u32(n.0);
            put_churn_action(w, a);
        }
    }
    w.put_u32(s.churn_boundary);
    w.put_u64(s.churn_clock);
    put_opt(w, &s.battery, |w, b| {
        w.put_usize(b.capacity_uj.len());
        for &v in &b.capacity_uj {
            w.put_f64(v);
        }
        for &v in &b.debited_uj {
            w.put_f64(v);
        }
        for &d in &b.depleted {
            w.put_bool(d);
        }
        w.put_usize(b.pending.len());
        for n in &b.pending {
            w.put_u32(n.0);
        }
        w.put_usize(b.death_order.len());
        for n in &b.death_order {
            w.put_u32(n.0);
        }
    });
}

/// Decodes a [`NetSnapshot`].
pub fn get_net_snapshot(r: &mut Reader<'_>) -> Result<NetSnapshot, CodecError> {
    let n = r.get_count(1)?;
    let mut alive = Vec::new();
    for _ in 0..n {
        alive.push(r.get_bool()?);
    }
    let np = r.get_count(4)?;
    let mut parent = Vec::new();
    for _ in 0..np {
        parent.push(r.get_u32()?);
    }
    let mut depth = Vec::new();
    for _ in 0..np {
        depth.push(r.get_u32()?);
    }
    let stats = get_network_stats(r)?;
    let trace = get_opt(r, |r| {
        let nt = r.get_count(8)?;
        let mut records = Vec::new();
        for _ in 0..nt {
            records.push(get_trace_record(r)?);
        }
        Ok(records)
    })?;
    let channel_states = get_opt(r, |r| {
        let nc = r.get_count(4 + 4 + 32 + 1)?;
        let mut states = Vec::new();
        for _ in 0..nc {
            let from = NodeId(r.get_u32()?);
            let to = NodeId(r.get_u32()?);
            let mut words = [0u64; 4];
            for word in words.iter_mut() {
                *word = r.get_u64()?;
            }
            states.push((from, to, words, r.get_bool()?));
        }
        Ok(states)
    })?;
    let churn_timed = get_opt(r, |r| {
        let nt = r.get_count(8 + 4 + 1)?;
        let mut timed: Vec<(Time, NodeId, ChurnAction)> = Vec::new();
        for _ in 0..nt {
            let t = r.get_u64()?;
            let n = NodeId(r.get_u32()?);
            timed.push((t, n, get_churn_action(r)?));
        }
        Ok(timed)
    })?;
    let nb = r.get_count(4 + 8)?;
    let mut churn_boundary_events = Vec::new();
    for _ in 0..nb {
        let boundary = r.get_u32()?;
        let ne = r.get_count(4 + 1)?;
        let mut events = Vec::new();
        for _ in 0..ne {
            let n = NodeId(r.get_u32()?);
            events.push((n, get_churn_action(r)?));
        }
        churn_boundary_events.push((boundary, events));
    }
    let churn_boundary = r.get_u32()?;
    let churn_clock = r.get_u64()?;
    let battery = get_opt(r, |r| {
        let n = r.get_count(8)?;
        let mut capacity_uj = Vec::new();
        for _ in 0..n {
            capacity_uj.push(r.get_f64()?);
        }
        let mut debited_uj = Vec::new();
        for _ in 0..n {
            debited_uj.push(r.get_f64()?);
        }
        let mut depleted = Vec::new();
        for _ in 0..n {
            depleted.push(r.get_bool()?);
        }
        let npend = r.get_count(4)?;
        let mut pending = Vec::new();
        for _ in 0..npend {
            pending.push(NodeId(r.get_u32()?));
        }
        let ndead = r.get_count(4)?;
        let mut death_order = Vec::new();
        for _ in 0..ndead {
            death_order.push(NodeId(r.get_u32()?));
        }
        Ok(BatterySnapshot {
            capacity_uj,
            debited_uj,
            depleted,
            pending,
            death_order,
        })
    })?;
    Ok(NetSnapshot {
        alive,
        parent,
        depth,
        stats,
        trace,
        channel_states,
        churn_timed,
        churn_boundary_events,
        churn_boundary,
        churn_clock,
        battery,
    })
}

/// Encodes a `Vec<f64>` bit-exactly.
pub fn put_f64_vec(w: &mut Writer, v: &[f64]) {
    w.put_usize(v.len());
    for &x in v {
        w.put_f64(x);
    }
}

/// Decodes a `Vec<f64>`.
pub fn get_f64_vec(r: &mut Reader<'_>) -> Result<Vec<f64>, CodecError> {
    let n = r.get_count(8)?;
    let mut v = Vec::new();
    for _ in 0..n {
        v.push(r.get_f64()?);
    }
    Ok(v)
}

/// Encodes a [`JoinSpace`] via [`JoinSpace::to_parts`]. The space must be
/// serialized, never rebuilt from resume-time readings: setup-time range
/// estimation would see different samples and quantize differently.
pub fn put_join_space(w: &mut Writer, space: &JoinSpace) {
    let (dims, maps, flag_bits) = space.to_parts();
    w.put_usize(dims.len());
    for (name, min, max, res) in &dims {
        w.put_str(name);
        w.put_f64(*min);
        w.put_f64(*max);
        w.put_f64(*res);
    }
    w.put_usize(maps.len());
    for map in &maps {
        w.put_usize(map.len());
        for &d in map {
            w.put_usize(d);
        }
    }
    w.put_u8(flag_bits);
}

/// Decodes a [`JoinSpace`].
pub fn get_join_space(r: &mut Reader<'_>) -> Result<JoinSpace, CodecError> {
    let nd = r.get_count(8 + 24)?;
    if nd == 0 {
        return Err(CodecError::Invariant("join space with no dimensions"));
    }
    let mut dims = Vec::new();
    for _ in 0..nd {
        let name = r.get_str()?;
        let (min, max, res) = (r.get_f64()?, r.get_f64()?, r.get_f64()?);
        if !(min.is_finite() && max.is_finite() && res.is_finite() && min <= max && res > 0.0) {
            return Err(CodecError::Invariant("non-finite or inverted dimension"));
        }
        dims.push((name, min, max, res));
    }
    let nm = r.get_count(8)?;
    let mut maps = Vec::new();
    for _ in 0..nm {
        let np = r.get_count(8)?;
        let mut map = Vec::new();
        for _ in 0..np {
            let d = r.get_usize()?;
            if d >= nd {
                return Err(CodecError::Invariant("dimension map out of range"));
            }
            map.push(d);
        }
        maps.push(map);
    }
    let flag_bits = r.get_u8()?;
    if flag_bits > 8 {
        return Err(CodecError::Invariant("more than 8 flag bits"));
    }
    Ok(JoinSpace::from_parts(dims, maps, flag_bits))
}

/// Encodes a [`StreamJoinEngine`]'s mutable state: live tuples plus
/// band-index hotness (the query itself is not serialized — the caller
/// recompiles it deterministically and passes it to
/// [`get_stream_engine`]).
pub fn put_stream_engine(w: &mut Writer, engine: &StreamJoinEngine) {
    let tuples = engine.live_tuples();
    w.put_usize(tuples.len());
    for (origin, per_rel) in &tuples {
        w.put_u32(origin.0);
        w.put_usize(per_rel.len());
        for values in per_rel {
            put_opt(w, values, |w, v| put_f64_vec(w, v));
        }
    }
    let band = engine.band_state();
    w.put_usize(band.len());
    for parts in &band {
        w.put_usize(parts.len());
        for &(bucket, arrivals, hot) in parts {
            w.put_i64(bucket);
            w.put_u64(arrivals);
            w.put_bool(hot);
        }
    }
}

/// Decodes and rebuilds a [`StreamJoinEngine`] by replaying the live tuples
/// into a fresh engine for `query`, then restoring band hotness.
pub fn get_stream_engine(
    r: &mut Reader<'_>,
    query: CompiledQuery,
) -> Result<StreamJoinEngine, CodecError> {
    let nt = r.get_count(8)?;
    let mut tuples = Vec::new();
    for _ in 0..nt {
        let origin = NodeId(r.get_u32()?);
        let nr = r.get_count(1)?;
        let mut per_rel = Vec::new();
        for _ in 0..nr {
            per_rel.push(get_opt(r, get_f64_vec)?);
        }
        tuples.push((origin, per_rel));
    }
    let nb = r.get_count(8)?;
    let mut band = Vec::new();
    for _ in 0..nb {
        let np = r.get_count(8 + 8 + 1)?;
        let mut parts = Vec::new();
        for _ in 0..np {
            let bucket = r.get_i64()?;
            let arrivals = r.get_u64()?;
            parts.push((bucket, arrivals, r.get_bool()?));
        }
        band.push(parts);
    }
    Ok(StreamJoinEngine::restore(query, &tuples, &band))
}

/// Encodes per-batch streaming statistics.
pub fn put_batch_stats(w: &mut Writer, s: &BatchStats) {
    w.put_usize(s.ops);
    w.put_usize(s.inserted);
    w.put_usize(s.expired);
    w.put_usize(s.rows_added);
    w.put_usize(s.rows_removed);
    w.put_usize(s.candidates);
    w.put_usize(s.promotions);
}

/// Decodes per-batch streaming statistics.
pub fn get_batch_stats(r: &mut Reader<'_>) -> Result<BatchStats, CodecError> {
    Ok(BatchStats {
        ops: r.get_usize()?,
        inserted: r.get_usize()?,
        expired: r.get_usize()?,
        rows_added: r.get_usize()?,
        rows_removed: r.get_usize()?,
        candidates: r.get_usize()?,
        promotions: r.get_usize()?,
    })
}

/// Encodes cumulative delta-batch statistics.
pub fn put_delta_stats(w: &mut Writer, s: &DeltaBatchStats) {
    w.put_u64(s.batches);
    w.put_u64(s.ops);
    w.put_u64(s.inserted);
    w.put_u64(s.expired);
    w.put_u64(s.rows_added);
    w.put_u64(s.rows_removed);
    w.put_u64(s.candidates);
    w.put_u64(s.promotions);
}

/// Decodes cumulative delta-batch statistics.
pub fn get_delta_stats(r: &mut Reader<'_>) -> Result<DeltaBatchStats, CodecError> {
    Ok(DeltaBatchStats {
        batches: r.get_u64()?,
        ops: r.get_u64()?,
        inserted: r.get_u64()?,
        expired: r.get_u64()?,
        rows_added: r.get_u64()?,
        rows_removed: r.get_u64()?,
        candidates: r.get_u64()?,
        promotions: r.get_u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_answer() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv1a_known_answer() {
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn primitive_roundtrip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f64(-0.125);
        w.put_bool(true);
        w.put_str("φ-join");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), -0.125);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "φ-join");
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        r.expect_end().unwrap();
    }

    #[test]
    fn oversize_count_is_error_not_allocation() {
        // A length prefix of u64::MAX must fail fast, not allocate.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_count(9), Err(CodecError::Oversize));
        let mut r2 = Reader::new(&bytes);
        assert!(get_point_set(&mut r2).is_err());
    }

    #[test]
    fn point_set_roundtrip_and_invariants() {
        let mut set = PointSet::new();
        set.insert(5, RelFlags(0b01));
        set.insert(9, RelFlags(0b10));
        set.insert(5, RelFlags(0b10)); // merges
        let mut w = Writer::new();
        put_point_set(&mut w, &set);
        let bytes = w.into_bytes();
        let got = get_point_set(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(got, set);

        // Unsorted input is rejected.
        let mut w = Writer::new();
        w.put_usize(2);
        w.put_u64(9);
        w.put_u8(1);
        w.put_u64(5);
        w.put_u8(1);
        let bytes = w.into_bytes();
        assert!(get_point_set(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn wal_append_and_scan() {
        let dir = std::env::temp_dir().join(format!("sj-persist-wal-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.append_wal(b"one").unwrap();
        store.append_wal(b"two").unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.wal, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(!rec.degraded);

        // A torn third record: only the good prefix survives, degraded set.
        store.arm_crash(CrashPoint::MidWalAppend, 1);
        assert!(matches!(
            store.append_wal(b"three"),
            Err(RecoveryError::Crash(CrashPoint::MidWalAppend))
        ));
        let rec = store.recover().unwrap();
        assert_eq!(rec.wal.len(), 2);
        assert!(rec.degraded);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_fallback_and_prune() {
        let dir = std::env::temp_dir().join(format!("sj-persist-snap-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.save_snapshot(1, b"alpha").unwrap();
        store.save_snapshot(2, b"beta").unwrap();
        store.save_snapshot(3, b"gamma").unwrap();
        // Prune keeps the newest two.
        assert!(!store.snapshot_path(1).exists());
        let rec = store.recover().unwrap();
        assert_eq!(rec.snapshot, Some((3, b"gamma".to_vec())));

        // Corrupt the newest: falls back to seq 2, degraded.
        flip_byte(&store.snapshot_path(3), 30).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.snapshot, Some((2, b"beta".to_vec())));
        assert!(rec.degraded);

        // Truncate that one too: cold start, still no panic.
        truncate_file(&store.snapshot_path(2), 10).unwrap();
        flip_byte(&store.snapshot_path(3), 30).unwrap(); // restore not guaranteed; corrupt anyway
        let rec = store.recover().unwrap();
        assert!(rec.snapshot.is_none() || rec.snapshot.as_ref().unwrap().0 == 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_points_leave_recoverable_state() {
        for (ix, point) in CrashPoint::ALL.iter().enumerate() {
            let dir =
                std::env::temp_dir().join(format!("sj-persist-crash-{}-{ix}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            let mut store = CheckpointStore::open(&dir).unwrap();
            store.save_snapshot(1, b"base").unwrap();
            store.append_wal(b"r1").unwrap();
            store.arm_crash(*point, 1);
            let crashed = store.crash_check(CrashPoint::PostRound).is_err()
                || store.append_wal(b"r2").is_err()
                || store.save_snapshot(2, b"next").is_err();
            assert!(crashed, "{point} never fired");
            // Recovery after the crash always finds a consistent prefix.
            let rec = CheckpointStore::open(&dir).unwrap().recover().unwrap();
            let (seq, payload) = rec.snapshot.expect("some snapshot survives");
            assert!(seq == 1 || seq == 2);
            assert_eq!(
                payload,
                if seq == 1 {
                    b"base".to_vec()
                } else {
                    b"next".to_vec()
                }
            );
            assert!(!rec.wal.is_empty());
            assert_eq!(rec.wal[0], b"r1".to_vec());
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}
