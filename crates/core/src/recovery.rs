//! Error tolerance (§IV-F): re-execution after link failures.
//!
//! SENS-Join keeps no state beyond a single execution and relies on the
//! collection-tree protocol to repair routes: "If a link goes down during
//! the execution of a query, we rely upon the tree protocol to re-establish
//! the routing structure. Afterwards, we simply re-execute the query."
//!
//! [`execute_with_recovery`] models exactly that: if any tree link is down,
//! one aborted attempt is charged (the traffic transmitted before the outage
//! is noticed — conservatively, a full attempt over the broken tree), the
//! routing tree is rebuilt around the failed links, and the query re-runs.
//! The returned result is the exact result; the returned statistics include
//! the wasted traffic.

use crate::outcome::{JoinOutcome, ProtocolError};
use crate::snetwork::SensorNetwork;
use crate::JoinMethod;
use sensjoin_query::CompiledQuery;
use sensjoin_sim::{ArqPolicy, LinkFailures, RepairStrategy};

/// Default attempt cap for [`execute_with_reexecution`].
pub const MAX_REEXECUTION_ATTEMPTS: u32 = 5;

/// Report of a recovered execution.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// The final (exact) outcome; its statistics include wasted attempts.
    pub outcome: JoinOutcome,
    /// Number of executions performed (1 = no failure encountered).
    pub attempts: u32,
    /// Number of tree links that were down at query start.
    pub affected_links: usize,
}

/// Executes `method` under `failures`. If the current routing tree uses a
/// failed link, a full attempt over the broken tree is charged as wasted
/// traffic, routing is repaired (CTP re-convergence) and the query is
/// re-executed on the new tree.
pub fn execute_with_recovery(
    method: &dyn JoinMethod,
    snet: &mut SensorNetwork,
    query: &CompiledQuery,
    failures: &LinkFailures,
) -> Result<RecoveryOutcome, ProtocolError> {
    // Which tree links are affected?
    let affected: usize = snet
        .net()
        .topology()
        .nodes()
        .filter(|&v| {
            snet.net()
                .routing()
                .parent(v)
                .is_some_and(|p| failures.is_down(v, p))
        })
        .count();
    if affected == 0 {
        let outcome = method.execute(snet, query)?;
        return Ok(RecoveryOutcome {
            outcome,
            attempts: 1,
            affected_links: affected,
        });
    }
    // Aborted attempt: traffic sent before the outage is detected. We charge
    // a full attempt over the stale tree — an upper bound on the waste.
    let wasted = method.execute(snet, query)?;
    // CTP repairs the tree around the failed links; re-execute.
    let f = failures.clone();
    snet.net_mut().rebuild_routing(&move |a, b| f.is_down(a, b));
    let mut outcome = method.execute(snet, query)?;
    let mut stats = wasted.stats;
    stats.merge(&outcome.stats);
    outcome.stats = stats;
    outcome.latency_us += wasted.latency_us;
    outcome.latency_slotted_us += wasted.latency_slotted_us;
    Ok(RecoveryOutcome {
        outcome,
        attempts: 2,
        affected_links: affected,
    })
}

/// The paper's §IV-F recipe applied to *per-packet* loss: no hop-by-hop
/// reliability at all — "we simply re-execute the query" until one run gets
/// everything through intact.
///
/// The network's ARQ policy is forced to [`ArqPolicy::None`] for the
/// duration of the call (and restored afterwards); the channel stays
/// whatever the caller configured. All attempts' traffic is merged into the
/// returned statistics and their latencies add up — this is exactly the
/// baseline cost the hop-by-hop ARQ policies are measured against. Attempts
/// are capped at `max_attempts`; if even the last one loses data, the final
/// outcome is returned with `complete = false`.
pub fn execute_with_reexecution(
    method: &dyn JoinMethod,
    snet: &mut SensorNetwork,
    query: &CompiledQuery,
    max_attempts: u32,
) -> Result<RecoveryOutcome, ProtocolError> {
    assert!(max_attempts >= 1, "at least one attempt is needed");
    let saved = snet.net().arq();
    snet.net_mut().set_arq(ArqPolicy::None);
    let mut attempts = 1;
    let mut run = method.execute(snet, query);
    if let Ok(outcome) = &mut run {
        while !outcome.complete && attempts < max_attempts {
            attempts += 1;
            match method.execute(snet, query) {
                Ok(retry) => {
                    let mut stats = std::mem::take(&mut outcome.stats);
                    stats.merge(&retry.stats);
                    let prev_latency = outcome.latency_us;
                    let prev_slotted = outcome.latency_slotted_us;
                    *outcome = retry;
                    outcome.stats = stats;
                    outcome.latency_us += prev_latency;
                    outcome.latency_slotted_us += prev_slotted;
                }
                Err(e) => {
                    run = Err(e);
                    break;
                }
            }
        }
    }
    snet.net_mut().set_arq(saved);
    Ok(RecoveryOutcome {
        outcome: run?,
        attempts,
        affected_links: 0,
    })
}

/// The §IV-F recipe applied to *node churn*: no localized repair — whenever
/// a node crashes or revives during an execution, the routing tree is
/// rebuilt from scratch (a network-wide beacon flood, charged to the energy
/// model) and the query is simply re-executed, until one run goes through
/// without a churn event or `max_attempts` is reached.
///
/// The network's repair strategy is forced to
/// [`RepairStrategy::FullRebuild`] for the duration of the call (and
/// restored afterwards). All attempts' traffic — including every rebuild
/// flood — is merged into the returned statistics and their latencies add
/// up: this is exactly the baseline cost the localized-repair path is
/// measured against in the `churn_tolerance` benchmark.
pub fn execute_with_rebuild_reexecution(
    method: &dyn JoinMethod,
    snet: &mut SensorNetwork,
    query: &CompiledQuery,
    max_attempts: u32,
) -> Result<RecoveryOutcome, ProtocolError> {
    assert!(max_attempts >= 1, "at least one attempt is needed");
    let saved = snet.net().repair_strategy();
    snet.net_mut()
        .set_repair_strategy(RepairStrategy::FullRebuild);
    let mut attempts = 1;
    let mut run = method.execute(snet, query);
    if let Ok(outcome) = &mut run {
        while outcome.churned && attempts < max_attempts {
            attempts += 1;
            match method.execute(snet, query) {
                Ok(retry) => {
                    let mut stats = std::mem::take(&mut outcome.stats);
                    stats.merge(&retry.stats);
                    let prev_latency = outcome.latency_us;
                    let prev_slotted = outcome.latency_slotted_us;
                    *outcome = retry;
                    outcome.stats = stats;
                    outcome.latency_us += prev_latency;
                    outcome.latency_slotted_us += prev_slotted;
                }
                Err(e) => {
                    run = Err(e);
                    break;
                }
            }
        }
    }
    snet.net_mut().set_repair_strategy(saved);
    Ok(RecoveryOutcome {
        outcome: run?,
        attempts,
        affected_links: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snetwork::SensorNetworkBuilder;
    use crate::{ExternalJoin, SensJoin};
    use sensjoin_field::{Area, Placement};
    use sensjoin_query::parse;

    fn snet(seed: u64) -> SensorNetwork {
        SensorNetworkBuilder::new()
            .area(Area::new(350.0, 350.0))
            .placement(Placement::UniformRandom { n: 120 })
            .seed(seed)
            .build()
            .unwrap()
    }

    fn query(s: &SensorNetwork) -> CompiledQuery {
        s.compile(
            &parse(
                "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                 WHERE A.temp - B.temp > 3.0 ONCE",
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn no_failures_single_attempt() {
        let mut s = snet(1);
        let cq = query(&s);
        let r = execute_with_recovery(&SensJoin::default(), &mut s, &cq, &LinkFailures::none())
            .unwrap();
        assert_eq!(r.attempts, 1);
        assert_eq!(r.affected_links, 0);
    }

    #[test]
    fn recovery_preserves_exactness() {
        let mut s = snet(2);
        let cq = query(&s);
        // Reference result on the intact tree.
        let reference = ExternalJoin.execute(&mut s, &cq).unwrap();
        // Fail a handful of tree links.
        let base = s.base();
        let victims: Vec<_> = s
            .net()
            .routing()
            .children(base)
            .iter()
            .take(2)
            .map(|&c| (c, base))
            .collect();
        assert!(!victims.is_empty());
        let failures = LinkFailures::of_links(victims);
        let r = execute_with_recovery(&SensJoin::default(), &mut s, &cq, &failures).unwrap();
        assert_eq!(r.attempts, 2);
        assert!(r.affected_links >= 1);
        // Result identical despite rerouting — as long as the network stays
        // connected around the failures.
        if s.net().routing().unreachable().is_empty() {
            assert!(r.outcome.result.same_result(&reference.result));
        }
        // Wasted attempt charged: costlier than a clean run.
        let clean = SensJoin::default().execute(&mut s, &cq).unwrap();
        assert!(r.outcome.stats.total_tx_packets() > clean.stats.total_tx_packets());
    }

    #[test]
    fn reexecution_restores_exactness_under_packet_loss() {
        let mut s = SensorNetworkBuilder::new()
            .area(Area::new(250.0, 250.0))
            .placement(Placement::UniformRandom { n: 40 })
            .seed(11)
            .build()
            .unwrap();
        let cq = query(&s);
        let reference = ExternalJoin.execute(&mut s, &cq).unwrap();
        s.net_mut()
            .set_channel(Some(sensjoin_sim::Channel::bernoulli(0.01, 99)));
        let r = execute_with_reexecution(&SensJoin::default(), &mut s, &cq, 25).unwrap();
        assert!(r.outcome.complete, "no clean run in 25 attempts");
        assert!(r.outcome.result.same_result(&reference.result));
        // The ARQ policy was restored.
        assert_eq!(s.net().arq(), ArqPolicy::None);
        if r.attempts > 1 {
            // Wasted attempts were charged.
            s.net_mut().set_channel(None);
            let solo = SensJoin::default().execute(&mut s, &cq).unwrap();
            assert!(r.outcome.stats.total_tx_bytes() > solo.stats.total_tx_bytes());
        }
    }

    #[test]
    fn rebuild_reexecution_restarts_until_churn_free() {
        use sensjoin_sim::{ChurnAction, ChurnTimeline};
        let mut s = snet(5);
        let cq = query(&s);
        let base = s.net().base();
        let victim = s.net().routing().children(base)[0];
        // Twin reference: the victim is gone from the very start.
        let mut twin = snet(5);
        twin.net_mut().fail_node(victim);
        let reference = ExternalJoin.execute(&mut twin, &cq).unwrap();
        // The victim crashes mid-execution (after the collection phase).
        let tl = ChurnTimeline::new().at_boundary(1, victim, ChurnAction::Crash);
        s.net_mut().set_churn(Some(tl));
        let r = execute_with_rebuild_reexecution(&SensJoin::default(), &mut s, &cq, 5).unwrap();
        assert_eq!(r.attempts, 2, "one churned run, one clean re-execution");
        assert!(!r.outcome.churned);
        assert!(r.outcome.complete);
        assert!(r.outcome.result.same_result(&reference.result));
        // The strategy override was restored.
        assert_eq!(s.net().repair_strategy(), RepairStrategy::Localized);
        // The rebuild flood and the wasted attempt were charged.
        let clean = SensJoin::default().execute(&mut twin, &cq).unwrap();
        assert!(r.outcome.stats.total_cost_bytes() > clean.stats.total_cost_bytes());
    }

    /// Regression for the energy subsystem: retry wrappers merge statistics
    /// out-of-band (`mem::take` + `merge`), but battery debits happen at
    /// record time on the persistent network — so every µJ of every
    /// abandoned attempt must land on the batteries exactly once, and the
    /// bank's cumulative debit must equal the merged ledger sum.
    #[test]
    fn reexecution_debits_batteries_exactly_once() {
        use sensjoin_sim::{BatteryBank, ChurnAction, ChurnTimeline};
        let pin = |bank_total: f64, stats_total: f64, label: &str| {
            let drift = (bank_total - stats_total).abs();
            assert!(
                drift <= 1e-9 * stats_total.max(1.0),
                "{label}: batteries metered {bank_total} µJ, ledger charged {stats_total} µJ"
            );
        };

        // Lossy-channel re-execution: several abandoned attempts, all on
        // one persistent network.
        let mut s = SensorNetworkBuilder::new()
            .area(Area::new(250.0, 250.0))
            .placement(Placement::UniformRandom { n: 40 })
            .seed(11)
            .build()
            .unwrap();
        let cq = query(&s);
        let bank = BatteryBank::uniform(s.len(), s.base(), 1.0e15);
        s.net_mut().set_battery(Some(bank));
        s.net_mut()
            .set_channel(Some(sensjoin_sim::Channel::bernoulli(0.08, 3)));
        let r = execute_with_reexecution(&SensJoin::default(), &mut s, &cq, 40).unwrap();
        assert!(r.attempts > 1, "0.08 loss never forced a retry — vacuous");
        pin(
            s.net().battery().unwrap().total_debited_uj(),
            r.outcome.stats.total_energy_uj(),
            "lossy re-execution",
        );

        // Churn-triggered full-rebuild re-execution: the wasted attempt,
        // the repair flood and the clean rerun all debit exactly once.
        let mut s = snet(5);
        let cq = query(&s);
        let victim = s.net().routing().children(s.net().base())[0];
        let tl = ChurnTimeline::new().at_boundary(1, victim, ChurnAction::Crash);
        s.net_mut().set_churn(Some(tl));
        let bank = BatteryBank::uniform(s.len(), s.base(), 1.0e15);
        s.net_mut().set_battery(Some(bank));
        let r = execute_with_rebuild_reexecution(&SensJoin::default(), &mut s, &cq, 5).unwrap();
        assert_eq!(r.attempts, 2, "one churned run, one clean re-execution");
        pin(
            s.net().battery().unwrap().total_debited_uj(),
            r.outcome.stats.total_energy_uj(),
            "rebuild re-execution",
        );
    }

    #[test]
    fn random_failures_still_exact() {
        for seed in [3, 4] {
            let mut s = snet(seed);
            let cq = query(&s);
            let reference = ExternalJoin.execute(&mut s, &cq).unwrap();
            let failures = LinkFailures::sample(s.net().topology(), 0.05, seed.wrapping_mul(77));
            let r = execute_with_recovery(&SensJoin::default(), &mut s, &cq, &failures).unwrap();
            // With 5% of links down the giant component usually survives;
            // only compare when nothing was partitioned away.
            if s.net().routing().unreachable().is_empty() {
                assert!(
                    r.outcome.result.same_result(&reference.result),
                    "seed {seed}"
                );
            }
        }
    }
}
