//! Wire representations of join-attribute tuple sets, and per-node query
//! data shared by every join method.

use crate::config::Representation;
use crate::engine::JoinSpace;
use crate::snetwork::SensorNetwork;
use sensjoin_compress::{Bwt, Codec, Lz77Huffman};
use sensjoin_quadtree::{encode, PointSet, RelFlags, TreeShape};
use sensjoin_query::CompiledQuery;
use sensjoin_relation::NodeId;
use std::collections::BTreeSet;

/// A join-attribute tuple set in flight (the paper's
/// `Join_Attr_Structure`).
///
/// The semantic content is always the [`PointSet`]; `raw` additionally
/// carries the naive byte serialization (quantized coordinates + flags, in
/// contribution order, duplicates preserved) that the [`Representation::Raw`]
/// and compressed variants of §VI-B transmit.
#[derive(Debug, Clone, Default)]
pub struct JoinAttrMsg {
    /// Deduplicated cells with relation flags.
    pub set: PointSet,
    /// Naive serialization (only maintained for non-quadtree variants).
    pub raw: Vec<u8>,
}

impl JoinAttrMsg {
    /// An empty message.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another message into this one (paper `Union`).
    pub fn merge(&mut self, other: &JoinAttrMsg) {
        self.set = self.set.union(&other.set);
        self.raw.extend_from_slice(&other.raw);
    }

    /// Inserts one node's point (paper `Insert`): the Z-number with its
    /// relation flags, plus the raw serialization of its coordinates.
    pub fn insert(&mut self, z: u64, flags: RelFlags, coords: &[u64]) {
        self.set.insert(z, flags);
        for &c in coords {
            self.raw.extend_from_slice(&(c as u16).to_le_bytes());
        }
        self.raw.push(flags.0);
    }

    /// Size on the wire under `repr`, in bytes.
    pub fn wire_size(&self, repr: Representation, shape: &TreeShape) -> usize {
        match repr {
            Representation::Quadtree => encode(&self.set, shape).wire_size(),
            Representation::Raw => self.raw.len(),
            Representation::Zlib => Lz77Huffman.compress(&self.raw).len(),
            Representation::Bzip2 => Bwt.compress(&self.raw).len(),
        }
    }

    /// Serializes a point set into the raw format (used for filter messages
    /// under non-quadtree representations).
    pub fn raw_of_set(set: &PointSet, space: &JoinSpace) -> Vec<u8> {
        let mut out = Vec::with_capacity(set.len() * (space.zspace().arity() * 2 + 1));
        for p in set.iter() {
            for c in space.zspace().decode(p.z) {
                out.extend_from_slice(&(c as u16).to_le_bytes());
            }
            out.push(p.flags.0);
        }
        out
    }

    /// Wire size of a filter under `repr`.
    pub fn filter_wire_size(set: &PointSet, repr: Representation, space: &JoinSpace) -> usize {
        match repr {
            Representation::Quadtree => encode(set, space.shape()).wire_size(),
            Representation::Raw => Self::raw_of_set(set, space).len(),
            Representation::Zlib => Lz77Huffman.compress(&Self::raw_of_set(set, space)).len(),
            Representation::Bzip2 => Bwt.compress(&Self::raw_of_set(set, space)).len(),
        }
    }
}

/// A complete tuple in flight: the origin node's master-aligned values plus
/// everything the protocols need to route and filter it.
#[derive(Debug, Clone)]
pub struct FullRec {
    /// Producing node.
    pub origin: NodeId,
    /// Relation-membership flags (after local predicates).
    pub flags: RelFlags,
    /// Master-schema-aligned values.
    pub values: Vec<f64>,
    /// Wire size of the projected tuple in bytes.
    pub bytes: usize,
    /// Quantized join-attribute cell (Z-number in the query's join space).
    pub z: u64,
    /// The quantized per-dimension coordinates (for raw serialization).
    pub coords: Vec<u64>,
}

/// Everything a node knows locally about the query: computed once per
/// execution and shared by SENS-Join and the external join (both apply the
/// same early selection and projection).
#[derive(Debug, Clone)]
pub struct NodeData {
    /// The node's tuple, if it belongs to at least one relation and passes
    /// that relation's local predicates.
    pub rec: Option<FullRec>,
}

/// Computes [`NodeData`] for every node.
pub fn collect_node_data(
    snet: &SensorNetwork,
    query: &CompiledQuery,
    space: &JoinSpace,
) -> Vec<NodeData> {
    let master = snet.master_schema().clone();
    (0..snet.len() as u32)
        .map(NodeId)
        .map(|node| {
            let per_rel: Vec<Option<Vec<f64>>> = (0..query.num_relations())
                .map(|r| {
                    let schema = query.schema(r);
                    if snet.belongs(node, schema.name()) {
                        let v = snet.values_for(node, schema);
                        query.eval_local(r, &v).then_some(v)
                    } else {
                        None
                    }
                })
                .collect();
            let mut flags = 0u8;
            for (r, v) in per_rel.iter().enumerate() {
                if v.is_some() {
                    flags |= space.flag(r).0;
                }
            }
            if flags == 0 {
                return NodeData { rec: None };
            }
            // Wire size: the union of referenced attributes across member
            // relations (deduplicated by master attribute name — the paper's
            // "the join attributes usually overlap ... we avoid sending
            // attribute values redundantly" applied to complete tuples).
            let mut names: BTreeSet<&str> = BTreeSet::new();
            for (r, v) in per_rel.iter().enumerate() {
                if v.is_some() {
                    for &a in query.referenced_attrs(r) {
                        names.insert(query.schema(r).attrs()[a].name());
                    }
                }
            }
            let bytes: usize = names
                .iter()
                .map(|n| {
                    let i = master.index_of(n).expect("validated attribute");
                    master.attrs()[i].wire_size()
                })
                .sum();
            let dim_values = space.dim_values(query, &per_rel);
            let coords: Vec<u64> = space
                .zspace()
                .dims()
                .iter()
                .zip(&dim_values)
                .map(|(d, v)| v.map_or(0, |v| d.coordinate(v)))
                .collect();
            let z = space.zspace().encode_cells(&coords);
            NodeData {
                rec: Some(FullRec {
                    origin: node,
                    flags: RelFlags(flags),
                    values: snet.readings(node).to_vec(),
                    bytes,
                    z,
                    coords,
                }),
            }
        })
        .collect()
}

/// Projects a master-aligned row onto a relation schema (by name).
pub fn project_to_schema(
    master: &sensjoin_relation::Schema,
    schema: &sensjoin_relation::Schema,
    values: &[f64],
) -> Vec<f64> {
    schema
        .attrs()
        .iter()
        .map(|a| values[master.index_of(a.name()).expect("validated attribute")])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SensJoinConfig;
    use crate::snetwork::SensorNetworkBuilder;
    use sensjoin_field::{Area, Placement};
    use sensjoin_query::parse;

    fn setup() -> (SensorNetwork, CompiledQuery, JoinSpace) {
        let snet = SensorNetworkBuilder::new()
            .area(Area::new(250.0, 250.0))
            .placement(Placement::UniformRandom { n: 60 })
            .seed(3)
            .build()
            .unwrap();
        let q = parse(
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.2 ONCE",
        )
        .unwrap();
        let cq = snet.compile(&q).unwrap();
        let space = JoinSpace::build(&cq, &snet, &SensJoinConfig::default());
        (snet, cq, space)
    }

    #[test]
    fn node_data_sizes() {
        let (snet, cq, space) = setup();
        let data = collect_node_data(&snet, &cq, &space);
        assert_eq!(data.len(), snet.len());
        for d in &data {
            let rec = d.rec.as_ref().expect("homogeneous: every node contributes");
            // Referenced: temp (join) + hum (select) = 2 attrs x 2 bytes.
            assert_eq!(rec.bytes, 4);
            assert_eq!(rec.flags, RelFlags::BOTH); // self-join membership
            assert_eq!(rec.coords.len(), space.zspace().arity());
        }
    }

    #[test]
    fn msg_sizes_by_representation() {
        let (snet, cq, space) = setup();
        let data = collect_node_data(&snet, &cq, &space);
        let mut msg = JoinAttrMsg::new();
        for d in &data {
            let rec = d.rec.as_ref().unwrap();
            msg.insert(rec.z, rec.flags, &rec.coords);
        }
        let quad = msg.wire_size(Representation::Quadtree, space.shape());
        let raw = msg.wire_size(Representation::Raw, space.shape());
        let zlib = msg.wire_size(Representation::Zlib, space.shape());
        // Raw: 60 nodes x (1 dim x 2 bytes + 1 flag byte).
        assert_eq!(raw, 60 * 3);
        // The quadtree representation is far smaller on correlated data.
        assert!(quad < raw, "quadtree {quad} !< raw {raw}");
        assert!(zlib > 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = JoinAttrMsg::new();
        a.insert(5, RelFlags::A, &[5]);
        let mut b = JoinAttrMsg::new();
        b.insert(5, RelFlags::B, &[5]);
        b.insert(9, RelFlags::B, &[9]);
        a.merge(&b);
        assert_eq!(a.set.len(), 2);
        assert_eq!(a.set.flags_of(5), Some(RelFlags::BOTH));
        // Raw stream keeps duplicates (naive baseline semantics).
        assert_eq!(a.raw.len(), 3 * 3);
    }

    #[test]
    fn filter_serialization_roundtrips_size() {
        let (_, _, space) = setup();
        let mut set = PointSet::new();
        set.insert(3, RelFlags::A);
        set.insert(7, RelFlags::BOTH);
        let raw = JoinAttrMsg::raw_of_set(&set, &space);
        assert_eq!(raw.len(), 2 * (space.zspace().arity() * 2 + 1));
        assert!(JoinAttrMsg::filter_wire_size(&set, Representation::Quadtree, &space) > 0);
    }
}
