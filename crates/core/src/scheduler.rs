//! Multi-query scheduling: N concurrent queries over one network, sharing a
//! single Join-Attribute-Collection wave per epoch.
//!
//! The SENS-Join cost argument (paper §IV) is per-query; a base station
//! serving many standing queries would pay the expensive collection phase
//! once *per query* per sample period. [`QueryGroup`] amortizes it: every
//! registered query's join-attribute projection is collected in **one**
//! shared up-wave (per-link payloads are merged where queries' quantization
//! spaces coincide), the base station fans the shared cells out into one
//! persistent [`FilterEngine`] per query, and filter dissemination and the
//! final up-wave likewise travel as one merged message per link.
//!
//! Guarantees (enforced by the in-module tests and `tests/multi_query.rs`):
//!
//! * **Per-query bit-identity** — every due query's result (and contributor
//!   set) equals a solo [`SensJoin`](crate::SensJoin) execution over the
//!   same snapshot. Collection keeps per-query cell sets exact (the merge
//!   saves wire bytes, not information), and filter pruning applies each
//!   query's own subtree sets, so no query observes another's registration.
//! * **Amortization** — when queries share a quantization space, the shared
//!   collection's bytes approach the *maximum* (not the sum) of the solo
//!   collections: one union encoding per link plus a small per-query
//!   annotation overhead (a presence bitmap and one byte per diverging
//!   cell).
//!
//! Join-attribute payloads always use the compact quadtree representation
//! (the §VI-B representation knob only varies the single-query collection
//! experiment).

use crate::cells::NodeCells;
use crate::config::{Representation, SensJoinConfig};
use crate::engine::{exact_join, JoinSpace};
use crate::incremental::{CellCounts, FilterEngine};
use crate::outcome::{JoinResult, ProtocolError};
use crate::repr::{collect_node_data, project_to_schema, JoinAttrMsg, NodeData};
use crate::snetwork::SensorNetwork;
use crate::wave::{down_wave_sync, up_wave_sync, DownArrival};
use sensjoin_field::FieldSpec;
use sensjoin_quadtree::PointSet;
use sensjoin_query::CompiledQuery;
use sensjoin_relation::NodeId;
use sensjoin_sim::{NetworkStats, Scheduler, Time};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared Join-Attribute-Collection phase label (one up-wave for all due
/// queries).
pub const PHASE_SHARED_COLLECTION: &str = "1-shared-collection";
/// Merged Filter-Dissemination phase label (one down-wave, per-link merged
/// per-query filters).
pub const PHASE_SHARED_FILTER: &str = "2-shared-filter-dissemination";
/// Shared Final-Result phase label (each tuple ships once with a query
/// membership mask).
pub const PHASE_SHARED_FINAL: &str = "3-shared-final-result";

/// Stable handle of a query registered with a [`QueryGroup`]; remains valid
/// across epochs and across other queries' removal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub usize);

/// One registered query and its persistent base-station state.
struct Registered {
    query: CompiledQuery,
    space: JoinSpace,
    /// Persistent pre-join filter engine, delta-fed across epochs.
    engine: FilterEngine,
    /// The previous epoch's collected cell population (delta baseline).
    population: PointSet,
    /// Runs every `every` epochs (1 = every epoch).
    every: u64,
    /// Epoch of registration; the query is due at `offset`, `offset +
    /// every`, ...
    offset: u64,
    alive: bool,
}

/// Per-epoch result of one query in the group.
#[derive(Debug, Clone)]
pub struct GroupOutcome {
    /// Which registered query this is.
    pub id: QueryId,
    /// The query answer — bit-identical (as a multiset of rows) to a solo
    /// `SensJoin` execution over the same snapshot.
    pub result: JoinResult,
    /// Nodes whose tuples appear in at least one result row.
    pub contributors: BTreeSet<NodeId>,
}

/// What one query *would* have paid per phase had it shipped its payloads
/// unshared over the same routing tree and treecut decisions — the
/// denominator of the amortization curve. Like the shared statistics,
/// every phase is charged per *link*: a payload is paid again on each hop
/// it is forwarded toward (or from) the base station.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoloCost {
    /// Which registered query this is.
    pub id: QueryId,
    /// Unshared Join-Attribute-Collection bytes.
    pub collection_bytes: u64,
    /// Unshared Filter-Dissemination bytes.
    pub filter_bytes: u64,
    /// Unshared Final-Result bytes.
    pub final_bytes: u64,
}

impl SoloCost {
    /// Total unshared bytes across the three phases.
    pub fn total_bytes(&self) -> u64 {
        self.collection_bytes + self.filter_bytes + self.final_bytes
    }
}

/// Maximum number of times an epoch is (re-)executed when data loss
/// survives the ARQ budget (first attempt included).
pub const MAX_EPOCH_ATTEMPTS: u32 = 3;

/// Everything one epoch of a [`QueryGroup`] produces.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// The epoch index this report covers (0-based).
    pub epoch: u64,
    /// Per due query: result and contributors (non-due queries are absent).
    pub outcomes: Vec<GroupOutcome>,
    /// Shared-phase transmission statistics — phases
    /// [`PHASE_SHARED_COLLECTION`], [`PHASE_SHARED_FILTER`],
    /// [`PHASE_SHARED_FINAL`].
    pub stats: NetworkStats,
    /// End-to-end epoch latency (pipelined model), µs.
    pub latency_us: Time,
    /// End-to-end epoch latency (TAG-style slotted model), µs.
    pub latency_slotted_us: Time,
    /// Per due query: the unshared byte cost of the same messages.
    pub solo_equivalent: Vec<SoloCost>,
    /// Whether every due query's result is guaranteed exact. `false` only
    /// when data loss survived both the ARQ budget and the epoch retry loop
    /// (see [`MAX_EPOCH_ATTEMPTS`]); always `true` on a lossless network.
    /// Under node churn, `true` means every due query's result is exact over
    /// the population alive and attached at the epoch boundary.
    pub complete: bool,
    /// Whether any churn event (crash or revival) was applied at this
    /// epoch's boundary.
    pub churned: bool,
}

impl EpochReport {
    /// Shared collection bytes actually transmitted this epoch.
    pub fn shared_collection_bytes(&self) -> u64 {
        self.stats.phase(PHASE_SHARED_COLLECTION).tx_bytes
    }

    /// Shared filter-dissemination bytes actually transmitted this epoch.
    pub fn shared_filter_bytes(&self) -> u64 {
        self.stats.phase(PHASE_SHARED_FILTER).tx_bytes
    }

    /// Shared final-result bytes actually transmitted this epoch.
    pub fn shared_final_bytes(&self) -> u64 {
        self.stats.phase(PHASE_SHARED_FINAL).tx_bytes
    }

    /// Sum of the unshared (solo-equivalent) bytes across due queries.
    pub fn solo_equivalent_total(&self) -> u64 {
        self.solo_equivalent.iter().map(|s| s.total_bytes()).sum()
    }
}

/// Hard upper bound on concurrently *live* queries per [`QueryGroup`]:
/// per-query membership in merged wire messages is tracked with 64-bit
/// masks (one bit per registered slot), so a group can never serve more.
/// Admission layers must reject — or open another group — beyond this.
pub const MAX_GROUP_QUERIES: usize = 64;

/// Admission failure: the group already holds [`MAX_GROUP_QUERIES`] live
/// queries. Returned by [`QueryGroup::try_register`] and
/// [`QueryGroup::try_register_plan`]; a serving layer maps it to a
/// structured rejection or bin-packs the query into another group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupFull;

impl std::fmt::Display for GroupFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "query group is at its {MAX_GROUP_QUERIES}-query capacity"
        )
    }
}

impl std::error::Error for GroupFull {}

/// The immutable, shareable part of a registration: the quantization space
/// derived from the network snapshot and the cold (empty-population)
/// [`FilterEngine`] classified from the query's predicate graph.
///
/// [`QueryPlan::build`] is a *pure function* of `(query, snapshot, config)`
/// — it reads only the compiled query, the network's current readings (the
/// attribute-bounds scan is the expensive part of admission) and the
/// protocol parameters. That purity is what makes plan caching sound: a
/// cached plan cloned into [`QueryGroup::try_register_plan`] is
/// byte-identical to the plan a fresh [`QueryGroup::try_register`] would
/// build from the same inputs, so per-tenant results cannot differ. See
/// [`PlanKey`] for the cache key that captures exactly those inputs.
#[derive(Clone)]
pub struct QueryPlan {
    space: JoinSpace,
    engine: FilterEngine,
}

impl QueryPlan {
    /// Builds the registration plan for `query` over the network's current
    /// snapshot.
    pub fn build(query: &CompiledQuery, snet: &SensorNetwork, config: &SensJoinConfig) -> Self {
        let space = JoinSpace::build(query, snet, config);
        let engine = FilterEngine::new(query, &space);
        Self { space, engine }
    }

    /// The quantization space the plan was built over.
    pub fn space(&self) -> &JoinSpace {
        &self.space
    }
}

/// Cache key under which a [`QueryPlan`] may be shared between tenants.
///
/// Soundness: [`QueryPlan::build`] is a pure function of the compiled
/// query, the network snapshot it scans for attribute bounds, and the
/// protocol config — and the key captures each of those inputs exactly:
///
/// * `sql` — the query text with runs of ASCII whitespace collapsed. The
///   dialect has no whitespace-sensitive tokens (no string literals), so
///   equal canonical texts tokenize, parse, and compile identically
///   against one deployment's fixed catalog.
/// * `deployment` / `snapshot` — which network, and a version its owner
///   bumps on every readings mutation (e.g. per resample), so plans built
///   over different snapshots never unify.
/// * `config` — the `Debug` rendering of [`SensJoinConfig`], which is
///   deterministic (the quantization table is an ordered `Vec`, not a
///   hash map).
///
/// Two submissions with equal keys therefore build byte-identical plans,
/// and handing one tenant a clone of another's cached [`QueryPlan`] cannot
/// change its results.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanKey {
    deployment: u64,
    snapshot: u64,
    sql: String,
    config: String,
}

impl PlanKey {
    /// The key for `sql` against deployment `deployment` at readings
    /// version `snapshot` under `config`.
    pub fn new(deployment: u64, snapshot: u64, sql: &str, config: &SensJoinConfig) -> Self {
        Self::with_config_sig(deployment, snapshot, sql, Self::config_sig(config))
    }

    /// The deterministic rendering of `config` that [`PlanKey::new`]
    /// keys on. It is constant for a server's lifetime, so admission
    /// paths precompute it once instead of re-rendering per submission.
    pub fn config_sig(config: &SensJoinConfig) -> String {
        format!("{config:?}")
    }

    /// [`PlanKey::new`] with the config rendering precomputed (see
    /// [`PlanKey::config_sig`]).
    pub fn with_config_sig(deployment: u64, snapshot: u64, sql: &str, config_sig: String) -> Self {
        let canonical = sql.split_ascii_whitespace().collect::<Vec<_>>().join(" ");
        Self {
            deployment,
            snapshot,
            sql: canonical,
            config: config_sig,
        }
    }

    /// Decomposes the key for checkpointing: `(deployment, snapshot,
    /// canonical sql)`. The config component is not exposed — a restoring
    /// server recomputes it from its own config, which must equal the one
    /// the key was built under.
    pub fn parts(&self) -> (u64, u64, &str) {
        (self.deployment, self.snapshot, &self.sql)
    }
}

/// A multi-query scheduler over one network: registered queries share each
/// epoch's Join-Attribute-Collection and ride merged per-link filter and
/// final-result messages, while the base station maintains one persistent
/// [`FilterEngine`] per query.
///
/// # Example
///
/// ```
/// use sensjoin_core::{QueryGroup, SensorNetworkBuilder, SensJoinConfig};
/// use sensjoin_field::{Area, Placement};
/// use sensjoin_query::parse;
///
/// let mut snet = SensorNetworkBuilder::new()
///     .area(Area::new(300.0, 300.0))
///     .placement(Placement::UniformRandom { n: 80 })
///     .seed(9)
///     .build()
///     .unwrap();
/// let mut group = QueryGroup::new(SensJoinConfig::default());
/// let sql = |c: f64| {
///     format!(
///         "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
///          WHERE A.temp - B.temp > {c} SAMPLE PERIOD 30"
///     )
/// };
/// let q1 = snet.compile(&parse(&sql(1.0)).unwrap()).unwrap();
/// let q2 = snet.compile(&parse(&sql(2.0)).unwrap()).unwrap();
/// let a = group.register(&snet, q1, 1);
/// let _b = group.register(&snet, q2, 2); // staggered: every other epoch
/// let report = group.execute_epoch(&mut snet).unwrap();
/// assert_eq!(report.outcomes.len(), 2); // both due at their first epoch
/// let report = group.execute_epoch(&mut snet).unwrap();
/// assert_eq!(report.outcomes.len(), 1); // only the every-epoch query
/// assert_eq!(report.outcomes[0].id, a);
/// ```
pub struct QueryGroup {
    config: SensJoinConfig,
    queries: Vec<Registered>,
    epoch: u64,
    /// Previous epoch's latency — the simulated time that elapsed since the
    /// last churn boundary (epochs are the group's churn boundaries).
    last_latency_us: Time,
}

impl QueryGroup {
    /// An empty group with the given protocol parameters.
    pub fn new(config: SensJoinConfig) -> Self {
        Self {
            config,
            queries: Vec::new(),
            epoch: 0,
            last_latency_us: 0,
        }
    }

    /// Registers a query: builds its quantization space over `snet` and a
    /// cold [`FilterEngine`]. The query is first due at the *next* epoch
    /// and every `every` epochs after (`every` is clamped to ≥ 1).
    ///
    /// The quantization space is fixed at registration time — the
    /// persistent engine's delta maintenance requires it — so as readings
    /// drift, cell boundaries stay where they were when the query was
    /// installed. That is safe (boundary cells are unbounded, so clamped
    /// values only widen the conservative pre-join) and results stay exact,
    /// but wire sizes can differ from a one-shot [`crate::SensJoin`] run,
    /// which re-derives its space from the current snapshot.
    ///
    /// Registration is a pure base-station operation: no network traffic,
    /// and other queries' collection state (their engines and populations)
    /// is untouched — the shared collection simply starts including the new
    /// query's attribute projection from its next due epoch on.
    pub fn register(&mut self, snet: &SensorNetwork, query: CompiledQuery, every: u64) -> QueryId {
        let plan = QueryPlan::build(&query, snet, &self.config);
        self.push_plan(query, plan, every)
    }

    /// Fallible [`QueryGroup::register`]: rejects with [`GroupFull`] once
    /// the group holds [`MAX_GROUP_QUERIES`] live queries, instead of
    /// letting the epoch's membership-mask assertion fire later. This is
    /// the admission hook serving layers use.
    pub fn try_register(
        &mut self,
        snet: &SensorNetwork,
        query: CompiledQuery,
        every: u64,
    ) -> Result<QueryId, GroupFull> {
        if self.len() >= MAX_GROUP_QUERIES {
            return Err(GroupFull);
        }
        let plan = QueryPlan::build(&query, snet, &self.config);
        Ok(self.push_plan(query, plan, every))
    }

    /// Registers with a pre-built — possibly cached and cloned —
    /// [`QueryPlan`] instead of deriving one from the network: the
    /// admission fast path that lets N tenants asking the same template
    /// pay the attribute-bounds scan once. The caller owes key discipline
    /// ([`PlanKey`]): the plan must have been built for this query text,
    /// this group's config, and the snapshot the registration targets.
    ///
    /// ```
    /// use sensjoin_core::{PlanKey, QueryGroup, QueryPlan};
    /// use sensjoin_core::{SensJoinConfig, SensorNetworkBuilder};
    /// use sensjoin_field::{Area, Placement};
    /// use sensjoin_query::parse;
    /// use std::collections::HashMap;
    ///
    /// let snet = SensorNetworkBuilder::new()
    ///     .area(Area::new(200.0, 200.0))
    ///     .placement(Placement::UniformRandom { n: 40 })
    ///     .seed(3)
    ///     .build()
    ///     .unwrap();
    /// let config = SensJoinConfig::default();
    /// let sql = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
    ///            WHERE A.temp - B.temp > 4.0 SAMPLE PERIOD 30";
    ///
    /// // Two tenants, same template: one plan build, one cache hit.
    /// let mut cache: HashMap<PlanKey, QueryPlan> = HashMap::new();
    /// let mut group = QueryGroup::new(config.clone());
    /// for _tenant in 0..2 {
    ///     let key = PlanKey::new(0, 0, sql, &config);
    ///     let plan = cache
    ///         .entry(key)
    ///         .or_insert_with(|| {
    ///             let cq = snet.compile(&parse(sql).unwrap()).unwrap();
    ///             QueryPlan::build(&cq, &snet, &config)
    ///         })
    ///         .clone();
    ///     let cq = snet.compile(&parse(sql).unwrap()).unwrap();
    ///     group.try_register_plan(cq, plan, 1).unwrap();
    /// }
    /// assert_eq!(group.len(), 2);
    /// ```
    pub fn try_register_plan(
        &mut self,
        query: CompiledQuery,
        plan: QueryPlan,
        every: u64,
    ) -> Result<QueryId, GroupFull> {
        if self.len() >= MAX_GROUP_QUERIES {
            return Err(GroupFull);
        }
        Ok(self.push_plan(query, plan, every))
    }

    fn push_plan(&mut self, query: CompiledQuery, plan: QueryPlan, every: u64) -> QueryId {
        self.queries.push(Registered {
            query,
            space: plan.space,
            engine: plan.engine,
            population: PointSet::new(),
            every: every.max(1),
            offset: self.epoch,
            alive: true,
        });
        QueryId(self.queries.len() - 1)
    }

    /// Serializes the group's full mutable state: epoch position and, per
    /// registered slot (dead ones included, to keep [`QueryId`]s stable),
    /// schedule, quantization space, filter-engine population counts and
    /// delta baseline. Compiled queries are *not* serialized — the resuming
    /// process recompiles each slot's SQL deterministically and passes them
    /// to [`QueryGroup::restore_state`] in slot order.
    pub fn encode_state(&self, w: &mut crate::persist::Writer) {
        use crate::persist;
        w.put_u64(self.epoch);
        w.put_u64(self.last_latency_us);
        w.put_usize(self.queries.len());
        for reg in &self.queries {
            w.put_u64(reg.every);
            w.put_u64(reg.offset);
            w.put_bool(reg.alive);
            persist::put_join_space(w, &reg.space);
            persist::put_cell_counts(w, reg.engine.counts());
            persist::put_point_set(w, &reg.population);
        }
    }

    /// Rebuilds a group from [`QueryGroup::encode_state`] output. `queries`
    /// must hold the recompiled query of every slot, in slot order. Each
    /// slot's filter engine is rebuilt by applying its saved counted
    /// population as one delta from empty — bit-identical to the maintained
    /// engine by the incremental filter's core guarantee.
    pub fn restore_state(
        config: SensJoinConfig,
        queries: Vec<CompiledQuery>,
        r: &mut crate::persist::Reader<'_>,
    ) -> Result<Self, crate::persist::CodecError> {
        use crate::persist::{self, CodecError};
        let epoch = r.get_u64()?;
        let last_latency_us = r.get_u64()?;
        let nslots = r.get_count(8)?;
        if nslots != queries.len() {
            return Err(CodecError::Invariant("slot count != recompiled queries"));
        }
        let mut regs = Vec::new();
        for query in queries {
            let every = r.get_u64()?;
            let offset = r.get_u64()?;
            let alive = r.get_bool()?;
            let space = persist::get_join_space(r)?;
            let counts = persist::get_cell_counts(r)?;
            let mut engine = FilterEngine::new(&query, &space);
            engine.apply_delta(&query, &space, &counts);
            let population = persist::get_point_set(r)?;
            regs.push(Registered {
                query,
                space,
                engine,
                population,
                every: every.max(1),
                offset,
                alive,
            });
        }
        Ok(Self {
            config,
            queries: regs,
            epoch,
            last_latency_us,
        })
    }

    /// Removes a query from the group. Its engine and population are
    /// dropped; nothing else restarts — remaining queries keep their
    /// collection state and schedules. Returns whether the id was live.
    pub fn remove(&mut self, id: QueryId) -> bool {
        match self.queries.get_mut(id.0) {
            Some(r) if r.alive => {
                r.alive = false;
                r.population = PointSet::new();
                true
            }
            _ => false,
        }
    }

    /// Number of live registered queries.
    pub fn len(&self) -> usize {
        self.queries.iter().filter(|r| r.alive).count()
    }

    /// Whether no live query is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The next epoch index [`QueryGroup::execute_epoch`] will run.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether `id` is live and due at the upcoming epoch.
    pub fn due(&self, id: QueryId) -> bool {
        self.queries.get(id.0).is_some_and(|r| {
            r.alive && self.epoch >= r.offset && (self.epoch - r.offset).is_multiple_of(r.every)
        })
    }

    /// Runs one epoch: a single shared collection up-wave for every due
    /// query, per-query filter fan-out at the base station, one merged
    /// filter down-wave, and one shared final up-wave. Returns the
    /// per-query results plus shared and solo-equivalent accounting.
    ///
    /// Queries not due this epoch are untouched (their engines keep their
    /// state for their next due epoch); with no due query the epoch is a
    /// no-op that only advances the epoch counter.
    ///
    /// On a lossy channel, an epoch whose traffic was permanently damaged
    /// (after the ARQ budget) is re-executed in place up to
    /// [`MAX_EPOCH_ATTEMPTS`] times: the base's per-query populations and
    /// engines stay consistent (the retry's presence delta simply tops up
    /// whatever the damaged collection missed), so no state reset is needed.
    /// All attempts' traffic is charged to the returned stats and
    /// solo-equivalent costs.
    pub fn execute_epoch(
        &mut self,
        snet: &mut SensorNetwork,
    ) -> Result<EpochReport, ProtocolError> {
        let epoch = self.epoch;
        self.epoch += 1;
        snet.net_mut().reset_stats();
        // Epochs are the group's churn boundaries: crashes and revivals take
        // effect between epochs, never mid-epoch. No state reconciliation is
        // needed beyond the tree repair the network performs itself — each
        // due query's collection is a full per-epoch presence snapshot, so
        // `presence_delta` below sheds departed nodes' cells and re-adds
        // revived ones as ordinary population transitions.
        let mut churned = false;
        if snet.net().has_churn() {
            let out = snet.net_mut().apply_churn(self.last_latency_us);
            churned = !out.crashed.is_empty() || !out.revived.is_empty();
        }
        let due: Vec<usize> = (0..self.queries.len())
            .filter(|&i| {
                let r = &self.queries[i];
                r.alive && epoch >= r.offset && (epoch - r.offset).is_multiple_of(r.every)
            })
            .collect();
        if due.is_empty() {
            return Ok(EpochReport {
                epoch,
                outcomes: Vec::new(),
                stats: snet.net().stats().clone(),
                latency_us: 0,
                latency_slotted_us: 0,
                solo_equivalent: Vec::new(),
                complete: true,
                churned,
            });
        }
        let mut report = self.epoch_once(snet, epoch, &due)?;
        let mut attempts = 1;
        while !report.complete && attempts < MAX_EPOCH_ATTEMPTS {
            attempts += 1;
            let prev = report;
            report = self.epoch_once(snet, epoch, &due)?;
            // Re-execution is sequential, and a solo execution would have
            // had to retry too: latencies and solo costs accumulate.
            report.latency_us += prev.latency_us;
            report.latency_slotted_us += prev.latency_slotted_us;
            for (a, b) in report.solo_equivalent.iter_mut().zip(&prev.solo_equivalent) {
                a.collection_bytes += b.collection_bytes;
                a.filter_bytes += b.filter_bytes;
                a.final_bytes += b.final_bytes;
            }
        }
        report.stats = snet.net().stats().clone();
        report.churned = churned;
        self.last_latency_us = report.latency_us;
        Ok(report)
    }

    /// One attempt of an epoch over the due slots (shared collection,
    /// fan-out, merged dissemination, shared final).
    fn epoch_once(
        &mut self,
        snet: &mut SensorNetwork,
        epoch: u64,
        due: &[usize],
    ) -> Result<EpochReport, ProtocolError> {
        let due = due.to_vec();
        let k = due.len();
        assert!(k <= 64, "query membership masks are 64-bit");
        let cfg = self.config.clone();
        let base = snet.base();
        let n = snet.len();
        let master = snet.master_schema().clone();
        // Per due slot: the query's own node data (z, flags, bytes in *its*
        // space — identical to what a solo execution would compute).
        let data: Vec<Vec<NodeData>> = due
            .iter()
            .map(|&qi| {
                let r = &self.queries[qi];
                collect_node_data(snet, &r.query, &r.space)
            })
            .collect();
        let spaces: Vec<JoinSpace> = due
            .iter()
            .map(|&qi| self.queries[qi].space.clone())
            .collect();
        let sigs: Vec<SpaceSig> = spaces.iter().map(space_signature).collect();

        // Per slot, per relation: the membership flag and the referenced
        // attributes as master-schema indices, so byte accounting below
        // needs no borrow of the registration table.
        let rel_attrs: Vec<Vec<(sensjoin_quadtree::RelFlags, Vec<usize>)>> = due
            .iter()
            .enumerate()
            .map(|(s, &qi)| {
                let q = &self.queries[qi].query;
                (0..q.num_relations())
                    .map(|r| {
                        let idxs = q
                            .referenced_attrs(r)
                            .iter()
                            .map(|&a| {
                                master
                                    .index_of(q.schema(r).attrs()[a].name())
                                    .expect("validated attribute")
                            })
                            .collect();
                        (spaces[s].flag(r), idxs)
                    })
                    .collect()
            })
            .collect();
        let attr_sizes: Vec<usize> = master.attrs().iter().map(|a| a.wire_size()).collect();

        // Union wire size of a node's tuple across the due slots in `mask`
        // (attributes deduplicated by master name, as in a solo FullRec).
        let union_bytes = |v: usize, mask: u64| -> usize {
            let mut idxs: BTreeSet<usize> = BTreeSet::new();
            for (s, rels) in rel_attrs.iter().enumerate() {
                if mask >> s & 1 == 0 {
                    continue;
                }
                let Some(rec) = &data[s][v].rec else { continue };
                for (flag, attrs) in rels {
                    if rec.flags.intersects(*flag) {
                        idxs.extend(attrs.iter().copied());
                    }
                }
            }
            idxs.iter().map(|&i| attr_sizes[i]).sum()
        };
        let all_mask = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
        // A single query's final tuples need no membership annotation.
        let mask_bytes = if k == 1 { 0 } else { k.div_ceil(8) };

        let mut states: Vec<GState> = (0..n).map(|_| GState::new(k)).collect();
        let mut solo = vec![SoloCost::default(); k];
        for (s, &qi) in due.iter().enumerate() {
            solo[s].id = QueryId(qi);
        }

        // ---- Phase 1: shared Join-Attribute-Collection ----
        // One up-wave; each message carries every due query's cell set (its
        // own space), merged on the wire per space signature. Treecut is
        // decided on the union tuple size, so a subtree cheap for *all*
        // queries together exits the epoch entirely.
        // Solo-equivalent byte accumulators: `u64` addition commutes, so
        // relaxed atomics land on the same totals whichever thread charges
        // a message first.
        let solo_collection: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
        let cells = NodeCells::new(&mut states);
        let (base_msg, rep1) = up_wave_sync(
            snet.net_mut(),
            &|_| true,
            |v, received: Vec<GroupUp>| {
                let vi = v.0 as usize;
                let mut fulls: Vec<NodeId> = Vec::new();
                let mut full_bytes = 0usize;
                let mut attr_msgs: Vec<Vec<PointSet>> = Vec::new();
                for msg in received {
                    match msg {
                        GroupUp::Full { mut nodes, bytes } => {
                            full_bytes += bytes;
                            fulls.append(&mut nodes);
                        }
                        GroupUp::Attrs { sets } => attr_msgs.push(sets),
                    }
                }
                let own = (0..k).any(|s| data[s][vi].rec.is_some());
                let own_bytes = if own { union_bytes(vi, all_mask) } else { 0 };
                let treecut = v != base
                    && cfg.dmax > 0
                    && attr_msgs.is_empty()
                    && full_bytes + own_bytes <= cfg.dmax;
                cells.with(v, |st| {
                    if treecut {
                        if own {
                            fulls.push(v);
                        }
                        st.active = false;
                        GroupUp::Full {
                            nodes: fulls,
                            bytes: full_bytes + own_bytes,
                        }
                    } else {
                        st.active = true;
                        let mut sets: Vec<PointSet> = (0..k).map(|_| PointSet::new()).collect();
                        for m in &attr_msgs {
                            for (s, set) in m.iter().enumerate() {
                                sets[s] = sets[s].union(set);
                            }
                        }
                        // Memorize the *received* per-query subtree sets for
                        // Selective Filter Forwarding, each under its own
                        // memory-cap check — exactly the solo rule per query.
                        if cfg.selective_forwarding {
                            for s in 0..k {
                                let stored = JoinAttrMsg::filter_wire_size(
                                    &sets[s],
                                    Representation::Quadtree,
                                    &spaces[s],
                                );
                                if v == base || stored <= cfg.filter_memory_limit {
                                    st.subtree_atts[s] = Some(sets[s].clone());
                                }
                            }
                        }
                        // Proxy received complete tuples and fold their
                        // per-query projections in.
                        for &u in &fulls {
                            for (s, set) in sets.iter_mut().enumerate() {
                                if let Some(rec) = &data[s][u.0 as usize].rec {
                                    set.insert(rec.z, rec.flags);
                                }
                            }
                        }
                        st.proxy = fulls;
                        if own {
                            st.own = true;
                            for (s, set) in sets.iter_mut().enumerate() {
                                if let Some(rec) = &data[s][vi].rec {
                                    set.insert(rec.z, rec.flags);
                                }
                            }
                        }
                        GroupUp::Attrs { sets }
                    }
                })
            },
            |m| match m {
                GroupUp::Full { bytes, nodes } => {
                    for (s, a) in solo_collection.iter().enumerate() {
                        let sum = nodes
                            .iter()
                            .filter_map(|u| data[s][u.0 as usize].rec.as_ref())
                            .map(|r| r.bytes as u64)
                            .sum::<u64>();
                        a.fetch_add(sum, Ordering::Relaxed);
                    }
                    *bytes
                }
                GroupUp::Attrs { sets } => {
                    for (s, set) in sets.iter().enumerate() {
                        let b = JoinAttrMsg::filter_wire_size(
                            set,
                            Representation::Quadtree,
                            &spaces[s],
                        ) as u64;
                        solo_collection[s].fetch_add(b, Ordering::Relaxed);
                    }
                    let present: Vec<(usize, &PointSet)> = sets.iter().enumerate().collect();
                    merged_wire_size(&present, &sigs, &spaces)
                }
            },
            PHASE_SHARED_COLLECTION,
        );
        drop(cells);
        for (s, b) in solo_collection.into_iter().enumerate() {
            solo[s].collection_bytes = b.into_inner();
        }

        // ---- Collection-damage fallback ----
        // A lost collection message can make an ancestor treecut even though
        // its (damaged) child stayed active, leaving the active set
        // non-root-closed. Re-activate damaged nodes and their ancestor
        // chains so the later waves stay well-formed; re-activated relays
        // hold no data and only forward. The damaged subtrees' tuples are
        // lost to this attempt — the epoch-level retry restores exactness.
        if !rep1.damaged.is_empty() {
            let routing = snet.net().routing();
            for &v in &rep1.damaged {
                states[v.0 as usize].active = true;
                let mut u = v;
                while let Some(p) = routing.parent(u) {
                    if states[p.0 as usize].active {
                        break;
                    }
                    states[p.0 as usize].active = true;
                    u = p;
                }
            }
        }

        // ---- Base station: per-query filter fan-out ----
        // Each due query's collected set is exactly its solo population;
        // feed the presence transition into its persistent engine. The
        // resulting filter is bit-identical to a fresh `prejoin_filter`.
        let collected = match base_msg {
            GroupUp::Attrs { sets } => sets,
            GroupUp::Full { .. } => unreachable!("base never applies Treecut"),
        };
        let mut filters: Vec<PointSet> = Vec::with_capacity(k);
        for (s, &qi) in due.iter().enumerate() {
            let Registered {
                ref query,
                ref space,
                ref mut engine,
                ref mut population,
                ..
            } = self.queries[qi];
            let delta = presence_delta(population, &collected[s]);
            let filter = engine.apply_delta(query, space, &delta).clone();
            *population = collected[s].clone();
            filters.push(filter);
        }

        // ---- Phase 2: merged Filter-Dissemination ----
        let active: Vec<bool> = states.iter().map(|s| s.active).collect();
        let participates = move |v: NodeId| active[v.0 as usize];
        let selective = cfg.selective_forwarding;
        let solo_filter: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
        let cells = NodeCells::new(&mut states);
        let rep2 = down_wave_sync(
            snet.net_mut(),
            &participates,
            |v, arrival: DownArrival<'_, Vec<Option<PointSet>>>| {
                cells.with(v, |st| {
                    let incoming: Vec<Option<&PointSet>> = match arrival {
                        DownArrival::Intact(f) => {
                            st.received = f.clone();
                            f.iter().map(|o| o.as_ref()).collect()
                        }
                        DownArrival::Origin => filters.iter().map(Some).collect(),
                        // The merged filter frame is gone; this node (and its
                        // subtree) has no usable filter view. The epoch-level
                        // retry re-runs the whole epoch, so stop forwarding.
                        DownArrival::Damaged => return None,
                    };
                    let mut out: Vec<Option<PointSet>> = vec![None; k];
                    for (s, inc) in incoming.into_iter().enumerate() {
                        let Some(inc) = inc else { continue };
                        if !selective {
                            out[s] = Some(inc.clone());
                            continue;
                        }
                        match &st.subtree_atts[s] {
                            Some(atts) => {
                                let pruned = inc.intersect(atts);
                                if !pruned.is_empty() {
                                    out[s] = Some(pruned);
                                }
                            }
                            // Over the memory cap: cannot prune, forward as-is.
                            None => out[s] = Some(inc.clone()),
                        }
                    }
                    out.iter().any(|o| o.is_some()).then_some(out)
                })
            },
            |msg| {
                let present: Vec<(usize, &PointSet)> = msg
                    .iter()
                    .enumerate()
                    .filter_map(|(s, o)| o.as_ref().map(|set| (s, set)))
                    .collect();
                for &(s, set) in &present {
                    let b = JoinAttrMsg::filter_wire_size(set, Representation::Quadtree, &spaces[s])
                        as u64;
                    solo_filter[s].fetch_add(b, Ordering::Relaxed);
                }
                merged_wire_size(&present, &sigs, &spaces)
            },
            PHASE_SHARED_FILTER,
        );
        drop(cells);
        for (s, b) in solo_filter.into_iter().enumerate() {
            solo[s].filter_bytes = b.into_inner();
        }

        // ---- Phase 3: shared Final-Result ----
        // A node's tuple ships once, with a mask of the due queries whose
        // received filter it matched; the wire charges the union of the
        // matched queries' referenced attributes plus the mask.
        let active2: Vec<bool> = states.iter().map(|s| s.active).collect();
        let participates3 = move |v: NodeId| active2[v.0 as usize];
        let solo_final: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
        let (final_batch, rep3) = up_wave_sync(
            snet.net_mut(),
            &participates3,
            |v, received: Vec<GBatch>| {
                let vi = v.0 as usize;
                let mut entries: Vec<(NodeId, u64)> = Vec::new();
                let mut bytes = 0usize;
                for mut b in received {
                    bytes += b.bytes;
                    entries.append(&mut b.entries);
                }
                let st = &states[vi];
                let held = st
                    .own
                    .then_some(v)
                    .into_iter()
                    .chain(st.proxy.iter().copied());
                if v == base {
                    // Base-held tuples are already at their destination;
                    // attach them for every due query they belong to.
                    for u in held {
                        let mask = (0..k)
                            .filter(|&s| data[s][u.0 as usize].rec.is_some())
                            .fold(0u64, |m, s| m | 1 << s);
                        if mask != 0 {
                            entries.push((u, mask));
                        }
                    }
                } else {
                    for u in held {
                        let ui = u.0 as usize;
                        let mut mask = 0u64;
                        for (s, d) in data.iter().enumerate() {
                            if let (Some(f), Some(rec)) = (&st.received[s], &d[ui].rec) {
                                if f.contains_matching(rec.z, rec.flags) {
                                    mask |= 1 << s;
                                }
                            }
                        }
                        if mask != 0 {
                            bytes += union_bytes(ui, mask) + mask_bytes;
                            entries.push((u, mask));
                        }
                    }
                }
                GBatch { entries, bytes }
            },
            // Like the collection phase, solo-equivalent bytes are charged
            // per link: an entry's per-query payload is paid again on every
            // hop it is forwarded, exactly as a solo final up-wave would.
            |b| {
                for &(u, mask) in &b.entries {
                    let ui = u.0 as usize;
                    for (s, a) in solo_final.iter().enumerate() {
                        if mask >> s & 1 == 1 {
                            if let Some(rec) = &data[s][ui].rec {
                                a.fetch_add(rec.bytes as u64, Ordering::Relaxed);
                            }
                        }
                    }
                }
                b.bytes
            },
            PHASE_SHARED_FINAL,
        );
        for (s, b) in solo_final.into_iter().enumerate() {
            solo[s].final_bytes = b.into_inner();
        }

        // ---- Per-query exact joins over the shipped tuples ----
        let mut outcomes = Vec::with_capacity(k);
        for (s, &qi) in due.iter().enumerate() {
            let q = &self.queries[qi].query;
            let space = &self.queries[qi].space;
            let tuples_per_rel: Vec<Vec<(NodeId, Vec<f64>)>> = (0..q.num_relations())
                .map(|r| {
                    let flag = space.flag(r);
                    final_batch
                        .entries
                        .iter()
                        .filter(|(_, mask)| mask >> s & 1 == 1)
                        .filter_map(|(u, _)| data[s][u.0 as usize].rec.as_ref())
                        .filter(|rec| rec.flags.intersects(flag))
                        .map(|rec| {
                            (
                                rec.origin,
                                project_to_schema(&master, q.schema(r), &rec.values),
                            )
                        })
                        .collect()
                })
                .collect();
            let computation = exact_join(q, &tuples_per_rel);
            outcomes.push(GroupOutcome {
                id: QueryId(qi),
                result: computation.result,
                contributors: computation.contributors,
            });
        }

        Ok(EpochReport {
            epoch,
            outcomes,
            // Cumulative since `execute_epoch` reset them; the wrapper
            // replaces this with the final (all-attempt) numbers.
            stats: snet.net().stats().clone(),
            latency_us: rep1.timing.then(rep2.timing).then(rep3.timing).pipelined,
            latency_slotted_us: rep1.timing.then(rep2.timing).then(rep3.timing).slotted,
            solo_equivalent: solo,
            // A shared epoch has no per-subtree fallback: any lost frame can
            // starve several queries at once, so damage anywhere voids the
            // attempt and triggers the retry loop above.
            complete: rep1.damaged.is_empty() && rep2.damaged.is_empty() && rep3.damaged.is_empty(),
            // The wrapper stamps the real value after applying boundaries.
            churned: false,
        })
    }
}

/// Message of the shared collection phase: complete tuples below the
/// Treecut threshold (identified by origin — their per-query projections
/// are in the epoch's node-data tables), or every due query's cell set.
enum GroupUp {
    Full { nodes: Vec<NodeId>, bytes: usize },
    Attrs { sets: Vec<PointSet> },
}

/// Final-phase message: shipped tuples with their query-membership masks.
struct GBatch {
    entries: Vec<(NodeId, u64)>,
    bytes: usize,
}

/// Per-node protocol state surviving between the epoch's phases.
struct GState {
    active: bool,
    own: bool,
    proxy: Vec<NodeId>,
    /// Per due slot: received subtree cells (Selective Filter Forwarding).
    subtree_atts: Vec<Option<PointSet>>,
    /// Per due slot: the filter as received during dissemination.
    received: Vec<Option<PointSet>>,
}

impl GState {
    fn new(k: usize) -> Self {
        Self {
            active: false,
            own: false,
            proxy: Vec::new(),
            subtree_atts: vec![None; k],
            received: vec![None; k],
        }
    }
}

/// Two spaces with equal signatures assign every value the same cell
/// coordinates and quadtree shape, so their point sets can share one wire
/// encoding.
type SpaceSig = (Vec<(String, u64, u64, u64)>, u8);

fn space_signature(space: &JoinSpace) -> SpaceSig {
    let dims = space
        .zspace()
        .dims()
        .iter()
        .map(|d| {
            (
                d.name().to_owned(),
                d.min().to_bits(),
                d.max().to_bits(),
                d.resolution().to_bits(),
            )
        })
        .collect();
    (dims, space.shape().flag_bits())
}

/// Wire size of a merged multi-query payload: slots whose spaces share a
/// signature are encoded as one union quadtree plus, per member query, a
/// cell-presence bitmap and one byte per cell whose flags diverge from the
/// union's. When the member sets diverge so much that merging doesn't pay,
/// the sender falls back to concatenating the individual encodings, so a
/// merged message never costs more than its unshared parts — and a
/// single-slot message costs exactly its solo encoding.
fn merged_wire_size(
    present: &[(usize, &PointSet)],
    sigs: &[SpaceSig],
    spaces: &[JoinSpace],
) -> usize {
    let mut total = 0usize;
    let mut used = vec![false; present.len()];
    for i in 0..present.len() {
        if used[i] {
            continue;
        }
        used[i] = true;
        let (slot_i, set_i) = present[i];
        let mut members: Vec<&PointSet> = vec![set_i];
        for j in i + 1..present.len() {
            let (slot_j, set_j) = present[j];
            if !used[j] && sigs[slot_j] == sigs[slot_i] {
                used[j] = true;
                members.push(set_j);
            }
        }
        let space = &spaces[slot_i];
        let separate: usize = members
            .iter()
            .map(|m| JoinAttrMsg::filter_wire_size(m, Representation::Quadtree, space))
            .sum();
        if members.len() == 1 {
            total += separate;
        } else {
            let mut union = PointSet::new();
            for m in &members {
                union = union.union(m);
            }
            let mut merged = JoinAttrMsg::filter_wire_size(&union, Representation::Quadtree, space);
            let bitmap = union.len().div_ceil(8);
            for m in &members {
                let diverging = union
                    .iter()
                    .filter(|p| m.flags_of(p.z).map_or(0, |f| f.0) != p.flags.0)
                    .count();
                merged += bitmap + diverging;
            }
            total += merged.min(separate);
        }
    }
    total
}

/// The counted delta turning the presence set `old` into `new`: +1 for each
/// appearing `(cell, role)` bit, −1 for each disappearing one. Feeding it
/// to a [`FilterEngine`] whose population is `old` moves it to `new`.
fn presence_delta(old: &PointSet, new: &PointSet) -> CellCounts {
    let mut delta = CellCounts::new();
    for p in new.iter() {
        let old_f = old.flags_of(p.z).map_or(0, |f| f.0);
        if old_f != p.flags.0 {
            let e = delta.entry(p.z).or_insert([0; 8]);
            for (b, c) in e.iter_mut().enumerate() {
                *c += i64::from(p.flags.0 >> b & 1) - i64::from(old_f >> b & 1);
            }
        }
    }
    for p in old.iter() {
        if new.flags_of(p.z).is_none() {
            let e = delta.entry(p.z).or_insert([0; 8]);
            for (b, c) in e.iter_mut().enumerate() {
                *c -= i64::from(p.flags.0 >> b & 1);
            }
        }
    }
    delta
}

/// Events a [`GroupRunner`] processes on its discrete-event timeline.
enum GroupEvent {
    /// Run the next epoch.
    Epoch,
    /// Register a query (compiled against the runner's network) with the
    /// given `every` period, just before the epoch at the same timestamp.
    Add(Box<CompiledQuery>, u64),
    /// Remove a query just before the epoch at the same timestamp.
    Remove(QueryId),
}

/// Drives a [`QueryGroup`] over simulated time with the discrete-event
/// [`Scheduler`]: epochs fire every `period_us`, the network resamples
/// before each epoch (`SAMPLE PERIOD` semantics), and query add/remove
/// events can be scheduled mid-run — they take effect at the epoch sharing
/// their timestamp.
///
/// Staggered `EVERY` intervals fall out of the epoch grid: a query
/// registered with `every = j` shares collection waves only on epochs where
/// it coincides with other due queries.
pub struct GroupRunner {
    group: QueryGroup,
    period_us: Time,
    sched: Scheduler<GroupEvent>,
}

impl GroupRunner {
    /// A runner firing one epoch every `period_us` microseconds.
    pub fn new(config: SensJoinConfig, period_us: Time) -> Self {
        Self {
            group: QueryGroup::new(config),
            period_us: period_us.max(1),
            sched: Scheduler::new(),
        }
    }

    /// The underlying group (e.g. to register initial queries).
    pub fn group_mut(&mut self) -> &mut QueryGroup {
        &mut self.group
    }

    /// Immutable access to the underlying group.
    pub fn group(&self) -> &QueryGroup {
        &self.group
    }

    /// Schedules `query` to join the group at epoch `at_epoch` with period
    /// `every`.
    pub fn add_at(&mut self, at_epoch: u64, query: CompiledQuery, every: u64) {
        self.sched.schedule(
            at_epoch * self.period_us,
            GroupEvent::Add(Box::new(query), every),
        );
    }

    /// Schedules `id`'s removal at epoch `at_epoch`.
    pub fn remove_at(&mut self, at_epoch: u64, id: QueryId) {
        self.sched
            .schedule(at_epoch * self.period_us, GroupEvent::Remove(id));
    }

    /// Runs `epochs` epochs, resampling the network's fields before each
    /// one (with `seed + epoch` so rounds drift deterministically), and
    /// returns each epoch's timestamped report. Scheduled add/remove events
    /// apply before the epoch at their timestamp.
    pub fn run(
        &mut self,
        snet: &mut SensorNetwork,
        epochs: u64,
        specs: &[FieldSpec],
        seed: u64,
    ) -> Result<Vec<(Time, EpochReport)>, ProtocolError> {
        let first = self.group.epoch();
        for e in first..first + epochs {
            self.sched.schedule(e * self.period_us, GroupEvent::Epoch);
        }
        let mut reports = Vec::with_capacity(epochs as usize);
        while let Some((t, event)) = self.sched.pop() {
            match event {
                GroupEvent::Add(query, every) => {
                    self.group.register(snet, *query, every);
                }
                GroupEvent::Remove(id) => {
                    self.group.remove(id);
                }
                GroupEvent::Epoch => {
                    // Control events due at this very instant apply before
                    // the epoch, whatever order they were scheduled in.
                    while let Some((tn, GroupEvent::Add(..) | GroupEvent::Remove(..))) =
                        self.sched.peek()
                    {
                        if tn != t {
                            break;
                        }
                        match self.sched.pop().expect("peeked").1 {
                            GroupEvent::Add(query, every) => {
                                self.group.register(snet, *query, every);
                            }
                            GroupEvent::Remove(id) => {
                                self.group.remove(id);
                            }
                            GroupEvent::Epoch => unreachable!("peek said control event"),
                        }
                    }
                    if !specs.is_empty() {
                        snet.resample(specs, seed.wrapping_add(self.group.epoch()));
                    }
                    reports.push((t, self.group.execute_epoch(snet)?));
                }
            }
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensjoin::SensJoin;
    use crate::snetwork::SensorNetworkBuilder;
    use crate::JoinMethod;
    use sensjoin_field::{presets, Area, Placement};
    use sensjoin_query::parse;

    fn snet(n: usize, seed: u64) -> SensorNetwork {
        SensorNetworkBuilder::new()
            .area(Area::new(400.0, 400.0))
            .placement(Placement::UniformRandom { n })
            .seed(seed)
            .build()
            .unwrap()
    }

    fn compiled(s: &SensorNetwork, sql: &str) -> CompiledQuery {
        s.compile(&parse(sql).unwrap()).unwrap()
    }

    fn assert_matches_solo(
        report: &EpochReport,
        snet: &mut SensorNetwork,
        queries: &[&CompiledQuery],
    ) {
        assert_eq!(report.outcomes.len(), queries.len());
        for (out, q) in report.outcomes.iter().zip(queries) {
            let solo = SensJoin::default().execute(snet, q).unwrap();
            assert!(
                solo.result.same_result(&out.result),
                "query {:?}: solo {} rows vs group {} rows",
                out.id,
                solo.result.len(),
                out.result.len()
            );
            assert_eq!(solo.contributors, out.contributors, "query {:?}", out.id);
        }
    }

    #[test]
    fn group_results_bit_identical_to_solo() {
        for seed in [1, 2, 5] {
            let mut s = snet(110, seed);
            let q1 = compiled(
                &s,
                "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                 WHERE A.temp - B.temp > 1.5 SAMPLE PERIOD 30",
            );
            let q2 = compiled(
                &s,
                "SELECT A.pres, B.pres FROM Sensors A, Sensors B \
                 WHERE |A.temp - B.temp| < 0.05 SAMPLE PERIOD 30",
            );
            let q3 = compiled(
                &s,
                "SELECT A.temp FROM Sensors A, Sensors B \
                 WHERE A.hum - B.hum > 8 AND A.temp - B.temp > 1 SAMPLE PERIOD 30",
            );
            let mut group = QueryGroup::new(SensJoinConfig::default());
            for q in [&q1, &q2, &q3] {
                group.register(&s, q.clone(), 1);
            }
            let report = group.execute_epoch(&mut s).unwrap();
            assert_matches_solo(&report, &mut s, &[&q1, &q2, &q3]);
        }
    }

    #[test]
    fn shared_collection_cheaper_than_sum_of_solos() {
        let mut s = snet(150, 3);
        let sqls: Vec<String> = (0..4)
            .map(|i| {
                format!(
                    "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                     WHERE A.temp - B.temp > {} SAMPLE PERIOD 30",
                    1.0 + 0.2 * i as f64
                )
            })
            .collect();
        let queries: Vec<CompiledQuery> = sqls.iter().map(|q| compiled(&s, q)).collect();
        let mut group = QueryGroup::new(SensJoinConfig::default());
        for q in &queries {
            group.register(&s, q.clone(), 1);
        }
        let report = group.execute_epoch(&mut s).unwrap();
        let shared = report.shared_collection_bytes();
        let solo_sum: u64 = queries
            .iter()
            .map(|q| {
                SensJoin::default()
                    .execute(&mut s, q)
                    .unwrap()
                    .stats
                    .phase(crate::sensjoin::PHASE_COLLECTION)
                    .tx_bytes
            })
            .sum();
        assert!(
            shared < solo_sum,
            "shared collection {shared} !< solo sum {solo_sum}"
        );
        // The per-epoch report's own accounting agrees: the solo-equivalent
        // collection bytes of the 4 queries also exceed the shared cost.
        let solo_equiv: u64 = report
            .solo_equivalent
            .iter()
            .map(|c| c.collection_bytes)
            .sum();
        assert!(shared < solo_equiv, "shared {shared} !< equiv {solo_equiv}");
    }

    #[test]
    fn single_query_group_costs_exactly_solo() {
        let mut s = snet(120, 7);
        let q = compiled(
            &s,
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 1.2 SAMPLE PERIOD 30",
        );
        let mut group = QueryGroup::new(SensJoinConfig::default());
        group.register(&s, q.clone(), 1);
        let report = group.execute_epoch(&mut s).unwrap();
        let solo = SensJoin::default().execute(&mut s, &q).unwrap();
        use crate::sensjoin::{PHASE_COLLECTION, PHASE_FILTER, PHASE_FINAL};
        assert_eq!(
            report.shared_collection_bytes(),
            solo.stats.phase(PHASE_COLLECTION).tx_bytes
        );
        assert_eq!(
            report.shared_filter_bytes(),
            solo.stats.phase(PHASE_FILTER).tx_bytes
        );
        assert_eq!(
            report.shared_final_bytes(),
            solo.stats.phase(PHASE_FINAL).tx_bytes
        );
        assert!(solo.result.same_result(&report.outcomes[0].result));
    }

    #[test]
    fn staggered_intervals_share_only_coinciding_epochs() {
        let mut s = snet(90, 11);
        let q1 = compiled(
            &s,
            "SELECT A.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 2 SAMPLE PERIOD 10",
        );
        let q2 = compiled(
            &s,
            "SELECT B.hum FROM Sensors A, Sensors B \
             WHERE A.hum - B.hum > 10 SAMPLE PERIOD 20",
        );
        let mut group = QueryGroup::new(SensJoinConfig::default());
        let a = group.register(&s, q1.clone(), 1);
        let b = group.register(&s, q2.clone(), 2);
        // Epoch 0: both due. Epoch 1: only q1. Epoch 2: both again.
        for (epoch, expect) in [(0u64, vec![a, b]), (1, vec![a]), (2, vec![a, b])] {
            assert_eq!(group.epoch(), epoch);
            let report = group.execute_epoch(&mut s).unwrap();
            let ids: Vec<QueryId> = report.outcomes.iter().map(|o| o.id).collect();
            assert_eq!(ids, expect, "epoch {epoch}");
            let due: Vec<&CompiledQuery> = expect
                .iter()
                .map(|id| if *id == a { &q1 } else { &q2 })
                .collect();
            assert_matches_solo(&report, &mut s, &due);
        }
    }

    #[test]
    fn removal_and_late_registration_between_epochs() {
        let mut s = snet(100, 13);
        let q1 = compiled(
            &s,
            "SELECT A.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 1.5 SAMPLE PERIOD 10",
        );
        let q2 = compiled(
            &s,
            "SELECT A.pres FROM Sensors A, Sensors B \
             WHERE |A.hum - B.hum| < 0.5 SAMPLE PERIOD 10",
        );
        let mut group = QueryGroup::new(SensJoinConfig::default());
        let a = group.register(&s, q1.clone(), 1);
        let r0 = group.execute_epoch(&mut s).unwrap();
        assert_matches_solo(&r0, &mut s, &[&q1]);
        // Add q2 mid-run (readings drift), remove q1: only q2 runs, and the
        // persistent engines survive both changes.
        let b = group.register(&s, q2.clone(), 1);
        assert!(group.remove(a));
        assert!(!group.remove(a), "double removal reports dead id");
        s.resample(&presets::indoor_climate(), 99);
        let r1 = group.execute_epoch(&mut s).unwrap();
        assert_eq!(r1.outcomes.len(), 1);
        assert_eq!(r1.outcomes[0].id, b);
        assert_matches_solo(&r1, &mut s, &[&q2]);
        // Drift again and keep running q2: the engine's delta path stays
        // bit-identical to solo across epochs.
        s.resample(&presets::indoor_climate(), 100);
        let r2 = group.execute_epoch(&mut s).unwrap();
        assert_matches_solo(&r2, &mut s, &[&q2]);
    }

    #[test]
    fn runner_drives_epochs_with_scheduled_changes() {
        let mut s = snet(80, 17);
        let q1 = compiled(
            &s,
            "SELECT A.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 2 SAMPLE PERIOD 10",
        );
        let q2 = compiled(
            &s,
            "SELECT B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 3 SAMPLE PERIOD 10",
        );
        let mut runner = GroupRunner::new(SensJoinConfig::default(), 10_000_000);
        let a = runner.group_mut().register(&s, q1, 1);
        runner.add_at(2, q2, 1);
        runner.remove_at(3, a);
        let reports = runner
            .run(&mut s, 4, &presets::indoor_climate(), 7)
            .unwrap();
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].1.outcomes.len(), 1);
        assert_eq!(reports[1].1.outcomes.len(), 1);
        assert_eq!(reports[2].1.outcomes.len(), 2, "q2 joins at epoch 2");
        assert_eq!(reports[3].1.outcomes.len(), 1, "q1 leaves at epoch 3");
        assert_ne!(reports[3].1.outcomes[0].id, a);
        for (i, (t, r)) in reports.iter().enumerate() {
            assert_eq!(*t, i as Time * 10_000_000);
            assert_eq!(r.epoch, i as u64);
        }
    }

    #[test]
    fn empty_epoch_is_a_noop() {
        let mut s = snet(60, 19);
        let mut group = QueryGroup::new(SensJoinConfig::default());
        let report = group.execute_epoch(&mut s).unwrap();
        assert!(report.outcomes.is_empty());
        assert_eq!(report.stats.total_tx_packets(), 0);
        assert_eq!(group.epoch(), 1);
    }
}
