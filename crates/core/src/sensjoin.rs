//! The SENS-Join protocol (paper §IV).

use crate::cells::NodeCells;
use crate::config::{Representation, SensJoinConfig};
use crate::engine::{exact_join, prejoin_filter, JoinSpace};
use crate::outcome::{JoinOutcome, ProtocolError};
use crate::repr::{collect_node_data, project_to_schema, FullRec, JoinAttrMsg, NodeData};
use crate::snetwork::SensorNetwork;
use crate::wave::{down_wave_sync, up_wave_sync, DownArrival};
use crate::JoinMethod;
use sensjoin_quadtree::PointSet;
use sensjoin_query::CompiledQuery;
use sensjoin_relation::NodeId;
use sensjoin_sim::{ChurnOutcome, Network};

/// Phase labels used in statistics (Fig. 15's cost breakdown).
pub const PHASE_COLLECTION: &str = "1-join-attribute-collection";
/// Filter-dissemination phase label.
pub const PHASE_FILTER: &str = "2-filter-dissemination";
/// Final-result phase label.
pub const PHASE_FINAL: &str = "3-final-result";

/// The SENS-Join method: pre-computation (join-attribute collection +
/// filter dissemination) followed by the final result computation.
///
/// All protocol parameters live in [`SensJoinConfig`]; the default is the
/// paper's configuration (`D_max` = 30 B, 500 B filter memory, quadtree
/// representation, Selective Filter Forwarding on).
#[derive(Debug, Clone, Default)]
pub struct SensJoin {
    /// Protocol parameters.
    pub config: SensJoinConfig,
}

impl SensJoin {
    /// A SENS-Join instance with explicit configuration.
    pub fn with_config(config: SensJoinConfig) -> Self {
        Self { config }
    }

    /// The Fig. 16 variant: no compact representation, raw join-attribute
    /// tuples during the pre-computation.
    pub fn no_quadtree() -> Self {
        Self::with_config(SensJoinConfig {
            representation: Representation::Raw,
            ..SensJoinConfig::default()
        })
    }
}

/// Message of the Join-Attribute-Collection phase: a node forwards either
/// complete tuples (below the Treecut threshold) or a join-attribute
/// structure (paper §IV-B: "Due to Treecut, a node either sends complete
/// tuples or join-attribute tuples").
enum UpMsg {
    Full { tuples: Vec<FullRec>, bytes: usize },
    Attrs(JoinAttrMsg),
}

/// Final-phase message: complete tuples of filtered nodes.
struct Batch {
    tuples: Vec<FullRec>,
    bytes: usize,
}

/// Filter-dissemination message. On a lossless network only the `Filter`
/// variant occurs and it costs exactly the filter's wire size; on a lossy
/// network every filter message carries a one-byte tag so that a
/// conservative `PassThrough` order (ship everything, prune nothing) can be
/// disseminated after collection-phase damage.
#[derive(Clone)]
enum FilterMsg {
    /// The (possibly subtree-pruned) join filter.
    Filter(PointSet),
    /// Conservative fallback: treat every tuple as potentially joining.
    PassThrough,
}

/// Per-node protocol state surviving between phases.
#[derive(Default)]
struct NodeState {
    /// Whether the node stays awake after the collection phase (Treecut
    /// nodes exit the query, Fig. 2 line 18).
    active: bool,
    /// Complete tuples stored on behalf of cut descendants (proxy role).
    proxy: Vec<FullRec>,
    /// The node's own tuple (if it contributes).
    own: Option<FullRec>,
    /// Treecut handoff retained while the lossy channel can still eat the
    /// message: `(own, proxied)` as handed to the parent. Restored into
    /// `own`/`proxy` if the handoff is reported damaged, so the data
    /// survives at exactly one place.
    kept: Option<(Option<FullRec>, Vec<FullRec>)>,
    /// Conservative mode: the node lost protocol state to the channel
    /// (collection handoff or filter copy) and must ship every tuple in the
    /// final phase rather than risk dropping a real result.
    passthrough: bool,
    /// Join-attribute tuples of the subtree, memorized during collection for
    /// Selective Filter Forwarding (`None` if over the memory cap).
    subtree_atts: Option<PointSet>,
    /// The filter as received during dissemination (`None` = pruned away:
    /// nothing in this subtree joins).
    received_filter: Option<PointSet>,
}

/// Reconciles per-node protocol state with the liveness changes of one churn
/// boundary, keeping the surviving population's data exactly once in the
/// network:
///
/// * **Crashed** nodes lose all state. Rows they proxied for *live* origins
///   are re-elected back to those origins (the origin still stores its own
///   reading, so this recovery is radio-free); rows *originating* at a dead
///   node are dropped at every live holder (the death notification the
///   network charges under the repair phase). A crashed node's treecut
///   backup (`kept`) duplicates a handoff that already succeeded — its
///   content lives on at the proxy and must not be restored.
/// * **Revived** nodes reboot with no protocol state. A revived node that
///   participated at query start re-contributes its reading (every other
///   copy was dropped when it died), conservatively in pass-through mode.
/// * **Reattached** nodes hang below ancestors whose memorized subtree
///   synopses do not cover them, so Selective Filter Forwarding could
///   wrongly prune them — any reattached node holding data ships it
///   unconditionally (pass-through).
///
/// Finally the participant set is re-closed towards the root so the final
/// up-wave stays well-formed (re-activated relays hold no data and forward
/// only).
fn reconcile_churn(
    states: &mut [NodeState],
    out: &ChurnOutcome,
    net: &Network,
    data: &[NodeData],
    p0: &[bool],
) {
    let alive = net.alive_mask();
    // A crash wipes the node's copies everywhere even if the node revived
    // at this very boundary: liveness alone is not enough to keep a row —
    // its origin must also not have crashed just now (the revival arm below
    // re-contributes the reading exactly once).
    let mut crashed_now = vec![false; states.len()];
    for &d in &out.crashed {
        crashed_now[d.0 as usize] = true;
    }
    let survives = |r: &FullRec| {
        let o = r.origin.0 as usize;
        alive[o] && !crashed_now[o]
    };
    let mut restore: Vec<FullRec> = Vec::new();
    for &d in &out.crashed {
        let lost = std::mem::take(&mut states[d.0 as usize]);
        restore.extend(lost.proxy);
    }
    if !out.crashed.is_empty() {
        for st in states.iter_mut() {
            st.proxy.retain(&survives);
            if let Some((_, kept_proxy)) = &mut st.kept {
                kept_proxy.retain(&survives);
            }
        }
    }
    for rec in restore {
        let o = rec.origin.0 as usize;
        if !survives(&rec) {
            continue; // the origin died too: the row is genuinely lost
        }
        let st = &mut states[o];
        if st.own.is_none() {
            st.own = Some(rec);
        }
        st.active = true;
        st.passthrough = true;
    }
    for &v in &out.revived {
        let st = &mut states[v.0 as usize];
        *st = NodeState::default();
        if !alive[v.0 as usize] {
            continue; // revived then crashed again at the same boundary
        }
        if p0[v.0 as usize] {
            if let Some(rec) = data[v.0 as usize].rec.clone() {
                st.own = Some(rec);
                st.active = true;
                st.passthrough = true;
            }
        }
    }
    for &v in &out.reattached {
        let st = &mut states[v.0 as usize];
        if st.active || st.own.is_some() || !st.proxy.is_empty() {
            st.active = true;
            st.passthrough = true;
        }
    }
    // Root closure over the repaired tree.
    let routing = net.routing();
    for i in 0..states.len() {
        if !states[i].active {
            continue;
        }
        let mut u = NodeId(i as u32);
        if routing.depth(u).is_none() {
            continue; // orphaned: not part of any wave until reattached
        }
        while let Some(p) = routing.parent(u) {
            if states[p.0 as usize].active {
                break;
            }
            states[p.0 as usize].active = true;
            u = p;
        }
    }
}

impl JoinMethod for SensJoin {
    fn name(&self) -> &'static str {
        match self.config.representation {
            Representation::Quadtree => "sens-join",
            Representation::Raw => "sens-join/no-quad",
            Representation::Zlib => "sens-join/zlib",
            Representation::Bzip2 => "sens-join/bzip2",
        }
    }

    fn execute(
        &self,
        snet: &mut SensorNetwork,
        query: &CompiledQuery,
    ) -> Result<JoinOutcome, ProtocolError> {
        snet.net_mut().reset_stats();
        let cfg = &self.config;
        let space = JoinSpace::build(query, snet, cfg);
        let data = collect_node_data(snet, query, &space);
        let base = snet.base();
        let n = snet.len();
        let mut states: Vec<NodeState> = (0..n).map(|_| NodeState::default()).collect();
        let repr = cfg.representation;

        // ---- Churn boundary 0 (pre-start) ----
        // Nodes that leave before the query starts simply never participate;
        // nothing needs reconciling. `p0` is the participated-at-start set —
        // the population the completeness guarantee is measured against.
        let has_churn = snet.net().has_churn();
        let mut churned = false;
        if has_churn {
            snet.net_mut().apply_churn(0);
        }
        let p0: Vec<bool> = (0..n as u32)
            .map(|i| {
                let v = NodeId(i);
                snet.net().is_alive(v) && snet.net().routing().depth(v).is_some()
            })
            .collect();

        // ---- Phase 1: Join-Attribute-Collection (Fig. 2) ----
        let lossy = snet.net().lossy();
        let shape = space.shape().clone();
        let cells = NodeCells::new(&mut states);
        let (base_msg, rep1) = up_wave_sync(
            snet.net_mut(),
            &|_| true,
            |v, received: Vec<UpMsg>| {
                let mut fulls: Vec<FullRec> = Vec::new();
                let mut full_bytes = 0usize;
                let mut attr_msgs: Vec<JoinAttrMsg> = Vec::new();
                for msg in received {
                    match msg {
                        UpMsg::Full { mut tuples, bytes } => {
                            full_bytes += bytes;
                            fulls.append(&mut tuples);
                        }
                        UpMsg::Attrs(ja) => attr_msgs.push(ja),
                    }
                }
                let own = data[v.0 as usize].rec.clone();
                let own_bytes = own.as_ref().map_or(0, |r| r.bytes);
                let treecut = v != base
                    && cfg.dmax > 0
                    && attr_msgs.is_empty()
                    && full_bytes + own_bytes <= cfg.dmax;
                cells.with(v, |st| {
                    if treecut {
                        // Hand the complete tuples to the parent and exit the
                        // query (Fig. 2 lines 14-18). Over a lossy channel the
                        // node keeps a copy of the handoff until the phase
                        // ends: if the message is reported damaged the node
                        // re-enters the query as the tuples' proxy (otherwise
                        // the data would exist nowhere).
                        if lossy {
                            st.kept = Some((own.clone(), fulls.clone()));
                        }
                        if let Some(rec) = own {
                            fulls.push(rec);
                        }
                        st.active = false;
                        UpMsg::Full {
                            tuples: fulls,
                            bytes: full_bytes + own_bytes,
                        }
                    } else {
                        st.active = true;
                        // Merge received structures (Fig. 2 line 10).
                        let mut ja = JoinAttrMsg::new();
                        for m in &attr_msgs {
                            ja.merge(m);
                        }
                        // Memorize the subtree's join-attribute tuples for
                        // Selective Filter Forwarding — the *received* ones
                        // only (Fig. 2 line 21); own and proxied tuples are
                        // checked directly against the incoming filter later.
                        // The stored form is always the compact quadtree
                        // (only the §VI-B collection experiment varies the
                        // wire representation). The base station is powered
                        // and ignores the memory cap.
                        let stored_size = JoinAttrMsg::filter_wire_size(
                            &ja.set,
                            Representation::Quadtree,
                            &space,
                        );
                        if cfg.selective_forwarding
                            && (v == base || stored_size <= cfg.filter_memory_limit)
                        {
                            st.subtree_atts = Some(ja.set.clone());
                        }
                        // Act as proxy for received complete tuples (line 20)
                        // and fold their join-attribute projections in
                        // (line 22).
                        for rec in &fulls {
                            ja.insert(rec.z, rec.flags, &rec.coords);
                        }
                        st.proxy = fulls;
                        if let Some(rec) = own {
                            ja.insert(rec.z, rec.flags, &rec.coords);
                            st.own = Some(rec);
                        }
                        UpMsg::Attrs(ja)
                    }
                })
            },
            |m| match m {
                UpMsg::Full { bytes, .. } => *bytes,
                UpMsg::Attrs(ja) => ja.wire_size(repr, &shape),
            },
            PHASE_COLLECTION,
        );
        drop(cells);

        // ---- Collection-damage fallback ----
        // A node whose collection message was permanently lost re-enters
        // the query in pass-through mode (its handoff is restored if it had
        // treecut), and its ancestor chain is re-activated so the
        // participant set stays root-closed. Because the base's view of the
        // join attributes is now incomplete, *any* filter it computed could
        // wrongly prune other subtrees — the dissemination phase therefore
        // degrades to an explicit conservative PassThrough order for
        // everyone (results stay exact; only the filter savings are lost).
        let collection_damaged = !rep1.damaged.is_empty();
        if collection_damaged {
            let routing = snet.net().routing().clone();
            for &v in &rep1.damaged {
                let st = &mut states[v.0 as usize];
                st.active = true;
                st.passthrough = true;
                if let Some((own, proxy)) = st.kept.take() {
                    st.own = own;
                    st.proxy = proxy;
                }
                let mut u = v;
                while let Some(p) = routing.parent(u) {
                    if states[p.0 as usize].active {
                        break;
                    }
                    // Re-activated relays only forward; their own data went
                    // up in their (intact) handoff and must not ship twice.
                    states[p.0 as usize].active = true;
                    u = p;
                }
            }
        }

        // ---- Churn boundary 1 (after collection) ----
        // A node dying here takes its proxied rows down with it: proxy
        // re-election restores each row at its (surviving) origin, dead
        // origins' rows are dropped everywhere, and the subtree the repair
        // machinery re-homed switches to pass-through (stale synopses above
        // it could otherwise prune soundly-joining rows).
        if has_churn {
            let out = snet.net_mut().apply_churn(rep1.timing.pipelined);
            churned |= !out.crashed.is_empty() || !out.revived.is_empty();
            if !out.is_empty() {
                reconcile_churn(&mut states, &out, snet.net(), &data, &p0);
            }
        }

        // ---- Base station: conservative pre-join (step 1a) ----
        let points = match base_msg {
            UpMsg::Attrs(ja) => ja.set,
            UpMsg::Full { .. } => unreachable!("base never applies Treecut"),
        };
        let filter = prejoin_filter(query, &space, &points);

        // ---- Phase 2: Filter-Dissemination (Fig. 3) ----
        let active: Vec<bool> = states.iter().map(|s| s.active).collect();
        let participates = move |v: NodeId| active[v.0 as usize];
        let selective = cfg.selective_forwarding;
        // On a lossy network every filter message carries a one-byte tag to
        // distinguish a real filter from a PassThrough order; lossless runs
        // stay byte-identical to the pre-channel protocol.
        let tag = usize::from(lossy);
        let cells = NodeCells::new(&mut states);
        let rep2 = down_wave_sync(
            snet.net_mut(),
            &participates,
            |v, arrival: DownArrival<'_, FilterMsg>| {
                cells.with(v, |st| {
                    let incoming: Option<&PointSet> = match arrival {
                        DownArrival::Origin => {
                            if collection_damaged {
                                None // base orders global pass-through
                            } else {
                                Some(&filter)
                            }
                        }
                        DownArrival::Intact(FilterMsg::Filter(f)) => {
                            st.received_filter = Some(f.clone());
                            st.received_filter.as_ref()
                        }
                        // An explicit PassThrough order, or a filter copy the
                        // channel ate: either way the node must not prune and
                        // must ship everything (missing filter = pass-through,
                        // never drop a real result).
                        DownArrival::Intact(FilterMsg::PassThrough) | DownArrival::Damaged => None,
                    };
                    let Some(incoming) = incoming else {
                        st.passthrough = true;
                        return Some(FilterMsg::PassThrough);
                    };
                    if !selective {
                        // Ablation: flood the unpruned filter everywhere.
                        return Some(FilterMsg::Filter(incoming.clone()));
                    }
                    match &st.subtree_atts {
                        Some(atts) => {
                            let pruned = incoming.intersect(atts);
                            (!pruned.is_empty()).then_some(FilterMsg::Filter(pruned))
                        }
                        // Over the memory cap: cannot prune, forward as-is.
                        None => Some(FilterMsg::Filter(incoming.clone())),
                    }
                })
            },
            // The filter always travels in the compact quadtree form; the
            // representation knob only varies the collection step (§VI-B).
            |m| match m {
                FilterMsg::Filter(set) => {
                    tag + JoinAttrMsg::filter_wire_size(set, Representation::Quadtree, &space)
                }
                FilterMsg::PassThrough => 1,
            },
            PHASE_FILTER,
        );
        drop(cells);
        debug_assert!(lossy || rep2.is_lossless());

        // ---- Churn boundary 2 (after filter dissemination) ----
        // The stale filter stays sound: it was computed over a superset of
        // the surviving population, and a superset filter never prunes a row
        // that still joins. Only re-homed nodes must ignore it.
        if has_churn {
            let out = snet.net_mut().apply_churn(rep2.timing.pipelined);
            churned |= !out.crashed.is_empty() || !out.revived.is_empty();
            if !out.is_empty() {
                reconcile_churn(&mut states, &out, snet.net(), &data, &p0);
            }
        }

        // ---- Phase 3: Final-Result-Computation (§IV-D) ----
        let active2: Vec<bool> = states.iter().map(|s| s.active).collect();
        let participates3 = move |v: NodeId| active2[v.0 as usize];
        let (final_batch, rep3) = up_wave_sync(
            snet.net_mut(),
            &participates3,
            |v, received: Vec<Batch>| {
                let mut tuples = Vec::new();
                let mut bytes = 0usize;
                for mut b in received {
                    bytes += b.bytes;
                    tuples.append(&mut b.tuples);
                }
                let st = &states[v.0 as usize];
                if v == base {
                    // Base-held tuples (own + proxied) are already at their
                    // destination; attach them free of charge.
                    for rec in st.own.iter().chain(&st.proxy) {
                        tuples.push(rec.clone());
                    }
                } else if st.passthrough {
                    // Conservative fallback: ship everything.
                    for rec in st.own.iter().chain(&st.proxy) {
                        bytes += rec.bytes;
                        tuples.push(rec.clone());
                    }
                } else if let Some(f) = &st.received_filter {
                    for rec in st.own.iter().chain(&st.proxy) {
                        if f.contains_matching(rec.z, rec.flags) {
                            bytes += rec.bytes;
                            tuples.push(rec.clone());
                        }
                    }
                }
                Batch { tuples, bytes }
            },
            |b| b.bytes,
            PHASE_FINAL,
        );

        // ---- Liveness sweep (base side) ----
        // Rows can reach the base from origins that fell out of the
        // contributing set mid-execution (e.g. a proxy shipped a row whose
        // origin is now orphaned). The base knows the final liveness picture
        // and projects the result onto the surviving population: origins
        // that participated at start, are alive at end, and are attached at
        // end.
        let mut final_batch = final_batch;
        if has_churn {
            let net = snet.net();
            final_batch.tuples.retain(|rec| {
                net.is_alive(rec.origin)
                    && net.routing().depth(rec.origin).is_some()
                    && p0[rec.origin.0 as usize]
            });
        }

        // ---- Exact join over the filtered complete tuples ----
        let master = snet.master_schema().clone();
        let tuples_per_rel: Vec<Vec<(NodeId, Vec<f64>)>> = (0..query.num_relations())
            .map(|r| {
                let flag = space.flag(r);
                final_batch
                    .tuples
                    .iter()
                    .filter(|rec| rec.flags.intersects(flag))
                    .map(|rec| {
                        (
                            rec.origin,
                            project_to_schema(&master, query.schema(r), &rec.values),
                        )
                    })
                    .collect()
            })
            .collect();
        let computation = exact_join(query, &tuples_per_rel);
        // Honesty: `complete` additionally requires that every node that
        // participated at query start survived to the end — a mid-execution
        // death means the answer is exact only over the survivors
        // (liveness-projected exactness), not over the start population.
        let mut complete = rep3.damaged.is_empty();
        if has_churn {
            let net = snet.net();
            // Absent subtrees in the final wave are exactly the dead or
            // detached participants — no live attached node is skipped.
            debug_assert!(rep3
                .absent
                .iter()
                .all(|&v| !net.is_alive(v) || net.routing().depth(v).is_none()));
            complete &= (0..n as u32).map(NodeId).all(|v| {
                !p0[v.0 as usize] || (net.is_alive(v) && net.routing().depth(v).is_some())
            });
        }
        Ok(JoinOutcome {
            result: computation.result,
            stats: snet.net().stats().clone(),
            latency_us: rep1.timing.then(rep2.timing).then(rep3.timing).pipelined,
            latency_slotted_us: rep1.timing.then(rep2.timing).then(rep3.timing).slotted,
            contributors: computation.contributors,
            complete,
            churned,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snetwork::SensorNetworkBuilder;
    use crate::ExternalJoin;
    use sensjoin_field::{Area, Placement};
    use sensjoin_query::parse;

    fn snet(n: usize, seed: u64) -> SensorNetwork {
        SensorNetworkBuilder::new()
            .area(Area::new(350.0, 350.0))
            .placement(Placement::UniformRandom { n })
            .seed(seed)
            .build()
            .unwrap()
    }

    fn compiled(s: &SensorNetwork, sql: &str) -> CompiledQuery {
        s.compile(&parse(sql).unwrap()).unwrap()
    }

    #[test]
    fn result_identical_to_external_join() {
        for seed in [1, 2, 3] {
            let mut s = snet(90, seed);
            let cq = compiled(
                &s,
                "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                 WHERE |A.temp - B.temp| < 0.1 ONCE",
            );
            let ext = ExternalJoin.execute(&mut s, &cq).unwrap();
            let sj = SensJoin::default().execute(&mut s, &cq).unwrap();
            assert!(
                ext.result.same_result(&sj.result),
                "seed {seed}: {} vs {} rows",
                ext.result.len(),
                sj.result.len()
            );
            assert_eq!(ext.contributors, sj.contributors);
        }
    }

    #[test]
    fn selective_query_saves_transmissions() {
        // Savings need a tree deep enough for packet aggregation to matter
        // (the paper uses 1500 nodes; 400 over a wider area with a corner
        // base station suffices here).
        let mut s = SensorNetworkBuilder::new()
            .area(Area::new(600.0, 600.0))
            .placement(Placement::UniformRandom { n: 400 })
            .base(sensjoin_sim::BaseChoice::NearestCorner)
            .seed(7)
            .build()
            .unwrap();
        let fam = crate::workload::RangeQueryFamily::ratio_33();
        let cal = fam.calibrate(&s, 0.05);
        let cq = compiled(&s, &cal.sql);
        let ext = ExternalJoin.execute(&mut s, &cq).unwrap();
        let sj = SensJoin::default().execute(&mut s, &cq).unwrap();
        assert!(
            sj.stats.total_tx_packets() < ext.stats.total_tx_packets(),
            "sens {} !< ext {}",
            sj.stats.total_tx_packets(),
            ext.stats.total_tx_packets()
        );
    }

    #[test]
    fn phases_are_labeled() {
        let mut s = snet(100, 5);
        let cq = compiled(
            &s,
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.05 ONCE",
        );
        let sj = SensJoin::default().execute(&mut s, &cq).unwrap();
        let p1 = sj.stats.phase(PHASE_COLLECTION).tx_packets;
        let p2 = sj.stats.phase(PHASE_FILTER).tx_packets;
        let p3 = sj.stats.phase(PHASE_FINAL).tx_packets;
        assert!(p1 > 0);
        assert_eq!(p1 + p2 + p3, sj.stats.total_tx_packets());
    }

    #[test]
    fn no_quadtree_variant_is_larger_but_correct() {
        let mut s = snet(120, 11);
        let cq = compiled(
            &s,
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.05 ONCE",
        );
        let quad = SensJoin::default().execute(&mut s, &cq).unwrap();
        let raw = SensJoin::no_quadtree().execute(&mut s, &cq).unwrap();
        assert!(quad.result.same_result(&raw.result));
        let quad_p1 = quad.stats.phase(PHASE_COLLECTION).tx_bytes;
        let raw_p1 = raw.stats.phase(PHASE_COLLECTION).tx_bytes;
        assert!(quad_p1 < raw_p1, "quadtree {quad_p1} !< raw {raw_p1}");
    }

    #[test]
    fn treecut_disabled_still_correct() {
        let mut s = snet(80, 13);
        let cq = compiled(
            &s,
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.1 ONCE",
        );
        let ext = ExternalJoin.execute(&mut s, &cq).unwrap();
        let nocut = SensJoin::with_config(SensJoinConfig {
            dmax: 0,
            ..Default::default()
        })
        .execute(&mut s, &cq)
        .unwrap();
        assert!(ext.result.same_result(&nocut.result));
    }

    #[test]
    fn selective_forwarding_disabled_still_correct_but_costlier() {
        let mut s = snet(130, 17);
        let cq = compiled(
            &s,
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.01 AND distance(A.x, A.y, B.x, B.y) > 200 ONCE",
        );
        let on = SensJoin::default().execute(&mut s, &cq).unwrap();
        let off = SensJoin::with_config(SensJoinConfig {
            selective_forwarding: false,
            ..Default::default()
        })
        .execute(&mut s, &cq)
        .unwrap();
        assert!(on.result.same_result(&off.result));
        let on_f = on.stats.phase(PHASE_FILTER).tx_packets;
        let off_f = off.stats.phase(PHASE_FILTER).tx_packets;
        assert!(on_f <= off_f, "selective {on_f} > flooded {off_f}");
    }

    #[test]
    fn aggregate_query_identical() {
        let mut s = snet(70, 23);
        let cq = compiled(
            &s,
            "SELECT MIN(distance(A.x, A.y, B.x, B.y)) FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 2.0 ONCE",
        );
        let ext = ExternalJoin.execute(&mut s, &cq).unwrap();
        let sj = SensJoin::default().execute(&mut s, &cq).unwrap();
        assert!(ext.result.same_result(&sj.result));
    }

    #[test]
    fn empty_result_sends_no_final_tuples() {
        let mut s = snet(90, 29);
        let cq = compiled(
            &s,
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 1000 ONCE",
        );
        let sj = SensJoin::default().execute(&mut s, &cq).unwrap();
        assert!(sj.result.is_empty());
        assert_eq!(sj.stats.phase(PHASE_FINAL).tx_bytes, 0);
        // Filter dissemination is pruned at the root: nothing joins.
        assert_eq!(sj.stats.phase(PHASE_FILTER).tx_packets, 0);
    }

    #[test]
    fn latency_within_twice_external() {
        // §VII: "the response time of SENS-Join is upper bounded by at most
        // twice the duration of the external join".
        let mut s = snet(150, 31);
        let cq = compiled(
            &s,
            "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.1 ONCE",
        );
        let ext = ExternalJoin.execute(&mut s, &cq).unwrap();
        let sj = SensJoin::default().execute(&mut s, &cq).unwrap();
        assert!(
            sj.latency_us <= 2 * ext.latency_us + 10_000,
            "sens {} vs ext {}",
            sj.latency_us,
            ext.latency_us
        );
    }
}
