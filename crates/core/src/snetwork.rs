//! The deployed sensor network: simulator + data + relation catalog.

use sensjoin_field::{generate_readings, Area, FieldSpec, Placement};
use sensjoin_query::{CompileError, CompiledQuery, Query};
use sensjoin_relation::{AttrType, Attribute, NodeId, Schema, SensorRelation};
use sensjoin_sim::{BaseChoice, EnergyModel, Network, NetworkBuilder, NetworkError, RadioConfig};

/// Errors building or querying a [`SensorNetwork`].
#[derive(Debug)]
pub enum SensorNetworkError {
    /// Underlying network construction failed.
    Network(NetworkError),
    /// Supplied external data has inconsistent dimensions.
    DataShape(String),
    /// A query referenced a relation missing from the catalog.
    UnknownRelation(String),
    /// Query compilation failed.
    Compile(CompileError),
    /// A relation schema referenced an attribute the nodes do not sense.
    UnknownAttribute(String),
}

impl std::fmt::Display for SensorNetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SensorNetworkError::Network(e) => write!(f, "{e}"),
            SensorNetworkError::UnknownRelation(r) => write!(f, "unknown relation {r:?}"),
            SensorNetworkError::Compile(e) => write!(f, "{e}"),
            SensorNetworkError::UnknownAttribute(a) => {
                write!(f, "nodes do not sense attribute {a:?}")
            }
            SensorNetworkError::DataShape(msg) => write!(f, "bad external data: {msg}"),
        }
    }
}

impl std::error::Error for SensorNetworkError {}

impl From<NetworkError> for SensorNetworkError {
    fn from(e: NetworkError) -> Self {
        SensorNetworkError::Network(e)
    }
}

impl From<CompileError> for SensorNetworkError {
    fn from(e: CompileError) -> Self {
        SensorNetworkError::Compile(e)
    }
}

/// Guesses the physical type of a generated attribute from its name; used
/// when building the master schema from field specs.
pub fn attr_type_for(name: &str) -> AttrType {
    let lower = name.to_ascii_lowercase();
    if lower.starts_with("temp") {
        AttrType::Celsius
    } else if lower.starts_with("hum") {
        AttrType::Percent
    } else if lower.starts_with("pres") {
        AttrType::Hectopascal
    } else if lower.starts_with("light") {
        AttrType::Lux
    } else if lower.starts_with("volt") {
        AttrType::Volts
    } else if lower == "x" || lower == "y" {
        AttrType::Meters
    } else {
        AttrType::Raw(2)
    }
}

/// A deployed, data-carrying sensor network.
///
/// Combines the simulator [`Network`] with the snapshot of sensor readings
/// (one row per node, aligned to the *master schema* — positions plus every
/// generated attribute) and the relation catalog mapping query relation
/// names to node groups (§III: one relation for homogeneous networks,
/// several for heterogeneous ones).
#[derive(Debug, Clone)]
pub struct SensorNetwork {
    net: Network,
    master: Schema,
    readings: Vec<Vec<f64>>,
    catalog: Vec<SensorRelation>,
}

impl SensorNetwork {
    /// The underlying simulator network.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// Mutable access (protocols charge transmissions through this).
    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// The base station.
    pub fn base(&self) -> NodeId {
        self.net.base()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.net.len()
    }

    /// Whether the deployment has no nodes (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.net.is_empty()
    }

    /// The master schema (positions + every sensed attribute).
    pub fn master_schema(&self) -> &Schema {
        &self.master
    }

    /// The relation catalog.
    pub fn catalog(&self) -> &[SensorRelation] {
        &self.catalog
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&SensorRelation> {
        self.catalog.iter().find(|r| r.name() == name)
    }

    /// Whether `node` belongs to the relation called `name`.
    pub fn belongs(&self, node: NodeId, name: &str) -> bool {
        self.relation(name).is_some_and(|r| r.contains(node))
    }

    /// The raw master-aligned readings of a node.
    pub fn readings(&self, node: NodeId) -> &[f64] {
        &self.readings[node.0 as usize]
    }

    /// Index of an attribute in the master schema.
    pub fn master_index(&self, name: &str) -> Option<usize> {
        self.master.index_of(name)
    }

    /// Values of `node` aligned to `schema` (resolved by attribute name).
    ///
    /// # Panics
    /// Panics if the schema references an attribute the nodes do not sense —
    /// catalog construction validates this.
    pub fn values_for(&self, node: NodeId, schema: &Schema) -> Vec<f64> {
        schema
            .attrs()
            .iter()
            .map(|a| {
                let i = self
                    .master
                    .index_of(a.name())
                    .unwrap_or_else(|| panic!("unsensed attribute {:?}", a.name()));
                self.readings[node.0 as usize][i]
            })
            .collect()
    }

    /// Observed bounds of attribute `name` across all nodes, widened by 5 %
    /// of the span on each side — emulating the setup-time range estimation
    /// of §V-B ("reasonably good estimates are sufficient").
    pub fn attr_bounds(&self, name: &str) -> Option<(f64, f64)> {
        let i = self.master.index_of(name)?;
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for row in &self.readings {
            lo = lo.min(row[i]);
            hi = hi.max(row[i]);
        }
        let margin = 0.05 * (hi - lo).max(1e-9);
        Some((lo - margin, hi + margin))
    }

    /// Compiles a parsed query against the catalog.
    pub fn compile(&self, query: &Query) -> Result<CompiledQuery, SensorNetworkError> {
        let schemas: Vec<Schema> = query
            .from
            .iter()
            .map(|item| {
                self.relation(&item.relation)
                    .map(|r| r.schema().clone())
                    .ok_or_else(|| SensorNetworkError::UnknownRelation(item.relation.clone()))
            })
            .collect::<Result<_, _>>()?;
        Ok(CompiledQuery::compile(query, &schemas)?)
    }

    /// Replaces the snapshot with freshly generated readings (used by
    /// `SAMPLE PERIOD` continuous executions: each period reads a new
    /// snapshot).
    pub fn resample(&mut self, specs: &[FieldSpec], seed: u64) {
        let positions: Vec<_> = self
            .net
            .topology()
            .nodes()
            .map(|n| self.net.topology().position(n))
            .collect();
        let generated = generate_readings(&positions, specs, seed);
        for (node, row) in generated.into_iter().enumerate() {
            for (s, v) in specs.iter().zip(row) {
                if let Some(i) = self.master.index_of(&s.name) {
                    self.readings[node][i] = v;
                }
            }
        }
    }
}

/// Explicit deployment data (e.g. a real trace such as the Intel Lab
/// readings the paper cites): node positions plus one reading per node and
/// named attribute. Supplied via [`SensorNetworkBuilder::data`], it replaces
/// the synthetic placement and field generation.
#[derive(Debug, Clone)]
pub struct ExternalData {
    /// One position per node.
    pub positions: Vec<sensjoin_field::Position>,
    /// Named attributes with their physical types (positions excluded; `x`
    /// and `y` are always derived from `positions`).
    pub attrs: Vec<(String, sensjoin_relation::AttrType)>,
    /// `rows[node][attr]` readings, parallel to `positions` and `attrs`.
    pub rows: Vec<Vec<f64>>,
}

/// Builder for [`SensorNetwork`].
#[derive(Debug, Clone)]
pub struct SensorNetworkBuilder {
    area: Area,
    placement: Placement,
    seed: u64,
    fields: Vec<FieldSpec>,
    radio: RadioConfig,
    energy: EnergyModel,
    base: BaseChoice,
    relation_name: String,
    relations: Option<Vec<SensorRelation>>,
    data: Option<ExternalData>,
}

impl Default for SensorNetworkBuilder {
    fn default() -> Self {
        Self {
            area: Area::paper_default(),
            placement: Placement::UniformRandom { n: 1500 },
            seed: 1,
            fields: sensjoin_field::presets::indoor_climate(),
            radio: RadioConfig::paper_default(),
            energy: EnergyModel::micaz(),
            base: BaseChoice::NearestCenter,
            relation_name: "Sensors".to_owned(),
            relations: None,
            data: None,
        }
    }
}

impl SensorNetworkBuilder {
    /// Starts from the paper's default experiment setting (1500 nodes,
    /// 1050 m × 1050 m, 50 m range, 48-byte packets, indoor climate data).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the deployment area.
    pub fn area(mut self, area: Area) -> Self {
        self.area = area;
        self
    }

    /// Sets the placement strategy.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the seed for placement and data generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the generated attributes.
    pub fn fields(mut self, fields: Vec<FieldSpec>) -> Self {
        self.fields = fields;
        self
    }

    /// Sets the radio configuration.
    pub fn radio(mut self, radio: RadioConfig) -> Self {
        self.radio = radio;
        self
    }

    /// Sets the energy model.
    pub fn energy(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Sets the base-station choice.
    pub fn base(mut self, base: BaseChoice) -> Self {
        self.base = base;
        self
    }

    /// Renames the default homogeneous relation (default `"Sensors"`).
    pub fn relation_name(mut self, name: impl Into<String>) -> Self {
        self.relation_name = name.into();
        self
    }

    /// Supplies an explicit (possibly heterogeneous) relation catalog
    /// instead of the default single homogeneous relation.
    pub fn relations(mut self, relations: Vec<SensorRelation>) -> Self {
        self.relations = Some(relations);
        self
    }

    /// Supplies explicit positions and readings (a real trace) instead of
    /// synthetic placement and field generation. `placement`, `fields` and
    /// the data part of `seed` are ignored; the area should cover the
    /// positions.
    pub fn data(mut self, data: ExternalData) -> Self {
        self.data = Some(data);
        self
    }

    /// Builds the deployed network: places nodes, generates (or adopts)
    /// readings, wires the topology and routing tree.
    pub fn build(self) -> Result<SensorNetwork, SensorNetworkError> {
        let (positions, attr_list, generated) = match &self.data {
            Some(data) => {
                if data.rows.len() != data.positions.len() {
                    return Err(SensorNetworkError::DataShape(format!(
                        "{} rows for {} positions",
                        data.rows.len(),
                        data.positions.len()
                    )));
                }
                for (i, row) in data.rows.iter().enumerate() {
                    if row.len() != data.attrs.len() {
                        return Err(SensorNetworkError::DataShape(format!(
                            "row {i} has {} values for {} attributes",
                            row.len(),
                            data.attrs.len()
                        )));
                    }
                }
                (
                    data.positions.clone(),
                    data.attrs.clone(),
                    data.rows.clone(),
                )
            }
            None => {
                let positions = self.placement.generate(self.area, self.seed);
                let generated = generate_readings(&positions, &self.fields, self.seed ^ 0xF1E17D);
                let attrs = self
                    .fields
                    .iter()
                    .map(|spec| (spec.name.clone(), attr_type_for(&spec.name)))
                    .collect();
                (positions, attrs, generated)
            }
        };
        let mut attrs = vec![
            Attribute::new("x", AttrType::Meters),
            Attribute::new("y", AttrType::Meters),
        ];
        for (name, ty) in &attr_list {
            attrs.push(Attribute::new(name, *ty));
        }
        let master = Schema::new("Master", attrs);
        let readings: Vec<Vec<f64>> = positions
            .iter()
            .zip(&generated)
            .map(|(p, row)| {
                let mut r = Vec::with_capacity(2 + row.len());
                r.push(p.x);
                r.push(p.y);
                r.extend_from_slice(row);
                r
            })
            .collect();
        let catalog = match self.relations {
            Some(rels) => {
                for rel in &rels {
                    for a in rel.schema().attrs() {
                        if master.index_of(a.name()).is_none() {
                            return Err(SensorNetworkError::UnknownAttribute(a.name().to_owned()));
                        }
                    }
                }
                rels
            }
            None => {
                // Homogeneous: one relation exposing every master attribute.
                let schema = Schema::new(self.relation_name.clone(), master.attrs().to_vec());
                vec![SensorRelation::homogeneous(schema)]
            }
        };
        let net = NetworkBuilder::new()
            .radio(self.radio)
            .energy(self.energy)
            .base(self.base)
            .build(positions, self.area)?;
        Ok(SensorNetwork {
            net,
            master,
            readings,
            catalog,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensjoin_field::presets;
    use sensjoin_query::parse;

    fn small() -> SensorNetwork {
        SensorNetworkBuilder::new()
            .area(Area::new(300.0, 300.0))
            .placement(Placement::UniformRandom { n: 100 })
            .fields(presets::indoor_climate())
            .seed(7)
            .build()
            .unwrap()
    }

    #[test]
    fn master_schema_and_readings() {
        let s = small();
        assert_eq!(s.master_schema().attrs()[0].name(), "x");
        assert_eq!(s.master_schema().index_of("temp"), Some(2));
        assert_eq!(s.readings(NodeId(5)).len(), s.master_schema().arity());
        // Positions are readings too.
        let p = s.net().topology().position(NodeId(5));
        assert_eq!(s.readings(NodeId(5))[0], p.x);
        assert_eq!(s.readings(NodeId(5))[1], p.y);
    }

    #[test]
    fn homogeneous_catalog() {
        let s = small();
        assert_eq!(s.catalog().len(), 1);
        assert!(s.belongs(NodeId(0), "Sensors"));
        assert!(!s.belongs(NodeId(0), "Other"));
    }

    #[test]
    fn compile_against_catalog() {
        let s = small();
        let q = parse(
            "SELECT A.temp, B.temp FROM Sensors A, Sensors B \
             WHERE |A.temp - B.temp| < 0.1 ONCE",
        )
        .unwrap();
        let cq = s.compile(&q).unwrap();
        assert_eq!(cq.num_relations(), 2);
        let bad = parse("SELECT A.t, B.t FROM Nope A, Nope B ONCE").unwrap();
        assert!(matches!(
            s.compile(&bad),
            Err(SensorNetworkError::UnknownRelation(_))
        ));
    }

    #[test]
    fn values_projection() {
        let s = small();
        let schema = s.catalog()[0].schema().clone();
        let vals = s.values_for(NodeId(3), &schema);
        assert_eq!(vals.len(), schema.arity());
        assert_eq!(vals[2], s.readings(NodeId(3))[2]);
    }

    #[test]
    fn attr_bounds_cover_data() {
        let s = small();
        let (lo, hi) = s.attr_bounds("temp").unwrap();
        let i = s.master_index("temp").unwrap();
        for n in 0..s.len() as u32 {
            let v = s.readings(NodeId(n))[i];
            assert!(lo < v && v < hi);
        }
        assert!(s.attr_bounds("nope").is_none());
    }

    #[test]
    fn heterogeneous_catalog_validated() {
        let bad_schema = Schema::new("Weird", vec![Attribute::new("ghost", AttrType::Lux)]);
        let err = SensorNetworkBuilder::new()
            .area(Area::new(200.0, 200.0))
            .placement(Placement::UniformRandom { n: 20 })
            .relations(vec![SensorRelation::homogeneous(bad_schema)])
            .build();
        assert!(matches!(err, Err(SensorNetworkError::UnknownAttribute(_))));
    }

    #[test]
    fn attr_type_heuristics() {
        assert_eq!(attr_type_for("temp"), AttrType::Celsius);
        assert_eq!(attr_type_for("temperature"), AttrType::Celsius);
        assert_eq!(attr_type_for("humidity"), AttrType::Percent);
        assert_eq!(attr_type_for("pressure"), AttrType::Hectopascal);
        assert_eq!(attr_type_for("light"), AttrType::Lux);
        assert_eq!(attr_type_for("voltage"), AttrType::Volts);
        assert_eq!(attr_type_for("x"), AttrType::Meters);
        assert_eq!(attr_type_for("whatever"), AttrType::Raw(2));
    }

    #[test]
    fn resample_changes_data() {
        let mut s = small();
        let before = s.readings(NodeId(1)).to_vec();
        s.resample(&presets::indoor_climate(), 999);
        let after = s.readings(NodeId(1));
        // Positions unchanged, sensed values changed.
        assert_eq!(before[0], after[0]);
        assert_eq!(before[1], after[1]);
        assert_ne!(before[2], after[2]);
    }
}
