//! Tree-synchronized communication waves.
//!
//! SENS-Join and the external join are phase-structured (paper Fig. 1):
//! within a phase, data flows either leaf→root (*up waves*: collection
//! phases) or root→leaf (*down wave*: filter dissemination) along the
//! routing tree, with nodes waking exactly when their children's data is due
//! (TAG-style scheduling, [18]). Because siblings in different subtrees
//! transmit concurrently, a phase's latency is the longest chain of
//! dependent transfers — which these helpers compute while charging every
//! transmission through [`Network::unicast_delivery`] /
//! [`Network::broadcast_delivery`].
//!
//! Over a lossy network (a [`sensjoin_sim::Channel`] attached to the
//! [`Network`]), a message can be permanently lost despite the ARQ budget.
//! The waves surface this honestly: an undecodable (incomplete) message is
//! dropped whole — the parent's `produce` simply never sees it — and the
//! sender is reported in [`WaveReport::damaged`] so the protocol driver can
//! fall back conservatively. In a down wave, a child whose copy was lost is
//! visited with [`DownArrival::Damaged`] instead of the message content
//! (loss is locally detectable: the fragment train was on the air but did
//! not decode — unlike pruning, where the parent stays silent).
//!
//! # Execution order and parallelism
//!
//! Waves visit nodes in *subtree-major* order: an up wave walks the cached
//! post-order of the routing tree (each base-child subtree is one
//! contiguous block, blocks in ascending child order, the root last), a
//! down wave walks the matching pre-order. Because independent subtrees
//! occupy disjoint radio links and disjoint node state, the `_sync` wave
//! variants ([`up_wave_sync`], [`down_wave_sync`]) can hand whole subtree
//! blocks to worker threads: each thread charges its transfers into a
//! [`sensjoin_sim::StatLedger`]-backed lane ([`Network::open_lane`]) and
//! draws packet fates from its own clone of the per-link channel streams.
//! Replaying the lanes in block order afterwards re-issues *exactly* the
//! serial call sequence — every byte/packet counter, every floating-point
//! energy accumulation and every trace row is bit-identical to serial
//! execution, and the per-link RNG streams end up in the same position.
//! [`set_wave_mode`] pins execution to serial or parallel per thread (the
//! equivalence tests rely on this); [`WaveMode::Auto`] parallelizes only
//! past a participant threshold. Per-node protocol state mutated from
//! `Fn + Sync` callbacks goes through [`crate::NodeCells`].

use sensjoin_relation::NodeId;
use sensjoin_sim::{Delivery, Network, RoutingTree, Time};
use std::cell::Cell;
use std::collections::BTreeMap;

/// A phase's latency under the two scheduling models.
///
/// * `pipelined` — data-volume-driven: a node forwards as soon as all its
///   children reported; siblings in disjoint subtrees transmit concurrently.
///   The phase takes as long as its longest chain of dependent transfers.
/// * `slotted` — TAG-style level scheduling: each tree level gets a time
///   window sized for that level's slowest transmitter, and the phase walks
///   the levels one window at a time. This is the schedule the paper's
///   response-time bound (§VII) reflects.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaveTiming {
    /// Longest dependent-transfer chain.
    pub pipelined: Time,
    /// Sum over levels of the level's slowest transfer.
    pub slotted: Time,
}

impl WaveTiming {
    /// Sequential composition of phases.
    pub fn then(self, next: WaveTiming) -> WaveTiming {
        WaveTiming {
            pipelined: self.pipelined + next.pipelined,
            slotted: self.slotted + next.slotted,
        }
    }
}

/// What a wave reports back: its timing plus every node whose message was
/// permanently lost (empty on a lossless network).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaveReport {
    /// Phase latency under both scheduling models.
    pub timing: WaveTiming,
    /// Up wave: nodes whose message to their parent was undecodable after
    /// the ARQ budget. Down wave: nodes that missed their parent's message.
    /// These nodes are alive and attached — their *data* was damaged in
    /// transit, and retransmission-style fallbacks can recover it.
    pub damaged: Vec<NodeId>,
    /// Participants the wave never visited because they are not part of the
    /// routing tree — dead or detached after node churn (plus permanently
    /// unreachable stragglers). Unlike `damaged`, an absent subtree holds no
    /// recoverable in-flight data: the protocol must reconcile its loss at
    /// the churn boundary (proxy re-election, origin restore) rather than
    /// retransmit.
    pub absent: Vec<NodeId>,
}

impl WaveReport {
    /// Whether every message of the wave arrived intact.
    pub fn is_lossless(&self) -> bool {
        self.damaged.is_empty()
    }
}

/// How a node of a down wave was reached.
#[derive(Debug, Clone, Copy)]
pub enum DownArrival<'a, M> {
    /// The wave's origin (the tree root): nothing was received.
    Origin,
    /// The parent's message, fully decoded.
    Intact(&'a M),
    /// The parent sent a message but it did not survive the channel — the
    /// content is unknown and the node must fall back conservatively.
    Damaged,
}

/// How the `_sync` waves execute (per thread; see [`set_wave_mode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WaveMode {
    /// Parallelize when it pays: at least two subtree blocks, at least
    /// [`PAR_MIN_PARTICIPANTS`] participating nodes and a multi-core host.
    #[default]
    Auto,
    /// Always run serially (reference executions).
    ForceSerial,
    /// Always take the parallel path, even for tiny waves — used by the
    /// equivalence tests to exercise the lane machinery. Without the
    /// `parallel` feature this degrades to serial execution.
    ForceParallel,
}

/// Minimum participating nodes before [`WaveMode::Auto`] parallelizes: at
/// paper scale (hundreds of nodes) thread spawn + ledger replay cost more
/// than they save, so waves stay serial until well past it.
pub const PAR_MIN_PARTICIPANTS: usize = 4096;

thread_local! {
    static WAVE_MODE: Cell<WaveMode> = const { Cell::new(WaveMode::Auto) };
}

/// Sets the execution mode of subsequent `_sync` waves *on this thread*.
/// Thread-local so concurrently running tests (and drivers) cannot race
/// each other's setting; worker threads a wave spawns are unaffected — the
/// mode is read once at wave entry.
pub fn set_wave_mode(mode: WaveMode) {
    WAVE_MODE.with(|m| m.set(mode));
}

/// The current thread's wave execution mode.
pub fn wave_mode() -> WaveMode {
    WAVE_MODE.with(|m| m.get())
}

#[cfg(feature = "parallel")]
fn worker_threads() -> usize {
    use std::sync::OnceLock;
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Whether a wave with `participants` nodes spread over `blocks`
/// independent subtree blocks should take the parallel path.
#[cfg(feature = "parallel")]
fn go_parallel(participants: usize, blocks: usize) -> bool {
    match wave_mode() {
        WaveMode::ForceSerial => false,
        WaveMode::ForceParallel => blocks >= 1,
        WaveMode::Auto => {
            blocks >= 2 && participants >= PAR_MIN_PARTICIPANTS && worker_threads() >= 2
        }
    }
}

#[cfg(not(feature = "parallel"))]
fn go_parallel(_participants: usize, _blocks: usize) -> bool {
    false
}

/// The wave's participants in visiting order: the routing tree's cached
/// post-order filtered by `participates`. Subtree blocks stay contiguous
/// (filtering preserves order, and root-closedness means a block is either
/// fully absent or keeps its root-child as its last element); the tree root
/// is the final element.
fn collect_participants(
    tree: &RoutingTree,
    participates: &(impl Fn(NodeId) -> bool + ?Sized),
) -> Vec<NodeId> {
    let mut parts: Vec<NodeId> = tree
        .bottom_up_order()
        .iter()
        .copied()
        .filter(|&v| participates(v))
        .collect();
    assert_eq!(
        parts.pop(),
        Some(tree.base()),
        "the tree root always participates"
    );
    parts
}

/// Participants the wave never visited: alive-and-claimed nodes that are
/// not on the routing tree.
fn absent_nodes(
    n: usize,
    tree: &RoutingTree,
    participates: &(impl Fn(NodeId) -> bool + ?Sized),
) -> Vec<NodeId> {
    (0..n as u32)
        .map(NodeId)
        .filter(|&v| participates(v) && tree.depth(v).is_none())
        .collect()
}

/// A message that reached the wave's root, in serial arrival order.
struct RootArrival<M> {
    /// `None` if the root-child's message was undecodable.
    msg: Option<M>,
    /// When the transfer into the root finished (pipelined schedule).
    done: Time,
}

/// Everything one contiguous run of subtree blocks contributes to an up
/// wave. Merging chunks in block order reproduces the serial outcome.
struct UpChunk<M> {
    level_max: BTreeMap<u32, Time>,
    damaged: Vec<NodeId>,
    arrivals: Vec<RootArrival<M>>,
}

/// Runs the non-root part of an up wave over `order` (a contiguous run of
/// participant subtree blocks in post-order). Scratch is proportional to
/// `order.len()`, not the network size: per-node slots live in a sorted
/// participant-id table probed by binary search.
fn up_chunk<M>(
    tree: &RoutingTree,
    root: NodeId,
    order: &[NodeId],
    produce: &mut impl FnMut(NodeId, Vec<M>) -> M,
    size_of: &impl Fn(&M) -> usize,
    deliver: &mut impl FnMut(NodeId, NodeId, usize) -> Delivery,
) -> UpChunk<M> {
    let mut ids: Vec<NodeId> = order.to_vec();
    ids.sort_unstable();
    let slot = |v: NodeId| {
        ids.binary_search(&v)
            .expect("participants must be root-closed")
    };
    let mut inbox: Vec<Vec<M>> = (0..order.len()).map(|_| Vec::new()).collect();
    // completion[slot(v)] = when v's slowest child transfer finished.
    let mut completion: Vec<Time> = vec![0; order.len()];
    let mut chunk = UpChunk {
        level_max: BTreeMap::new(),
        damaged: Vec::new(),
        arrivals: Vec::new(),
    };
    for &v in order {
        let s = slot(v);
        let received = std::mem::take(&mut inbox[s]);
        let ready = completion[s];
        let msg = produce(v, received);
        let parent = tree.parent(v).expect("only the root has no parent");
        let bytes = size_of(&msg);
        let d = deliver(v, parent, bytes);
        if d.time > 0 {
            let level = tree.depth(v).expect("participant is reachable");
            let m = chunk.level_max.entry(level).or_default();
            *m = (*m).max(d.time);
        }
        let done = ready + d.time;
        if parent == root {
            if !d.complete {
                chunk.damaged.push(v);
            }
            chunk.arrivals.push(RootArrival {
                msg: d.complete.then_some(msg),
                done,
            });
        } else {
            let p = slot(parent);
            completion[p] = completion[p].max(done);
            if d.complete {
                inbox[p].push(msg);
            } else {
                // Undecodable message: dropped whole at the parent.
                chunk.damaged.push(v);
            }
        }
    }
    chunk
}

/// Merges up-wave chunks in block order, runs the root's `produce` and
/// assembles the report — the tail every up-wave flavor shares.
fn finish_up<M>(
    n: usize,
    tree: &RoutingTree,
    participates: &(impl Fn(NodeId) -> bool + ?Sized),
    root: NodeId,
    chunks: Vec<UpChunk<M>>,
    produce: &mut impl FnMut(NodeId, Vec<M>) -> M,
) -> (M, WaveReport) {
    let mut level_max: BTreeMap<u32, Time> = BTreeMap::new();
    let mut damaged = Vec::new();
    let mut inbox = Vec::new();
    let mut ready: Time = 0;
    for chunk in chunks {
        for (level, t) in chunk.level_max {
            let m = level_max.entry(level).or_default();
            *m = (*m).max(t);
        }
        damaged.extend(chunk.damaged);
        for arrival in chunk.arrivals {
            ready = ready.max(arrival.done);
            inbox.extend(arrival.msg);
        }
    }
    let msg = produce(root, inbox);
    let report = WaveReport {
        timing: WaveTiming {
            pipelined: ready,
            slotted: level_max.values().sum(),
        },
        damaged,
        absent: absent_nodes(n, tree, participates),
    };
    (msg, report)
}

/// Runs a leaf→root wave over all nodes for which `participates` holds
/// (participants must form a root-closed subtree: every participant's parent
/// participates). The wave runs on the network's current routing tree; use
/// [`up_wave_on`] to run on a different tree (e.g. one rooted at an
/// in-network mediator).
///
/// For each node, `produce(node, received_from_children)` builds the message
/// to forward; `size_of` gives its wire size in bytes (0-byte messages cost
/// nothing). A child message lost on the lossy channel is dropped whole (the
/// parent receives fewer messages) and the child lands in
/// [`WaveReport::damaged`]. Returns the message produced at the root and the
/// wave's report.
pub fn up_wave<M>(
    net: &mut Network,
    participates: &dyn Fn(NodeId) -> bool,
    mut produce: impl FnMut(NodeId, Vec<M>) -> M,
    size_of: impl Fn(&M) -> usize,
    phase: &str,
) -> (M, WaveReport) {
    let n = net.len();
    let (tree, mut port) = net.delivery_port();
    let root = tree.base();
    let order = collect_participants(tree, participates);
    let chunk = up_chunk(
        tree,
        root,
        &order,
        &mut produce,
        &size_of,
        &mut |f, t, b| port.unicast_delivery(f, t, b, phase),
    );
    finish_up(n, tree, participates, root, vec![chunk], &mut produce)
}

/// [`up_wave`] over an explicit routing tree with a serial `FnMut`
/// callback; the thread-shareable variant is [`up_wave_on_sync`].
#[cfg(test)]
fn up_wave_on<M>(
    net: &mut Network,
    tree: &RoutingTree,
    participates: &dyn Fn(NodeId) -> bool,
    mut produce: impl FnMut(NodeId, Vec<M>) -> M,
    size_of: impl Fn(&M) -> usize,
    phase: &str,
) -> (M, WaveReport) {
    let root = tree.base();
    let order = collect_participants(tree, participates);
    let chunk = up_chunk(
        tree,
        root,
        &order,
        &mut produce,
        &size_of,
        &mut |f, t, b| net.unicast_delivery(f, t, b, phase),
    );
    finish_up(
        net.len(),
        tree,
        participates,
        root,
        vec![chunk],
        &mut produce,
    )
}

/// Splits `order` (contiguous subtree blocks) at block boundaries — a block
/// ends at each direct child of `root`.
#[cfg(feature = "parallel")]
fn subtree_blocks(
    tree: &RoutingTree,
    root: NodeId,
    order: &[NodeId],
) -> Vec<std::ops::Range<usize>> {
    let mut blocks = Vec::new();
    let mut start = 0;
    for (i, &v) in order.iter().enumerate() {
        if tree.parent(v) == Some(root) {
            blocks.push(start..i + 1);
            start = i + 1;
        }
    }
    debug_assert_eq!(start, order.len(), "trailing nodes outside any block");
    blocks
}

/// Greedily groups consecutive items into at most `max_chunks` contiguous
/// runs of roughly equal total weight.
#[cfg(feature = "parallel")]
fn balance<T>(
    items: &[T],
    weight: impl Fn(&T) -> usize,
    max_chunks: usize,
) -> Vec<std::ops::Range<usize>> {
    let chunks = max_chunks.clamp(1, items.len().max(1));
    let total: usize = items.iter().map(&weight).sum();
    let mut out: Vec<std::ops::Range<usize>> = Vec::with_capacity(chunks);
    let mut start = 0;
    let mut acc = 0usize;
    let mut spent = 0usize;
    for (i, item) in items.iter().enumerate() {
        acc += weight(item);
        let left = chunks - out.len();
        if left == 1 {
            continue; // the last chunk takes the rest
        }
        let target = (total - spent).div_ceil(left);
        if acc >= target {
            out.push(start..i + 1);
            start = i + 1;
            spent += acc;
            acc = 0;
        }
    }
    if start < items.len() {
        out.push(start..items.len());
    }
    out
}

/// Runs up-wave chunks on worker threads, one charging lane each. Returns
/// outcomes in block order, so absorbing + merging sequentially reproduces
/// the serial event sequence.
#[cfg(feature = "parallel")]
fn up_parallel<M: Send>(
    net: &Network,
    tree: &RoutingTree,
    root: NodeId,
    order: &[NodeId],
    produce: &(impl Fn(NodeId, Vec<M>) -> M + Sync),
    size_of: &(impl Fn(&M) -> usize + Sync),
    phase: &str,
) -> Vec<(sensjoin_sim::LaneOutcome, UpChunk<M>)> {
    let blocks = subtree_blocks(tree, root, order);
    let ranges = balance(&blocks, |b| b.len(), worker_threads());
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let mut lane = net.open_lane();
                let span = blocks[r.start].start..blocks[r.end - 1].end;
                let order = &order[span];
                s.spawn(move || {
                    let mut p = |v, msgs| produce(v, msgs);
                    let mut d = |f, t, b| lane.unicast_delivery(f, t, b, phase);
                    let chunk = up_chunk(tree, root, order, &mut p, size_of, &mut d);
                    (lane.finish(), chunk)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("up-wave worker panicked"))
            .collect()
    })
}

/// [`up_wave`] with thread-shareable callbacks: parallelizes across subtree
/// blocks per [`set_wave_mode`], with byte/packet counters, energy sums,
/// trace rows and channel streams bit-identical to serial execution (see
/// the module docs). Mutate per-node state through [`crate::NodeCells`].
pub fn up_wave_sync<M: Send>(
    net: &mut Network,
    participates: &(dyn Fn(NodeId) -> bool + Sync),
    produce: impl Fn(NodeId, Vec<M>) -> M + Sync,
    size_of: impl Fn(&M) -> usize + Sync,
    phase: &str,
) -> (M, WaveReport) {
    let n = net.len();
    #[cfg(feature = "parallel")]
    {
        let (order, nblocks) = {
            let tree = net.routing();
            let order = collect_participants(tree, participates);
            let nblocks = subtree_blocks(tree, tree.base(), &order).len();
            (order, nblocks)
        };
        if go_parallel(order.len(), nblocks) {
            let results = {
                let tree = net.routing();
                up_parallel(net, tree, tree.base(), &order, &produce, &size_of, phase)
            };
            let mut chunks = Vec::with_capacity(results.len());
            for (outcome, chunk) in results {
                net.absorb_lane(outcome);
                chunks.push(chunk);
            }
            let tree = net.routing();
            let root = tree.base();
            let mut p = |v, msgs| produce(v, msgs);
            return finish_up(n, tree, participates, root, chunks, &mut p);
        }
    }
    let _ = n;
    up_wave(net, &participates, produce, size_of, phase)
}

/// [`up_wave_on`] with thread-shareable callbacks; see [`up_wave_sync`].
pub fn up_wave_on_sync<M: Send>(
    net: &mut Network,
    tree: &RoutingTree,
    participates: &(dyn Fn(NodeId) -> bool + Sync),
    produce: impl Fn(NodeId, Vec<M>) -> M + Sync,
    size_of: impl Fn(&M) -> usize + Sync,
    phase: &str,
) -> (M, WaveReport) {
    let root = tree.base();
    let order = collect_participants(tree, participates);
    #[cfg(feature = "parallel")]
    {
        let nblocks = subtree_blocks(tree, root, &order).len();
        if go_parallel(order.len(), nblocks) {
            let results = up_parallel(net, tree, root, &order, &produce, &size_of, phase);
            let mut chunks = Vec::with_capacity(results.len());
            for (outcome, chunk) in results {
                net.absorb_lane(outcome);
                chunks.push(chunk);
            }
            let mut p = |v, msgs| produce(v, msgs);
            return finish_up(net.len(), tree, participates, root, chunks, &mut p);
        }
    }
    let mut p = |v, msgs| produce(v, msgs);
    let chunk = up_chunk(tree, root, &order, &mut p, &size_of, &mut |f, t, b| {
        net.unicast_delivery(f, t, b, phase)
    });
    finish_up(net.len(), tree, participates, root, vec![chunk], &mut p)
}

/// Owned arrival state queued for a down-wave node.
enum Arrival<M> {
    Origin,
    Msg(M),
    Damaged,
}

/// What one contiguous run of down-wave subtrees contributes.
struct DownChunk {
    latest: Time,
    level_max: BTreeMap<u32, Time>,
    damaged: Vec<NodeId>,
}

/// Depth-first down wave over `seeds` (each a subtree root with its arrival
/// state), visiting each seed's whole subtree before the next — the serial
/// pre-order. Scratch is the DFS stack: proportional to the visited region.
fn down_chunk<M: Clone>(
    tree: &RoutingTree,
    participates: &(impl Fn(NodeId) -> bool + ?Sized),
    produce: &mut impl FnMut(NodeId, DownArrival<'_, M>) -> Option<M>,
    size_of: &impl Fn(&M) -> usize,
    seeds: Vec<(NodeId, Arrival<M>, Time)>,
    deliver: &mut impl FnMut(NodeId, &[NodeId], usize) -> sensjoin_sim::BroadcastDelivery,
) -> DownChunk {
    let mut chunk = DownChunk {
        latest: 0,
        level_max: BTreeMap::new(),
        damaged: Vec::new(),
    };
    let mut stack: Vec<(NodeId, Arrival<M>, Time)> = seeds;
    stack.reverse(); // pop order = seed order
    let mut kids: Vec<NodeId> = Vec::new();
    while let Some((v, arrival, at)) = stack.pop() {
        chunk.latest = chunk.latest.max(at);
        let out = match &arrival {
            Arrival::Origin => produce(v, DownArrival::Origin),
            Arrival::Msg(m) => produce(v, DownArrival::Intact(m)),
            Arrival::Damaged => produce(v, DownArrival::Damaged),
        };
        let Some(out) = out else { continue };
        kids.clear();
        kids.extend(
            tree.children(v)
                .iter()
                .copied()
                .filter(|&c| participates(c)),
        );
        if kids.is_empty() {
            continue;
        }
        let bytes = size_of(&out);
        let d = deliver(v, &kids, bytes);
        if d.time > 0 {
            let level = tree.depth(v).expect("broadcaster is reachable");
            let m = chunk.level_max.entry(level).or_default();
            *m = (*m).max(d.time);
        }
        // Reversed push: the lowest-id child's subtree is walked first.
        for (i, &c) in kids.iter().enumerate().rev() {
            // A zero-byte message reaches nobody physically, but carries no
            // content either: treat it as intact (matches lossless runs).
            if bytes == 0 || d.complete[i] {
                stack.push((c, Arrival::Msg(out.clone()), at + d.time));
            } else {
                stack.push((c, Arrival::Damaged, at + d.time));
            }
        }
        // Damage is reported in child order, not visiting order.
        for (i, &c) in kids.iter().enumerate() {
            if bytes > 0 && !d.complete[i] {
                chunk.damaged.push(c);
            }
        }
    }
    chunk
}

/// Runs a root→leaf wave. `produce(node, arrival)` is called with
/// [`DownArrival::Origin`] at the base station, [`DownArrival::Intact`] at
/// nodes that received their parent's message, and [`DownArrival::Damaged`]
/// at nodes whose copy was permanently lost on the channel; it returns the
/// message to broadcast to the node's participating children (`None`
/// suppresses forwarding — Selective Filter Forwarding's pruning). A single
/// broadcast reaches all participating children (one transmission, one
/// reception each — paper Fig. 3 `broadcast(SubtreeFilter)`).
///
/// Children whose copy was lost appear in [`WaveReport::damaged`].
pub fn down_wave<M: Clone>(
    net: &mut Network,
    participates: &dyn Fn(NodeId) -> bool,
    mut produce: impl FnMut(NodeId, DownArrival<'_, M>) -> Option<M>,
    size_of: impl Fn(&M) -> usize,
    phase: &str,
) -> WaveReport {
    let n = net.len();
    let (tree, mut port) = net.delivery_port();
    let base = tree.base();
    let chunk = down_chunk(
        tree,
        participates,
        &mut produce,
        &size_of,
        vec![(base, Arrival::Origin, 0)],
        &mut |f, r, b| port.broadcast_delivery(f, r, b, phase),
    );
    WaveReport {
        timing: WaveTiming {
            pipelined: chunk.latest,
            slotted: chunk.level_max.values().sum(),
        },
        damaged: chunk.damaged,
        absent: absent_nodes(n, tree, participates),
    }
}

/// Runs down-wave chunks on worker threads; see [`up_parallel`].
#[cfg(feature = "parallel")]
#[allow(clippy::type_complexity)]
fn down_parallel<M: Clone + Send>(
    net: &Network,
    tree: &RoutingTree,
    participates: &(dyn Fn(NodeId) -> bool + Sync),
    mut seeds: Vec<(NodeId, Arrival<M>, Time)>,
    produce: &(impl Fn(NodeId, DownArrival<'_, M>) -> Option<M> + Sync),
    size_of: &(impl Fn(&M) -> usize + Sync),
    phase: &str,
) -> Vec<(sensjoin_sim::LaneOutcome, DownChunk)> {
    let ranges = balance(
        &seeds,
        |(c, _, _)| tree.descendants(*c) as usize + 1,
        worker_threads(),
    );
    let mut groups: Vec<Vec<(NodeId, Arrival<M>, Time)>> = Vec::with_capacity(ranges.len());
    for r in ranges.into_iter().rev() {
        groups.push(seeds.split_off(r.start));
    }
    groups.reverse();
    std::thread::scope(|s| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|seeds| {
                let mut lane = net.open_lane();
                s.spawn(move || {
                    let mut p = |v, a: DownArrival<'_, M>| produce(v, a);
                    let mut d = |f, r: &[NodeId], b| lane.broadcast_delivery(f, r, b, phase);
                    let chunk = down_chunk(tree, participates, &mut p, size_of, seeds, &mut d);
                    (lane.finish(), chunk)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("down-wave worker panicked"))
            .collect()
    })
}

/// [`down_wave`] with thread-shareable callbacks: the root's broadcast is
/// charged serially, then the child subtrees fan out across worker threads
/// per [`set_wave_mode`] — bit-identical to serial execution (see the
/// module docs). Mutate per-node state through [`crate::NodeCells`].
pub fn down_wave_sync<M: Clone + Send>(
    net: &mut Network,
    participates: &(dyn Fn(NodeId) -> bool + Sync),
    produce: impl Fn(NodeId, DownArrival<'_, M>) -> Option<M> + Sync,
    size_of: impl Fn(&M) -> usize + Sync,
    phase: &str,
) -> WaveReport {
    #[cfg(feature = "parallel")]
    {
        let n = net.len();
        let base = net.base();
        let (kids, potential) = {
            let tree = net.routing();
            let kids: Vec<NodeId> = tree
                .children(base)
                .iter()
                .copied()
                .filter(|&c| participates(c))
                .collect();
            let potential: usize = kids.iter().map(|&c| tree.descendants(c) as usize + 1).sum();
            (kids, potential)
        };
        if go_parallel(potential, kids.len()) {
            let mut latest: Time = 0;
            let mut level_max: BTreeMap<u32, Time> = BTreeMap::new();
            let mut damaged: Vec<NodeId> = Vec::new();
            let mut seeds: Vec<(NodeId, Arrival<M>, Time)> = Vec::with_capacity(kids.len());
            // The root is charged serially: its broadcast (and the ACK
            // frames flowing back) precede every subtree event.
            if let Some(out) = produce(base, DownArrival::Origin) {
                let bytes = size_of(&out);
                let d = net.broadcast_delivery(base, &kids, bytes, phase);
                if d.time > 0 {
                    level_max.insert(0, d.time);
                }
                for (i, &c) in kids.iter().enumerate() {
                    if bytes == 0 || d.complete[i] {
                        seeds.push((c, Arrival::Msg(out.clone()), d.time));
                    } else {
                        damaged.push(c);
                        seeds.push((c, Arrival::Damaged, d.time));
                    }
                }
            }
            let results = {
                let tree = net.routing();
                down_parallel(net, tree, participates, seeds, &produce, &size_of, phase)
            };
            for (outcome, chunk) in results {
                net.absorb_lane(outcome);
                latest = latest.max(chunk.latest);
                for (level, t) in chunk.level_max {
                    let m = level_max.entry(level).or_default();
                    *m = (*m).max(t);
                }
                damaged.extend(chunk.damaged);
            }
            let tree = net.routing();
            return WaveReport {
                timing: WaveTiming {
                    pipelined: latest,
                    slotted: level_max.values().sum(),
                },
                damaged,
                absent: absent_nodes(n, tree, participates),
            };
        }
    }
    down_wave(net, &participates, produce, size_of, phase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensjoin_field::{Area, Placement};
    use sensjoin_sim::{ArqPolicy, Channel, NetworkBuilder};

    fn net() -> Network {
        let area = Area::new(250.0, 250.0);
        let pos = Placement::UniformRandom { n: 80 }.generate(area, 5);
        NetworkBuilder::new().build(pos, area).unwrap()
    }

    #[test]
    fn up_wave_counts_every_node() {
        let mut net = net();
        let reachable = net.len() - net.routing().unreachable().len();
        // Each node sends one 4-byte unit per subtree node: message = count.
        let (total, rep) = up_wave(
            &mut net,
            &|_| true,
            |_, recv: Vec<usize>| recv.iter().sum::<usize>() + 1,
            |m| m * 4,
            "test",
        );
        assert_eq!(total, reachable);
        assert!(rep.is_lossless());
        let t = rep.timing;
        assert!(t.pipelined > 0);
        // The slotted schedule can never beat pipelining.
        assert!(t.slotted >= t.pipelined);
        // Every non-base node transmitted at least one packet.
        let zero_tx = (0..net.len() as u32)
            .filter(|&i| {
                let v = sensjoin_relation::NodeId(i);
                v != net.base()
                    && net.routing().depth(v).is_some()
                    && net.stats().node(v).tx_packets == 0
            })
            .count();
        assert_eq!(zero_tx, 0);
    }

    #[test]
    fn up_wave_latency_exceeds_single_hop() {
        let mut net = net();
        let depth = net.routing().max_depth() as u64;
        let (_, rep) = up_wave(&mut net, &|_| true, |_, _: Vec<()>| (), |_| 10, "test");
        let t = rep.timing;
        let hop = net.radio().transfer_us(10);
        assert!(
            t.pipelined >= depth * hop,
            "latency {} < {depth} hops x {hop}",
            t.pipelined
        );
        // Equal-size messages: the slotted schedule is exactly depth x hop.
        assert_eq!(t.slotted, depth * hop);
    }

    #[test]
    fn down_wave_reaches_everyone_once() {
        let mut net = net();
        let mut visits = vec![0u32; net.len()];
        down_wave(
            &mut net,
            &|_| true,
            |v, _recv: DownArrival<'_, u8>| {
                visits[v.0 as usize] += 1;
                Some(7u8)
            },
            |_| 5,
            "test",
        );
        let reachable = net.len() - net.routing().unreachable().len();
        let visited = visits.iter().filter(|&&v| v == 1).count();
        assert_eq!(visited, reachable);
        assert!(visits.iter().all(|&v| v <= 1));
        // Broadcast economy: #transmissions = #nodes with children, while
        // #receptions = #reachable nodes - 1.
        let rx: u64 = (0..net.len() as u32)
            .map(|i| net.stats().node(sensjoin_relation::NodeId(i)).rx_packets)
            .sum();
        assert_eq!(rx, reachable as u64 - 1);
    }

    #[test]
    fn down_wave_pruning_stops_subtrees() {
        let mut net = net();
        let base = net.base();
        // Forward only from the base: depth-1 nodes receive, nobody deeper.
        let mut received = vec![false; net.len()];
        down_wave(
            &mut net,
            &|_| true,
            |v, recv: DownArrival<'_, u8>| {
                if matches!(recv, DownArrival::Intact(_)) {
                    received[v.0 as usize] = true;
                }
                (v == base).then_some(1u8)
            },
            |_| 3,
            "test",
        );
        for i in 0..net.len() as u32 {
            let v = sensjoin_relation::NodeId(i);
            let expect = net.routing().parent(v) == Some(base);
            assert_eq!(received[i as usize], expect, "{v}");
        }
    }

    #[test]
    fn up_wave_partial_participation() {
        let mut net = net();
        // Only depth <= 1 participates (root-closed set).
        let depths: Vec<Option<u32>> = (0..net.len() as u32)
            .map(|i| net.routing().depth(sensjoin_relation::NodeId(i)))
            .collect();
        let participates = move |v: NodeId| depths[v.0 as usize].is_some_and(|d| d <= 1);
        let (count, _) = up_wave(
            &mut net,
            &participates,
            |_, recv: Vec<usize>| recv.iter().sum::<usize>() + 1,
            |_| 2,
            "test",
        );
        let expect = (0..net.len() as u32)
            .filter(|&i| {
                net.routing()
                    .depth(sensjoin_relation::NodeId(i))
                    .is_some_and(|d| d <= 1)
            })
            .count();
        assert_eq!(count, expect);
    }

    #[test]
    fn up_wave_drops_undecodable_messages_and_reports_damage() {
        let mut net = net();
        // Total loss, no repair: every non-root transfer is damaged.
        net.set_channel(Some(Channel::bernoulli(1.0, 1)));
        let reachable = net.len() - net.routing().unreachable().len();
        let (total, rep) = up_wave(
            &mut net,
            &|_| true,
            |_, recv: Vec<usize>| recv.iter().sum::<usize>() + 1,
            |m| m * 4,
            "test",
        );
        // The base only counts itself: all child messages were dropped whole.
        assert_eq!(total, 1);
        assert_eq!(rep.damaged.len(), reachable - 1);
    }

    #[test]
    fn up_wave_arq_repairs_moderate_loss() {
        let mut net = net();
        net.set_channel(Some(Channel::bernoulli(0.2, 5)));
        net.set_arq(ArqPolicy::ack(10));
        let reachable = net.len() - net.routing().unreachable().len();
        let (total, rep) = up_wave(
            &mut net,
            &|_| true,
            |_, recv: Vec<usize>| recv.iter().sum::<usize>() + 1,
            |m| m * 4,
            "test",
        );
        assert_eq!(total, reachable);
        assert!(rep.is_lossless());
        assert!(net.stats().total_retx_packets() > 0);
    }

    #[test]
    fn dead_subtrees_are_absent_not_damaged() {
        let mut net = net();
        let base = net.base();
        let victim = *net
            .routing()
            .children(base)
            .iter()
            .max_by_key(|&&c| net.routing().descendants(c))
            .unwrap();
        net.fail_node(victim);
        // The wave still claims everyone participates — the dead node and
        // any of its descendants that could not reattach are *absent*, never
        // *damaged* (there was no in-flight data to lose).
        let (count, rep) = up_wave(
            &mut net,
            &|_| true,
            |_, recv: Vec<usize>| recv.iter().sum::<usize>() + 1,
            |m| m * 4,
            "test",
        );
        assert!(rep.damaged.is_empty());
        assert!(rep.absent.contains(&victim));
        for &v in &rep.absent {
            assert!(net.routing().depth(v).is_none());
        }
        // The wave visits exactly the post-repair tree.
        let reachable_now = (0..net.len() as u32)
            .map(NodeId)
            .filter(|&v| net.routing().depth(v).is_some())
            .count();
        assert_eq!(count, reachable_now);
        assert_eq!(rep.absent.len(), net.len() - reachable_now);
    }

    #[test]
    fn down_wave_marks_damaged_children() {
        let mut net = net();
        net.set_channel(Some(Channel::bernoulli(1.0, 2)));
        let base = net.base();
        let mut damaged_seen = 0;
        let rep = down_wave(
            &mut net,
            &|_| true,
            |v, recv: DownArrival<'_, u8>| {
                if matches!(recv, DownArrival::Damaged) {
                    damaged_seen += 1;
                }
                (v == base).then_some(1u8)
            },
            |_| 3,
            "test",
        );
        let expect = net.routing().children(base).len();
        assert_eq!(damaged_seen, expect);
        assert_eq!(rep.damaged.len(), expect);
    }

    /// Regression for the O(n)-scratch fix: the participant-table engine
    /// (and the split-borrow delivery port) must behave exactly like the
    /// explicit-tree path on a twin network — message, report and every
    /// per-node counter.
    #[test]
    fn up_wave_matches_explicit_tree_run() {
        let lossy = |net: &mut Network| {
            net.set_channel(Some(Channel::bernoulli(0.3, 7)));
            net.set_arq(ArqPolicy::ack(2));
        };
        let mut a = net();
        lossy(&mut a);
        // Depth-bounded participation is root-closed by construction.
        let depths: Vec<Option<u32>> = (0..a.len() as u32)
            .map(|i| a.routing().depth(NodeId(i)))
            .collect();
        let participates = move |v: NodeId| depths[v.0 as usize].is_some_and(|d| d <= 2);
        let (ma, ra) = up_wave(
            &mut a,
            &participates,
            |_, recv: Vec<usize>| recv.iter().sum::<usize>() + 1,
            |m| m * 4,
            "test",
        );
        let mut b = net();
        lossy(&mut b);
        let tree = b.routing().clone();
        let (mb, rb) = up_wave_on(
            &mut b,
            &tree,
            &participates,
            |_, recv: Vec<usize>| recv.iter().sum::<usize>() + 1,
            |m| m * 4,
            "test",
        );
        assert_eq!(ma, mb);
        assert_eq!(ra, rb);
        for v in a.topology().nodes() {
            assert_eq!(a.stats().node(v), b.stats().node(v), "{v}");
        }
    }

    #[test]
    fn sync_up_wave_forced_parallel_matches_serial() {
        let run = |mode: WaveMode| {
            set_wave_mode(mode);
            let mut net = net();
            net.set_tracing(true);
            net.set_channel(Some(Channel::bernoulli(0.25, 9)));
            net.set_arq(ArqPolicy::ack(3));
            let out = up_wave_sync(
                &mut net,
                &|_| true,
                |_, recv: Vec<usize>| recv.iter().sum::<usize>() + 1,
                |m| m * 4,
                "test",
            );
            set_wave_mode(WaveMode::Auto);
            (out, net)
        };
        let ((ms, rs), nets) = run(WaveMode::ForceSerial);
        let ((mp, rp), netp) = run(WaveMode::ForceParallel);
        assert_eq!(ms, mp);
        assert_eq!(rs, rp);
        for v in nets.topology().nodes() {
            assert_eq!(nets.stats().node(v), netp.stats().node(v), "{v}");
        }
        assert_eq!(
            nets.trace().unwrap().records(),
            netp.trace().unwrap().records()
        );
    }

    #[test]
    fn sync_down_wave_forced_parallel_matches_serial() {
        let run = |mode: WaveMode| {
            set_wave_mode(mode);
            let mut net = net();
            net.set_tracing(true);
            net.set_channel(Some(Channel::gilbert_elliott(0.3, 4.0, 13)));
            net.set_arq(ArqPolicy::summary(6));
            let rep = down_wave_sync(
                &mut net,
                &|_| true,
                |v, a: DownArrival<'_, u32>| match a {
                    DownArrival::Origin => Some(0),
                    DownArrival::Intact(d) => (v.0 % 5 != 4).then_some(d + 1),
                    DownArrival::Damaged => None,
                },
                |_| 24,
                "test",
            );
            set_wave_mode(WaveMode::Auto);
            (rep, net)
        };
        let (rs, nets) = run(WaveMode::ForceSerial);
        let (rp, netp) = run(WaveMode::ForceParallel);
        assert_eq!(rs, rp);
        for v in nets.topology().nodes() {
            assert_eq!(nets.stats().node(v), netp.stats().node(v), "{v}");
        }
        assert_eq!(
            nets.trace().unwrap().records(),
            netp.trace().unwrap().records()
        );
    }
}
