//! Tree-synchronized communication waves.
//!
//! SENS-Join and the external join are phase-structured (paper Fig. 1):
//! within a phase, data flows either leaf→root (*up waves*: collection
//! phases) or root→leaf (*down wave*: filter dissemination) along the
//! routing tree, with nodes waking exactly when their children's data is due
//! (TAG-style scheduling, [18]). Because siblings in different subtrees
//! transmit concurrently, a phase's latency is the longest chain of
//! dependent transfers — which these helpers compute while charging every
//! transmission through [`Network::unicast`] / [`Network::broadcast`].
//!
//! Over a lossy network (a [`sensjoin_sim::Channel`] attached to the
//! [`Network`]), a message can be permanently lost despite the ARQ budget.
//! The waves surface this honestly: an undecodable (incomplete) message is
//! dropped whole — the parent's `produce` simply never sees it — and the
//! sender is reported in [`WaveReport::damaged`] so the protocol driver can
//! fall back conservatively. In a down wave, a child whose copy was lost is
//! visited with [`DownArrival::Damaged`] instead of the message content
//! (loss is locally detectable: the fragment train was on the air but did
//! not decode — unlike pruning, where the parent stays silent).

use sensjoin_relation::NodeId;
use sensjoin_sim::{Network, RoutingTree, Time};

/// A phase's latency under the two scheduling models.
///
/// * `pipelined` — data-volume-driven: a node forwards as soon as all its
///   children reported; siblings in disjoint subtrees transmit concurrently.
///   The phase takes as long as its longest chain of dependent transfers.
/// * `slotted` — TAG-style level scheduling: each tree level gets a time
///   window sized for that level's slowest transmitter, and the phase walks
///   the levels one window at a time. This is the schedule the paper's
///   response-time bound (§VII) reflects.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaveTiming {
    /// Longest dependent-transfer chain.
    pub pipelined: Time,
    /// Sum over levels of the level's slowest transfer.
    pub slotted: Time,
}

impl WaveTiming {
    /// Sequential composition of phases.
    pub fn then(self, next: WaveTiming) -> WaveTiming {
        WaveTiming {
            pipelined: self.pipelined + next.pipelined,
            slotted: self.slotted + next.slotted,
        }
    }
}

/// What a wave reports back: its timing plus every node whose message was
/// permanently lost (empty on a lossless network).
#[derive(Debug, Clone, Default)]
pub struct WaveReport {
    /// Phase latency under both scheduling models.
    pub timing: WaveTiming,
    /// Up wave: nodes whose message to their parent was undecodable after
    /// the ARQ budget. Down wave: nodes that missed their parent's message.
    /// These nodes are alive and attached — their *data* was damaged in
    /// transit, and retransmission-style fallbacks can recover it.
    pub damaged: Vec<NodeId>,
    /// Participants the wave never visited because they are not part of the
    /// routing tree — dead or detached after node churn (plus permanently
    /// unreachable stragglers). Unlike `damaged`, an absent subtree holds no
    /// recoverable in-flight data: the protocol must reconcile its loss at
    /// the churn boundary (proxy re-election, origin restore) rather than
    /// retransmit.
    pub absent: Vec<NodeId>,
}

impl WaveReport {
    /// Whether every message of the wave arrived intact.
    pub fn is_lossless(&self) -> bool {
        self.damaged.is_empty()
    }
}

/// How a node of a down wave was reached.
#[derive(Debug, Clone, Copy)]
pub enum DownArrival<'a, M> {
    /// The wave's origin (the tree root): nothing was received.
    Origin,
    /// The parent's message, fully decoded.
    Intact(&'a M),
    /// The parent sent a message but it did not survive the channel — the
    /// content is unknown and the node must fall back conservatively.
    Damaged,
}

/// Runs a leaf→root wave over all nodes for which `participates` holds
/// (participants must form a root-closed subtree: every participant's parent
/// participates). The wave runs on the network's current routing tree; use
/// [`up_wave_on`] to run on a different tree (e.g. one rooted at an
/// in-network mediator).
///
/// For each node, `produce(node, received_from_children)` builds the message
/// to forward; `size_of` gives its wire size in bytes (0-byte messages cost
/// nothing). A child message lost on the lossy channel is dropped whole (the
/// parent receives fewer messages) and the child lands in
/// [`WaveReport::damaged`]. Returns the message produced at the root and the
/// wave's report.
pub fn up_wave<M>(
    net: &mut Network,
    participates: &dyn Fn(NodeId) -> bool,
    produce: impl FnMut(NodeId, Vec<M>) -> M,
    size_of: impl Fn(&M) -> usize,
    phase: &str,
) -> (M, WaveReport) {
    let tree = net.routing().clone();
    up_wave_on(net, &tree, participates, produce, size_of, phase)
}

/// [`up_wave`] over an explicit routing tree (its edges must be topology
/// links, which [`RoutingTree::build`] guarantees).
pub fn up_wave_on<M>(
    net: &mut Network,
    tree: &RoutingTree,
    participates: &dyn Fn(NodeId) -> bool,
    mut produce: impl FnMut(NodeId, Vec<M>) -> M,
    size_of: impl Fn(&M) -> usize,
    phase: &str,
) -> (M, WaveReport) {
    let order = tree.bottom_up_order();
    let n = net.len();
    let mut inbox: Vec<Vec<M>> = (0..n).map(|_| Vec::new()).collect();
    // completion[v] = time v's transfer to its parent finished.
    let mut completion: Vec<Time> = vec![0; n];
    // Slowest transfer per tree level (for the slotted schedule).
    let mut level_max: std::collections::BTreeMap<u32, Time> = Default::default();
    let mut damaged: Vec<NodeId> = Vec::new();
    let mut base_msg = None;
    let mut base_time = 0;
    for v in order {
        if !participates(v) {
            continue;
        }
        let received = std::mem::take(&mut inbox[v.0 as usize]);
        let ready = completion[v.0 as usize]; // max over children, see below
        let msg = produce(v, received);
        match tree.parent(v) {
            Some(parent) => {
                debug_assert!(participates(parent), "participants must be root-closed");
                let bytes = size_of(&msg);
                let d = net.unicast_delivery(v, parent, bytes, phase);
                if d.time > 0 {
                    let level = tree.depth(v).expect("participant is reachable");
                    let m = level_max.entry(level).or_default();
                    *m = (*m).max(d.time);
                }
                let done = ready + d.time;
                let p = parent.0 as usize;
                completion[p] = completion[p].max(done);
                if d.complete {
                    inbox[p].push(msg);
                } else {
                    // Undecodable message: dropped whole at the parent.
                    damaged.push(v);
                }
            }
            None => {
                base_time = ready;
                base_msg = Some(msg);
            }
        }
    }
    let absent = (0..n as u32)
        .map(NodeId)
        .filter(|&v| participates(v) && tree.depth(v).is_none())
        .collect();
    let report = WaveReport {
        timing: WaveTiming {
            pipelined: base_time,
            slotted: level_max.values().sum(),
        },
        damaged,
        absent,
    };
    (base_msg.expect("the tree root always participates"), report)
}

/// Owned arrival state queued for a down-wave node.
enum Arrival<M> {
    Origin,
    Msg(M),
    Damaged,
}

/// Runs a root→leaf wave. `produce(node, arrival)` is called with
/// [`DownArrival::Origin`] at the base station, [`DownArrival::Intact`] at
/// nodes that received their parent's message, and [`DownArrival::Damaged`]
/// at nodes whose copy was permanently lost on the channel; it returns the
/// message to broadcast to the node's participating children (`None`
/// suppresses forwarding — Selective Filter Forwarding's pruning). A single
/// broadcast reaches all participating children (one transmission, one
/// reception each — paper Fig. 3 `broadcast(SubtreeFilter)`).
///
/// Children whose copy was lost appear in [`WaveReport::damaged`].
pub fn down_wave<M: Clone>(
    net: &mut Network,
    participates: &dyn Fn(NodeId) -> bool,
    mut produce: impl FnMut(NodeId, DownArrival<'_, M>) -> Option<M>,
    size_of: impl Fn(&M) -> usize,
    phase: &str,
) -> WaveReport {
    let base = net.base();
    let mut latest: Time = 0;
    let mut level_max: std::collections::BTreeMap<u32, Time> = Default::default();
    let mut damaged: Vec<NodeId> = Vec::new();
    // (node, arrival state, arrival time)
    let mut queue: std::collections::VecDeque<(NodeId, Arrival<M>, Time)> =
        std::collections::VecDeque::new();
    queue.push_back((base, Arrival::Origin, 0));
    while let Some((v, arrival, at)) = queue.pop_front() {
        latest = latest.max(at);
        let out = match &arrival {
            Arrival::Origin => produce(v, DownArrival::Origin),
            Arrival::Msg(m) => produce(v, DownArrival::Intact(m)),
            Arrival::Damaged => produce(v, DownArrival::Damaged),
        };
        let Some(out) = out else { continue };
        let children: Vec<NodeId> = net
            .routing()
            .children(v)
            .iter()
            .copied()
            .filter(|&c| participates(c))
            .collect();
        if children.is_empty() {
            continue;
        }
        let bytes = size_of(&out);
        let d = net.broadcast_delivery(v, &children, bytes, phase);
        if d.time > 0 {
            let level = net.routing().depth(v).expect("broadcaster is reachable");
            let m = level_max.entry(level).or_default();
            *m = (*m).max(d.time);
        }
        for (i, c) in children.into_iter().enumerate() {
            // A zero-byte message reaches nobody physically, but carries no
            // content either: treat it as intact (matches lossless runs).
            if bytes == 0 || d.complete[i] {
                queue.push_back((c, Arrival::Msg(out.clone()), at + d.time));
            } else {
                damaged.push(c);
                queue.push_back((c, Arrival::Damaged, at + d.time));
            }
        }
    }
    let absent = (0..net.len() as u32)
        .map(NodeId)
        .filter(|&v| participates(v) && net.routing().depth(v).is_none())
        .collect();
    WaveReport {
        timing: WaveTiming {
            pipelined: latest,
            slotted: level_max.values().sum(),
        },
        damaged,
        absent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensjoin_field::{Area, Placement};
    use sensjoin_sim::{ArqPolicy, Channel, NetworkBuilder};

    fn net() -> Network {
        let area = Area::new(250.0, 250.0);
        let pos = Placement::UniformRandom { n: 80 }.generate(area, 5);
        NetworkBuilder::new().build(pos, area).unwrap()
    }

    #[test]
    fn up_wave_counts_every_node() {
        let mut net = net();
        let reachable = net.len() - net.routing().unreachable().len();
        // Each node sends one 4-byte unit per subtree node: message = count.
        let (total, rep) = up_wave(
            &mut net,
            &|_| true,
            |_, recv: Vec<usize>| recv.iter().sum::<usize>() + 1,
            |m| m * 4,
            "test",
        );
        assert_eq!(total, reachable);
        assert!(rep.is_lossless());
        let t = rep.timing;
        assert!(t.pipelined > 0);
        // The slotted schedule can never beat pipelining.
        assert!(t.slotted >= t.pipelined);
        // Every non-base node transmitted at least one packet.
        let zero_tx = (0..net.len() as u32)
            .filter(|&i| {
                let v = sensjoin_relation::NodeId(i);
                v != net.base()
                    && net.routing().depth(v).is_some()
                    && net.stats().node(v).tx_packets == 0
            })
            .count();
        assert_eq!(zero_tx, 0);
    }

    #[test]
    fn up_wave_latency_exceeds_single_hop() {
        let mut net = net();
        let depth = net.routing().max_depth() as u64;
        let (_, rep) = up_wave(&mut net, &|_| true, |_, _: Vec<()>| (), |_| 10, "test");
        let t = rep.timing;
        let hop = net.radio().transfer_us(10);
        assert!(
            t.pipelined >= depth * hop,
            "latency {} < {depth} hops x {hop}",
            t.pipelined
        );
        // Equal-size messages: the slotted schedule is exactly depth x hop.
        assert_eq!(t.slotted, depth * hop);
    }

    #[test]
    fn down_wave_reaches_everyone_once() {
        let mut net = net();
        let mut visits = vec![0u32; net.len()];
        down_wave(
            &mut net,
            &|_| true,
            |v, _recv: DownArrival<'_, u8>| {
                visits[v.0 as usize] += 1;
                Some(7u8)
            },
            |_| 5,
            "test",
        );
        let reachable = net.len() - net.routing().unreachable().len();
        let visited = visits.iter().filter(|&&v| v == 1).count();
        assert_eq!(visited, reachable);
        assert!(visits.iter().all(|&v| v <= 1));
        // Broadcast economy: #transmissions = #nodes with children, while
        // #receptions = #reachable nodes - 1.
        let rx: u64 = (0..net.len() as u32)
            .map(|i| net.stats().node(sensjoin_relation::NodeId(i)).rx_packets)
            .sum();
        assert_eq!(rx, reachable as u64 - 1);
    }

    #[test]
    fn down_wave_pruning_stops_subtrees() {
        let mut net = net();
        let base = net.base();
        // Forward only from the base: depth-1 nodes receive, nobody deeper.
        let mut received = vec![false; net.len()];
        down_wave(
            &mut net,
            &|_| true,
            |v, recv: DownArrival<'_, u8>| {
                if matches!(recv, DownArrival::Intact(_)) {
                    received[v.0 as usize] = true;
                }
                (v == base).then_some(1u8)
            },
            |_| 3,
            "test",
        );
        for i in 0..net.len() as u32 {
            let v = sensjoin_relation::NodeId(i);
            let expect = net.routing().parent(v) == Some(base);
            assert_eq!(received[i as usize], expect, "{v}");
        }
    }

    #[test]
    fn up_wave_partial_participation() {
        let mut net = net();
        // Only depth <= 1 participates (root-closed set).
        let depths: Vec<Option<u32>> = (0..net.len() as u32)
            .map(|i| net.routing().depth(sensjoin_relation::NodeId(i)))
            .collect();
        let participates = move |v: NodeId| depths[v.0 as usize].is_some_and(|d| d <= 1);
        let (count, _) = up_wave(
            &mut net,
            &participates,
            |_, recv: Vec<usize>| recv.iter().sum::<usize>() + 1,
            |_| 2,
            "test",
        );
        let expect = (0..net.len() as u32)
            .filter(|&i| {
                net.routing()
                    .depth(sensjoin_relation::NodeId(i))
                    .is_some_and(|d| d <= 1)
            })
            .count();
        assert_eq!(count, expect);
    }

    #[test]
    fn up_wave_drops_undecodable_messages_and_reports_damage() {
        let mut net = net();
        // Total loss, no repair: every non-root transfer is damaged.
        net.set_channel(Some(Channel::bernoulli(1.0, 1)));
        let reachable = net.len() - net.routing().unreachable().len();
        let (total, rep) = up_wave(
            &mut net,
            &|_| true,
            |_, recv: Vec<usize>| recv.iter().sum::<usize>() + 1,
            |m| m * 4,
            "test",
        );
        // The base only counts itself: all child messages were dropped whole.
        assert_eq!(total, 1);
        assert_eq!(rep.damaged.len(), reachable - 1);
    }

    #[test]
    fn up_wave_arq_repairs_moderate_loss() {
        let mut net = net();
        net.set_channel(Some(Channel::bernoulli(0.2, 5)));
        net.set_arq(ArqPolicy::ack(10));
        let reachable = net.len() - net.routing().unreachable().len();
        let (total, rep) = up_wave(
            &mut net,
            &|_| true,
            |_, recv: Vec<usize>| recv.iter().sum::<usize>() + 1,
            |m| m * 4,
            "test",
        );
        assert_eq!(total, reachable);
        assert!(rep.is_lossless());
        assert!(net.stats().total_retx_packets() > 0);
    }

    #[test]
    fn dead_subtrees_are_absent_not_damaged() {
        let mut net = net();
        let base = net.base();
        let victim = *net
            .routing()
            .children(base)
            .iter()
            .max_by_key(|&&c| net.routing().descendants(c))
            .unwrap();
        net.fail_node(victim);
        // The wave still claims everyone participates — the dead node and
        // any of its descendants that could not reattach are *absent*, never
        // *damaged* (there was no in-flight data to lose).
        let (count, rep) = up_wave(
            &mut net,
            &|_| true,
            |_, recv: Vec<usize>| recv.iter().sum::<usize>() + 1,
            |m| m * 4,
            "test",
        );
        assert!(rep.damaged.is_empty());
        assert!(rep.absent.contains(&victim));
        for &v in &rep.absent {
            assert!(net.routing().depth(v).is_none());
        }
        // The wave visits exactly the post-repair tree.
        let reachable_now = (0..net.len() as u32)
            .map(NodeId)
            .filter(|&v| net.routing().depth(v).is_some())
            .count();
        assert_eq!(count, reachable_now);
        assert_eq!(rep.absent.len(), net.len() - reachable_now);
    }

    #[test]
    fn down_wave_marks_damaged_children() {
        let mut net = net();
        net.set_channel(Some(Channel::bernoulli(1.0, 2)));
        let base = net.base();
        let mut damaged_seen = 0;
        let rep = down_wave(
            &mut net,
            &|_| true,
            |v, recv: DownArrival<'_, u8>| {
                if matches!(recv, DownArrival::Damaged) {
                    damaged_seen += 1;
                }
                (v == base).then_some(1u8)
            },
            |_| 3,
            "test",
        );
        let expect = net.routing().children(base).len();
        assert_eq!(damaged_seen, expect);
        assert_eq!(rep.damaged.len(), expect);
    }
}
