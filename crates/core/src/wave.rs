//! Tree-synchronized communication waves.
//!
//! SENS-Join and the external join are phase-structured (paper Fig. 1):
//! within a phase, data flows either leaf→root (*up waves*: collection
//! phases) or root→leaf (*down wave*: filter dissemination) along the
//! routing tree, with nodes waking exactly when their children's data is due
//! (TAG-style scheduling, [18]). Because siblings in different subtrees
//! transmit concurrently, a phase's latency is the longest chain of
//! dependent transfers — which these helpers compute while charging every
//! transmission through [`Network::unicast`] / [`Network::broadcast`].

use sensjoin_relation::NodeId;
use sensjoin_sim::{Network, RoutingTree, Time};

/// A phase's latency under the two scheduling models.
///
/// * `pipelined` — data-volume-driven: a node forwards as soon as all its
///   children reported; siblings in disjoint subtrees transmit concurrently.
///   The phase takes as long as its longest chain of dependent transfers.
/// * `slotted` — TAG-style level scheduling: each tree level gets a time
///   window sized for that level's slowest transmitter, and the phase walks
///   the levels one window at a time. This is the schedule the paper's
///   response-time bound (§VII) reflects.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaveTiming {
    /// Longest dependent-transfer chain.
    pub pipelined: Time,
    /// Sum over levels of the level's slowest transfer.
    pub slotted: Time,
}

impl WaveTiming {
    /// Sequential composition of phases.
    pub fn then(self, next: WaveTiming) -> WaveTiming {
        WaveTiming {
            pipelined: self.pipelined + next.pipelined,
            slotted: self.slotted + next.slotted,
        }
    }
}

/// Runs a leaf→root wave over all nodes for which `participates` holds
/// (participants must form a root-closed subtree: every participant's parent
/// participates). The wave runs on the network's current routing tree; use
/// [`up_wave_on`] to run on a different tree (e.g. one rooted at an
/// in-network mediator).
///
/// For each node, `produce(node, received_from_children)` builds the message
/// to forward; `size_of` gives its wire size in bytes (0-byte messages cost
/// nothing). Returns the message produced at the root and the phase's
/// completion time.
pub fn up_wave<M>(
    net: &mut Network,
    participates: &dyn Fn(NodeId) -> bool,
    produce: impl FnMut(NodeId, Vec<M>) -> M,
    size_of: impl Fn(&M) -> usize,
    phase: &str,
) -> (M, WaveTiming) {
    let tree = net.routing().clone();
    up_wave_on(net, &tree, participates, produce, size_of, phase)
}

/// [`up_wave`] over an explicit routing tree (its edges must be topology
/// links, which [`RoutingTree::build`] guarantees).
pub fn up_wave_on<M>(
    net: &mut Network,
    tree: &RoutingTree,
    participates: &dyn Fn(NodeId) -> bool,
    mut produce: impl FnMut(NodeId, Vec<M>) -> M,
    size_of: impl Fn(&M) -> usize,
    phase: &str,
) -> (M, WaveTiming) {
    let order = tree.bottom_up_order();
    let n = net.len();
    let mut inbox: Vec<Vec<M>> = (0..n).map(|_| Vec::new()).collect();
    // completion[v] = time v's transfer to its parent finished.
    let mut completion: Vec<Time> = vec![0; n];
    // Slowest transfer per tree level (for the slotted schedule).
    let mut level_max: std::collections::BTreeMap<u32, Time> = Default::default();
    let mut base_msg = None;
    let mut base_time = 0;
    for v in order {
        if !participates(v) {
            continue;
        }
        let received = std::mem::take(&mut inbox[v.0 as usize]);
        let ready = completion[v.0 as usize]; // max over children, see below
        let msg = produce(v, received);
        match tree.parent(v) {
            Some(parent) => {
                debug_assert!(participates(parent), "participants must be root-closed");
                let bytes = size_of(&msg);
                let dt = net.unicast(v, parent, bytes, phase);
                if dt > 0 {
                    let level = tree.depth(v).expect("participant is reachable");
                    let m = level_max.entry(level).or_default();
                    *m = (*m).max(dt);
                }
                let done = ready + dt;
                let p = parent.0 as usize;
                completion[p] = completion[p].max(done);
                inbox[p].push(msg);
            }
            None => {
                base_time = ready;
                base_msg = Some(msg);
            }
        }
    }
    let timing = WaveTiming {
        pipelined: base_time,
        slotted: level_max.values().sum(),
    };
    (base_msg.expect("the tree root always participates"), timing)
}

/// Runs a root→leaf wave. `produce(node, received)` is called with `None`
/// at the base station and `Some(msg)` at nodes that received one; it
/// returns the message to broadcast to the node's participating children
/// (`None` suppresses forwarding — Selective Filter Forwarding's pruning).
/// A single broadcast reaches all participating children (one transmission,
/// one reception each — paper Fig. 3 `broadcast(SubtreeFilter)`).
///
/// Returns the phase's completion time.
pub fn down_wave<M: Clone>(
    net: &mut Network,
    participates: &dyn Fn(NodeId) -> bool,
    mut produce: impl FnMut(NodeId, Option<&M>) -> Option<M>,
    size_of: impl Fn(&M) -> usize,
    phase: &str,
) -> WaveTiming {
    let base = net.base();
    let mut latest: Time = 0;
    let mut level_max: std::collections::BTreeMap<u32, Time> = Default::default();
    // (node, message to process, arrival time)
    let mut queue: std::collections::VecDeque<(NodeId, Option<M>, Time)> =
        std::collections::VecDeque::new();
    queue.push_back((base, None, 0));
    while let Some((v, received, at)) = queue.pop_front() {
        latest = latest.max(at);
        let out = produce(v, received.as_ref());
        let Some(out) = out else { continue };
        let children: Vec<NodeId> = net
            .routing()
            .children(v)
            .iter()
            .copied()
            .filter(|&c| participates(c))
            .collect();
        if children.is_empty() {
            continue;
        }
        let bytes = size_of(&out);
        let dt = net.broadcast(v, &children, bytes, phase);
        if dt > 0 {
            let level = net.routing().depth(v).expect("broadcaster is reachable");
            let m = level_max.entry(level).or_default();
            *m = (*m).max(dt);
        }
        for c in children {
            queue.push_back((c, Some(out.clone()), at + dt));
        }
    }
    WaveTiming {
        pipelined: latest,
        slotted: level_max.values().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensjoin_field::{Area, Placement};
    use sensjoin_sim::NetworkBuilder;

    fn net() -> Network {
        let area = Area::new(250.0, 250.0);
        let pos = Placement::UniformRandom { n: 80 }.generate(area, 5);
        NetworkBuilder::new().build(pos, area).unwrap()
    }

    #[test]
    fn up_wave_counts_every_node() {
        let mut net = net();
        let reachable = net.len() - net.routing().unreachable().len();
        // Each node sends one 4-byte unit per subtree node: message = count.
        let (total, t) = up_wave(
            &mut net,
            &|_| true,
            |_, recv: Vec<usize>| recv.iter().sum::<usize>() + 1,
            |m| m * 4,
            "test",
        );
        assert_eq!(total, reachable);
        assert!(t.pipelined > 0);
        // The slotted schedule can never beat pipelining.
        assert!(t.slotted >= t.pipelined);
        // Every non-base node transmitted at least one packet.
        let zero_tx = (0..net.len() as u32)
            .filter(|&i| {
                let v = sensjoin_relation::NodeId(i);
                v != net.base()
                    && net.routing().depth(v).is_some()
                    && net.stats().node(v).tx_packets == 0
            })
            .count();
        assert_eq!(zero_tx, 0);
    }

    #[test]
    fn up_wave_latency_exceeds_single_hop() {
        let mut net = net();
        let depth = net.routing().max_depth() as u64;
        let (_, t) = up_wave(&mut net, &|_| true, |_, _: Vec<()>| (), |_| 10, "test");
        let hop = net.radio().transfer_us(10);
        assert!(
            t.pipelined >= depth * hop,
            "latency {} < {depth} hops x {hop}",
            t.pipelined
        );
        // Equal-size messages: the slotted schedule is exactly depth x hop.
        assert_eq!(t.slotted, depth * hop);
    }

    #[test]
    fn down_wave_reaches_everyone_once() {
        let mut net = net();
        let mut visits = vec![0u32; net.len()];
        down_wave(
            &mut net,
            &|_| true,
            |v, _recv| {
                visits[v.0 as usize] += 1;
                Some(7u8)
            },
            |_| 5,
            "test",
        );
        let reachable = net.len() - net.routing().unreachable().len();
        let visited = visits.iter().filter(|&&v| v == 1).count();
        assert_eq!(visited, reachable);
        assert!(visits.iter().all(|&v| v <= 1));
        // Broadcast economy: #transmissions = #nodes with children, while
        // #receptions = #reachable nodes - 1.
        let rx: u64 = (0..net.len() as u32)
            .map(|i| net.stats().node(sensjoin_relation::NodeId(i)).rx_packets)
            .sum();
        assert_eq!(rx, reachable as u64 - 1);
    }

    #[test]
    fn down_wave_pruning_stops_subtrees() {
        let mut net = net();
        let base = net.base();
        // Forward only from the base: depth-1 nodes receive, nobody deeper.
        let mut received = vec![false; net.len()];
        down_wave(
            &mut net,
            &|_| true,
            |v, recv| {
                if recv.is_some() {
                    received[v.0 as usize] = true;
                }
                (v == base).then_some(1u8)
            },
            |_| 3,
            "test",
        );
        for i in 0..net.len() as u32 {
            let v = sensjoin_relation::NodeId(i);
            let expect = net.routing().parent(v) == Some(base);
            assert_eq!(received[i as usize], expect, "{v}");
        }
    }

    #[test]
    fn up_wave_partial_participation() {
        let mut net = net();
        // Only depth <= 1 participates (root-closed set).
        let depths: Vec<Option<u32>> = (0..net.len() as u32)
            .map(|i| net.routing().depth(sensjoin_relation::NodeId(i)))
            .collect();
        let participates = move |v: NodeId| depths[v.0 as usize].is_some_and(|d| d <= 1);
        let (count, _) = up_wave(
            &mut net,
            &participates,
            |_, recv: Vec<usize>| recv.iter().sum::<usize>() + 1,
            |_| 2,
            "test",
        );
        let expect = (0..net.len() as u32)
            .filter(|&i| {
                net.routing()
                    .depth(sensjoin_relation::NodeId(i))
                    .is_some_and(|d| d <= 1)
            })
            .count();
        assert_eq!(count, expect);
    }
}
