//! Experiment workloads: the paper's query family and selectivity
//! calibration.
//!
//! §VI: "The join conditions are range conditions in the style of Q1 and
//! Q2, used to vary the fraction of tuples in the result. The queries do not
//! contain selection predicates. In addition, we query the same number of
//! attributes from both relations." This module generates exactly that
//! family — Q1-style one-sided range conditions `A.j - B.j > c` (which also
//! exclude trivial self-pairs) over configurable join attributes, plus
//! symmetric SELECT lists — and calibrates the thresholds so that a target
//! fraction of the nodes contributes to the result (the x-axis of Fig. 10).

use crate::snetwork::SensorNetwork;
use sensjoin_relation::NodeId;

/// A parameterized experiment query:
/// `SELECT A.s.., B.s.. FROM Sensors A, Sensors B WHERE A.j1 - B.j1 > c1 AND .. ONCE`.
///
/// # Example
///
/// ```
/// use sensjoin_core::workload::RangeQueryFamily;
/// use sensjoin_core::SensorNetworkBuilder;
/// use sensjoin_field::{Area, Placement};
///
/// let snet = SensorNetworkBuilder::new()
///     .area(Area::new(300.0, 300.0))
///     .placement(Placement::UniformRandom { n: 120 })
///     .seed(5)
///     .build()
///     .unwrap();
/// let calibrated = RangeQueryFamily::ratio_33().calibrate(&snet, 0.10);
/// assert!((calibrated.achieved_fraction - 0.10).abs() < 0.05);
/// assert!(calibrated.sql.contains("A.temp - B.temp >"));
/// ```
#[derive(Debug, Clone)]
pub struct RangeQueryFamily {
    /// Join attributes (one range condition each).
    pub join_attrs: Vec<String>,
    /// Additional non-join attributes in the SELECT list (queried from both
    /// relations). With an empty list the join attributes themselves are
    /// selected, giving the 100 % join-attribute ratio of Fig. 12.
    pub select_attrs: Vec<String>,
    /// Relation name (default `Sensors`).
    pub relation: String,
}

impl RangeQueryFamily {
    /// Creates a family over the default `Sensors` relation.
    pub fn new(
        join_attrs: impl IntoIterator<Item = impl Into<String>>,
        select_attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        Self {
            join_attrs: join_attrs.into_iter().map(Into::into).collect(),
            select_attrs: select_attrs.into_iter().map(Into::into).collect(),
            relation: "Sensors".to_owned(),
        }
    }

    /// The paper's "33 % join attributes" default: one join attribute out of
    /// three referenced.
    pub fn ratio_33() -> Self {
        Self::new(["temp"], ["hum", "pres"])
    }

    /// The paper's "60 % join attributes" default: three join attributes out
    /// of five referenced.
    pub fn ratio_60() -> Self {
        Self::new(["temp", "hum", "pres"], ["light", "y"])
    }

    /// Number of attributes referenced per relation (join + selected).
    pub fn attrs_overall(&self) -> usize {
        self.join_attrs.len() + self.select_attrs.len()
    }

    /// Renders the SQL for the given per-condition thresholds.
    ///
    /// # Panics
    /// Panics if `thresholds.len() != join_attrs.len()`.
    pub fn sql(&self, thresholds: &[f64]) -> String {
        assert_eq!(thresholds.len(), self.join_attrs.len());
        let mut select: Vec<String> = Vec::new();
        let selected: &[String] = if self.select_attrs.is_empty() {
            &self.join_attrs
        } else {
            &self.select_attrs
        };
        for s in selected {
            select.push(format!("A.{s}"));
            select.push(format!("B.{s}"));
        }
        let conds: Vec<String> = self
            .join_attrs
            .iter()
            .zip(thresholds)
            .map(|(j, c)| format!("A.{j} - B.{j} > {c}"))
            .collect();
        format!(
            "SELECT {} FROM {} A, {} B WHERE {} ONCE",
            select.join(", "),
            self.relation,
            self.relation,
            conds.join(" AND ")
        )
    }

    /// Standard deviation of each join attribute over the deployment — the
    /// natural scale for thresholds.
    pub fn sigmas(&self, snet: &SensorNetwork) -> Vec<f64> {
        self.join_attrs
            .iter()
            .map(|name| {
                let i = snet.master_index(name).expect("known attribute");
                let n = snet.len() as f64;
                let mean: f64 = (0..snet.len() as u32)
                    .map(|v| snet.readings(NodeId(v))[i])
                    .sum::<f64>()
                    / n;
                let var: f64 = (0..snet.len() as u32)
                    .map(|v| (snet.readings(NodeId(v))[i] - mean).powi(2))
                    .sum::<f64>()
                    / n;
                var.sqrt().max(1e-9)
            })
            .collect()
    }

    /// The fraction of nodes contributing to the result for normalized
    /// threshold `c` (actual thresholds are `c * sigma_k`). Monotone
    /// non-increasing in `c`.
    pub fn fraction(&self, snet: &SensorNetwork, c: f64) -> f64 {
        let sigmas = self.sigmas(snet);
        let idx: Vec<usize> = self
            .join_attrs
            .iter()
            .map(|n| snet.master_index(n).expect("known attribute"))
            .collect();
        let n = snet.len();
        let rows: Vec<Vec<f64>> = (0..n as u32)
            .map(|v| idx.iter().map(|&i| snet.readings(NodeId(v))[i]).collect())
            .collect();
        let pair_joins = |a: &[f64], b: &[f64]| -> bool {
            a.iter()
                .zip(b)
                .zip(&sigmas)
                .all(|((&x, &y), &s)| x - y > c * s)
        };
        let mut contributes = vec![false; n];
        for i in 0..n {
            if contributes[i] {
                // Might still be needed as the A-side witness for others,
                // so no skip on the outer loop; the flag check below keeps
                // the inner work small anyway.
            }
            for j in 0..n {
                if pair_joins(&rows[i], &rows[j]) {
                    contributes[i] = true;
                    contributes[j] = true;
                }
            }
        }
        contributes.iter().filter(|&&b| b).count() as f64 / n as f64
    }

    /// Finds the normalized threshold whose contributor fraction is closest
    /// to `target` (binary search over `c ∈ [0, 8]`; the fraction is
    /// monotone non-increasing in `c`).
    pub fn calibrate(&self, snet: &SensorNetwork, target: f64) -> CalibratedQuery {
        let (mut lo, mut hi) = (0.0f64, 8.0f64);
        let mut best = (f64::INFINITY, 0.0, 0.0);
        for _ in 0..24 {
            let mid = 0.5 * (lo + hi);
            let f = self.fraction(snet, mid);
            let err = (f - target).abs();
            if err < best.0 {
                best = (err, mid, f);
            }
            if f > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let sigmas = self.sigmas(snet);
        let thresholds: Vec<f64> = sigmas.iter().map(|s| s * best.1).collect();
        CalibratedQuery {
            sql: self.sql(&thresholds),
            normalized_threshold: best.1,
            achieved_fraction: best.2,
        }
    }
}

/// A query calibrated to a target contributor fraction.
#[derive(Debug, Clone)]
pub struct CalibratedQuery {
    /// The rendered SQL.
    pub sql: String,
    /// The normalized threshold found.
    pub normalized_threshold: f64,
    /// The fraction of nodes actually contributing under this threshold.
    pub achieved_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snetwork::SensorNetworkBuilder;
    use crate::{ExternalJoin, JoinMethod};
    use sensjoin_field::{Area, Placement};
    use sensjoin_query::parse;

    fn snet() -> SensorNetwork {
        SensorNetworkBuilder::new()
            .area(Area::new(350.0, 350.0))
            .placement(Placement::UniformRandom { n: 120 })
            .seed(5)
            .build()
            .unwrap()
    }

    #[test]
    fn sql_rendering() {
        let f = RangeQueryFamily::ratio_33();
        let sql = f.sql(&[0.5]);
        assert!(sql.contains("A.temp - B.temp > 0.5"));
        assert!(sql.contains("A.hum, B.hum, A.pres, B.pres"));
        assert!(sql.ends_with("ONCE"));
        assert_eq!(f.attrs_overall(), 3);
        assert_eq!(RangeQueryFamily::ratio_60().attrs_overall(), 5);
    }

    #[test]
    fn hundred_percent_ratio_selects_join_attrs() {
        let f = RangeQueryFamily::new(["temp"], Vec::<String>::new());
        let sql = f.sql(&[1.0]);
        assert!(sql.contains("SELECT A.temp, B.temp"));
    }

    #[test]
    fn fraction_monotone_in_threshold() {
        let s = snet();
        let f = RangeQueryFamily::ratio_33();
        let f0 = f.fraction(&s, 0.1);
        let f1 = f.fraction(&s, 1.0);
        let f2 = f.fraction(&s, 3.0);
        assert!(f0 >= f1 && f1 >= f2, "{f0} {f1} {f2}");
        assert!(f0 > 0.5, "near-zero threshold joins almost everyone: {f0}");
    }

    #[test]
    fn calibration_hits_target() {
        let s = snet();
        let f = RangeQueryFamily::ratio_33();
        let cal = f.calibrate(&s, 0.10);
        assert!(
            (cal.achieved_fraction - 0.10).abs() < 0.05,
            "wanted 10%, got {}",
            cal.achieved_fraction
        );
        // The calibration's prediction matches the protocol's observation.
        let mut s = s;
        let cq = s.compile(&parse(&cal.sql).unwrap()).unwrap();
        let out = ExternalJoin.execute(&mut s, &cq).unwrap();
        let observed = out.contributor_fraction(s.len());
        assert!(
            (observed - cal.achieved_fraction).abs() < 1e-9,
            "calibrated {} vs observed {}",
            cal.achieved_fraction,
            observed
        );
    }

    #[test]
    fn sigmas_positive() {
        let s = snet();
        for sg in RangeQueryFamily::ratio_60().sigmas(&s) {
            assert!(sg > 0.0);
        }
    }
}
