//! Liveness-projected exactness under node churn.
//!
//! The churn subsystem's contract: under any schedule of crash-stop
//! failures, reboots with state loss, and revivals, an execution's result is
//! *bit-identical* to a lossless join over the tuples of the contributing
//! set C — the nodes that participated at query start, were alive at query
//! end, and were attached to the routing tree at query end. Only rows whose
//! data was actually hosted on departed nodes are lost; everything else
//! (proxy re-election, origin restores, filter-population reconciliation)
//! keeps surviving rows intact.

use proptest::prelude::*;
use sensjoin_core::{
    ContinuousSensJoin, ExternalJoin, JoinMethod, QueryGroup, SensJoin, SensJoinConfig,
    SensorNetwork, SensorNetworkBuilder,
};
use sensjoin_field::{presets, Area, Placement};
use sensjoin_query::parse;
use sensjoin_relation::NodeId;
use sensjoin_sim::{ChurnAction, ChurnTimeline};

const SQL: &str = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                   WHERE A.temp - B.temp > 3.0 ONCE";
const SQL_CONT: &str = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                        WHERE A.temp - B.temp > 3.0 SAMPLE PERIOD 30";

const N: usize = 80;

fn snet(seed: u64) -> SensorNetwork {
    SensorNetworkBuilder::new()
        .area(Area::new(300.0, 300.0))
        .placement(Placement::UniformRandom { n: N })
        .seed(seed)
        .build()
        .unwrap()
}

/// A churn schedule: (boundary, victim, crash?) triples. One-shot
/// executions poll boundary 0 (pre-start), 1 (post-collection) and
/// 2 (post-filter); later boundaries never fire and exercise the
/// exhaustion path.
fn schedule_strategy() -> impl Strategy<Value = Vec<(u32, u16, bool)>> {
    prop::collection::vec((0..4u32, 0..(N as u16), any::<bool>()), 0..12)
}

fn timeline(schedule: &[(u32, u16, bool)]) -> ChurnTimeline {
    let mut tl = ChurnTimeline::new();
    for &(b, v, crash) in schedule {
        let action = if crash {
            ChurnAction::Crash
        } else {
            ChurnAction::Revive
        };
        tl = tl.at_boundary(b, NodeId(v as u32), action);
    }
    tl
}

/// Nodes alive and attached right now.
fn live_attached(s: &SensorNetwork) -> Vec<bool> {
    (0..s.len() as u32)
        .map(|v| {
            let v = NodeId(v);
            s.net().is_alive(v) && s.net().routing().depth(v).is_some()
        })
        .collect()
}

/// Makes `twin`'s alive set equal `mask` (twin has no churn timeline of its
/// own; its tree self-heals through the same localized repair path).
fn sync_alive(twin: &mut SensorNetwork, mask: &[bool]) {
    let base = twin.net().base();
    for (i, &want_alive) in mask.iter().enumerate() {
        let v = NodeId(i as u32);
        if v == base {
            continue;
        }
        if want_alive && !twin.net().is_alive(v) {
            twin.net_mut().revive_node(v);
        } else if !want_alive && twin.net().is_alive(v) {
            twin.net_mut().fail_node(v);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One-shot SENS-Join: the churned result equals a lossless external
    /// join over a twin network where exactly the non-contributing nodes
    /// are failed up front.
    #[test]
    fn one_shot_liveness_projected_exactness(
        seed in 1..48u64,
        schedule in schedule_strategy(),
    ) {
        let tl = timeline(&schedule);

        // P0 — the start population: what the pre-start boundary leaves
        // alive and attached. Replicated on a probe twin (same build, same
        // timeline, one boundary poll).
        let mut probe = snet(seed);
        probe.net_mut().set_churn(Some(tl.clone()));
        probe.net_mut().apply_churn(0);
        let p0 = live_attached(&probe);

        let mut s = snet(seed);
        s.net_mut().set_churn(Some(tl));
        let cq = s.compile(&parse(SQL).unwrap()).unwrap();
        let out = SensJoin::default().execute(&mut s, &cq).unwrap();

        // C: participated at start, alive and attached at the end.
        let end = live_attached(&s);
        let c: Vec<bool> = p0.iter().zip(&end).map(|(&a, &b)| a && b).collect();

        // `complete` is honest: true iff no participant fell out of C.
        let all_survived = p0.iter().zip(&c).all(|(&p, &c)| !p || c);
        prop_assert_eq!(out.complete, all_survived);
        if schedule.is_empty() {
            prop_assert!(!out.churned);
        }

        // Twin: exactly C is alive. If the deaths partition C differently
        // than on the churned network (repair seams), the twin is not a
        // valid reference — skip.
        let mut twin = snet(seed);
        sync_alive(&mut twin, &c);
        prop_assume!(live_attached(&twin) == c);
        let reference = ExternalJoin.execute(&mut twin, &cq).unwrap();
        prop_assert!(
            out.result.same_result(&reference.result),
            "churned result diverged from the lossless join over the survivors"
        );
    }

    /// Continuous rounds under churn: every round's result equals a
    /// lossless one-shot join over the currently live attached population.
    #[test]
    fn continuous_liveness_projected_exactness(
        seed in 1..32u64,
        schedule in prop::collection::vec((0..5u32, 0..(N as u16), any::<bool>()), 0..10),
    ) {
        let mut s = snet(seed);
        s.net_mut().set_churn(Some(timeline(&schedule)));
        let cq = s.compile(&parse(SQL_CONT).unwrap()).unwrap();
        let ref_cq = s.compile(&parse(SQL).unwrap()).unwrap();
        let mut cont = ContinuousSensJoin::new();
        let mut twin = snet(seed);
        let specs = presets::indoor_climate();
        for round in 0..5u64 {
            if round > 0 {
                s.resample(&specs, seed.wrapping_add(round));
                twin.resample(&specs, seed.wrapping_add(round));
            }
            let out = cont.execute_round(&mut s, &cq).unwrap();
            prop_assert!(out.complete, "round {} incomplete on a lossless channel", round);
            let live = live_attached(&s);
            sync_alive(&mut twin, &live);
            prop_assume!(live_attached(&twin) == live);
            let reference = ExternalJoin.execute(&mut twin, &ref_cq).unwrap();
            prop_assert!(
                out.result.same_result(&reference.result),
                "round {} diverged from the live-population join", round
            );
        }
    }

    /// Multi-query epochs under churn: every due query's result equals its
    /// twin epoch over the synced live population.
    #[test]
    fn multi_query_liveness_projected_exactness(
        seed in 1..32u64,
        schedule in prop::collection::vec((0..4u32, 0..(N as u16), any::<bool>()), 0..10),
    ) {
        let mut s = snet(seed);
        s.net_mut().set_churn(Some(timeline(&schedule)));
        let mut twin = snet(seed);
        let sqls = [
            "SELECT A.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 2.0 SAMPLE PERIOD 30",
            "SELECT B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 4.0 SAMPLE PERIOD 30",
        ];
        let mut group = QueryGroup::new(SensJoinConfig::default());
        let mut group_twin = QueryGroup::new(SensJoinConfig::default());
        for sql in sqls {
            let q = parse(sql).unwrap();
            let cq = s.compile(&q).unwrap();
            let cqt = twin.compile(&q).unwrap();
            group.register(&s, cq, 1);
            group_twin.register(&twin, cqt, 1);
        }
        let specs = presets::indoor_climate();
        for epoch in 0..4u64 {
            if epoch > 0 {
                s.resample(&specs, seed.wrapping_add(epoch));
                twin.resample(&specs, seed.wrapping_add(epoch));
            }
            let a = group.execute_epoch(&mut s).unwrap();
            prop_assert!(a.complete, "epoch {} incomplete on a lossless channel", epoch);
            let live = live_attached(&s);
            sync_alive(&mut twin, &live);
            prop_assume!(live_attached(&twin) == live);
            let b = group_twin.execute_epoch(&mut twin).unwrap();
            prop_assert_eq!(a.outcomes.len(), b.outcomes.len());
            for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
                prop_assert!(
                    oa.result.same_result(&ob.result),
                    "epoch {} diverged from the twin epoch", epoch
                );
            }
        }
    }
}

/// Regression: crash + revive of the same node at the same boundary must
/// not double-count the node's tuple. The reconciliation used to judge
/// proxied rows by the *post-boundary* alive mask alone — a same-boundary
/// revival made the victim look alive again, so its row survived at the
/// treecut proxy while the revival path re-contributed it.
#[test]
fn same_boundary_crash_revive_is_exact() {
    for seed in 1..20u64 {
        let cq = snet(seed).compile(&parse(SQL).unwrap()).unwrap();
        let reference = ExternalJoin.execute(&mut snet(seed), &cq).unwrap();
        for v in 1..N as u32 {
            let mut s = snet(seed);
            let tl = ChurnTimeline::new()
                .at_boundary(1, NodeId(v), ChurnAction::Crash)
                .at_boundary(1, NodeId(v), ChurnAction::Revive);
            s.net_mut().set_churn(Some(tl));
            let out = SensJoin::default().execute(&mut s, &cq).unwrap();
            // Everyone survived to the end, so the result must equal the
            // clean lossless join (modulo repair-seam partitions).
            if !live_attached(&s).iter().all(|&a| a) {
                continue;
            }
            assert!(
                out.result.same_result(&reference.result),
                "seed {seed}, victim {v}: crash+revive at one boundary diverged"
            );
        }
    }
}

/// A sampled MTBF/MTTR timeline drives repeated one-shot executions to
/// exhaustion; every execution stays liveness-projected exact and the whole
/// run is deterministic across identically-seeded twins.
#[test]
fn sampled_timeline_runs_to_exhaustion_deterministically() {
    let build = || {
        let mut s = snet(7);
        let tl =
            ChurnTimeline::sample(s.len(), s.net().base(), 400_000.0, 300_000.0, 4_000_000, 99);
        s.net_mut().set_churn(Some(tl));
        s
    };
    let cq = build().compile(&parse(SQL).unwrap()).unwrap();
    let mut a = build();
    let mut b = build();
    let mut churn_seen = false;
    for _ in 0..12 {
        let oa = SensJoin::default().execute(&mut a, &cq).unwrap();
        let ob = SensJoin::default().execute(&mut b, &cq).unwrap();
        assert!(oa.result.same_result(&ob.result), "twin runs diverged");
        assert_eq!(oa.complete, ob.complete);
        assert_eq!(oa.churned, ob.churned);
        churn_seen |= oa.churned;
    }
    assert!(churn_seen, "timeline never fired — test is vacuous");
    assert_eq!(
        a.net().alive_mask(),
        b.net().alive_mask(),
        "twin alive sets diverged"
    );
}
