//! Battery depletion is just churn: determinism and replay equivalence.
//!
//! The energy subsystem's contract has two halves. First, the depletion
//! schedule — which nodes die, at which round boundary, in which order — is
//! a pure function of the build seed, the battery parameters and the
//! workload: running the same configuration twice yields the identical
//! schedule. Second, depletion deaths go through the very same crash-stop
//! path as exogenous churn, applied only at protocol boundaries — so
//! replaying a recorded death schedule as a [`ChurnTimeline`] on a
//! battery-free twin must reproduce every round's per-node statistics and
//! results *bit-identically*. Together these pin the PR-5
//! liveness-projected-exactness guarantees onto battery-driven churn.
//!
//! Scope: [`ParentPolicy::MinHop`] (the default). Power-aware parent
//! rotation reads residual energy at every boundary, which an exogenous
//! timeline cannot carry — its correctness is argued structurally
//! (depth-preserving rotation) and covered by the sim-level tests.

use proptest::prelude::*;
use sensjoin_core::{
    ContinuousSensJoin, JoinMethod, SensJoin, SensorNetwork, SensorNetworkBuilder,
};
use sensjoin_field::{presets, Area, Placement};
use sensjoin_query::parse;
use sensjoin_relation::NodeId;
use sensjoin_sim::{BatteryBank, ChurnAction, ChurnTimeline, NodeStats};

const SQL_CONT: &str = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                        WHERE A.temp - B.temp > 3.0 SAMPLE PERIOD 30";
const SQL_ONCE: &str = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                        WHERE A.temp - B.temp > 3.0 ONCE";

const N: usize = 60;
const ROUNDS: u64 = 5;

fn snet(seed: u64) -> SensorNetwork {
    SensorNetworkBuilder::new()
        .area(Area::new(260.0, 260.0))
        .placement(Placement::UniformRandom { n: N })
        .seed(seed)
        .build()
        .unwrap()
}

/// Worst per-node energy of one clean (battery-free) continuous round —
/// the yardstick battery capacities are scaled against.
fn probe_round_energy(seed: u64) -> f64 {
    let mut s = snet(seed);
    let cq = s.compile(&parse(SQL_CONT).unwrap()).unwrap();
    let out = ContinuousSensJoin::new()
        .execute_round(&mut s, &cq)
        .unwrap();
    let base = s.base();
    out.stats
        .per_node()
        .iter()
        .enumerate()
        .filter(|&(i, _)| NodeId(i as u32) != base)
        .map(|(_, ns)| ns.energy_uj)
        .fold(0.0, f64::max)
}

/// One observed continuous round: everything the replay must reproduce.
struct RoundLog {
    per_node: Vec<NodeStats>,
    complete: bool,
    result: sensjoin_core::JoinResult,
}

/// Runs `ROUNDS` continuous rounds with a battery bank attached and
/// records the depletion schedule: `(boundary, victim)` pairs in
/// application order. Battery crossings latch mid-round and are applied at
/// the *next* round's churn poll; on a fresh network the poll at the start
/// of round `r` is boundary `r`, so deaths first visible after round `r`
/// carry boundary `r`.
fn battery_run(seed: u64, capacity_uj: f64, jitter: f64) -> (Vec<(u32, NodeId)>, Vec<RoundLog>) {
    let mut s = snet(seed);
    let bank = BatteryBank::with_jitter(s.len(), s.base(), capacity_uj, jitter, seed);
    s.net_mut().set_battery(Some(bank));
    let cq = s.compile(&parse(SQL_CONT).unwrap()).unwrap();
    let mut cont = ContinuousSensJoin::new();
    let specs = presets::indoor_climate();
    let mut schedule = Vec::new();
    let mut seen = 0usize;
    let mut logs = Vec::new();
    for round in 0..ROUNDS {
        if round > 0 {
            s.resample(&specs, seed.wrapping_add(round));
        }
        let out = cont.execute_round(&mut s, &cq).unwrap();
        let deaths = s.net().battery().unwrap().death_order();
        for &v in &deaths[seen..] {
            schedule.push((round as u32, v));
        }
        seen = deaths.len();
        logs.push(RoundLog {
            per_node: out.stats.per_node().to_vec(),
            complete: out.complete,
            result: out.result,
        });
    }
    (schedule, logs)
}

/// Replays a recorded depletion schedule as exogenous crash-stop churn on a
/// battery-free twin and returns the same per-round observations.
fn replay_run(seed: u64, schedule: &[(u32, NodeId)]) -> Vec<RoundLog> {
    let mut s = snet(seed);
    let mut tl = ChurnTimeline::new();
    for &(b, v) in schedule {
        tl = tl.at_boundary(b, v, ChurnAction::Crash);
    }
    s.net_mut().set_churn(Some(tl));
    let cq = s.compile(&parse(SQL_CONT).unwrap()).unwrap();
    let mut cont = ContinuousSensJoin::new();
    let specs = presets::indoor_climate();
    let mut logs = Vec::new();
    for round in 0..ROUNDS {
        if round > 0 {
            s.resample(&specs, seed.wrapping_add(round));
        }
        let out = cont.execute_round(&mut s, &cq).unwrap();
        logs.push(RoundLog {
            per_node: out.stats.per_node().to_vec(),
            complete: out.complete,
            result: out.result,
        });
    }
    logs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) The depletion schedule is a deterministic function of the seed
    /// and battery parameters: two identically-configured runs produce the
    /// same `(boundary, victim)` sequence and the same round outcomes.
    #[test]
    fn depletion_schedule_is_seed_deterministic(
        seed in 1..24u64,
        strength in 0.6..2.5f64,
        jitter in 0.0..0.3f64,
    ) {
        let capacity = probe_round_energy(seed) * strength;
        let (sched_a, logs_a) = battery_run(seed, capacity, jitter);
        let (sched_b, logs_b) = battery_run(seed, capacity, jitter);
        prop_assert_eq!(&sched_a, &sched_b, "death schedule diverged across twin runs");
        for (r, (a, b)) in logs_a.iter().zip(&logs_b).enumerate() {
            prop_assert_eq!(&a.per_node, &b.per_node, "round {} stats diverged", r);
            prop_assert!(a.result.same_result(&b.result), "round {} result diverged", r);
        }
    }

    /// (b) Replaying the recorded schedule as an exogenous [`ChurnTimeline`]
    /// on a battery-free twin reproduces every round bit-identically:
    /// per-node statistics (bytes, packets, energy f64s, death counters)
    /// and results. Battery deaths *are* crash-stop churn.
    #[test]
    fn depletion_replays_as_exogenous_churn(
        seed in 1..24u64,
        strength in 0.6..2.2f64,
        jitter in 0.0..0.3f64,
    ) {
        let capacity = probe_round_energy(seed) * strength;
        let (schedule, battery_logs) = battery_run(seed, capacity, jitter);
        // A sub-unit strength (even after upward jitter) guarantees the
        // heaviest relay cannot survive round 0 — the case is non-vacuous.
        if strength * (1.0 + jitter) < 1.0 {
            prop_assert!(!schedule.is_empty(), "expected at least one depletion");
        }
        let replay_logs = replay_run(seed, &schedule);
        prop_assert_eq!(battery_logs.len(), replay_logs.len());
        for (r, (a, b)) in battery_logs.iter().zip(&replay_logs).enumerate() {
            prop_assert_eq!(
                &a.per_node, &b.per_node,
                "round {} per-node stats diverged from the churn replay", r
            );
            prop_assert_eq!(a.complete, b.complete, "round {} completeness diverged", r);
            prop_assert!(
                a.result.same_result(&b.result),
                "round {} result diverged from the churn replay", r
            );
        }
    }
}

/// A battery large enough to never deplete leaves a one-shot execution
/// bit-identical to the same network without one — the debit path is
/// observation, not perturbation — while still metering every charged µJ.
#[test]
fn undepleted_battery_is_pure_observation() {
    for seed in [3u64, 9, 17] {
        let cq = snet(seed).compile(&parse(SQL_ONCE).unwrap()).unwrap();
        let mut bare = snet(seed);
        let reference = SensJoin::default().execute(&mut bare, &cq).unwrap();
        let mut powered = snet(seed);
        let bank = BatteryBank::with_jitter(powered.len(), powered.base(), 1.0e15, 0.25, seed);
        powered.net_mut().set_battery(Some(bank));
        let out = SensJoin::default().execute(&mut powered, &cq).unwrap();
        assert_eq!(
            reference.stats.per_node(),
            out.stats.per_node(),
            "seed {seed}: battery observation perturbed the execution"
        );
        assert!(out.result.same_result(&reference.result), "seed {seed}");
        let bank = powered.net().battery().unwrap();
        assert!(bank.death_order().is_empty(), "seed {seed}");
        let drift = (bank.total_debited_uj() - out.stats.total_energy_uj()).abs();
        assert!(
            drift <= 1e-9 * out.stats.total_energy_uj(),
            "seed {seed}: metered {} µJ vs charged {} µJ",
            bank.total_debited_uj(),
            out.stats.total_energy_uj()
        );
    }
}
