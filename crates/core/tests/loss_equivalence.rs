//! Bit-identity of query results under per-packet loss.
//!
//! The reliability subsystem's contract: as long as the hop-by-hop ARQ
//! budget absorbs every loss, a lossy execution produces *exactly* the
//! result of a lossless one — same rows, bitwise — for any loss rate and
//! both channel models. The extra cost is visible only in the retransmit /
//! ack counters and energy, never in the answer.

use proptest::prelude::*;
use sensjoin_core::{
    ContinuousSensJoin, ExternalJoin, JoinMethod, QueryGroup, SensJoin, SensJoinConfig,
    SensorNetwork, SensorNetworkBuilder, PHASE_COLLECTION, PHASE_FILTER,
};
use sensjoin_field::{presets, Area, Placement};
use sensjoin_query::parse;
use sensjoin_sim::{ArqPolicy, Channel};

const SQL: &str = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                   WHERE A.temp - B.temp > 3.0 ONCE";
const SQL_CONT: &str = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                        WHERE A.temp - B.temp > 3.0 SAMPLE PERIOD 30";

fn snet(n: usize, seed: u64) -> SensorNetwork {
    SensorNetworkBuilder::new()
        .area(Area::new(300.0, 300.0))
        .placement(Placement::UniformRandom { n })
        .seed(seed)
        .build()
        .unwrap()
}

/// A retry budget no test-scale loss rate survives.
const AMPLE: ArqPolicy = ArqPolicy::AckRetransmit { max_retries: 64 };

/// Strategy: loss rate up to 0.2, Bernoulli or bursty Gilbert-Elliott.
fn channel_strategy() -> impl Strategy<Value = (f64, Option<f64>, u64)> {
    (
        0.0..=0.2f64,
        prop_oneof![Just(None), (2.0..6.0f64).prop_map(Some)],
        0..u64::MAX,
    )
}

fn make_channel(p: f64, burst: Option<f64>, seed: u64) -> Channel {
    match burst {
        Some(b) => Channel::gilbert_elliott(p, b, seed),
        None => Channel::bernoulli(p, seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One-shot SENS-Join and external join: lossy == lossless, bitwise.
    #[test]
    fn one_shot_bit_identity(
        seed in 1..64u64,
        (p, burst, chseed) in channel_strategy(),
        ack in any::<bool>(),
    ) {
        let mut s = snet(90, seed);
        let cq = s.compile(&parse(SQL).unwrap()).unwrap();
        let reference = SensJoin::default().execute(&mut s, &cq).unwrap();
        let ext_reference = ExternalJoin.execute(&mut s, &cq).unwrap();

        s.net_mut().set_channel(Some(make_channel(p, burst, chseed)));
        s.net_mut().set_arq(if ack {
            AMPLE
        } else {
            ArqPolicy::SummaryRepair { max_rounds: 64 }
        });

        let lossy = SensJoin::default().execute(&mut s, &cq).unwrap();
        prop_assert!(lossy.complete);
        prop_assert!(lossy.result.same_result(&reference.result));

        let lossy_ext = ExternalJoin.execute(&mut s, &cq).unwrap();
        prop_assert!(lossy_ext.complete);
        prop_assert!(lossy_ext.result.same_result(&ext_reference.result));
        // The external join's messages are untagged: its first-attempt
        // traffic is exactly the lossless traffic, whatever the loss rate.
        prop_assert_eq!(
            lossy_ext.stats.total_tx_bytes(),
            ext_reference.stats.total_tx_bytes()
        );

        // tx counters are first-attempt-only: they may not depend on *which*
        // packets the channel happened to eat.
        s.net_mut()
            .set_channel(Some(make_channel(p, burst, chseed.wrapping_add(1))));
        let reseeded = SensJoin::default().execute(&mut s, &cq).unwrap();
        prop_assert_eq!(
            reseeded.stats.total_tx_bytes(),
            lossy.stats.total_tx_bytes()
        );
    }

    /// Continuous rounds with data drift: every round's result matches the
    /// lossless executor's, and the incremental state never desyncs.
    #[test]
    fn continuous_bit_identity(
        seed in 1..32u64,
        (p, burst, chseed) in channel_strategy(),
    ) {
        let mut clean = snet(70, seed);
        let mut lossy = snet(70, seed);
        lossy.net_mut().set_channel(Some(make_channel(p, burst, chseed)));
        lossy.net_mut().set_arq(AMPLE);
        let cq_clean = clean.compile(&parse(SQL_CONT).unwrap()).unwrap();
        let cq_lossy = lossy.compile(&parse(SQL_CONT).unwrap()).unwrap();
        let mut cont_clean = ContinuousSensJoin::new();
        let mut cont_lossy = ContinuousSensJoin::new();
        let specs = presets::indoor_climate();
        for round in 0..4u64 {
            if round > 0 {
                clean.resample(&specs, seed.wrapping_add(round));
                lossy.resample(&specs, seed.wrapping_add(round));
            }
            let a = cont_clean.execute_round(&mut clean, &cq_clean).unwrap();
            let b = cont_lossy.execute_round(&mut lossy, &cq_lossy).unwrap();
            prop_assert!(b.complete, "round {} incomplete", round);
            prop_assert!(a.result.same_result(&b.result), "round {} diverged", round);
        }
    }

    /// Multi-query epochs: per-query results match solo lossless runs.
    #[test]
    fn multi_query_bit_identity(
        seed in 1..32u64,
        (p, burst, chseed) in channel_strategy(),
    ) {
        let mut clean = snet(70, seed);
        let mut lossy = snet(70, seed);
        lossy.net_mut().set_channel(Some(make_channel(p, burst, chseed)));
        lossy.net_mut().set_arq(AMPLE);
        let sqls = [
            "SELECT A.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 2.0 SAMPLE PERIOD 30",
            "SELECT B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 4.0 SAMPLE PERIOD 30",
        ];
        let mut group_clean = QueryGroup::new(SensJoinConfig::default());
        let mut group_lossy = QueryGroup::new(SensJoinConfig::default());
        for sql in sqls {
            let q = parse(sql).unwrap();
            let cqc = clean.compile(&q).unwrap();
            let cql = lossy.compile(&q).unwrap();
            group_clean.register(&clean, cqc, 1);
            group_lossy.register(&lossy, cql, 1);
        }
        for epoch in 0..3u64 {
            let a = group_clean.execute_epoch(&mut clean).unwrap();
            let b = group_lossy.execute_epoch(&mut lossy).unwrap();
            prop_assert!(b.complete, "epoch {} incomplete", epoch);
            prop_assert_eq!(a.outcomes.len(), b.outcomes.len());
            for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
                prop_assert!(oa.result.same_result(&ob.result), "epoch {} diverged", epoch);
            }
            let specs = presets::indoor_climate();
            clean.resample(&specs, seed.wrapping_add(epoch));
            lossy.resample(&specs, seed.wrapping_add(epoch));
        }
    }
}

/// Starvation check: with loss confined to the collection and filter phases
/// and NO reliability at all, the conservative fallbacks (pass-through on
/// damage) still deliver the exact result — only the final phase actually
/// needs its data to arrive.
#[test]
fn conservative_fallback_is_exact_without_arq() {
    let mut exercised = false;
    for seed in 1..12u64 {
        let mut s = snet(80, seed);
        let cq = s.compile(&parse(SQL).unwrap()).unwrap();
        let reference = SensJoin::default().execute(&mut s, &cq).unwrap();
        let channel = Channel::bernoulli(0.15, seed.wrapping_mul(31))
            .scope_to_phases([PHASE_COLLECTION, PHASE_FILTER]);
        s.net_mut().set_channel(Some(channel));
        s.net_mut().set_arq(ArqPolicy::None);
        let lossy = SensJoin::default().execute(&mut s, &cq).unwrap();
        assert!(lossy.complete, "final phase was clean by construction");
        assert!(
            lossy.result.same_result(&reference.result),
            "seed {seed}: conservative fallback dropped a real result"
        );
        exercised |= lossy.stats.total_lost_packets() > 0;
    }
    assert!(exercised, "no packet was ever lost — test is vacuous");
}

/// A zero-loss channel (with ARQ armed) reproduces the lossless byte counts
/// exactly: reliability must be free when the channel is clean.
#[test]
fn zero_loss_is_byte_identical() {
    let mut s = snet(100, 5);
    let cq = s.compile(&parse(SQL).unwrap()).unwrap();
    let reference = SensJoin::default().execute(&mut s, &cq).unwrap();
    s.net_mut().set_channel(Some(Channel::bernoulli(0.0, 3)));
    s.net_mut().set_arq(AMPLE);
    let zero = SensJoin::default().execute(&mut s, &cq).unwrap();
    assert!(zero.complete);
    assert!(zero.result.same_result(&reference.result));
    assert_eq!(
        zero.stats.total_tx_bytes(),
        reference.stats.total_tx_bytes()
    );
    assert_eq!(
        zero.stats.total_tx_packets(),
        reference.stats.total_tx_packets()
    );
    assert_eq!(zero.stats.total_overhead_bytes(), 0);
    assert_eq!(zero.stats.total_retx_packets(), 0);
    assert_eq!(zero.stats.total_ack_packets(), 0);
    assert_eq!(zero.latency_us, reference.latency_us);
}
