//! Parallel waves are bit-identical to serial execution.
//!
//! The `_sync` wave engines may fan independent child subtrees out to
//! worker threads ([`WaveMode::ForceParallel`]) or run the cached serial
//! order ([`WaveMode::ForceSerial`]). The contract (see `wave.rs` module
//! docs): the observable execution — query results, per-node and per-phase
//! statistics including exact `f64` energy sums, the transmission trace,
//! and every channel RNG stream — is the same bit for bit either way.
//! These tests force both modes over the same scenarios (lossless, lossy
//! with ARQ, node churn; one-shot, continuous, multi-query) and demand
//! exact equality.

use proptest::prelude::*;
use proptest::TestCaseError;
use sensjoin_core::{
    set_wave_mode, ContinuousSensJoin, JoinMethod, JoinOutcome, QueryGroup, SensJoin,
    SensJoinConfig, SensorNetwork, SensorNetworkBuilder, WaveMode,
};
use sensjoin_field::{presets, Area, Placement};
use sensjoin_query::parse;
use sensjoin_relation::NodeId;
use sensjoin_sim::{ArqPolicy, Channel, ChurnAction, ChurnTimeline};

const SQL: &str = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                   WHERE A.temp - B.temp > 3.0 ONCE";
const SQL_CONT: &str = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                        WHERE A.temp - B.temp > 3.0 SAMPLE PERIOD 30";

const N: usize = 80;

/// Channel / ARQ combinations the scenarios cycle through.
fn configure_loss(s: &mut SensorNetwork, kind: u8, seed: u64) {
    match kind % 3 {
        0 => {}
        1 => {
            s.net_mut().set_channel(Some(Channel::bernoulli(0.2, seed)));
            s.net_mut().set_arq(ArqPolicy::ack(3));
        }
        _ => {
            s.net_mut()
                .set_channel(Some(Channel::gilbert_elliott(0.25, 4.0, seed)));
            s.net_mut().set_arq(ArqPolicy::summary(4));
        }
    }
}

fn snet(seed: u64) -> SensorNetwork {
    let mut s = SensorNetworkBuilder::new()
        .area(Area::new(300.0, 300.0))
        .placement(Placement::UniformRandom { n: N })
        .seed(seed)
        .build()
        .unwrap();
    s.net_mut().set_tracing(true);
    s
}

fn timeline(schedule: &[(u32, u16, bool)]) -> ChurnTimeline {
    let mut tl = ChurnTimeline::new();
    for &(b, v, crash) in schedule {
        let action = if crash {
            ChurnAction::Crash
        } else {
            ChurnAction::Revive
        };
        tl = tl.at_boundary(b, NodeId(v as u32), action);
    }
    tl
}

/// Runs `f` under the given wave mode, restoring `Auto` afterwards.
fn with_mode<R>(mode: WaveMode, f: impl FnOnce() -> R) -> R {
    set_wave_mode(mode);
    let out = f();
    set_wave_mode(WaveMode::Auto);
    out
}

/// Exact equality of everything the two executions could observably differ
/// in: per-node and per-phase counters (including `f64` energy, compared
/// bit for bit), the full transmission trace, and the channel's forward
/// state (probed implicitly by multi-round scenarios).
fn assert_networks_identical(a: &SensorNetwork, b: &SensorNetwork) -> Result<(), TestCaseError> {
    for v in 0..N as u32 {
        let v = NodeId(v);
        prop_assert_eq!(a.net().stats().node(v), b.net().stats().node(v), "{}", v);
    }
    let pa: Vec<_> = a.net().stats().phases().map(|(p, s)| (p, *s)).collect();
    let pb: Vec<_> = b.net().stats().phases().map(|(p, s)| (p, *s)).collect();
    prop_assert_eq!(pa, pb);
    prop_assert_eq!(
        a.net().trace().unwrap().records(),
        b.net().trace().unwrap().records()
    );
    Ok(())
}

/// Exact equality of two outcomes; `Debug` on `f64` prints the shortest
/// round-trip form, so string equality is bit equality of every row.
fn assert_outcomes_identical(a: &JoinOutcome, b: &JoinOutcome) -> Result<(), TestCaseError> {
    prop_assert_eq!(format!("{:?}", a.result), format!("{:?}", b.result));
    prop_assert_eq!(&a.contributors, &b.contributors);
    prop_assert_eq!(a.complete, b.complete);
    prop_assert_eq!(a.churned, b.churned);
    prop_assert_eq!(a.latency_us, b.latency_us);
    prop_assert_eq!(a.latency_slotted_us, b.latency_slotted_us);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One-shot SENS-Join: serial and parallel waves agree bit for bit
    /// under loss, ARQ and churn.
    #[test]
    fn one_shot_parallel_matches_serial(
        seed in 1..32u64,
        loss in 0..3u8,
        schedule in prop::collection::vec((0..4u32, 0..(N as u16), any::<bool>()), 0..8),
    ) {
        let run = |mode: WaveMode| {
            with_mode(mode, || {
                let mut s = snet(seed);
                configure_loss(&mut s, loss, seed.wrapping_mul(31));
                s.net_mut().set_churn(Some(timeline(&schedule)));
                let cq = s.compile(&parse(SQL).unwrap()).unwrap();
                let out = SensJoin::default().execute(&mut s, &cq).unwrap();
                (s, out)
            })
        };
        let (ss, os) = run(WaveMode::ForceSerial);
        let (sp, op) = run(WaveMode::ForceParallel);
        assert_outcomes_identical(&os, &op)?;
        assert_networks_identical(&ss, &sp)?;
    }

    /// Continuous rounds: the delta protocol's persistent state (filters,
    /// caches, channel streams) evolves identically across modes.
    #[test]
    fn continuous_parallel_matches_serial(
        seed in 1..24u64,
        loss in 0..3u8,
        schedule in prop::collection::vec((0..5u32, 0..(N as u16), any::<bool>()), 0..6),
    ) {
        let run = |mode: WaveMode| {
            with_mode(mode, || {
                let mut s = snet(seed);
                configure_loss(&mut s, loss, seed.wrapping_mul(37));
                s.net_mut().set_churn(Some(timeline(&schedule)));
                let cq = s.compile(&parse(SQL_CONT).unwrap()).unwrap();
                let mut cont = ContinuousSensJoin::new();
                let specs = presets::indoor_climate();
                let mut outs = Vec::new();
                for round in 0..3u64 {
                    if round > 0 {
                        s.resample(&specs, seed.wrapping_add(round));
                    }
                    outs.push(cont.execute_round(&mut s, &cq).unwrap());
                }
                (s, outs)
            })
        };
        let (ss, os) = run(WaveMode::ForceSerial);
        let (sp, op) = run(WaveMode::ForceParallel);
        prop_assert_eq!(os.len(), op.len());
        for (a, b) in os.iter().zip(&op) {
            assert_outcomes_identical(a, b)?;
        }
        assert_networks_identical(&ss, &sp)?;
    }

    /// Multi-query epochs: the shared waves and solo-equivalent accounting
    /// (relaxed-atomic sums) agree bit for bit across modes.
    #[test]
    fn multi_query_parallel_matches_serial(
        seed in 1..24u64,
        loss in 0..3u8,
        schedule in prop::collection::vec((0..4u32, 0..(N as u16), any::<bool>()), 0..6),
    ) {
        let sqls = [
            "SELECT A.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 2.0 SAMPLE PERIOD 30",
            "SELECT B.hum FROM Sensors A, Sensors B \
             WHERE A.temp - B.temp > 4.0 SAMPLE PERIOD 30",
        ];
        let run = |mode: WaveMode| {
            with_mode(mode, || {
                let mut s = snet(seed);
                configure_loss(&mut s, loss, seed.wrapping_mul(41));
                s.net_mut().set_churn(Some(timeline(&schedule)));
                let mut group = QueryGroup::new(SensJoinConfig::default());
                for sql in sqls {
                    let cq = s.compile(&parse(sql).unwrap()).unwrap();
                    group.register(&s, cq, 1);
                }
                let specs = presets::indoor_climate();
                let mut reports = Vec::new();
                for epoch in 0..3u64 {
                    if epoch > 0 {
                        s.resample(&specs, seed.wrapping_add(epoch));
                    }
                    reports.push(group.execute_epoch(&mut s).unwrap());
                }
                (s, reports)
            })
        };
        let (ss, rs) = run(WaveMode::ForceSerial);
        let (sp, rp) = run(WaveMode::ForceParallel);
        prop_assert_eq!(rs.len(), rp.len());
        for (a, b) in rs.iter().zip(&rp) {
            prop_assert_eq!(a.epoch, b.epoch);
            prop_assert_eq!(a.complete, b.complete);
            prop_assert_eq!(a.churned, b.churned);
            prop_assert_eq!(a.latency_us, b.latency_us);
            prop_assert_eq!(a.outcomes.len(), b.outcomes.len());
            for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
                prop_assert_eq!(oa.id, ob.id);
                prop_assert_eq!(format!("{:?}", &oa.result), format!("{:?}", &ob.result));
                prop_assert_eq!(&oa.contributors, &ob.contributors);
            }
            for (sa, sb) in a.solo_equivalent.iter().zip(&b.solo_equivalent) {
                prop_assert_eq!(sa.id, sb.id);
                prop_assert_eq!(sa.collection_bytes, sb.collection_bytes);
                prop_assert_eq!(sa.filter_bytes, sb.filter_bytes);
                prop_assert_eq!(sa.final_bytes, sb.final_bytes);
            }
        }
        assert_networks_identical(&ss, &sp)?;
    }
}
