//! Crash-anywhere recovery equivalence.
//!
//! The durability subsystem's contract: a run that crashes at *any*
//! registered [`CrashPoint`] and resumes from its checkpoint directory is
//! bit-identical — results, stats, traces, RNG streams — to a run that
//! never crashed. Recovery is replay-by-re-execution: the snapshot restores
//! the full engine + network state, and the WAL's per-round digests pin the
//! re-executed suffix to what the pre-crash run produced. Corruption
//! (torn writes, bit flips, truncation) is detected by checksums and
//! degrades honestly: fall back to an older snapshot, then to a cold
//! start — never a panic, never a silently wrong answer.

use proptest::prelude::*;
use sensjoin_core::persist::{self, CheckpointStore, CrashPoint, Reader, RecoveryError, Writer};
use sensjoin_core::{
    exact_join, ContinuousSensJoin, JoinOutcome, JoinResult, SensorNetwork, SensorNetworkBuilder,
    StreamJoinEngine, StreamOp,
};
use sensjoin_field::{presets, Area, FieldSpec, Placement};
use sensjoin_query::{parse, CompiledQuery};
use sensjoin_relation::NodeId;
use sensjoin_sim::{ArqPolicy, Channel, ChurnTimeline};
use std::collections::BTreeMap;

const SQL_CONT: &str = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                        WHERE A.temp - B.temp > 2.0 SAMPLE PERIOD 30";
const SQL_STREAM: &str = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                          WHERE A.temp - B.temp > 2.0 ONCE";

const N: usize = 80;
const ROUNDS: u64 = 6;
const EVERY: u64 = 2;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sensjoin-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deployment under both loss and churn, with tracing on so trace
/// equality is part of the bit-identity claim.
fn build(seed: u64) -> (SensorNetwork, CompiledQuery, Vec<FieldSpec>) {
    let specs = presets::indoor_climate();
    let mut snet = SensorNetworkBuilder::new()
        .area(Area::new(300.0, 300.0))
        .placement(Placement::UniformRandom { n: N })
        .fields(specs.clone())
        .seed(seed)
        .build()
        .unwrap();
    snet.net_mut()
        .set_channel(Some(Channel::bernoulli(0.05, 7)));
    snet.net_mut()
        .set_arq(ArqPolicy::AckRetransmit { max_retries: 8 });
    let tl = ChurnTimeline::sample(N, snet.net().base(), 60e6, 30e6, 200_000_000, 13);
    snet.net_mut().set_churn(Some(tl));
    snet.net_mut().set_tracing(true);
    let cq = snet.compile(&parse(SQL_CONT).unwrap()).unwrap();
    (snet, cq, specs)
}

/// What the WAL records per round (mirrors the CLI driver).
fn outcome_digest(out: &JoinOutcome) -> u64 {
    let mut w = Writer::new();
    match &out.result {
        JoinResult::Rows(rows) => {
            w.put_u8(0);
            w.put_usize(rows.len());
            for row in rows {
                persist::put_f64_vec(&mut w, row);
            }
        }
        JoinResult::Aggregate(vals) => {
            w.put_u8(1);
            w.put_usize(vals.len());
            for v in vals {
                match v {
                    Some(v) => {
                        w.put_bool(true);
                        w.put_f64(*v);
                    }
                    None => w.put_bool(false),
                }
            }
        }
    }
    w.put_u64(out.stats.total_tx_bytes());
    w.put_u64(out.latency_us);
    w.put_bool(out.complete);
    persist::fnv1a(&w.into_bytes())
}

/// Full observable state: engine + network (stats, trace, RNG streams).
fn full_state(cont: &ContinuousSensJoin, snet: &SensorNetwork) -> Vec<u8> {
    let mut w = Writer::new();
    cont.encode_state(&mut w);
    persist::put_net_snapshot(&mut w, &snet.net().export_state());
    w.into_bytes()
}

fn wal_digests(wal: &[Vec<u8>], start: u64) -> BTreeMap<u64, u64> {
    let mut digests = BTreeMap::new();
    for payload in wal {
        let mut r = Reader::new(payload);
        let round = r.get_u64().unwrap();
        let digest = r.get_u64().unwrap();
        r.expect_end().unwrap();
        if round >= start {
            digests.insert(round, digest);
        }
    }
    digests
}

/// Runs rounds `start..rounds`, checkpointing at the `EVERY` cadence when a
/// store is given; verifies replayed rounds against the WAL and logs fresh
/// ones. Propagates injected crashes.
#[allow(clippy::too_many_arguments)]
fn run_span(
    snet: &mut SensorNetwork,
    cont: &mut ContinuousSensJoin,
    cq: &CompiledQuery,
    specs: &[FieldSpec],
    seed: u64,
    mut store: Option<&mut CheckpointStore>,
    start: u64,
    rounds: u64,
    wal: &BTreeMap<u64, u64>,
    digests: &mut Vec<u64>,
) -> Result<(), RecoveryError> {
    for r in start..rounds {
        if r > 0 {
            snet.resample(specs, seed.wrapping_add(r));
        }
        let out = cont.execute_round(snet, cq).expect("round executes");
        let digest = outcome_digest(&out);
        digests.push(digest);
        if let Some(store) = store.as_deref_mut() {
            store.crash_check(CrashPoint::PostRound)?;
            match wal.get(&r) {
                Some(&logged) => assert_eq!(logged, digest, "replay diverged at round {r}"),
                None => {
                    let mut w = Writer::new();
                    w.put_u64(r);
                    w.put_u64(digest);
                    store.append_wal(&w.into_bytes())?;
                }
            }
            if (r + 1) % EVERY == 0 {
                snet.net_mut().note_checkpoint("continuous");
                let mut w = Writer::new();
                cont.encode_state(&mut w);
                persist::put_net_snapshot(&mut w, &snet.net().export_state());
                store.save_snapshot(r + 1, &w.into_bytes())?;
            }
        }
    }
    Ok(())
}

/// Opens the directory fresh (as a restarted process would), restores the
/// newest valid snapshot, re-executes the suffix against the WAL, and
/// returns the replayed digests plus the final full state.
fn recover_and_finish(dir: &std::path::Path, seed: u64, rounds: u64) -> (u64, Vec<u64>, Vec<u8>) {
    let (mut snet, cq, specs) = build(seed);
    let mut cont = ContinuousSensJoin::new();
    let mut store = CheckpointStore::open(dir).unwrap();
    let rec = store.recover().unwrap();
    let mut start = 0;
    if let Some((seq, payload)) = &rec.snapshot {
        let mut r = Reader::new(payload);
        cont.restore_state(&mut r, &cq).unwrap();
        let snap = persist::get_net_snapshot(&mut r).unwrap();
        snet.net_mut().restore_state(&snap);
        r.expect_end().unwrap();
        start = *seq;
    }
    let wal = wal_digests(&rec.wal, start);
    let mut digests = Vec::new();
    run_span(
        &mut snet,
        &mut cont,
        &cq,
        &specs,
        seed,
        Some(&mut store),
        start,
        rounds,
        &wal,
        &mut digests,
    )
    .unwrap();
    (start, digests, full_state(&cont, &snet))
}

/// Reference: one uninterrupted run with checkpointing at the same cadence.
fn reference_run(dir: &std::path::Path, seed: u64, rounds: u64) -> (Vec<u64>, Vec<u8>) {
    let (mut snet, cq, specs) = build(seed);
    let mut cont = ContinuousSensJoin::new();
    let mut store = CheckpointStore::open(dir).unwrap();
    let mut digests = Vec::new();
    run_span(
        &mut snet,
        &mut cont,
        &cq,
        &specs,
        seed,
        Some(&mut store),
        0,
        rounds,
        &BTreeMap::new(),
        &mut digests,
    )
    .unwrap();
    (digests, full_state(&cont, &snet))
}

/// Crash at (point, occurrence), then recover; returns the recovered run's
/// final state and the digest trail `prefix + replay/suffix`.
fn crash_and_recover(
    tag: &str,
    seed: u64,
    point: CrashPoint,
    occurrence: u32,
) -> (Vec<u64>, Vec<u8>) {
    let dir = tmpdir(tag);
    let (mut snet, cq, specs) = build(seed);
    let mut cont = ContinuousSensJoin::new();
    let mut store = CheckpointStore::open(&dir).unwrap();
    store.arm_crash(point, occurrence);
    let mut pre_crash = Vec::new();
    let err = run_span(
        &mut snet,
        &mut cont,
        &cq,
        &specs,
        seed,
        Some(&mut store),
        0,
        ROUNDS,
        &BTreeMap::new(),
        &mut pre_crash,
    )
    .expect_err("armed crash must fire");
    assert!(
        matches!(err, RecoveryError::Crash(p) if p == point),
        "unexpected error for {point}: {err}"
    );
    drop(store); // the "process" died; recovery opens the dir fresh
    let (start, replayed, state) = recover_and_finish(&dir, seed, ROUNDS);
    // The digest trail across crash + recovery covers every round exactly
    // once: rounds before the restored snapshot ran pre-crash, the rest
    // re-executed.
    let mut trail: Vec<u64> = pre_crash[..start as usize].to_vec();
    trail.extend(&replayed);
    let _ = std::fs::remove_dir_all(&dir);
    (trail, state)
}

#[test]
fn crash_anywhere_sweep_is_bit_identical_under_loss_and_churn() {
    let seed = 42;
    let ref_dir = tmpdir("cont-ref");
    let (ref_digests, ref_state) = reference_run(&ref_dir, seed, ROUNDS);
    let _ = std::fs::remove_dir_all(&ref_dir);

    // Checkpointing must not perturb the run it checkpoints (modulo the
    // checkpoint trace rows, which the digests exclude).
    let (mut snet, cq, specs) = build(seed);
    let mut cont = ContinuousSensJoin::new();
    let mut plain = Vec::new();
    run_span(
        &mut snet,
        &mut cont,
        &cq,
        &specs,
        seed,
        None,
        0,
        ROUNDS,
        &BTreeMap::new(),
        &mut plain,
    )
    .unwrap();
    assert_eq!(plain, ref_digests, "checkpointing perturbed the run");

    for point in CrashPoint::ALL {
        let (trail, state) = crash_and_recover("cont-sweep", seed, point, 2);
        assert_eq!(
            trail, ref_digests,
            "digest trail diverged after crash at {point}"
        );
        assert_eq!(
            state, ref_state,
            "final state diverged after crash at {point}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random crash site, occurrence and deployment seed: recovery is
    /// always bit-identical to the uninterrupted run.
    #[test]
    fn crash_recovery_bit_identical_proptest(
        point_ix in 0usize..CrashPoint::ALL.len(),
        occurrence in 1u32..3,
        seed in 1u64..500,
    ) {
        let point = CrashPoint::ALL[point_ix];
        let ref_dir = tmpdir("cont-prop-ref");
        let (ref_digests, ref_state) = reference_run(&ref_dir, seed, ROUNDS);
        let _ = std::fs::remove_dir_all(&ref_dir);
        let (trail, state) = crash_and_recover("cont-prop", seed, point, occurrence);
        prop_assert_eq!(trail, ref_digests);
        prop_assert_eq!(state, ref_state);
    }
}

// ---------------------------------------------------------------------------
// Streaming engine
// ---------------------------------------------------------------------------

fn stream_build(seed: u64) -> (SensorNetwork, CompiledQuery, Vec<FieldSpec>) {
    let specs = presets::indoor_climate();
    let snet = SensorNetworkBuilder::new()
        .area(Area::new(300.0, 300.0))
        .placement(Placement::UniformRandom { n: N })
        .fields(specs.clone())
        .seed(seed)
        .build()
        .unwrap();
    let cq = snet.compile(&parse(SQL_STREAM).unwrap()).unwrap();
    (snet, cq, specs)
}

fn per_rel(snet: &SensorNetwork, cq: &CompiledQuery, v: NodeId) -> Vec<Option<Vec<f64>>> {
    (0..cq.num_relations())
        .map(|r| {
            let schema = cq.schema(r);
            if snet.belongs(v, schema.name()) {
                let vals = snet.values_for(v, schema);
                cq.eval_local(r, &vals).then_some(vals)
            } else {
                None
            }
        })
        .collect()
}

fn lcg(rng: &mut u64, m: u64) -> u64 {
    *rng = rng
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*rng >> 33) % m.max(1)
}

type Shadow = BTreeMap<NodeId, Vec<Option<Vec<f64>>>>;

struct StreamRun {
    engine: StreamJoinEngine,
    shadow: Shadow,
    rng: u64,
}

fn stream_snapshot(run: &StreamRun) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(run.rng);
    w.put_usize(run.shadow.len());
    for (v, pr) in &run.shadow {
        w.put_u32(v.0);
        w.put_usize(pr.len());
        for p in pr {
            match p {
                Some(vals) => {
                    w.put_bool(true);
                    persist::put_f64_vec(&mut w, vals);
                }
                None => w.put_bool(false),
            }
        }
    }
    persist::put_stream_engine(&mut w, &run.engine);
    w.into_bytes()
}

fn stream_restore(payload: &[u8], cq: &CompiledQuery) -> StreamRun {
    let mut r = Reader::new(payload);
    let rng = r.get_u64().unwrap();
    let nshadow = r.get_count(5).unwrap();
    let mut shadow = Shadow::new();
    for _ in 0..nshadow {
        let v = NodeId(r.get_u32().unwrap());
        let nrel = r.get_count(1).unwrap();
        let mut pr = Vec::with_capacity(nrel);
        for _ in 0..nrel {
            pr.push(match r.get_bool().unwrap() {
                true => Some(persist::get_f64_vec(&mut r).unwrap()),
                false => None,
            });
        }
        shadow.insert(v, pr);
    }
    let engine = persist::get_stream_engine(&mut r, cq.clone()).unwrap();
    r.expect_end().unwrap();
    StreamRun {
        engine,
        shadow,
        rng,
    }
}

/// One delta batch of the stream driver (5 % upserts against a drifting
/// field plus a couple of expirations), returning the batch digest.
fn stream_batch(
    run: &mut StreamRun,
    snet: &mut SensorNetwork,
    cq: &CompiledQuery,
    specs: &[FieldSpec],
    seed: u64,
    b: u64,
) -> u64 {
    snet.resample(specs, seed.wrapping_add(b));
    let n = snet.len() as u32;
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < 6 {
        chosen.insert(NodeId(lcg(&mut run.rng, n as u64) as u32));
    }
    let expirable: Vec<NodeId> = run
        .shadow
        .keys()
        .filter(|v| !chosen.contains(v))
        .copied()
        .collect();
    let mut victims = std::collections::BTreeSet::new();
    while victims.len() < 2.min(expirable.len()) {
        victims.insert(expirable[lcg(&mut run.rng, expirable.len() as u64) as usize]);
    }
    let mut ops = Vec::new();
    for &v in &chosen {
        let pr = per_rel(snet, cq, v);
        run.shadow.insert(v, pr.clone());
        ops.push(StreamOp::Upsert {
            origin: v,
            per_rel: pr,
        });
    }
    for &v in &victims {
        run.shadow.remove(&v);
        ops.push(StreamOp::Expire { origin: v });
    }
    let stats = run.engine.apply_batch(&ops);
    let mut w = Writer::new();
    persist::put_batch_stats(&mut w, &stats);
    w.put_usize(run.engine.cached_rows());
    persist::fnv1a(&w.into_bytes())
}

fn stream_cold(run: &mut StreamRun, snet: &SensorNetwork, cq: &CompiledQuery) {
    let n = snet.len() as u32;
    let ops: Vec<StreamOp> = (0..n)
        .map(|i| {
            let v = NodeId(i);
            let pr = per_rel(snet, cq, v);
            run.shadow.insert(v, pr.clone());
            StreamOp::Upsert {
                origin: v,
                per_rel: pr,
            }
        })
        .collect();
    run.engine.apply_batch(&ops);
}

#[test]
fn stream_crash_anywhere_sweep_is_bit_identical() {
    let seed = 7;
    let batches = 6u64;

    // Reference: uninterrupted, checkpoint every other batch.
    let run_reference = || -> (Vec<u64>, Vec<u8>) {
        let (mut snet, cq, specs) = stream_build(seed);
        let mut run = StreamRun {
            engine: StreamJoinEngine::new(cq.clone()),
            shadow: Shadow::new(),
            rng: seed ^ 0x9e37_79b9_7f4a_7c15,
        };
        stream_cold(&mut run, &snet, &cq);
        let mut digests = Vec::new();
        for b in 1..=batches {
            digests.push(stream_batch(&mut run, &mut snet, &cq, &specs, seed, b));
        }
        (digests, stream_snapshot(&run))
    };
    let (ref_digests, ref_state) = run_reference();

    for point in CrashPoint::ALL {
        let dir = tmpdir("stream-sweep");
        let (mut snet, cq, specs) = stream_build(seed);
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.arm_crash(point, 2);
        let mut run = StreamRun {
            engine: StreamJoinEngine::new(cq.clone()),
            shadow: Shadow::new(),
            rng: seed ^ 0x9e37_79b9_7f4a_7c15,
        };
        stream_cold(&mut run, &snet, &cq);
        let mut trail = Vec::new();
        let mut crashed = false;
        for b in 1..=batches {
            let digest = stream_batch(&mut run, &mut snet, &cq, &specs, seed, b);
            trail.push(digest);
            let mut step = || -> Result<(), RecoveryError> {
                store.crash_check(CrashPoint::PostRound)?;
                let mut w = Writer::new();
                w.put_u64(b);
                w.put_u64(digest);
                store.append_wal(&w.into_bytes())?;
                if b % EVERY == 0 {
                    store.save_snapshot(b, &stream_snapshot(&run))?;
                }
                Ok(())
            };
            if let Err(err) = step() {
                assert!(matches!(err, RecoveryError::Crash(p) if p == point));
                crashed = true;
                trail.truncate(0); // rebuilt below from the recovery split
                break;
            }
        }
        assert!(crashed, "armed crash at {point} never fired");

        // Recover: fresh process, restore, replay.
        let store = CheckpointStore::open(&dir).unwrap();
        let rec = store.recover().unwrap();
        let (mut run, start) = match &rec.snapshot {
            Some((seq, payload)) => (stream_restore(payload, &cq), *seq),
            None => {
                let mut run = StreamRun {
                    engine: StreamJoinEngine::new(cq.clone()),
                    shadow: Shadow::new(),
                    rng: seed ^ 0x9e37_79b9_7f4a_7c15,
                };
                let (snet0, _, _) = stream_build(seed);
                stream_cold(&mut run, &snet0, &cq);
                (run, 0)
            }
        };
        let wal = wal_digests(&rec.wal, start + 1);
        let (mut snet2, _, _) = stream_build(seed);
        // Bring the field to the restored batch's readings version.
        let mut snet = if start > 0 {
            snet2.resample(&specs, seed.wrapping_add(start));
            snet2
        } else {
            snet2
        };
        trail.extend(ref_digests[..start as usize].iter());
        for b in (start + 1)..=batches {
            let digest = stream_batch(&mut run, &mut snet, &cq, &specs, seed, b);
            if let Some(&logged) = wal.get(&b) {
                assert_eq!(logged, digest, "stream replay diverged at batch {b}");
            }
            trail.push(digest);
        }
        assert_eq!(trail, ref_digests, "digest trail diverged at {point}");
        assert_eq!(
            stream_snapshot(&run),
            ref_state,
            "stream state diverged at {point}"
        );

        // And the recovered engine still agrees with the batch join.
        let tuples: Vec<Vec<(NodeId, Vec<f64>)>> = (0..cq.num_relations())
            .map(|r| {
                run.shadow
                    .iter()
                    .filter_map(|(&v, pr)| pr[r].clone().map(|vals| (v, vals)))
                    .collect()
            })
            .collect();
        let reference = exact_join(&cq, &tuples);
        let streamed = run.engine.result();
        assert!(streamed.result.same_result(&reference.result));
        assert_eq!(streamed.contributors, reference.contributors);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// Codec fuzzing: corruption yields structured errors, never panics and
// never silently-wrong state.
// ---------------------------------------------------------------------------

/// A store with two snapshots and a few WAL records, for corruption tests.
fn seeded_store(tag: &str) -> (std::path::PathBuf, Vec<u8>, Vec<u8>) {
    let dir = tmpdir(tag);
    let mut store = CheckpointStore::open(&dir).unwrap();
    let snap1: Vec<u8> = (0u16..600).map(|i| (i % 251) as u8).collect();
    let snap2: Vec<u8> = (0u16..700).map(|i| (i % 241) as u8).collect();
    store.save_snapshot(1, &snap1).unwrap();
    store.save_snapshot(2, &snap2).unwrap();
    for round in 0..4u64 {
        let mut w = Writer::new();
        w.put_u64(round);
        w.put_u64(round.wrapping_mul(0x9e37));
        store.append_wal(&w.into_bytes()).unwrap();
    }
    (dir, snap1, snap2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A single flipped byte anywhere in a snapshot file is always caught:
    /// recovery returns an *intact* payload (the other snapshot) or none,
    /// never the corrupted bytes.
    #[test]
    fn snapshot_bit_flips_never_yield_corrupt_state(
        which in 1u64..3,
        offset in 0u64..728,
    ) {
        let (dir, snap1, snap2) = seeded_store("fuzz-snap");
        let store = CheckpointStore::open(&dir).unwrap();
        let path = store.snapshot_path(which);
        let len = std::fs::metadata(&path).unwrap().len();
        persist::flip_byte(&path, offset % len).unwrap();
        let rec = store.recover().unwrap();
        match rec.snapshot {
            Some((2, payload)) => {
                // Newest snapshot intact: the flip hit snapshot 1, which
                // recovery never needed to inspect.
                prop_assert_eq!(which, 1);
                prop_assert_eq!(&payload, &snap2);
            }
            Some((1, payload)) => {
                // Newest corrupted: honest fallback to the older snapshot.
                prop_assert_eq!(which, 2);
                prop_assert!(rec.degraded);
                prop_assert_eq!(&payload, &snap1);
            }
            Some((seq, _)) => prop_assert!(false, "unexpected snapshot seq {}", seq),
            None => prop_assert!(false, "an intact snapshot existed"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncating the WAL anywhere yields a valid prefix of the records and
    /// at worst a degraded flag — every returned payload still decodes.
    #[test]
    fn wal_truncation_yields_valid_prefix(cut in 0u64..96) {
        let (dir, _, _) = seeded_store("fuzz-wal-trunc");
        let store = CheckpointStore::open(&dir).unwrap();
        let len = std::fs::metadata(store.wal_path()).unwrap().len();
        persist::truncate_file(&store.wal_path(), cut % (len + 1)).unwrap();
        let rec = store.recover().unwrap();
        for (i, payload) in rec.wal.iter().enumerate() {
            let mut r = Reader::new(payload);
            prop_assert_eq!(r.get_u64().unwrap(), i as u64);
            r.get_u64().unwrap();
            r.expect_end().unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A flipped byte in the WAL stops the scan at the last good record —
    /// structured degradation, not a panic or a garbled record.
    #[test]
    fn wal_bit_flips_stop_at_last_good_record(offset in 0u64..96) {
        let (dir, _, _) = seeded_store("fuzz-wal-flip");
        let store = CheckpointStore::open(&dir).unwrap();
        let len = std::fs::metadata(store.wal_path()).unwrap().len();
        persist::flip_byte(&store.wal_path(), offset % len).unwrap();
        let rec = store.recover().unwrap();
        prop_assert!(rec.wal.len() < 4, "corrupted WAL returned all records");
        for (i, payload) in rec.wal.iter().enumerate() {
            let mut r = Reader::new(payload);
            prop_assert_eq!(r.get_u64().unwrap(), i as u64);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Arbitrary byte soup into the state decoders yields a structured
    /// result — never a panic, never an absurd allocation. (A random prefix
    /// may legitimately decode as a trivial value; the property is safety,
    /// not rejection.)
    #[test]
    fn decoders_never_panic_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = persist::get_net_snapshot(&mut Reader::new(&bytes));
        let _ = persist::get_join_space(&mut Reader::new(&bytes));
        let _ = persist::get_point_set(&mut Reader::new(&bytes));
        let _ = persist::get_cell_counts(&mut Reader::new(&bytes));
        let _ = persist::get_network_stats(&mut Reader::new(&bytes));
        let _ = persist::get_batch_stats(&mut Reader::new(&bytes));
    }

    /// Truncating a continuous-state snapshot payload anywhere yields a
    /// structured decode error — the engine restore path never panics on a
    /// short buffer.
    #[test]
    fn truncated_engine_state_is_structured_error(frac in 0.0f64..1.0) {
        let (mut snet, cq, specs) = build(3);
        let mut cont = ContinuousSensJoin::new();
        let mut digests = Vec::new();
        run_span(
            &mut snet, &mut cont, &cq, &specs, 3, None, 0, 2, &BTreeMap::new(), &mut digests,
        ).unwrap();
        let full = full_state(&cont, &snet);
        let cut = ((full.len() as f64) * frac) as usize;
        if cut < full.len() {
            let mut fresh = ContinuousSensJoin::new();
            let mut r = Reader::new(&full[..cut]);
            let res = fresh.restore_state(&mut r, &cq);
            if res.is_ok() {
                // The engine part happened to fit; the net snapshot can't.
                prop_assert!(persist::get_net_snapshot(&mut r).is_err());
            }
        }
    }
}
