//! Temporary review check: crash + revive of the same node at the same
//! boundary must not double-count the node's tuple.

use sensjoin_core::{ExternalJoin, JoinMethod, SensJoin, SensorNetwork, SensorNetworkBuilder};
use sensjoin_field::{Area, Placement};
use sensjoin_query::parse;
use sensjoin_relation::NodeId;
use sensjoin_sim::{ChurnAction, ChurnTimeline};

const SQL: &str = "SELECT A.hum, B.hum FROM Sensors A, Sensors B \
                   WHERE A.temp - B.temp > 3.0 ONCE";

fn snet(seed: u64) -> SensorNetwork {
    SensorNetworkBuilder::new()
        .area(Area::new(300.0, 300.0))
        .placement(Placement::UniformRandom { n: 80 })
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn same_boundary_crash_revive_is_exact() {
    for seed in 1..20u64 {
        let cq = snet(seed).compile(&parse(SQL).unwrap()).unwrap();
        let reference = ExternalJoin.execute(&mut snet(seed), &cq).unwrap();
        for v in 1..80u32 {
            let mut s = snet(seed);
            let tl = ChurnTimeline::new()
                .at_boundary(1, NodeId(v), ChurnAction::Crash)
                .at_boundary(1, NodeId(v), ChurnAction::Revive);
            s.net_mut().set_churn(Some(tl));
            let out = SensJoin::default().execute(&mut s, &cq).unwrap();
            // Everyone survived to the end, so the result must equal the
            // clean lossless join (modulo repair-seam partitions).
            let all_attached =
                (0..80u32).all(|i| s.net().routing().depth(NodeId(i)).is_some());
            if !all_attached {
                continue;
            }
            assert!(
                out.result.same_result(&reference.result),
                "seed {seed}, victim {v}: crash+revive at one boundary diverged"
            );
        }
    }
}
