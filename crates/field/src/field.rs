//! Stationary Gaussian random fields via random cosine features.

use crate::Position;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A smooth, spatially correlated scalar field over the plane.
///
/// The field is a superposition of `K` cosine waves with random frequencies
/// drawn from a Gaussian spectral density and random phases:
///
/// ```text
/// f(p) = mean + amplitude * sqrt(2/K) * Σ_k cos(w_k · p + φ_k)
/// ```
///
/// By Bochner's theorem this approximates a stationary Gaussian process with
/// a squared-exponential covariance whose correlation length is
/// `correlation_length`; for K ≳ 50 the approximation is visually and
/// statistically indistinguishable for our purposes. Nearby nodes therefore
/// observe similar values — the property the quadtree representation
/// exploits (paper §V-A, Fig. 4).
#[derive(Debug, Clone)]
pub struct CosineField {
    mean: f64,
    amplitude: f64,
    /// (wx, wy, phase) per wave.
    waves: Vec<(f64, f64, f64)>,
    norm: f64,
}

impl CosineField {
    /// Number of cosine features.
    const K: usize = 64;

    /// Builds a field with the given first two moments and correlation
    /// length (meters), deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `correlation_length` or `amplitude` is not positive.
    pub fn new(mean: f64, amplitude: f64, correlation_length: f64, seed: u64) -> Self {
        assert!(
            correlation_length > 0.0,
            "correlation length must be positive"
        );
        assert!(amplitude >= 0.0, "amplitude must be non-negative");
        let mut rng = SmallRng::seed_from_u64(seed);
        let sigma_w = 1.0 / correlation_length;
        let waves = (0..Self::K)
            .map(|_| {
                // Box-Muller pairs for the 2-D Gaussian frequency.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                let r = sigma_w * (-2.0 * u1.ln()).sqrt();
                let phase = rng.gen_range(0.0..std::f64::consts::TAU);
                (r * u2.cos(), r * u2.sin(), phase)
            })
            .collect();
        Self {
            mean,
            amplitude,
            waves,
            norm: (2.0 / Self::K as f64).sqrt(),
        }
    }

    /// Samples the field at a position.
    pub fn sample(&self, p: Position) -> f64 {
        let sum: f64 = self
            .waves
            .iter()
            .map(|&(wx, wy, ph)| (wx * p.x + wy * p.y + ph).cos())
            .sum();
        self.mean + self.amplitude * self.norm * sum
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The configured amplitude (≈ standard deviation of the field).
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats(field: &CosineField, n: usize) -> (f64, f64) {
        let mut rng = SmallRng::seed_from_u64(999);
        let samples: Vec<f64> = (0..n)
            .map(|_| {
                field.sample(Position::new(
                    rng.gen_range(0.0..5000.0),
                    rng.gen_range(0.0..5000.0),
                ))
            })
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var.sqrt())
    }

    #[test]
    fn moments_match_configuration() {
        let f = CosineField::new(21.0, 2.0, 100.0, 3);
        let (mean, sd) = sample_stats(&f, 20_000);
        assert!((mean - 21.0).abs() < 0.5, "mean {mean}");
        assert!((sd - 2.0).abs() < 0.6, "sd {sd}");
    }

    #[test]
    fn nearby_points_are_correlated() {
        let f = CosineField::new(0.0, 1.0, 200.0, 7);
        let mut rng = SmallRng::seed_from_u64(11);
        let (mut near_diff, mut far_diff) = (0.0, 0.0);
        let n = 2000;
        for _ in 0..n {
            let p = Position::new(rng.gen_range(0.0..2000.0), rng.gen_range(0.0..2000.0));
            let near = Position::new(p.x + 5.0, p.y);
            let far = Position::new(p.x + 1000.0, p.y + 1000.0);
            near_diff += (f.sample(p) - f.sample(near)).abs();
            far_diff += (f.sample(p) - f.sample(far)).abs();
        }
        assert!(
            near_diff * 5.0 < far_diff,
            "near {near_diff:.1} should be far below far {far_diff:.1}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CosineField::new(5.0, 1.0, 50.0, 42);
        let b = CosineField::new(5.0, 1.0, 50.0, 42);
        let c = CosineField::new(5.0, 1.0, 50.0, 43);
        let p = Position::new(10.0, 20.0);
        assert_eq!(a.sample(p), b.sample(p));
        assert_ne!(a.sample(p), c.sample(p));
    }

    #[test]
    fn zero_amplitude_is_constant() {
        let f = CosineField::new(9.0, 0.0, 100.0, 1);
        assert_eq!(f.sample(Position::new(0.0, 0.0)), 9.0);
        assert_eq!(f.sample(Position::new(500.0, 123.0)), 9.0);
    }
}
