#![warn(missing_docs)]

//! Node placement and sensor-data generation for WSN experiments.
//!
//! The paper's evaluation (§VI) simulates "a random distribution of nodes"
//! in a square area and uses "a fixed distribution of the physical
//! quantities, emulating real sensor data" — i.e. spatially correlated
//! readings like the Intel Lab deployment it cites (Fig. 4). Neither the
//! node coordinates nor the exact data are published, so this crate
//! reproduces the *generative process*:
//!
//! * [`Placement`] — uniform-random (the paper's setting), jittered grid and
//!   clustered node layouts over a rectangular [`Area`],
//! * [`CosineField`] — a stationary Gaussian random field approximated by a
//!   superposition of random cosine waves (the spectral / "random features"
//!   method). Its correlation length is a direct parameter, which is what
//!   the quadtree representation's gains depend on,
//! * [`FieldSpec`] / [`generate_readings`] — named per-attribute generators
//!   with cross-attribute correlation (humidity tracking temperature, etc.)
//!   and white measurement noise,
//! * [`presets`] — an Intel-Lab-like indoor climate preset and an outdoor
//!   environmental preset.
//!
//! Everything is deterministic given a seed, so experiments are exactly
//! reproducible.
//!
//! # Example
//!
//! ```
//! use sensjoin_field::{Area, Placement, presets, generate_readings};
//!
//! let area = Area::new(1050.0, 1050.0);
//! let positions = Placement::UniformRandom { n: 1500 }.generate(area, 42);
//! assert_eq!(positions.len(), 1500);
//! let specs = presets::indoor_climate();
//! let readings = generate_readings(&positions, &specs, 7);
//! assert_eq!(readings.len(), 1500);
//! assert_eq!(readings[0].len(), specs.len());
//! ```

mod field;
mod placement;
pub mod presets;
mod readings;

pub use field::CosineField;
pub use placement::{Area, Placement, Position};
pub use readings::{generate_readings, FieldSpec};
