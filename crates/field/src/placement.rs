//! Node placement over a rectangular deployment area.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A node position in meters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Position {
    /// X coordinate in meters.
    pub x: f64,
    /// Y coordinate in meters.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other` in meters.
    #[inline]
    pub fn distance(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A rectangular deployment area (meters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Area {
    /// Width in meters.
    pub width: f64,
    /// Height in meters.
    pub height: f64,
}

impl Area {
    /// Creates an area.
    ///
    /// # Panics
    /// Panics on non-positive extents.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(width > 0.0 && height > 0.0, "area extents must be positive");
        Self { width, height }
    }

    /// The paper's default experiment area: 1050 m × 1050 m (§VI).
    pub fn paper_default() -> Self {
        Self::new(1050.0, 1050.0)
    }

    /// Scales the area to hold `n` nodes at the same node density as the
    /// paper default holds 1500 (used by the Fig. 14 network-size sweep:
    /// "we vary the area of the network to keep the node density constant").
    pub fn for_constant_density(n: usize) -> Self {
        let side = 1050.0 * (n as f64 / 1500.0).sqrt();
        Self::new(side, side)
    }

    /// The center of the area.
    pub fn center(&self) -> Position {
        Position::new(self.width / 2.0, self.height / 2.0)
    }
}

/// A node placement strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// `n` nodes placed independently and uniformly at random — the paper's
    /// setting.
    UniformRandom {
        /// Number of nodes.
        n: usize,
    },
    /// A regular grid with per-node uniform jitter (fraction of cell size in
    /// `0.0..=0.5`). Useful for worst/best-case routing-tree shapes.
    JitteredGrid {
        /// Grid columns.
        nx: usize,
        /// Grid rows.
        ny: usize,
        /// Jitter as a fraction of the cell pitch.
        jitter: f64,
    },
    /// Gaussian clusters: `per_cluster` nodes around each of `centers`
    /// uniform-random cluster centers. Models the "two small regions"
    /// scenarios the specialized related-work joins require.
    Clustered {
        /// Number of clusters.
        centers: usize,
        /// Nodes per cluster.
        per_cluster: usize,
        /// Cluster standard deviation in meters.
        sigma: f64,
    },
}

impl Placement {
    /// Generates positions inside `area`, deterministically from `seed`.
    pub fn generate(&self, area: Area, seed: u64) -> Vec<Position> {
        let mut rng = SmallRng::seed_from_u64(seed);
        match *self {
            Placement::UniformRandom { n } => (0..n)
                .map(|_| {
                    Position::new(
                        rng.gen_range(0.0..area.width),
                        rng.gen_range(0.0..area.height),
                    )
                })
                .collect(),
            Placement::JitteredGrid { nx, ny, jitter } => {
                assert!((0.0..=0.5).contains(&jitter), "jitter must be in 0..=0.5");
                let (dx, dy) = (area.width / nx as f64, area.height / ny as f64);
                let mut out = Vec::with_capacity(nx * ny);
                for iy in 0..ny {
                    for ix in 0..nx {
                        let jx = rng.gen_range(-jitter..=jitter) * dx;
                        let jy = rng.gen_range(-jitter..=jitter) * dy;
                        out.push(Position::new(
                            ((ix as f64 + 0.5) * dx + jx).clamp(0.0, area.width),
                            ((iy as f64 + 0.5) * dy + jy).clamp(0.0, area.height),
                        ));
                    }
                }
                out
            }
            Placement::Clustered {
                centers,
                per_cluster,
                sigma,
            } => {
                let mut out = Vec::with_capacity(centers * per_cluster);
                for _ in 0..centers {
                    let cx = rng.gen_range(0.0..area.width);
                    let cy = rng.gen_range(0.0..area.height);
                    for _ in 0..per_cluster {
                        // Box-Muller for a 2-D Gaussian offset.
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                        let r = sigma * (-2.0 * u1.ln()).sqrt();
                        out.push(Position::new(
                            (cx + r * u2.cos()).clamp(0.0, area.width),
                            (cy + r * u2.sin()).clamp(0.0, area.height),
                        ));
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_and_in_bounds() {
        let area = Area::new(100.0, 50.0);
        let a = Placement::UniformRandom { n: 200 }.generate(area, 1);
        let b = Placement::UniformRandom { n: 200 }.generate(area, 1);
        let c = Placement::UniformRandom { n: 200 }.generate(area, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a
            .iter()
            .all(|p| (0.0..=100.0).contains(&p.x) && (0.0..=50.0).contains(&p.y)));
    }

    #[test]
    fn grid_counts_and_spacing() {
        let area = Area::new(100.0, 100.0);
        let pts = Placement::JitteredGrid {
            nx: 10,
            ny: 10,
            jitter: 0.0,
        }
        .generate(area, 0);
        assert_eq!(pts.len(), 100);
        assert!((pts[0].x - 5.0).abs() < 1e-9);
        assert!((pts[11].x - 15.0).abs() < 1e-9);
    }

    #[test]
    fn clusters_stay_near_centers() {
        let area = Area::new(1000.0, 1000.0);
        let pts = Placement::Clustered {
            centers: 3,
            per_cluster: 50,
            sigma: 10.0,
        }
        .generate(area, 5);
        assert_eq!(pts.len(), 150);
        // Nodes of a cluster lie within a few sigma of their center: check
        // the spread of each group of 50.
        for chunk in pts.chunks(50) {
            let cx = chunk.iter().map(|p| p.x).sum::<f64>() / 50.0;
            let cy = chunk.iter().map(|p| p.y).sum::<f64>() / 50.0;
            let center = Position::new(cx, cy);
            let far = chunk.iter().filter(|p| p.distance(&center) > 60.0).count();
            assert!(far <= 2, "{far} outliers");
        }
    }

    #[test]
    fn constant_density_scaling() {
        let a = Area::for_constant_density(1500);
        assert!((a.width - 1050.0).abs() < 1e-9);
        let b = Area::for_constant_density(2500);
        let density_a = 1500.0 / (a.width * a.height);
        let density_b = 2500.0 / (b.width * b.height);
        assert!((density_a - density_b).abs() < 1e-12);
    }

    #[test]
    fn distance_is_euclidean() {
        assert!((Position::new(0.0, 0.0).distance(&Position::new(3.0, 4.0)) - 5.0).abs() < 1e-12);
    }
}
