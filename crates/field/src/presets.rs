//! Ready-made attribute generators for the experiments.

use crate::FieldSpec;

/// Intel-Lab-like indoor climate: temperature, humidity (anti-correlated
/// with temperature), pressure and light. Matches the magnitudes of the MIT
/// Intel Lab trace the paper cites for its spatial-correlation argument
/// (Fig. 4): temperatures in the high teens to low twenties with smooth
/// spatial drift.
pub fn indoor_climate() -> Vec<FieldSpec> {
    vec![
        FieldSpec::simple("temp", 21.0, 2.5, 250.0, 0.05),
        FieldSpec::simple("hum", 42.0, 4.0, 350.0, 0.3).coupled_to(0, -1.2),
        FieldSpec::simple("pres", 1013.0, 1.5, 600.0, 0.1),
        FieldSpec::simple("light", 400.0, 150.0, 120.0, 5.0),
    ]
}

/// Outdoor environmental monitoring: larger swings, shorter correlation
/// lengths (microclimates), used by the Q1/Q2-style example queries.
pub fn outdoor_environment() -> Vec<FieldSpec> {
    vec![
        FieldSpec::simple("temp", 15.0, 6.0, 180.0, 0.1),
        FieldSpec::simple("hum", 55.0, 10.0, 220.0, 0.5).coupled_to(0, -0.8),
        FieldSpec::simple("pres", 1009.0, 3.0, 800.0, 0.2),
        FieldSpec::simple("light", 20_000.0, 9_000.0, 90.0, 200.0),
    ]
}

/// A deliberately *uncorrelated* data set (tiny correlation length relative
/// to typical deployments): the adversarial case for the quadtree
/// representation, used by ablation benches.
pub fn uncorrelated() -> Vec<FieldSpec> {
    vec![
        FieldSpec::simple("temp", 21.0, 2.5, 1.0, 0.5),
        FieldSpec::simple("hum", 42.0, 4.0, 1.0, 1.0),
        FieldSpec::simple("pres", 1013.0, 1.5, 1.0, 0.5),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_attributes() {
        let specs = indoor_climate();
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["temp", "hum", "pres", "light"]);
        assert!(outdoor_environment().len() >= 3);
        assert!(uncorrelated().iter().all(|s| s.correlation_length <= 1.0));
    }

    #[test]
    fn couplings_reference_earlier_specs() {
        for specs in [indoor_climate(), outdoor_environment(), uncorrelated()] {
            for (i, s) in specs.iter().enumerate() {
                if let Some((j, _)) = s.cross {
                    assert!(j < i);
                }
            }
        }
    }
}
