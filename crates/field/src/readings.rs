//! Per-attribute reading generation with cross-attribute correlation.

use crate::{CosineField, Position};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Specification of one generated sensor attribute.
#[derive(Debug, Clone)]
pub struct FieldSpec {
    /// Attribute name (matched by schema builders).
    pub name: String,
    /// Field mean.
    pub mean: f64,
    /// Field standard deviation (spatial variation).
    pub amplitude: f64,
    /// Spatial correlation length in meters.
    pub correlation_length: f64,
    /// Standard deviation of white per-node measurement noise.
    pub noise: f64,
    /// Optional linear coupling to an *earlier* spec: `(index, coefficient)`.
    /// The attribute becomes `coefficient * value[index] + own field + noise`,
    /// e.g. humidity anti-correlated with temperature.
    pub cross: Option<(usize, f64)>,
}

impl FieldSpec {
    /// A plain (uncoupled) attribute.
    pub fn simple(
        name: impl Into<String>,
        mean: f64,
        amplitude: f64,
        correlation_length: f64,
        noise: f64,
    ) -> Self {
        Self {
            name: name.into(),
            mean,
            amplitude,
            correlation_length,
            noise,
            cross: None,
        }
    }

    /// Couples this attribute linearly to spec `index`.
    pub fn coupled_to(mut self, index: usize, coefficient: f64) -> Self {
        self.cross = Some((index, coefficient));
        self
    }
}

/// Generates one reading per node and spec: `readings[node][spec]`.
///
/// Each spec gets an independent field seeded from `seed` and its index, so
/// regenerating with the same arguments is exactly reproducible.
///
/// # Panics
/// Panics if a `cross` reference points at itself or a later spec.
pub fn generate_readings(positions: &[Position], specs: &[FieldSpec], seed: u64) -> Vec<Vec<f64>> {
    for (i, s) in specs.iter().enumerate() {
        if let Some((j, _)) = s.cross {
            assert!(
                j < i,
                "spec {i} ({}) must couple to an earlier spec, got {j}",
                s.name
            );
        }
    }
    let fields: Vec<CosineField> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            CosineField::new(
                s.mean,
                s.amplitude,
                s.correlation_length,
                seed ^ (i as u64 + 1),
            )
        })
        .collect();
    let mut noise_rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x2545F4914F6CDD1D));
    positions
        .iter()
        .map(|&p| {
            let mut row = Vec::with_capacity(specs.len());
            for (i, spec) in specs.iter().enumerate() {
                let mut v = fields[i].sample(p);
                if let Some((j, coeff)) = spec.cross {
                    v += coeff * (row[j] - specs[j].mean);
                }
                if spec.noise > 0.0 {
                    // Box-Muller white noise.
                    let u1: f64 = noise_rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = noise_rng.gen_range(0.0..std::f64::consts::TAU);
                    v += spec.noise * (-2.0 * u1.ln()).sqrt() * u2.cos();
                }
                row.push(v);
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions(n: usize) -> Vec<Position> {
        let mut rng = SmallRng::seed_from_u64(5);
        (0..n)
            .map(|_| Position::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect()
    }

    #[test]
    fn shape_and_determinism() {
        let pos = positions(100);
        let specs = vec![
            FieldSpec::simple("temp", 21.0, 2.0, 200.0, 0.05),
            FieldSpec::simple("hum", 40.0, 5.0, 300.0, 0.2).coupled_to(0, -1.5),
        ];
        let a = generate_readings(&pos, &specs, 1);
        let b = generate_readings(&pos, &specs, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|row| row.len() == 2));
    }

    #[test]
    fn coupling_induces_correlation() {
        let pos = positions(2000);
        let specs = vec![
            FieldSpec::simple("temp", 21.0, 2.0, 200.0, 0.0),
            FieldSpec::simple("hum", 40.0, 1.0, 300.0, 0.0).coupled_to(0, -2.0),
        ];
        let rows = generate_readings(&pos, &specs, 3);
        let mt = rows.iter().map(|r| r[0]).sum::<f64>() / rows.len() as f64;
        let mh = rows.iter().map(|r| r[1]).sum::<f64>() / rows.len() as f64;
        let cov: f64 =
            rows.iter().map(|r| (r[0] - mt) * (r[1] - mh)).sum::<f64>() / rows.len() as f64;
        assert!(cov < -1.0, "expected strong anti-correlation, cov {cov}");
    }

    #[test]
    fn noise_breaks_exact_equality() {
        let pos = vec![Position::new(10.0, 10.0), Position::new(10.0, 10.0)];
        let specs = vec![FieldSpec::simple("temp", 0.0, 1.0, 100.0, 0.5)];
        let rows = generate_readings(&pos, &specs, 9);
        assert_ne!(rows[0][0], rows[1][0]);
    }

    #[test]
    #[should_panic(expected = "earlier spec")]
    fn forward_coupling_rejected() {
        generate_readings(
            &positions(1),
            &[FieldSpec::simple("a", 0.0, 1.0, 100.0, 0.0).coupled_to(0, 1.0)],
            1,
        );
    }
}
