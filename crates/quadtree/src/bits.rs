//! MSB-first bit-level I/O for the pointerless wire format.

/// Writes bits MSB-first into a growing byte buffer.
///
/// Sensor radios transmit whole bytes; the encoding tracks its exact bit
/// length so that cost accounting (the decomposition threshold, Treecut
/// sizes) can work at bit granularity while messages are padded to bytes.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in `buf`.
    len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a single bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        let byte = self.len / 8;
        if byte == self.buf.len() {
            self.buf.push(0);
        }
        if bit {
            self.buf[byte] |= 0x80 >> (self.len % 8);
        }
        self.len += 1;
    }

    /// Appends the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    /// Panics if `count > 64`.
    #[inline]
    pub fn push_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64);
        for i in (0..count).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    /// Number of bits written so far.
    #[inline]
    pub fn len_bits(&self) -> usize {
        self.len
    }

    /// Finishes writing, returning the byte buffer (zero-padded) and the
    /// exact bit length.
    pub fn finish(self) -> (Vec<u8>, usize) {
        (self.buf, self.len)
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Total readable bits (callers may bound below `buf.len() * 8`).
    len: usize,
}

impl<'a> BitReader<'a> {
    /// Reads all bits of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            buf,
            pos: 0,
            len: buf.len() * 8,
        }
    }

    /// Reads only the first `len_bits` bits of `buf`.
    pub fn with_len(buf: &'a [u8], len_bits: usize) -> Self {
        debug_assert!(len_bits <= buf.len() * 8);
        Self {
            buf,
            pos: 0,
            len: len_bits,
        }
    }

    /// Reads one bit, or `None` at end of input.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.len {
            return None;
        }
        let bit = (self.buf[self.pos / 8] >> (7 - self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `count` bits MSB-first, or `None` if fewer remain.
    #[inline]
    pub fn read_bits(&mut self, count: u32) -> Option<u64> {
        assert!(count <= 64);
        if self.pos + count as usize > self.len {
            return None;
        }
        let mut v = 0u64;
        for _ in 0..count {
            v = (v << 1) | u64::from(self.read_bit()?);
        }
        Some(v)
    }

    /// Bits consumed so far.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bits remaining.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.len - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_bits() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, false, true, true];
        for &b in &pattern {
            w.push_bit(b);
        }
        assert_eq!(w.len_bits(), 9);
        let (bytes, len) = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::with_len(&bytes, len);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn roundtrip_multibit_values() {
        let mut w = BitWriter::new();
        w.push_bits(0b101, 3);
        w.push_bits(0xDEADBEEF, 32);
        w.push_bits(0, 0);
        w.push_bits(u64::MAX, 64);
        let (bytes, len) = w.finish();
        let mut r = BitReader::with_len(&bytes, len);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(32), Some(0xDEADBEEF));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.push_bits(0b1, 1);
        w.push_bits(0b0000000, 7);
        let (bytes, _) = w.finish();
        assert_eq!(bytes, vec![0b1000_0000]);
    }

    #[test]
    fn read_past_end_is_none() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8), Some(0xFF));
        assert_eq!(r.read_bits(1), None);
        // Partial reads don't consume on failure.
        let mut r2 = BitReader::with_len(&[0xFF], 4);
        assert_eq!(r2.read_bits(5), None);
        assert_eq!(r2.read_bits(4), Some(0xF));
    }

    #[test]
    fn position_tracking() {
        let mut r = BitReader::new(&[0xAA, 0x55]);
        r.read_bits(5);
        assert_eq!(r.position(), 5);
        assert_eq!(r.remaining(), 11);
    }
}
