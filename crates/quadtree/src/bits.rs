//! MSB-first bit-level I/O for the pointerless wire format.

/// Writes bits MSB-first into a growing byte buffer.
///
/// Sensor radios transmit whole bytes; the encoding tracks its exact bit
/// length so that cost accounting (the decomposition threshold, Treecut
/// sizes) can work at bit granularity while messages are padded to bytes.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in `buf`.
    len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a single bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        let byte = self.len / 8;
        if byte == self.buf.len() {
            self.buf.push(0);
        }
        if bit {
            self.buf[byte] |= 0x80 >> (self.len % 8);
        }
        self.len += 1;
    }

    /// Appends the low `count` bits of `value`, most significant first.
    ///
    /// With the `simd` feature the bits are packed a partial byte at a time
    /// (≤ 9 byte stores for 64 bits) instead of bit-at-a-time; the produced
    /// stream is identical.
    ///
    /// # Panics
    /// Panics if `count > 64`.
    #[inline]
    #[cfg(feature = "simd")]
    pub fn push_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64);
        let mut rem = count;
        while rem > 0 {
            let byte = self.len / 8;
            if byte == self.buf.len() {
                self.buf.push(0);
            }
            let off = (self.len % 8) as u32;
            let take = (8 - off).min(rem);
            // The next `take` bits of `value`, MSB-first, aligned to the
            // free low positions of the current byte.
            let chunk = (value >> (rem - take)) & ((1u64 << take) - 1);
            self.buf[byte] |= (chunk << (8 - off - take)) as u8;
            self.len += take as usize;
            rem -= take;
        }
    }

    /// Appends the low `count` bits of `value`, most significant first
    /// (bit-at-a-time reference path; the `simd` feature swaps in a packed
    /// writer with an identical stream).
    ///
    /// # Panics
    /// Panics if `count > 64`.
    #[inline]
    #[cfg(not(feature = "simd"))]
    pub fn push_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64);
        for i in (0..count).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    /// Number of bits written so far.
    #[inline]
    pub fn len_bits(&self) -> usize {
        self.len
    }

    /// Finishes writing, returning the byte buffer (zero-padded) and the
    /// exact bit length.
    pub fn finish(self) -> (Vec<u8>, usize) {
        (self.buf, self.len)
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Total readable bits (callers may bound below `buf.len() * 8`).
    len: usize,
}

impl<'a> BitReader<'a> {
    /// Reads all bits of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            buf,
            pos: 0,
            len: buf.len() * 8,
        }
    }

    /// Reads only the first `len_bits` bits of `buf`.
    pub fn with_len(buf: &'a [u8], len_bits: usize) -> Self {
        debug_assert!(len_bits <= buf.len() * 8);
        Self {
            buf,
            pos: 0,
            len: len_bits,
        }
    }

    /// Reads one bit, or `None` at end of input.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.len {
            return None;
        }
        let bit = (self.buf[self.pos / 8] >> (7 - self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `count` bits MSB-first, or `None` if fewer remain.
    ///
    /// With the `simd` feature the bits are gathered a partial byte at a
    /// time; values and cursor movement are identical to the reference.
    #[inline]
    #[cfg(feature = "simd")]
    pub fn read_bits(&mut self, count: u32) -> Option<u64> {
        assert!(count <= 64);
        if self.pos + count as usize > self.len {
            return None;
        }
        let mut v = 0u64;
        let mut rem = count;
        while rem > 0 {
            let byte = u64::from(self.buf[self.pos / 8]);
            let off = (self.pos % 8) as u32;
            let take = (8 - off).min(rem);
            let chunk = (byte >> (8 - off - take)) & ((1u64 << take) - 1);
            v = (v << take) | chunk;
            self.pos += take as usize;
            rem -= take;
        }
        Some(v)
    }

    /// Reads `count` bits MSB-first, or `None` if fewer remain
    /// (bit-at-a-time reference path).
    #[inline]
    #[cfg(not(feature = "simd"))]
    pub fn read_bits(&mut self, count: u32) -> Option<u64> {
        assert!(count <= 64);
        if self.pos + count as usize > self.len {
            return None;
        }
        let mut v = 0u64;
        for _ in 0..count {
            v = (v << 1) | u64::from(self.read_bit()?);
        }
        Some(v)
    }

    /// Bits consumed so far.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bits remaining.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.len - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_bits() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, false, true, true];
        for &b in &pattern {
            w.push_bit(b);
        }
        assert_eq!(w.len_bits(), 9);
        let (bytes, len) = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::with_len(&bytes, len);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn roundtrip_multibit_values() {
        let mut w = BitWriter::new();
        w.push_bits(0b101, 3);
        w.push_bits(0xDEADBEEF, 32);
        w.push_bits(0, 0);
        w.push_bits(u64::MAX, 64);
        let (bytes, len) = w.finish();
        let mut r = BitReader::with_len(&bytes, len);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(32), Some(0xDEADBEEF));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.push_bits(0b1, 1);
        w.push_bits(0b0000000, 7);
        let (bytes, _) = w.finish();
        assert_eq!(bytes, vec![0b1000_0000]);
    }

    #[test]
    fn read_past_end_is_none() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8), Some(0xFF));
        assert_eq!(r.read_bits(1), None);
        // Partial reads don't consume on failure.
        let mut r2 = BitReader::with_len(&[0xFF], 4);
        assert_eq!(r2.read_bits(5), None);
        assert_eq!(r2.read_bits(4), Some(0xF));
    }

    #[test]
    fn packed_matches_bit_at_a_time() {
        // Whatever path the feature selects must produce the exact stream a
        // plain push_bit / read_bit loop produces, at every alignment.
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let ops: Vec<(u64, u32)> = (0..200).map(|_| (next(), (next() % 65) as u32)).collect();
        let mut packed = BitWriter::new();
        let mut bitwise = BitWriter::new();
        for &(v, c) in &ops {
            packed.push_bits(v, c);
            for i in (0..c).rev() {
                bitwise.push_bit((v >> i) & 1 == 1);
            }
        }
        assert_eq!(packed.len_bits(), bitwise.len_bits());
        let (pb, plen) = packed.finish();
        let (bb, _) = bitwise.finish();
        assert_eq!(pb, bb);
        let mut rp = BitReader::with_len(&pb, plen);
        let mut rb = BitReader::with_len(&bb, plen);
        for &(v, c) in &ops {
            let mut want = 0u64;
            for _ in 0..c {
                want = (want << 1) | u64::from(rb.read_bit().unwrap());
            }
            assert_eq!(rp.read_bits(c), Some(want));
            assert_eq!(
                want,
                if c == 0 {
                    0
                } else {
                    v & (u64::MAX >> (64 - c))
                }
            );
            assert_eq!(rp.position(), rb.position());
        }
    }

    #[test]
    fn position_tracking() {
        let mut r = BitReader::new(&[0xAA, 0x55]);
        r.read_bits(5);
        assert_eq!(r.position(), 5);
        assert_eq!(r.remaining(), 11);
    }
}
